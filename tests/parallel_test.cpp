// Stress tests for the work-stealing pool: many tiny tasks, nested
// parallel_for, future submission, and the determinism contract. These
// run under the `perf` ctest label and must stay clean under
// -DCLARA_SANITIZE=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "common/parallel.hpp"

namespace clara::parallel {
namespace {

/// RAII jobs override so a failing assertion cannot leak a setting into
/// later tests.
class JobsGuard {
 public:
  explicit JobsGuard(std::size_t n) : saved_(jobs()) { set_jobs(n); }
  ~JobsGuard() { set_jobs(saved_); }

 private:
  std::size_t saved_;
};

TEST(Parallel, JobsIsAtLeastOne) {
  EXPECT_GE(jobs(), 1u);
  EXPECT_GE(default_jobs(), 1u);
}

TEST(Parallel, SetJobsResizesPool) {
  JobsGuard guard(3);
  EXPECT_EQ(jobs(), 3u);
  EXPECT_EQ(pool().workers(), 2u);
}

TEST(Parallel, ManyTinyTasks) {
  JobsGuard guard(4);
  constexpr std::size_t kTasks = 20'000;
  std::atomic<std::uint64_t> sum{0};
  parallel_for(0, kTasks, [&](std::size_t i) { sum.fetch_add(i + 1, std::memory_order_relaxed); });
  EXPECT_EQ(sum.load(), kTasks * (kTasks + 1) / 2);
}

TEST(Parallel, EveryIndexExactlyOnce) {
  JobsGuard guard(4);
  constexpr std::size_t kN = 5'000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(0, kN, [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Parallel, NestedParallelFor) {
  JobsGuard guard(4);
  constexpr std::size_t kOuter = 64;
  constexpr std::size_t kInner = 256;
  std::atomic<std::uint64_t> total{0};
  parallel_for(0, kOuter, [&](std::size_t) {
    std::atomic<std::uint64_t> inner{0};
    parallel_for(0, kInner, [&](std::size_t j) { inner.fetch_add(j, std::memory_order_relaxed); });
    total.fetch_add(inner.load(), std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), kOuter * (kInner * (kInner - 1) / 2));
}

TEST(Parallel, SerialAndParallelProduceSameResults) {
  constexpr std::size_t kN = 2'048;
  auto run = [&](std::size_t jobs_override) {
    std::vector<std::uint64_t> out(kN, 0);
    parallel_for_jobs(jobs_override, 0, kN, [&](std::size_t i) { out[i] = shard_seed(7, i) % 1'000'003; });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(Parallel, GrainRespectsAllIndices) {
  JobsGuard guard(4);
  constexpr std::size_t kN = 1'023;  // deliberately not a multiple of the grain
  std::atomic<std::uint64_t> count{0};
  parallel_for(0, kN, [&](std::size_t) { count.fetch_add(1, std::memory_order_relaxed); }, 64);
  EXPECT_EQ(count.load(), kN);
}

TEST(Parallel, EmptyRangeIsNoop) {
  JobsGuard guard(4);
  bool ran = false;
  parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(Parallel, SubmitReturnsFutureValue) {
  JobsGuard guard(4);
  std::vector<std::future<int>> futures;
  futures.reserve(100);
  for (int i = 0; i < 100; ++i) {
    futures.push_back(submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(Parallel, SubmitInlineWhenSerial) {
  JobsGuard guard(1);
  auto future = submit([] { return 42; });
  // jobs()==1 runs inline: the future is ready before get().
  EXPECT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(future.get(), 42);
}

TEST(Parallel, TaskGroupWaitsForAll) {
  JobsGuard guard(4);
  std::atomic<int> done{0};
  {
    TaskGroup group;
    for (int i = 0; i < 500; ++i) {
      group.run([&] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    group.wait();
    EXPECT_EQ(done.load(), 500);
  }
}

TEST(Parallel, PoolStatsAdvance) {
  JobsGuard guard(4);
  const PoolStats before = pool().stats();
  std::atomic<std::uint64_t> sink{0};
  parallel_for(0, 10'000, [&](std::size_t i) { sink.fetch_add(i, std::memory_order_relaxed); });
  const PoolStats after = pool().stats();
  // Work happened somewhere: on workers, or inline in the waiting caller.
  EXPECT_GE(after.tasks_run + after.tasks_inline, before.tasks_run + before.tasks_inline);
  EXPECT_EQ(after.per_worker_busy_ns.size(), pool().workers());
}

TEST(Parallel, ShardSeedIsDeterministicAndDistinct) {
  EXPECT_EQ(shard_seed(42, 7), shard_seed(42, 7));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1'000; ++i) seen.insert(shard_seed(42, i));
  EXPECT_EQ(seen.size(), 1'000u);  // no collisions across shard indices
  // Close base seeds must still give unrelated streams.
  EXPECT_NE(shard_seed(1, 0), shard_seed(2, 0));
}

}  // namespace
}  // namespace clara::parallel
