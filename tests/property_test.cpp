// Property tests over randomly generated CIR functions:
//  * printer/parser round trip is the identity on canonical text;
//  * the optimizer preserves verification and observable behaviour;
//  * symbolic path enumeration covers every concrete execution.
#include <gtest/gtest.h>

#include <set>

#include "cir/builder.hpp"
#include "cir/interp.hpp"
#include "cir/printer.hpp"
#include "cir/verify.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "nf/nf_cir.hpp"
#include "obs/accuracy.hpp"
#include "passes/api_subst.hpp"
#include "passes/optimize.hpp"
#include "passes/patterns.hpp"
#include "passes/symexec.hpp"

namespace clara {
namespace {

using cir::FunctionBuilder;
using cir::Value;

/// Generates a random, verifiable, loop-free function: a chain of blocks
/// with forward branches, arithmetic over previously defined registers,
/// occasional header reads, state accesses and an emit/drop exit.
cir::Function random_function(Rng& rng) {
  FunctionBuilder b("fuzz");
  const auto state = b.add_state(cir::StateObject{"tbl", 16, 64, cir::StatePattern::kArray});
  const int n_blocks = static_cast<int>(rng.uniform(2, 6));
  std::vector<std::uint32_t> blocks;
  for (int i = 0; i < n_blocks; ++i) blocks.push_back(b.create_block(strf("b%d", i)));

  // Registers usable from any block: defined in the entry (dominates all).
  std::vector<Value> entry_values;
  b.set_insert_point(blocks[0]);
  entry_values.push_back(b.get_hdr(cir::HdrField::kPayloadLen));
  entry_values.push_back(b.get_hdr(cir::HdrField::kFlowHash));
  entry_values.push_back(b.add(Value::of_imm(static_cast<std::int64_t>(rng.uniform(0, 100))),
                               Value::of_imm(7)));

  for (int i = 0; i < n_blocks; ++i) {
    b.set_insert_point(blocks[i]);
    std::vector<Value> local = entry_values;
    const int n_instrs = static_cast<int>(rng.uniform(0, 6));
    for (int k = 0; k < n_instrs; ++k) {
      const Value a = local[rng.uniform(0, local.size() - 1)];
      const Value c = rng.chance(0.5) ? local[rng.uniform(0, local.size() - 1)]
                                      : Value::of_imm(static_cast<std::int64_t>(rng.uniform(1, 50)));
      switch (rng.uniform(0, 5)) {
        case 0: local.push_back(b.add(a, c)); break;
        case 1: local.push_back(b.bxor(a, c)); break;
        case 2: local.push_back(b.mul(a, c)); break;
        case 3: local.push_back(b.cmp_lt(a, c)); break;
        case 4: local.push_back(b.shr(a, Value::of_imm(static_cast<std::int64_t>(rng.uniform(0, 7))))); break;
        default: local.push_back(b.load_state(state, Value::of_imm(static_cast<std::int64_t>(rng.uniform(0, 63))))); break;
      }
    }
    if (i + 1 < n_blocks) {
      if (rng.chance(0.5) && i + 2 < n_blocks) {
        const auto target = blocks[rng.uniform(static_cast<std::uint64_t>(i) + 2, n_blocks - 1)];
        b.cond_br(local[rng.uniform(0, local.size() - 1)], blocks[i + 1], target);
      } else {
        b.br(blocks[i + 1]);
      }
    } else {
      if (rng.chance(0.5)) {
        b.vcall(cir::VCall::kEmit, {Value::of_imm(1)}, false);
      } else {
        b.vcall(cir::VCall::kDrop, {}, false);
      }
      b.ret();
    }
  }
  return b.take();
}

class RecordingHandler final : public cir::VCallHandler {
 public:
  std::uint64_t handle(cir::VCall v, std::span<const std::uint64_t> args) override {
    calls.emplace_back(v, std::vector<std::uint64_t>(args.begin(), args.end()));
    switch (v) {
      case cir::VCall::kGetHdr: return 40 + args[0] * 13;  // deterministic per field
      case cir::VCall::kTableLookup: return lookup_result;
      case cir::VCall::kMeter: return 1;
      default: return 0;
    }
  }
  std::vector<std::pair<cir::VCall, std::vector<std::uint64_t>>> calls;
  std::uint64_t lookup_result = 1;
};

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, RandomFunctionVerifies) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 1);
  const auto fn = random_function(rng);
  const auto status = cir::verify(fn);
  ASSERT_TRUE(status.ok()) << status.error().message << "\n" << cir::print_function(fn);
}

TEST_P(FuzzTest, PrintParseRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 1);
  cir::Module mod;
  mod.name = "fuzz";
  mod.functions.push_back(random_function(rng));
  const auto text1 = cir::print_module(mod);
  const auto parsed = cir::parse_module(text1);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message << "\n" << text1;
  EXPECT_TRUE(cir::verify(parsed.value()).ok());
  EXPECT_EQ(cir::print_module(parsed.value()), text1);
}

TEST_P(FuzzTest, OptimizerPreservesBehaviour) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 1);
  const auto original = random_function(rng);
  auto optimized = original;
  passes::optimize(optimized);
  const auto status = cir::verify(optimized);
  ASSERT_TRUE(status.ok()) << status.error().message << "\n" << cir::print_function(optimized);

  RecordingHandler h1, h2;
  cir::Interpreter i1(original, h1);
  cir::Interpreter i2(optimized, h2);
  const auto r1 = i1.run();
  const auto r2 = i2.run();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(h1.calls.size(), h2.calls.size()) << cir::print_function(original);
  for (std::size_t i = 0; i < h1.calls.size(); ++i) {
    EXPECT_EQ(h1.calls[i].first, h2.calls[i].first);
    EXPECT_EQ(h1.calls[i].second, h2.calls[i].second);
  }
  // The optimizer never makes the function longer.
  std::size_t before = 0, after = 0;
  for (const auto& block : original.blocks) before += block.instrs.size();
  for (const auto& block : optimized.blocks) after += block.instrs.size();
  EXPECT_LE(after, before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 30));

// --- Symbolic paths cover concrete executions ------------------------------

class PathCoverageTest : public ::testing::TestWithParam<int> {
 protected:
  static cir::Function nf_by_index(int i) {
    switch (i) {
      case 0: return nf::build_nat_nf();
      case 1: return nf::build_fw_nf();
      case 2: return nf::build_meter_nf();
      case 3: return nf::build_hh_nf();
      case 4: return nf::build_crypto_gw_nf();
      default: return nf::build_rewrite_nf();
    }
  }
};

TEST_P(PathCoverageTest, EveryConcreteRunMatchesAnEnumeratedPath) {
  auto fn = nf_by_index(GetParam());
  passes::substitute_framework_apis(fn);
  passes::collapse_packet_loops(fn);
  const auto paths = passes::enumerate_paths(fn);
  ASSERT_TRUE(paths.complete);

  // Concrete executions under every combination of stateful outcomes.
  for (const bool hit : {true, false}) {
    RecordingHandler handler;
    handler.lookup_result = hit ? 1 : 0;
    cir::Interpreter interp(fn, handler);
    const auto result = interp.run();
    ASSERT_TRUE(result.ok()) << fn.name;

    std::set<std::uint32_t> executed;
    for (std::uint32_t b = 0; b < result.value().block_counts.size(); ++b) {
      if (result.value().block_counts[b] > 0) executed.insert(b);
    }
    bool covered = false;
    for (const auto& path : paths.paths) {
      const std::set<std::uint32_t> path_blocks(path.blocks.begin(), path.blocks.end());
      if (path_blocks == executed) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << fn.name << " (lookup " << (hit ? "hit" : "miss")
                         << "): concrete execution not among " << paths.paths.size() << " paths";
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, PathCoverageTest, ::testing::Range(0, 6));

// The breakdown invariant that makes per-component error attribution
// sound, checked across the whole NF library: for every scenario in the
// accuracy ledger's validation matrix, the predictor's and the
// simulator's per-component charges each sum to that side's mean
// latency. If either side booked cycles outside the shared component
// taxonomy (or double-booked), the ledger's error shares would lie.
TEST(BreakdownInvariant, ComponentChargesSumToMeanLatencyAcrossNfLibrary) {
  obs::AccuracyOptions options;
  options.max_packets = 1'500;
  const obs::AccuracyLedger ledger(options);
  const auto report =
      ledger.run(obs::AccuracyLedger::default_matrix(), lnic::netronome_agilio_cx());
  ASSERT_GT(report.scenarios.size(), 10u);
  ASSERT_EQ(report.failures, 0u);
  for (const auto& s : report.scenarios) {
    ASSERT_TRUE(s.ok) << s.scenario.name() << ": " << s.error;
    double pred_sum = 0.0;
    double sim_sum = 0.0;
    for (std::size_t i = 0; i < obs::kComponentCount; ++i) {
      pred_sum += s.predicted.cycles[i];
      sim_sum += s.simulated.cycles[i];
    }
    EXPECT_NEAR(pred_sum, s.predicted_cycles, s.predicted_cycles * 1e-6 + 1e-6)
        << s.scenario.name() << ": predictor charges leak outside the breakdown";
    EXPECT_NEAR(sim_sum, s.simulated_cycles, s.simulated_cycles * 1e-6 + 1e-6)
        << s.scenario.name() << ": simulator charges leak outside the breakdown";
  }
}

}  // namespace
}  // namespace clara
