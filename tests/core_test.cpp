// End-to-end tests of the Clara analyzer: the full paper pipeline
// (substitute -> pattern match -> map -> predict) against the simulated
// hardware, prediction-accuracy bounds per NF, per-packet-type profiles,
// ablations, and interference analysis.
#include <gtest/gtest.h>

#include "cir/builder.hpp"
#include "common/strings.hpp"
#include "core/clara.hpp"
#include "nf/nf_cir.hpp"
#include "nf/nf_ported.hpp"
#include "nicsim/sim.hpp"
#include "workload/tracegen.hpp"

namespace clara::core {
namespace {

workload::Trace make_trace(const std::string& spec) {
  return workload::generate_trace(workload::parse_profile(spec).value());
}

nicsim::MemLevel level_of(const lnic::NicProfile& profile, NodeId region) {
  switch (profile.graph.node(region).memory()->kind) {
    case lnic::MemKind::kLocal: return nicsim::MemLevel::kLocal;
    case lnic::MemKind::kCtm: return nicsim::MemLevel::kCtm;
    case lnic::MemKind::kImem: return nicsim::MemLevel::kImem;
    case lnic::MemKind::kEmem: return nicsim::MemLevel::kEmem;
  }
  return nicsim::MemLevel::kEmem;
}

double relative_error(double predicted, double actual) {
  return std::abs(predicted - actual) / actual;
}

TEST(Analyzer, NatAccuracy) {
  const auto trace = make_trace("tcp=0.8 flows=10000 payload=300 pps=60000 packets=50000");
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  const auto analysis = clara_tool.analyze(nf::build_nat_nf(), trace);
  ASSERT_TRUE(analysis.ok()) << analysis.error().message;

  nicsim::NicSim sim;
  auto& table = sim.create_table("flow_table", 131072, 64,
                                 level_of(clara_tool.profile(), analysis.value().mapping.state_region[0]));
  nf::NatProgram ported(table, true);
  const auto stats = sim.run(ported, trace);

  // Paper §4 reports 7% for NAT; hold ourselves to 15%.
  EXPECT_LT(relative_error(analysis.value().prediction.mean_latency_cycles, stats.mean_latency()), 0.15);
}

TEST(Analyzer, LpmAccuracyAcrossTableSizes) {
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  for (const std::uint64_t rules : {5000ull, 15000ull, 30000ull}) {
    const auto trace = make_trace("tcp=0.8 flows=5000 payload=300 pps=60000 packets=30000");
    const auto analysis =
        clara_tool.analyze(nf::build_lpm_nf({.rules = rules, .use_flow_cache = false}), trace);
    ASSERT_TRUE(analysis.ok()) << analysis.error().message;

    nicsim::NicSim sim;
    auto& lpm = sim.create_lpm("routes", rules, 0);
    nf::LpmProgram ported(lpm, false);
    const auto stats = sim.run(ported, trace);
    // Paper reports 12% for LPM.
    EXPECT_LT(relative_error(analysis.value().prediction.mean_latency_cycles, stats.mean_latency()), 0.20)
        << rules << " rules: predicted " << analysis.value().prediction.mean_latency_cycles << " actual "
        << stats.mean_latency();
  }
}

TEST(Analyzer, VnfAccuracyAcrossPayloads) {
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  for (const int payload : {200, 700, 1400}) {
    const auto trace = make_trace(strf("tcp=0.8 flows=4000 payload=%d pps=60000 packets=20000", payload));
    const auto analysis = clara_tool.analyze(nf::build_vnf_chain(), trace);
    ASSERT_TRUE(analysis.ok()) << analysis.error().message;

    nicsim::NicSim sim;
    const auto& profile = clara_tool.profile();
    const auto& mapping = analysis.value().mapping;
    auto& meters = sim.create_table("meters", 4096, 32, level_of(profile, mapping.state_region[0]));
    auto& stats_table = sim.create_table("flow_stats", 16384, 32, level_of(profile, mapping.state_region[1]));
    nf::VnfProgram ported(meters, stats_table);
    const auto stats = sim.run(ported, trace);
    // Paper reports 3% for the VNF chain; scan-dominated, so generous 20%.
    EXPECT_LT(relative_error(analysis.value().prediction.mean_latency_cycles, stats.mean_latency()), 0.20)
        << payload << "B: predicted " << analysis.value().prediction.mean_latency_cycles << " actual "
        << stats.mean_latency();
  }
}

TEST(Analyzer, PredictionTracksPayloadGrowth) {
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  double prev = 0.0;
  for (const int payload : {200, 600, 1000, 1400}) {
    const auto trace = make_trace(strf("payload=%d pps=60000 packets=5000", payload));
    const auto analysis = clara_tool.analyze(nf::build_vnf_chain(), trace);
    ASSERT_TRUE(analysis.ok());
    EXPECT_GT(analysis.value().prediction.mean_latency_cycles, prev);
    prev = analysis.value().prediction.mean_latency_cycles;
  }
}

TEST(Analyzer, PredictionTracksTableGrowth) {
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  const auto trace = make_trace("payload=300 pps=60000 packets=5000 flows=5000");
  double prev = 0.0;
  for (const std::uint64_t rules : {5000ull, 15000ull, 30000ull}) {
    const auto analysis =
        clara_tool.analyze(nf::build_lpm_nf({.rules = rules, .use_flow_cache = false}), trace);
    ASSERT_TRUE(analysis.ok());
    EXPECT_GT(analysis.value().prediction.mean_latency_cycles, prev);
    prev = analysis.value().prediction.mean_latency_cycles;
  }
}

TEST(Analyzer, PerPacketTypeProfiles) {
  // Paper §3.5: "TCP SYN packets experience higher latency" (flow setup).
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  const auto trace = make_trace("tcp=1.0 flows=2000 payload=300 pps=60000 packets=20000");
  const auto analysis = clara_tool.analyze(nf::build_nat_nf(), trace);
  ASSERT_TRUE(analysis.ok());
  double syn_latency = 0.0, established = 0.0;
  for (const auto& cls : analysis.value().prediction.classes) {
    if (cls.syn && cls.new_flow) syn_latency = cls.latency_cycles;
    if (cls.tcp && !cls.syn && !cls.new_flow) established = cls.latency_cycles;
  }
  ASSERT_GT(syn_latency, 0.0);
  ASSERT_GT(established, 0.0);
  EXPECT_GT(syn_latency, established);  // table insert on the SYN path
}

TEST(Analyzer, ClassFractionsSumToOne) {
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  const auto trace = make_trace("tcp=0.5 payload=200:1400 pps=60000 packets=10000");
  const auto analysis = clara_tool.analyze(nf::build_fw_nf(), trace);
  ASSERT_TRUE(analysis.ok());
  double total = 0.0;
  for (const auto& cls : analysis.value().prediction.classes) total += cls.fraction;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Analyzer, ReportsSubstitutionAndPatterns) {
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  const auto trace = make_trace("packets=2000 pps=60000");
  const auto analysis = clara_tool.analyze(nf::build_vnf_chain(), trace);
  ASSERT_TRUE(analysis.ok());
  EXPECT_GT(analysis.value().substitution.substituted, 0u);
  EXPECT_EQ(analysis.value().patterns.scan_loops, 1u);
  EXPECT_FALSE(analysis.value().report.empty());
}

TEST(Analyzer, UnknownCallsFailByDefault) {
  cir::FunctionBuilder b("weird");
  b.set_insert_point(b.create_block("entry"));
  b.call("proprietary_helper", {}, false);
  b.vcall(cir::VCall::kEmit, {cir::Value::of_imm(1)}, false);
  b.ret();
  const auto fn = b.take();
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  const auto trace = make_trace("packets=100 pps=60000");
  EXPECT_FALSE(clara_tool.analyze(fn, trace).ok());

  AnalyzeOptions lax;
  lax.fail_on_unknown_calls = false;
  // Still fails later: the interpreter cannot execute unknown calls.
  EXPECT_FALSE(clara_tool.analyze(fn, trace, lax).ok());
}

TEST(Analyzer, GreedyOptionUsesGreedyMapper) {
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  const auto trace = make_trace("packets=2000 pps=60000");
  AnalyzeOptions options;
  options.stages = PipelineStages::no_ilp();
  const auto analysis = clara_tool.analyze(nf::build_hh_nf(), trace, options);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis.value().mapping.greedy);
}

TEST(Analyzer, PatternAblationChangesPrediction) {
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  const auto trace = make_trace("payload=1000 pps=60000 packets=3000");
  AnalyzeOptions with;
  AnalyzeOptions without;
  without.stages = PipelineStages::no_patterns();
  const auto a = clara_tool.analyze(nf::build_dpi_nf(), trace, with);
  const auto b = clara_tool.analyze(nf::build_dpi_nf(), trace, without);
  ASSERT_TRUE(a.ok()) << a.error().message;
  ASSERT_TRUE(b.ok()) << b.error().message;
  EXPECT_EQ(a.value().patterns.scan_loops, 1u);
  EXPECT_EQ(b.value().patterns.scan_loops, 0u);
  // Both predict, but through different cost paths.
  EXPECT_GT(a.value().prediction.mean_latency_cycles, 0.0);
  EXPECT_GT(b.value().prediction.mean_latency_cycles, 0.0);
}

TEST(Analyzer, CacheModelAblation) {
  // Disabling the EMEM cache model must increase predicted latency for a
  // cache-friendly EMEM workload (all accesses priced at full DRAM).
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  const auto trace = make_trace("flows=500 payload=300 pps=60000 packets=10000");
  AnalyzeOptions with_cache;
  AnalyzeOptions no_cache;
  no_cache.predict.model_emem_cache = false;
  const auto a = clara_tool.analyze(nf::build_nat_nf(), trace, with_cache);
  const auto b = clara_tool.analyze(nf::build_nat_nf(), trace, no_cache);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(b.value().prediction.mean_latency_cycles, a.value().prediction.mean_latency_cycles);
}

TEST(Analyzer, ThroughputEstimate) {
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  const auto trace = make_trace("payload=300 pps=60000 packets=5000");
  const auto analysis = clara_tool.analyze(nf::build_rewrite_nf(), trace);
  ASSERT_TRUE(analysis.ok());
  EXPECT_GT(analysis.value().prediction.throughput_pps, 60000.0);
  EXPECT_FALSE(analysis.value().prediction.bottleneck.empty());
}

TEST(Analyzer, FlowCacheHitRateEstimatedFromSkew) {
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  const auto skewed = make_trace("flows=50000 zipf=1.3 payload=300 pps=60000 packets=30000");
  const auto uniform = make_trace("flows=50000 zipf=0.0 payload=300 pps=60000 packets=30000");
  const auto hints_skewed = hints_from_trace(skewed, clara_tool.profile());
  const auto hints_uniform = hints_from_trace(uniform, clara_tool.profile());
  EXPECT_GT(hints_skewed.flow_cache_hit_rate, hints_uniform.flow_cache_hit_rate);
}

TEST(Analyzer, RateEstimatorPaysFpPenalty) {
  // The EWMA NF uses floating point; on the Netronome it is emulated, on
  // the ARM SoC it is native — relative cost should reflect that.
  const auto trace = make_trace("payload=300 pps=60000 packets=5000");
  Analyzer netronome(lnic::netronome_agilio_cx());
  Analyzer soc(lnic::soc_arm_nic());
  const auto on_npu = netronome.analyze(nf::build_rate_estimator_nf(), trace);
  const auto on_arm = soc.analyze(nf::build_rate_estimator_nf(), trace);
  ASSERT_TRUE(on_npu.ok()) << on_npu.error().message;
  ASSERT_TRUE(on_arm.ok()) << on_arm.error().message;
  // Compare cycles normalized by clock (latency in seconds).
  EXPECT_GT(on_npu.value().prediction.mean_latency_us, on_arm.value().prediction.mean_latency_us);
}

TEST(Analyzer, CrossNicComparison) {
  // The paper's "which SmartNIC model is best suited" use case: the two
  // backends should rank differently on different axes. For miss-heavy
  // large-table LPM, the SoC's software radix (flat cost curve, 2 GHz
  // cores) beats the Netronome's DRAM match-action walk on latency; the
  // Netronome's 224-way thread parallelism wins on throughput for the
  // same workload.
  const auto trace = make_trace("flows=30000 zipf=0.2 payload=300 pps=60000 packets=20000");
  const auto lpm = nf::build_lpm_nf({.rules = 20000, .use_flow_cache = true});
  Analyzer netronome(lnic::netronome_agilio_cx());
  Analyzer soc(lnic::soc_arm_nic());
  const auto a = netronome.analyze(lpm, trace);
  const auto b = soc.analyze(lpm, trace);
  ASSERT_TRUE(a.ok()) << a.error().message;
  ASSERT_TRUE(b.ok()) << b.error().message;
  EXPECT_GT(a.value().prediction.mean_latency_us, b.value().prediction.mean_latency_us);
  // Flow-cache-friendly traffic closes most of the latency gap.
  const auto skewed = make_trace("flows=2000 zipf=1.3 payload=300 pps=60000 packets=20000");
  const auto a2 = netronome.analyze(lpm, skewed);
  ASSERT_TRUE(a2.ok());
  EXPECT_LT(a2.value().prediction.mean_latency_us, a.value().prediction.mean_latency_us / 2.0);
}

TEST(Interference, SlicingDegradesPerformance) {
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  const auto trace = make_trace("flows=20000 payload=800 pps=200000 packets=20000");
  AnalyzeOptions solo;
  AnalyzeOptions shared;
  shared.predict.nic_share = 0.5;
  shared.predict.foreign_cache_pressure_bytes = 8.0 * 1024 * 1024;
  const auto a = clara_tool.analyze(nf::build_nat_nf(), trace, solo);
  const auto b = clara_tool.analyze(nf::build_nat_nf(), trace, shared);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(b.value().prediction.mean_latency_cycles, a.value().prediction.mean_latency_cycles);
  EXPECT_LT(b.value().prediction.emem_cache_hit_rate, a.value().prediction.emem_cache_hit_rate);
}

TEST(Interference, CoResidentAnalysis) {
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  const auto trace_a = make_trace("flows=20000 payload=300 pps=100000 packets=10000");
  const auto trace_b = make_trace("payload=1000 pps=100000 packets=10000 seed=9");
  const auto result =
      clara_tool.coresident(nf::build_nat_nf(), trace_a, nf::build_dpi_nf(), trace_b);
  ASSERT_TRUE(result.ok()) << result.error().message;
  // Both NFs see a half-NIC: their solo predictions should be no worse.
  const auto solo_a = clara_tool.analyze(nf::build_nat_nf(), trace_a);
  ASSERT_TRUE(solo_a.ok());
  EXPECT_GE(result.value().first.prediction.mean_latency_cycles,
            solo_a.value().prediction.mean_latency_cycles);
}

TEST(Analyzer, EmptyTraceRejected) {
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  workload::Trace empty;
  EXPECT_FALSE(clara_tool.analyze(nf::build_rewrite_nf(), empty).ok());
}

TEST(Analyzer, AllNfsAnalyzeOnNetronome) {
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  const auto trace = make_trace("payload=300 pps=60000 packets=3000");
  for (const auto& fn :
       {nf::build_lpm_nf(), nf::build_nat_nf(), nf::build_fw_nf(), nf::build_dpi_nf(), nf::build_hh_nf(),
        nf::build_meter_nf(), nf::build_flowstats_nf(), nf::build_rewrite_nf(), nf::build_vnf_chain(),
        nf::build_csum_loop_nf(), nf::build_rate_estimator_nf()}) {
    const auto analysis = clara_tool.analyze(fn, trace);
    EXPECT_TRUE(analysis.ok()) << fn.name << ": " << (analysis.ok() ? "" : analysis.error().message);
    if (analysis.ok()) {
      EXPECT_GT(analysis.value().prediction.mean_latency_cycles, 0.0) << fn.name;
      EXPECT_GT(analysis.value().prediction.throughput_pps, 0.0) << fn.name;
    }
  }
}

}  // namespace
}  // namespace clara::core
