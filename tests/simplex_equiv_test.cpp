// Engine-equivalence gate for the PR-8 performance work (ctest label
// `perf`): the revised simplex (sparse CSC + eta file, the default) and
// the dense tableau (the reference implementation it replaced on the hot
// path) must produce bit-identical Solutions — same objective, values,
// basis, and pivot trajectory — on the synthetic instance factories and
// on the mapping MILPs built from the NFs under examples/nfs/. Same for
// the simulator: the batched structure-of-arrays NicSim::run must match
// the scalar reference loop field for field on the accuracy ledger's
// validation matrix.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "frontend/p4lite.hpp"
#include "ilp/instances.hpp"
#include "ilp/simplex.hpp"
#include "ilp/solver.hpp"
#include "lnic/profiles.hpp"
#include "mapping/mapping.hpp"
#include "nf/nf_cir.hpp"
#include "nf/nf_ported.hpp"
#include "nicsim/sim.hpp"
#include "obs/accuracy.hpp"
#include "passes/api_subst.hpp"
#include "passes/dataflow.hpp"
#include "passes/patterns.hpp"
#include "workload/tracegen.hpp"

#ifndef CLARA_EXAMPLES_DIR
#define CLARA_EXAMPLES_DIR "examples"
#endif

namespace clara {
namespace {

// --- dense vs revised LP/MILP ------------------------------------------------

void expect_identical_solutions(const ilp::Solution& a, const ilp::Solution& b,
                                const std::string& label) {
  EXPECT_EQ(a.status, b.status) << label;
  EXPECT_EQ(a.objective, b.objective) << label;  // bit-exact, not approximate
  EXPECT_EQ(a.values, b.values) << label;
  EXPECT_EQ(a.basis, b.basis) << label;
  EXPECT_EQ(a.pivots, b.pivots) << label;
  EXPECT_EQ(a.nodes_explored, b.nodes_explored) << label;
}

ilp::Solution lp_with(const ilp::Model& model, ilp::LpAlgorithm algorithm) {
  ilp::LpOptions options;
  options.algorithm = algorithm;
  return ilp::solve_lp(model, options);
}

TEST(SimplexEquiv, LpBitIdenticalAcrossInstanceFactories) {
  struct Case {
    std::string name;
    ilp::Model model;
  };
  std::vector<Case> cases;
  cases.push_back({"market_split(20,3)", ilp::make_market_split(20, 3)});
  cases.push_back({"market_split(30,6)", ilp::make_market_split(30, 6)});
  cases.push_back({"knapsack(40,5)", ilp::make_knapsack(40, 5)});
  cases.push_back({"knapsack(60,8)", ilp::make_knapsack(60, 8)});
  cases.push_back({"assignment(12)", ilp::make_assignment(12)});
  cases.push_back({"assignment(16)", ilp::make_assignment(16)});
  for (const auto& c : cases) {
    const auto revised = lp_with(c.model, ilp::LpAlgorithm::kRevised);
    const auto dense = lp_with(c.model, ilp::LpAlgorithm::kDense);
    EXPECT_EQ(revised.status, ilp::SolveStatus::kOptimal) << c.name;
    expect_identical_solutions(revised, dense, c.name);
  }
}

TEST(SimplexEquiv, MilpBitIdenticalAcrossEngines) {
  struct Case {
    std::string name;
    ilp::Model model;
  };
  std::vector<Case> cases;
  cases.push_back({"market_split(10,3)", ilp::make_market_split(10, 3)});
  cases.push_back({"knapsack(20,3)", ilp::make_knapsack(20, 3)});
  cases.push_back({"assignment(8)", ilp::make_assignment(8)});
  for (const auto& c : cases) {
    ilp::SolveOptions options;
    options.max_nodes = 5'000;
    options.algorithm = ilp::LpAlgorithm::kRevised;
    const auto revised = ilp::solve_milp(c.model, options);
    options.algorithm = ilp::LpAlgorithm::kDense;
    const auto dense = ilp::solve_milp(c.model, options);
    expect_identical_solutions(revised, dense, c.name);
  }
}

TEST(SimplexEquiv, WarmStartBitIdenticalAcrossEngines) {
  // A warm re-solve from a recorded basis exercises the install +
  // dual-repair path; both engines must walk the identical trajectory.
  const auto model = ilp::make_market_split(30, 6);
  const auto cold = lp_with(model, ilp::LpAlgorithm::kRevised);
  ASSERT_EQ(cold.status, ilp::SolveStatus::kOptimal);
  ASSERT_FALSE(cold.basis.empty());
  ilp::LpOptions options;
  options.warm_basis = cold.basis;
  options.algorithm = ilp::LpAlgorithm::kRevised;
  const auto warm_revised = ilp::solve_lp(model, options);
  options.algorithm = ilp::LpAlgorithm::kDense;
  const auto warm_dense = ilp::solve_lp(model, options);
  expect_identical_solutions(warm_revised, warm_dense, "warm market_split(30,6)");
  EXPECT_EQ(warm_revised.objective, cold.objective);
}

// --- dense vs revised on the example mapping MILPs ---------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

mapping::Mapping map_example(const std::string& nf_file, ilp::LpAlgorithm algorithm) {
  auto compiled =
      frontend::compile_p4lite(read_file(std::string(CLARA_EXAMPLES_DIR) + "/nfs/" + nf_file));
  EXPECT_TRUE(compiled.ok()) << nf_file;
  cir::Function fn = std::move(compiled).value();
  passes::substitute_framework_apis(fn);
  passes::collapse_packet_loops(fn);
  const passes::CostHints hints;
  const auto graph = passes::DataflowGraph::build(fn, hints);
  const auto profile = lnic::netronome_agilio_cx();  // Mapper keeps a pointer
  const mapping::Mapper mapper(profile);
  mapping::MapOptions options;
  options.ilp_algorithm = algorithm;
  auto result = mapper.map(graph, hints, options);
  EXPECT_TRUE(result.ok()) << nf_file << ": " << result.error().message;
  return result.ok() ? std::move(result).value() : mapping::Mapping{};
}

TEST(SimplexEquiv, ExampleMappingsBitIdenticalAcrossEngines) {
  for (const char* nf : {"firewall.p4nf", "router.p4nf", "rate_limiter.p4nf"}) {
    const auto revised = map_example(nf, ilp::LpAlgorithm::kRevised);
    const auto dense = map_example(nf, ilp::LpAlgorithm::kDense);
    EXPECT_EQ(revised.node_pool, dense.node_pool) << nf;
    EXPECT_EQ(revised.state_region, dense.state_region) << nf;
    EXPECT_EQ(revised.objective, dense.objective) << nf;
    EXPECT_EQ(revised.status, dense.status) << nf;
    EXPECT_EQ(revised.ilp_nodes_explored, dense.ilp_nodes_explored) << nf;
    EXPECT_EQ(revised.ilp_pivots, dense.ilp_pivots) << nf;
    EXPECT_EQ(revised.ilp_basis, dense.ilp_basis) << nf;
  }
}

// --- SoA vs scalar simulator -------------------------------------------------

/// Instantiates the hand-ported program for a ledger scenario with fixed
/// placements (EMEM primary, IMEM secondary) — placement doesn't matter
/// for SoA-vs-scalar identity, only that both sims are configured the
/// same way.
std::unique_ptr<nicsim::NicProgram> make_scenario_program(const obs::ValidationScenario& s,
                                                          nicsim::NicSim& sim) {
  using nicsim::MemLevel;
  if (s.nf == "lpm") {
    auto& lpm = sim.create_lpm("routes", s.lpm_rules, s.lpm_flow_cache ? 4096 : 0);
    return std::make_unique<nf::LpmProgram>(lpm, s.lpm_flow_cache);
  }
  if (s.nf == "nat") {
    auto& table = sim.create_table("flow_table", 131072, 64, MemLevel::kEmem);
    return std::make_unique<nf::NatProgram>(table, true);
  }
  if (s.nf == "firewall") {
    auto& conn = sim.create_table("conn_table", 16384, 64, MemLevel::kEmem);
    auto& rules = sim.create_table("rules", 1024, 32, MemLevel::kImem);
    return std::make_unique<nf::FwProgram>(conn, rules);
  }
  if (s.nf == "dpi") return std::make_unique<nf::DpiProgram>();
  if (s.nf == "heavy-hitter") {
    auto& counters = sim.create_table("counters", 16384, 32, MemLevel::kEmem);
    return std::make_unique<nf::HhProgram>(counters);
  }
  if (s.nf == "meter") {
    auto& buckets = sim.create_table("buckets", 4096, 32, MemLevel::kEmem);
    return std::make_unique<nf::MeterProgram>(buckets);
  }
  if (s.nf == "flow-stats") {
    auto& stats = sim.create_table("flow_stats", 16384, 32, MemLevel::kEmem);
    return std::make_unique<nf::FlowStatsProgram>(stats);
  }
  if (s.nf == "rewrite") return std::make_unique<nf::RewriteProgram>();
  if (s.nf == "vnf-chain") {
    auto& meters = sim.create_table("meters", 4096, 32, MemLevel::kEmem);
    auto& stats = sim.create_table("flow_stats", 16384, 32, MemLevel::kImem);
    return std::make_unique<nf::VnfProgram>(meters, stats);
  }
  if (s.nf == "crypto-gw") {
    auto& sa = sim.create_table("sa_table", 4096, 64, MemLevel::kEmem);
    return std::make_unique<nf::CryptoGwProgram>(sa, true);
  }
  return nullptr;
}

void expect_identical_accumulators(const Accumulator& a, const Accumulator& b,
                                   const std::string& label) {
  EXPECT_EQ(a.count(), b.count()) << label;
  EXPECT_EQ(a.sum(), b.sum()) << label;
  EXPECT_EQ(a.mean(), b.mean()) << label;
  EXPECT_EQ(a.stddev(), b.stddev()) << label;
  EXPECT_EQ(a.min(), b.min()) << label;
  EXPECT_EQ(a.max(), b.max()) << label;
}

TEST(SoaEquiv, BatchedRunMatchesScalarOnLedgerScenarios) {
  const auto matrix = obs::AccuracyLedger::default_matrix();
  ASSERT_FALSE(matrix.empty());
  for (const auto& scenario : matrix) {
    const auto profile = workload::parse_profile(scenario.workload);
    ASSERT_TRUE(profile.ok()) << scenario.name();
    const auto trace = workload::generate_trace(profile.value());

    nicsim::NicSim soa_sim;
    nicsim::NicSim scalar_sim;
    auto soa_program = make_scenario_program(scenario, soa_sim);
    auto scalar_program = make_scenario_program(scenario, scalar_sim);
    ASSERT_NE(soa_program, nullptr) << scenario.name();
    ASSERT_NE(scalar_program, nullptr) << scenario.name();

    const auto batched = soa_sim.run(*soa_program, trace);
    const auto scalar = scalar_sim.run_scalar(*scalar_program, trace);
    const std::string label = scenario.name();

    EXPECT_EQ(batched.packets, scalar.packets) << label;
    EXPECT_EQ(batched.drops, scalar.drops) << label;
    EXPECT_EQ(batched.latency.samples(), scalar.latency.samples()) << label;
    expect_identical_accumulators(batched.tcp_latency, scalar.tcp_latency, label + "/tcp");
    expect_identical_accumulators(batched.udp_latency, scalar.udp_latency, label + "/udp");
    expect_identical_accumulators(batched.syn_latency, scalar.syn_latency, label + "/syn");
    expect_identical_accumulators(batched.queue_wait, scalar.queue_wait, label + "/queue_wait");
    EXPECT_EQ(batched.emem_cache_hit_rate, scalar.emem_cache_hit_rate) << label;
    EXPECT_EQ(batched.flow_cache_hit_rate, scalar.flow_cache_hit_rate) << label;
    EXPECT_EQ(batched.achieved_pps, scalar.achieved_pps) << label;
    EXPECT_EQ(batched.energy_nj_per_packet, scalar.energy_nj_per_packet) << label;
    EXPECT_EQ(batched.energy_watts, scalar.energy_watts) << label;
    EXPECT_EQ(batched.breakdown.packets(), scalar.breakdown.packets()) << label;
    for (std::size_t i = 0; i < obs::kComponentCount; ++i) {
      const auto c = static_cast<obs::Component>(i);
      expect_identical_accumulators(batched.breakdown.component(c),
                                    scalar.breakdown.component(c),
                                    label + "/" + obs::component_name(c));
    }
  }
}

TEST(SoaEquiv, BatchedRunMatchesScalarAcrossRepeatedRunsOnOneSim) {
  // Counters, caches and thread timelines accumulate across runs on the
  // same instance; the batched loop must track the scalar loop through
  // that carried state, not just from a cold start.
  const auto profile =
      workload::parse_profile("tcp=0.8 flows=2000 payload=300 pps=80000 packets=5000");
  ASSERT_TRUE(profile.ok());
  const auto trace = workload::generate_trace(profile.value());

  nicsim::NicSim soa_sim;
  nicsim::NicSim scalar_sim;
  auto& soa_table = soa_sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
  auto& scalar_table = scalar_sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
  nf::NatProgram soa_program(soa_table, true);
  nf::NatProgram scalar_program(scalar_table, true);

  for (int round = 0; round < 3; ++round) {
    const auto batched = soa_sim.run(soa_program, trace);
    const auto scalar = scalar_sim.run_scalar(scalar_program, trace);
    const std::string label = "round " + std::to_string(round);
    EXPECT_EQ(batched.packets, scalar.packets) << label;
    EXPECT_EQ(batched.drops, scalar.drops) << label;
    EXPECT_EQ(batched.latency.samples(), scalar.latency.samples()) << label;
    EXPECT_EQ(batched.emem_cache_hit_rate, scalar.emem_cache_hit_rate) << label;
    EXPECT_EQ(batched.flow_cache_hit_rate, scalar.flow_cache_hit_rate) << label;
    EXPECT_EQ(batched.energy_nj_per_packet, scalar.energy_nj_per_packet) << label;
  }
}

}  // namespace
}  // namespace clara
