// Tests for NF chain composition.
#include <gtest/gtest.h>

#include "cir/builder.hpp"
#include "cir/interp.hpp"
#include "cir/verify.hpp"
#include "core/clara.hpp"
#include "nf/compose.hpp"
#include "nf/nf_cir.hpp"
#include "passes/api_subst.hpp"
#include "workload/tracegen.hpp"

namespace clara::nf {
namespace {

cir::Function lowered(cir::Function fn) {
  passes::substitute_framework_apis(fn);
  return fn;
}

class ChainHandler final : public cir::VCallHandler {
 public:
  std::uint64_t handle(cir::VCall v, std::span<const std::uint64_t> args) override {
    order.push_back(v);
    switch (v) {
      case cir::VCall::kGetHdr:
        return static_cast<cir::HdrField>(args[0]) == cir::HdrField::kPayloadLen ? 200 : 0x42;
      case cir::VCall::kTableLookup: return 1;
      case cir::VCall::kMeter: return meter_ok ? 1 : 0;
      case cir::VCall::kEmit: ++emits; return 0;
      case cir::VCall::kDrop: ++drops; return 0;
      default: return 0;
    }
  }
  std::vector<cir::VCall> order;
  int emits = 0;
  int drops = 0;
  bool meter_ok = true;
};

TEST(Compose, TwoStageChainVerifiesAndFlows) {
  const auto chain = compose_chain("meter_then_stats", {lowered(build_meter_nf()), lowered(build_flowstats_nf())});
  ASSERT_TRUE(chain.ok()) << chain.error().message;
  const auto& fn = chain.value();
  EXPECT_EQ(fn.state_objects.size(), 2u);
  EXPECT_EQ(fn.state_objects[0].name, "meter.buckets");
  EXPECT_EQ(fn.state_objects[1].name, "flow_stats.stats");

  ChainHandler handler;
  cir::Interpreter interp(fn, handler);
  ASSERT_TRUE(interp.run().ok());
  // Conforming packet: exactly one emit, at the end of stage 2; both
  // stages' vcalls observed in order.
  EXPECT_EQ(handler.emits, 1);
  EXPECT_EQ(handler.drops, 0);
  bool saw_meter_before_stats = false;
  std::size_t meter_at = 0, stats_at = 0;
  for (std::size_t i = 0; i < handler.order.size(); ++i) {
    if (handler.order[i] == cir::VCall::kMeter) meter_at = i;
    if (handler.order[i] == cir::VCall::kStatsUpdate && stats_at == 0) stats_at = i;
  }
  saw_meter_before_stats = meter_at < stats_at && stats_at > 0;
  EXPECT_TRUE(saw_meter_before_stats);
}

TEST(Compose, DropTerminatesChain) {
  const auto chain = compose_chain("meter_then_stats", {lowered(build_meter_nf()), lowered(build_flowstats_nf())});
  ASSERT_TRUE(chain.ok());
  ChainHandler handler;
  handler.meter_ok = false;  // stage 1 drops
  cir::Interpreter interp(chain.value(), handler);
  ASSERT_TRUE(interp.run().ok());
  EXPECT_EQ(handler.drops, 1);
  EXPECT_EQ(handler.emits, 0);
  // Stage 2 never ran.
  for (const auto v : handler.order) EXPECT_NE(v, cir::VCall::kStatsUpdate);
}

TEST(Compose, ThreeStageChainAnalyzes) {
  const auto chain = compose_chain(
      "fw_meter_stats",
      {lowered(build_fw_nf({.conn_entries = 4096, .conn_entry_bytes = 32, .rules = 256})),
       lowered(build_meter_nf()), lowered(build_flowstats_nf())});
  ASSERT_TRUE(chain.ok()) << chain.error().message;

  core::Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto trace = workload::generate_trace(
      workload::parse_profile("tcp=1.0 flows=2000 payload=300 pps=60000 packets=10000").value());
  const auto analysis = analyzer.analyze(chain.value(), trace);
  ASSERT_TRUE(analysis.ok()) << analysis.error().message;
  EXPECT_GT(analysis.value().prediction.mean_latency_cycles, 0.0);

  // The chain costs more than any single stage and less than the sum of
  // all stages' full datapath costs (shared ingress/egress).
  const auto solo = analyzer.analyze(lowered(build_meter_nf()), trace);
  ASSERT_TRUE(solo.ok());
  EXPECT_GT(analysis.value().prediction.mean_latency_cycles, solo.value().prediction.mean_latency_cycles);
}

TEST(Compose, ChainMatchesHandBuiltVnfShape) {
  // dpi -> meter -> flow_stats composed should predict in the same
  // ballpark as the hand-built VNF chain (which fuses the same stages,
  // minus the composed chain's extra parses).
  core::Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto trace = workload::generate_trace(
      workload::parse_profile("tcp=0.8 flows=4000 payload=700 pps=60000 packets=10000").value());
  const auto chain =
      compose_chain("composed_vnf", {lowered(build_dpi_nf()), lowered(build_meter_nf()),
                                     lowered(build_flowstats_nf())});
  ASSERT_TRUE(chain.ok()) << chain.error().message;
  const auto composed = analyzer.analyze(chain.value(), trace);
  ASSERT_TRUE(composed.ok()) << composed.error().message;
  const auto handbuilt = analyzer.analyze(build_vnf_chain(), trace);
  ASSERT_TRUE(handbuilt.ok());
  const double ratio = composed.value().prediction.mean_latency_cycles /
                       handbuilt.value().prediction.mean_latency_cycles;
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.6);
}

TEST(Compose, RejectsEmptyAndNonEmittingStages) {
  EXPECT_FALSE(compose_chain("empty", {}).ok());
  // A stage that always drops feeds nothing onward.
  cir::FunctionBuilder b("blackhole");
  b.set_insert_point(b.create_block("entry"));
  b.vcall(cir::VCall::kDrop, {}, false);
  b.ret();
  const auto result = compose_chain("dead", {b.take(), lowered(build_meter_nf())});
  EXPECT_FALSE(result.ok());
}

TEST(Compose, SingleStageIsIdentityModuloNames) {
  const auto chain = compose_chain("solo", {lowered(build_rewrite_nf())});
  ASSERT_TRUE(chain.ok());
  ChainHandler handler;
  cir::Interpreter interp(chain.value(), handler);
  ASSERT_TRUE(interp.run().ok());
  EXPECT_EQ(handler.emits, 1);
}

}  // namespace
}  // namespace clara::nf
