// Cache subsystem tests (ctest label `cache`): hit/miss/eviction
// accounting of the content-addressed analysis cache, bit-identical
// results cache-on vs cache-off at every jobs level, deterministic
// deadline degradation, and cache-key sensitivity to every Π/Γ/Θ and
// option input.
#include <gtest/gtest.h>

#include <memory>

#include "cir/builder.hpp"
#include "cir/hash.hpp"
#include "common/parallel.hpp"
#include "core/cache.hpp"
#include "core/clara.hpp"
#include "lnic/params.hpp"
#include "lnic/profiles.hpp"
#include "nf/nf_cir.hpp"
#include "obs/metrics.hpp"
#include "workload/tracegen.hpp"

namespace clara::core {
namespace {

class JobsGuard {
 public:
  explicit JobsGuard(std::size_t n) : saved_(parallel::jobs()) { parallel::set_jobs(n); }
  ~JobsGuard() { parallel::set_jobs(saved_); }

 private:
  std::size_t saved_;
};

/// Clears and reconfigures the process-wide cache on entry and restores
/// the default configuration on exit, so tests don't see each other's
/// entries or counters.
class CacheGuard {
 public:
  explicit CacheGuard(CacheConfig config = {}) {
    analysis_cache().clear();
    analysis_cache().configure(config);
  }
  ~CacheGuard() {
    analysis_cache().clear();
    analysis_cache().configure(CacheConfig{});
  }
};

workload::Trace make_trace(const std::string& spec) {
  return workload::generate_trace(workload::parse_profile(spec).value());
}

void expect_same_analysis(const Analysis& a, const Analysis& b, const std::string& what) {
  EXPECT_EQ(a.mapping.node_pool, b.mapping.node_pool) << what;
  EXPECT_EQ(a.mapping.state_region, b.mapping.state_region) << what;
  EXPECT_EQ(a.mapping.objective, b.mapping.objective) << what;
  EXPECT_EQ(a.mapping.greedy, b.mapping.greedy) << what;
  EXPECT_EQ(a.degraded, b.degraded) << what;
  EXPECT_EQ(a.prediction.mean_latency_cycles, b.prediction.mean_latency_cycles) << what;
  EXPECT_EQ(a.prediction.worst_case_cycles, b.prediction.worst_case_cycles) << what;
  EXPECT_EQ(a.prediction.throughput_pps, b.prediction.throughput_pps) << what;
  EXPECT_EQ(a.prediction.bottleneck, b.prediction.bottleneck) << what;
  EXPECT_EQ(a.report, b.report) << what;
}

TEST(AnalysisCacheTest, RepeatedAnalyzeHitsEveryStage) {
  CacheGuard guard;
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  const auto trace = make_trace("tcp=0.8 flows=2000 payload=300 pps=60000 packets=2000");

  const auto cold = clara_tool.analyze(nf::build_nat_nf(), trace);
  ASSERT_TRUE(cold.ok()) << cold.error().message;
  auto stats = analysis_cache().stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 3u);  // lowered + graph + mapping
  EXPECT_GT(stats.bytes, 0u);

  const auto warm = clara_tool.analyze(nf::build_nat_nf(), trace);
  ASSERT_TRUE(warm.ok()) << warm.error().message;
  stats = analysis_cache().stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 3u);
  expect_same_analysis(cold.value(), warm.value(), "cold vs warm");
}

TEST(AnalysisCacheTest, WarmPassSkipsIlpSolves) {
  CacheGuard guard;
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  const auto trace = make_trace("tcp=0.8 flows=2000 payload=300 pps=60000 packets=2000");

  ASSERT_TRUE(clara_tool.analyze(nf::build_hh_nf(), trace).ok());
  auto& solves = obs::metrics().counter("ilp/solves");
  const std::uint64_t before = solves.value();
  ASSERT_TRUE(clara_tool.analyze(nf::build_hh_nf(), trace).ok());
  EXPECT_EQ(solves.value(), before) << "warm pass must not re-run the ILP";
  EXPECT_GT(analysis_cache().stats().hits, 0u);
}

TEST(AnalysisCacheTest, CacheOnOffBitIdenticalAcrossJobs) {
  const auto trace = make_trace("tcp=0.8 flows=2000 payload=300 pps=60000 packets=2000");
  AnalyzeOptions off;
  off.use_cache = false;

  // jobs=1, cache off: the reference result everything must equal.
  std::unique_ptr<Analysis> reference;
  {
    JobsGuard jobs(1);
    Analyzer clara_tool(lnic::netronome_agilio_cx());
    auto r = clara_tool.analyze(nf::build_nat_nf(), trace, off);
    ASSERT_TRUE(r.ok()) << r.error().message;
    reference = std::make_unique<Analysis>(std::move(r).value());
  }

  for (const std::size_t jobs_level : {1u, 2u, 8u}) {
    JobsGuard jobs(jobs_level);
    Analyzer clara_tool(lnic::netronome_agilio_cx());
    const std::string tag = "jobs=" + std::to_string(jobs_level);

    auto uncached = clara_tool.analyze(nf::build_nat_nf(), trace, off);
    ASSERT_TRUE(uncached.ok()) << tag;
    expect_same_analysis(*reference, uncached.value(), tag + " cache=off");

    CacheGuard guard;
    auto cold = clara_tool.analyze(nf::build_nat_nf(), trace);
    ASSERT_TRUE(cold.ok()) << tag;
    expect_same_analysis(*reference, cold.value(), tag + " cache=on cold");
    auto warm = clara_tool.analyze(nf::build_nat_nf(), trace);
    ASSERT_TRUE(warm.ok()) << tag;
    expect_same_analysis(*reference, warm.value(), tag + " cache=on warm");
    EXPECT_GE(analysis_cache().stats().hits, 3u) << tag;
  }
}

TEST(AnalysisCacheTest, DeadlineFallbackDeterministicAcrossJobs) {
  const auto trace = make_trace("tcp=0.8 flows=2000 payload=300 pps=60000 packets=2000");
  AnalyzeOptions options;
  options.use_cache = false;  // force a live solve at every jobs level
  options.map.time_budget_ms = 1e-6;

  auto& deadline_hits = obs::metrics().counter("ilp/deadline_hits");
  const std::uint64_t before = deadline_hits.value();

  std::unique_ptr<Analysis> reference;
  for (const std::size_t jobs_level : {1u, 2u, 8u}) {
    JobsGuard jobs(jobs_level);
    Analyzer clara_tool(lnic::netronome_agilio_cx());
    auto r = clara_tool.analyze(nf::build_nat_nf(), trace, options);
    ASSERT_TRUE(r.ok()) << "jobs=" << jobs_level << ": " << r.error().message;
    EXPECT_TRUE(r.value().degraded) << "jobs=" << jobs_level;
    EXPECT_TRUE(r.value().mapping.degraded) << "jobs=" << jobs_level;
    EXPECT_NE(r.value().report.find("time budget expired"), std::string::npos)
        << "jobs=" << jobs_level;
    if (!reference) {
      reference = std::make_unique<Analysis>(std::move(r).value());
    } else {
      expect_same_analysis(*reference, r.value(), "deadline jobs=" + std::to_string(jobs_level));
    }
  }
  EXPECT_GT(deadline_hits.value(), before);

  // The expired-budget fallback is the greedy baseline: same placement,
  // different provenance flags.
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  AnalyzeOptions greedy = options;
  greedy.map.time_budget_ms = 0.0;
  greedy.stages = PipelineStages::no_ilp();
  auto g = clara_tool.analyze(nf::build_nat_nf(), trace, greedy);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g.value().degraded);
  EXPECT_EQ(g.value().mapping.node_pool, reference->mapping.node_pool);
  EXPECT_EQ(g.value().mapping.state_region, reference->mapping.state_region);
}

TEST(AnalysisCacheTest, KeysSensitiveToEveryInput) {
  const mapping::MapOptions base;
  std::uint64_t family_base = 0;
  const std::uint64_t key_base = mapping_key(1, base, true, &family_base);

  mapping::MapOptions changed = base;
  changed.pps = base.pps + 1.0;
  std::uint64_t family_pps = 0;
  EXPECT_NE(mapping_key(1, changed, true, &family_pps), key_base);
  EXPECT_NE(family_pps, family_base);

  changed = base;
  changed.ctm_state_fraction = 0.5;
  EXPECT_NE(mapping_key(1, changed, true), key_base);

  changed = base;
  changed.max_ilp_nodes = base.max_ilp_nodes + 1;
  EXPECT_NE(mapping_key(1, changed, true), key_base);

  EXPECT_NE(mapping_key(1, base, false), key_base);  // ilp vs greedy
  EXPECT_NE(mapping_key(2, base, true), key_base);   // different graph

  // The time budget changes the key but *not* the warm-basis family.
  changed = base;
  changed.time_budget_ms = 50.0;
  std::uint64_t family_budget = 0;
  EXPECT_NE(mapping_key(1, changed, true, &family_budget), key_base);
  EXPECT_EQ(family_budget, family_base);

  EXPECT_NE(lowered_key(1, true, true), lowered_key(1, false, true));
  EXPECT_NE(lowered_key(1, true, true), lowered_key(1, true, false));
  EXPECT_NE(lowered_key(1, true, true), lowered_key(2, true, true));

  EXPECT_NE(graph_key(1, 2, 3), graph_key(4, 2, 3));
  EXPECT_NE(graph_key(1, 2, 3), graph_key(1, 4, 3));
  EXPECT_NE(graph_key(1, 2, 3), graph_key(1, 2, 4));
}

TEST(AnalysisCacheTest, ProfileParameterChangesDigest) {
  const auto base = lnic::netronome_agilio_cx();
  auto perturbed = lnic::netronome_agilio_cx();
  perturbed.params.set_scalar(lnic::keys::kCtmPacketResidency,
                              base.params.scalar(lnic::keys::kCtmPacketResidency) + 1.0);
  EXPECT_NE(hash_profile(base), hash_profile(perturbed));

  passes::CostHints hints_a;
  passes::CostHints hints_b;
  hints_b.avg_payload += 1.0;
  EXPECT_NE(hash_hints(hints_a), hash_hints(hints_b));
  hints_b = hints_a;
  hints_b.flow_cache_hit_rate *= 0.5;
  EXPECT_NE(hash_hints(hints_a), hash_hints(hints_b));
}

TEST(AnalysisCacheTest, ProfileChangeMissesMappingButReusesLowering) {
  CacheGuard guard;
  const auto trace = make_trace("tcp=0.8 flows=2000 payload=300 pps=60000 packets=2000");

  Analyzer first(lnic::netronome_agilio_cx());
  ASSERT_TRUE(first.analyze(nf::build_nat_nf(), trace).ok());

  auto profile = lnic::netronome_agilio_cx();
  profile.params.set_scalar(lnic::keys::kCtmPacketResidency,
                            profile.params.scalar(lnic::keys::kCtmPacketResidency) * 2.0);
  Analyzer second(profile);
  EXPECT_NE(first.profile_hash(), second.profile_hash());
  ASSERT_TRUE(second.analyze(nf::build_nat_nf(), trace).ok());

  // Lowering is profile-independent (1 hit); graph and mapping are keyed
  // on the profile digest (2 fresh misses on top of the cold pass's 3).
  const auto stats = analysis_cache().stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 5u);
}

TEST(AnalysisCacheTest, FunctionHashSensitiveToContent) {
  const auto build = [](std::int64_t imm) {
    cir::FunctionBuilder b("probe");
    b.set_insert_point(b.create_block("entry"));
    b.vcall(cir::VCall::kEmit, {cir::Value::of_imm(imm)}, false);
    b.ret();
    return b.take();
  };
  EXPECT_EQ(cir::hash_function(build(1)), cir::hash_function(build(1)));
  EXPECT_NE(cir::hash_function(build(1)), cir::hash_function(build(2)));
}

TEST(AnalysisCacheTest, ShardedLruEvictsLeastRecentlyUsed) {
  ShardedLru<int> lru;
  lru.set_capacity(8);  // one slot per shard
  std::uint64_t evicted = 0;
  std::uint64_t added = 0;
  // Keys 0, 8, 16 land in the same shard; each insert evicts its
  // predecessor once the shard is full.
  lru.insert(0, std::make_shared<const int>(10), 100, &evicted, &added);
  EXPECT_EQ(evicted, 0u);
  lru.insert(8, std::make_shared<const int>(11), 100, &evicted, &added);
  EXPECT_EQ(evicted, 1u);
  lru.insert(16, std::make_shared<const int>(12), 100, &evicted, &added);
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(lru.size(), 1u);
  EXPECT_EQ(lru.bytes(), 100u);
  EXPECT_EQ(lru.find(0), nullptr);
  EXPECT_EQ(lru.find(8), nullptr);
  ASSERT_NE(lru.find(16), nullptr);
  EXPECT_EQ(*lru.find(16), 12);
}

TEST(AnalysisCacheTest, EvictionCountersReachStats) {
  CacheGuard guard(CacheConfig{.enabled = true, .max_entries = 1});
  auto entry = [] {
    auto e = std::make_shared<LoweredEntry>();
    e->fn.name = "stub";
    return e;
  };
  // Same shard (keys ≡ 0 mod 8), capacity one: the second insert evicts.
  analysis_cache().insert_lowered(0, entry());
  analysis_cache().insert_lowered(8, entry());
  const auto stats = analysis_cache().stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(AnalysisCacheTest, DisabledCacheBypassesLookups) {
  CacheGuard guard(CacheConfig{.enabled = false, .max_entries = 256});
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  const auto trace = make_trace("payload=300 pps=60000 packets=1000");
  ASSERT_TRUE(clara_tool.analyze(nf::build_nat_nf(), trace).ok());
  ASSERT_TRUE(clara_tool.analyze(nf::build_nat_nf(), trace).ok());
  const auto stats = analysis_cache().stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(AnalysisCacheTest, UnknownCallErrorCarriesTypedCode) {
  cir::FunctionBuilder b("weird");
  b.set_insert_point(b.create_block("entry"));
  b.call("proprietary_helper", {}, false);
  b.vcall(cir::VCall::kEmit, {cir::Value::of_imm(1)}, false);
  b.ret();
  const auto fn = b.take();

  CacheGuard guard;
  Analyzer clara_tool(lnic::netronome_agilio_cx());
  const auto trace = make_trace("packets=100 pps=60000");
  const auto r = clara_tool.analyze(fn, trace);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kUnknownCall);
  EXPECT_STREQ(to_string(r.error().code), "unknown-call");
}

}  // namespace
}  // namespace clara::core
