// Observability-layer tests: metrics registry under concurrency,
// histogram merging, tracer nesting + Chrome JSON export, logger
// thread-safety, and the breakdown invariant — the simulator's
// per-component attribution must sum to the measured per-packet latency
// (and the predictor's analytic attribution to its predicted mean).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "core/clara.hpp"
#include "nf/nf_cir.hpp"
#include "nf/nf_ported.hpp"
#include "nicsim/sim.hpp"
#include "obs/breakdown.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/tracegen.hpp"

namespace clara::obs {
namespace {

workload::Trace make_trace(const std::string& spec) {
  return workload::generate_trace(workload::parse_profile(spec).value());
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// Minimal structural JSON check: quotes escape correctly and brackets/
/// braces balance outside string literals. Catches the classic exporter
/// bugs (trailing commas aside) without a JSON dependency.
bool balanced_json(const std::string& s) {
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

// --- Metrics ---------------------------------------------------------------

TEST(Metrics, ConcurrentCounterIncrements) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      auto& c = registry.counter("test/hits", "worker=shared");
      for (int i = 0; i < kIncsPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("test/hits", "worker=shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIncsPerThread);
}

TEST(Metrics, LabelsDistinguishInstruments) {
  MetricsRegistry registry;
  registry.counter("pkts", "nf=nat").inc(3);
  registry.counter("pkts", "nf=lpm").inc(5);
  EXPECT_EQ(registry.counter("pkts", "nf=nat").value(), 3u);
  EXPECT_EQ(registry.counter("pkts", "nf=lpm").value(), 5u);
  const std::string text = registry.render_text();
  EXPECT_NE(text.find("pkts{nf=nat} 3"), std::string::npos);
  EXPECT_NE(text.find("pkts{nf=lpm} 5"), std::string::npos);
}

TEST(Metrics, GaugeSetAndConcurrentAdd) {
  MetricsRegistry registry;
  auto& g = registry.gauge("test/level");
  g.set(10.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 1000; ++i) g.add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), 10.0 + 4000.0);
}

TEST(Metrics, LatencyHistogramMerge) {
  LatencyHistogram a, b;
  for (int i = 1; i <= 100; ++i) a.observe(i);
  for (int i = 101; i <= 200; ++i) b.observe(i);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_DOUBLE_EQ(a.moments().mean(), 100.5);
  EXPECT_DOUBLE_EQ(a.moments().min(), 1.0);
  EXPECT_DOUBLE_EQ(a.moments().max(), 200.0);
  std::uint64_t bucket_sum = 0;
  for (const auto c : a.buckets()) bucket_sum += c;
  EXPECT_EQ(bucket_sum, 200u);
  // Log-bucket quantiles are approximate; p50 must land within the
  // enclosing power-of-two bucket [64, 128).
  const double p50 = a.percentile(0.5);
  EXPECT_GE(p50, 64.0);
  EXPECT_LE(p50, 128.0);
}

TEST(Metrics, ConcurrentHistogramObserve) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry] {
      auto& h = registry.histogram("test/latency");
      for (int i = 0; i < 5000; ++i) h.observe(100.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.histogram("test/latency").count(), 20000u);
  EXPECT_DOUBLE_EQ(registry.histogram("test/latency").moments().mean(), 100.0);
}

TEST(Metrics, JsonExportIsBalanced) {
  MetricsRegistry registry;
  registry.counter("a/count", "k=v").inc(7);
  registry.gauge("b/load").set(0.5);
  registry.histogram("c/lat").observe(42.0);
  const std::string json = registry.to_json();
  EXPECT_TRUE(balanced_json(json)) << json;
  EXPECT_NE(json.find("a/count"), std::string::npos);
  EXPECT_NE(json.find("b/load"), std::string::npos);
  EXPECT_NE(json.find("c/lat"), std::string::npos);
}

// --- common/stats regression (satellite: percentile/histogram edges) -------

TEST(StatsEdges, PercentileClampsAndHandlesSmallSeries) {
  Series empty;
  EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);

  Series one;
  one.add(7.0);
  EXPECT_DOUBLE_EQ(one.percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(one.percentile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(one.percentile(1.0), 7.0);

  Series s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(-0.5), 1.0);   // clamped to min
  EXPECT_DOUBLE_EQ(s.percentile(1.5), 10.0);   // clamped to max
  EXPECT_DOUBLE_EQ(s.percentile(std::nan("")), 1.0);  // NaN treated as 0
}

TEST(StatsEdges, HistogramDegenerateLayouts) {
  Histogram zero_buckets(0.0, 10.0, 0);
  zero_buckets.add(5.0);
  EXPECT_EQ(zero_buckets.total(), 1u);

  Histogram inverted(10.0, 10.0, 4);  // hi <= lo collapses, must not divide by zero
  inverted.add(10.0);
  inverted.add(-1.0);
  EXPECT_EQ(inverted.total(), 2u);

  Histogram h(0.0, 10.0, 5);
  h.add(std::nan(""));
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.total(), 1u);
}

TEST(StatsEdges, HistogramMergeChecksLayout) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  a.add(1.0);
  b.add(2.0);
  b.add(-5.0);
  b.add(50.0);
  EXPECT_TRUE(a.merge(b));
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);

  Histogram other_layout(0.0, 20.0, 5);
  EXPECT_FALSE(a.merge(other_layout));
  EXPECT_EQ(a.total(), 4u);  // unchanged on rejected merge
}

// --- Tracer ----------------------------------------------------------------

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tracer().clear();
    tracer().set_enabled(true);
  }
  void TearDown() override {
    tracer().set_enabled(false);
    tracer().clear();
  }
};

TEST_F(TracerTest, ScopesNestAndContain) {
  {
    CLARA_TRACE_SCOPE("outer");
    {
      CLARA_TRACE_SCOPE("inner");
      { CLARA_TRACE_SCOPE("leaf"); }
    }
    { CLARA_TRACE_SCOPE("sibling"); }
  }
  const auto spans = tracer().snapshot();
  ASSERT_EQ(spans.size(), 4u);

  const auto find = [&](const std::string& name) {
    const auto it = std::find_if(spans.begin(), spans.end(),
                                 [&](const TraceSpan& s) { return s.name == name; });
    EXPECT_NE(it, spans.end()) << name;
    return *it;
  };
  const auto outer = find("outer");
  const auto inner = find("inner");
  const auto leaf = find("leaf");
  const auto sibling = find("sibling");

  EXPECT_EQ(outer.parent, TraceSpan::kNoParent);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(spans[inner.parent].name, "outer");
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(spans[leaf.parent].name, "inner");
  EXPECT_EQ(leaf.depth, 2u);
  EXPECT_EQ(spans[sibling.parent].name, "outer");

  // Temporal containment: children start no earlier and end no later.
  for (const auto& child : {inner, leaf, sibling}) {
    EXPECT_GE(child.start_ns, outer.start_ns);
    EXPECT_LE(child.start_ns + child.dur_ns, outer.start_ns + outer.dur_ns);
    EXPECT_GE(child.dur_ns, 0);
  }
}

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  tracer().set_enabled(false);
  { CLARA_TRACE_SCOPE("ignored"); }
  EXPECT_EQ(tracer().span_count(), 0u);
}

TEST_F(TracerTest, ChromeJsonRoundTrip) {
  {
    CLARA_TRACE_SCOPE("phase \"quoted\" \\ and nested");
    { CLARA_TRACE_SCOPE("child"); }
  }
  const std::string json = tracer().to_chrome_json();
  EXPECT_TRUE(balanced_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One complete ("X") event per recorded span, every one with a dur.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), tracer().span_count());
  EXPECT_EQ(count_occurrences(json, "\"dur\":"), tracer().span_count());
  // The quote and backslash in the name must be escaped.
  EXPECT_NE(json.find("phase \\\"quoted\\\" \\\\ and nested"), std::string::npos);
}

TEST_F(TracerTest, PipelinePhasesAppearInTrace) {
  const auto trace = make_trace("tcp=0.8 flows=500 payload=200 pps=60000 packets=2000");
  core::Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto analysis = analyzer.analyze(nf::build_nat_nf(), trace);
  ASSERT_TRUE(analysis.ok()) << analysis.error().message;

  nicsim::NicSim sim;
  auto& table = sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
  nf::NatProgram ported(table, true);
  (void)sim.run(ported, trace);

  const std::string json = tracer().to_chrome_json();
  EXPECT_TRUE(balanced_json(json));
  // Acceptance: nested spans for at least passes, ILP, mapping, nicsim.
  EXPECT_NE(json.find("passes/api_subst"), std::string::npos);
  EXPECT_NE(json.find("ilp/branch_and_bound"), std::string::npos);
  EXPECT_NE(json.find("mapping/map"), std::string::npos);
  EXPECT_NE(json.find("nicsim/run"), std::string::npos);
  // Nesting made it into the export: the ILP span belongs to mapping,
  // which belongs to the top-level analyze span.
  const auto spans = tracer().snapshot();
  const auto it = std::find_if(spans.begin(), spans.end(),
                               [](const TraceSpan& s) { return s.name == "ilp/branch_and_bound"; });
  ASSERT_NE(it, spans.end());
  EXPECT_GE(it->depth, 1u);

  const std::string flame = tracer().flame_summary();
  EXPECT_NE(flame.find("core/analyze"), std::string::npos);
}

TEST_F(TracerTest, ThreadsGetDistinctIds) {
  std::thread a([] { CLARA_TRACE_SCOPE("thread-a"); });
  std::thread b([] { CLARA_TRACE_SCOPE("thread-b"); });
  a.join();
  b.join();
  const auto spans = tracer().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].tid, spans[1].tid);
  EXPECT_EQ(spans[0].parent, TraceSpan::kNoParent);
  EXPECT_EQ(spans[1].parent, TraceSpan::kNoParent);
}

// --- Breakdown -------------------------------------------------------------

TEST(Breakdown, SimulatedComponentsSumToLatency) {
  const auto trace = make_trace("tcp=0.8 flows=2000 payload=300 pps=60000 packets=10000");
  nicsim::NicSim sim;
  auto& table = sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
  nf::NatProgram ported(table, true);
  const auto stats = sim.run(ported, trace);

  ASSERT_GT(stats.packets, 0u);
  EXPECT_EQ(stats.breakdown.packets(), stats.packets);
  // The acceptance invariant: component means sum to the mean latency
  // within one cycle (in fact exactly, up to double rounding — every
  // timeline advance is charged to exactly one component).
  EXPECT_NEAR(stats.breakdown.mean_total_cycles(), stats.mean_latency(), 1.0);

  const auto means = stats.breakdown.means();
  EXPECT_GT(means.at(Component::kIngress), 0.0);
  EXPECT_GT(means.at(Component::kCompute), 0.0);
  EXPECT_GT(means.at(Component::kCsumAccel), 0.0);  // NAT uses the checksum unit
  EXPECT_GT(means.at(Component::kEmemCacheHit) + means.at(Component::kEmemCacheMiss), 0.0)
      << "EMEM-placed flow table must show cache traffic";

  const std::string table_txt = stats.breakdown.render();
  EXPECT_NE(table_txt.find("compute"), std::string::npos);
}

TEST(Breakdown, PredictedComponentsSumToMean) {
  const auto trace = make_trace("tcp=0.8 flows=2000 payload=300 pps=60000 packets=10000");
  core::Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto analysis = analyzer.analyze(nf::build_nat_nf(), trace);
  ASSERT_TRUE(analysis.ok()) << analysis.error().message;
  const auto& pred = analysis.value().prediction;

  EXPECT_GT(pred.mean_latency_cycles, 0.0);
  EXPECT_NEAR(pred.breakdown.total(), pred.mean_latency_cycles, 1.0);
  EXPECT_GT(pred.breakdown.at(Component::kIngress), 0.0);
  EXPECT_GT(pred.breakdown.at(Component::kCompute), 0.0);

  const std::string cmp = render_breakdown_comparison(pred.breakdown, pred.breakdown);
  EXPECT_NE(cmp.find("ingress"), std::string::npos);
  EXPECT_NE(cmp.find("queue-wait"), std::string::npos);
}

TEST(Breakdown, PacketBreakdownTotals) {
  PacketBreakdown pb;
  pb.add(Component::kIngress, 10);
  pb.add(Component::kCompute, 32);
  pb.add(Component::kEgress, 8);
  EXPECT_EQ(pb.total(), 50u);

  BreakdownReport report;
  report.add(pb);
  report.add(pb);
  EXPECT_EQ(report.packets(), 2u);
  EXPECT_DOUBLE_EQ(report.mean_total_cycles(), 50.0);
  EXPECT_DOUBLE_EQ(report.component(Component::kCompute).mean(), 32.0);
}

// --- ILP observability -----------------------------------------------------

TEST(IlpObservability, SolveStatsReachTheMapping) {
  const auto trace = make_trace("tcp=0.8 flows=1000 payload=300 pps=60000 packets=5000");
  core::Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto analysis = analyzer.analyze(nf::build_nat_nf(), trace);
  ASSERT_TRUE(analysis.ok()) << analysis.error().message;
  const auto& mapping = analysis.value().mapping;
  ASSERT_FALSE(mapping.greedy);
  EXPECT_GT(mapping.ilp_pivots, 0u);
  ASSERT_FALSE(mapping.ilp_incumbents.empty());
  // The incumbent trajectory only ever improves (minimization).
  for (std::size_t i = 1; i < mapping.ilp_incumbents.size(); ++i) {
    EXPECT_LT(mapping.ilp_incumbents[i].objective, mapping.ilp_incumbents[i - 1].objective);
  }
}

// --- Logger ----------------------------------------------------------------

TEST(Logger, ConcurrentSinkCallsDoNotInterleave) {
  std::mutex mu;
  std::vector<std::string> lines;
  set_log_sink([&](LogLevel, const std::string& msg) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(msg);
  });
  const LogLevel before = log_level();
  set_log_level(LogLevel::kInfo);

  constexpr int kThreads = 8;
  constexpr int kLines = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        CLARA_INFO << "worker " << t << " line " << i;
      }
    });
  }
  for (auto& t : threads) t.join();
  set_log_level(before);
  set_log_sink(nullptr);  // restore default stderr sink

  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads) * kLines);
  // Every line arrived whole: "worker <t> line <i>".
  for (const auto& line : lines) {
    EXPECT_EQ(line.rfind("worker ", 0), 0u) << line;
    EXPECT_NE(line.find(" line "), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace clara::obs
