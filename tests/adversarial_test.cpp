// Tests for adversarial workload synthesis.
#include <gtest/gtest.h>

#include "core/adversarial.hpp"
#include "nf/nf_cir.hpp"

namespace clara::core {
namespace {

workload::WorkloadProfile seed_profile() {
  return workload::parse_profile("tcp=0.8 flows=1000 payload=300 pps=60000 packets=5000").value();
}

TEST(Adversarial, NeverWorseThanSeed) {
  Analyzer analyzer(lnic::netronome_agilio_cx());
  AdversarialOptions options;
  options.max_evaluations = 60;
  for (auto builder : {+[] { return nf::build_nat_nf(); }, +[] { return nf::build_hh_nf(); }}) {
    const auto nf_fn = builder();
    const auto result = find_adversarial_workload(analyzer, nf_fn, seed_profile(), options);
    ASSERT_TRUE(result.ok()) << result.error().message;
    EXPECT_GE(result.value().worst_latency_cycles, result.value().seed_latency_cycles) << nf_fn.name;
    EXPECT_GT(result.value().evaluations, 1u);
  }
}

TEST(Adversarial, DpiWorstCaseIsBigPackets) {
  Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto result = find_adversarial_workload(analyzer, nf::build_dpi_nf(), seed_profile());
  ASSERT_TRUE(result.ok());
  // DPI cost is payload-dominated: the ascent must find the largest size.
  EXPECT_EQ(result.value().worst.payload_min, 1500);
  EXPECT_GT(result.value().worst_latency_cycles, 2.0 * result.value().seed_latency_cycles);
}

TEST(Adversarial, LpmWorstCaseDefeatsFlowCache) {
  Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto result = find_adversarial_workload(
      analyzer, nf::build_lpm_nf({.rules = 10000, .use_flow_cache = true}), seed_profile());
  ASSERT_TRUE(result.ok());
  const auto& worst = result.value().worst;
  // Cache-hostile traffic: many flows (beyond the 4096-entry flow cache)
  // with little skew.
  EXPECT_GT(worst.flows, 4096u);
  EXPECT_LT(worst.zipf_alpha, 1.0);
  EXPECT_GT(result.value().worst_latency_cycles, 5.0 * result.value().seed_latency_cycles);
}

TEST(Adversarial, TrajectoryIsMonotone) {
  Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto result = find_adversarial_workload(analyzer, nf::build_vnf_chain(), seed_profile());
  ASSERT_TRUE(result.ok());
  double prev = result.value().seed_latency_cycles;
  for (const auto& step : result.value().trajectory) {
    EXPECT_GT(step.latency_cycles, prev);
    prev = step.latency_cycles;
  }
}

TEST(Adversarial, RespectsEvaluationBudget) {
  Analyzer analyzer(lnic::netronome_agilio_cx());
  AdversarialOptions options;
  options.max_evaluations = 5;
  const auto result = find_adversarial_workload(analyzer, nf::build_rewrite_nf(), seed_profile(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().evaluations, 5u);
}

}  // namespace
}  // namespace clara::core
