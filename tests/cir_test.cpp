// Tests for the CIR: builder, verifier, printer/parser round trip,
// interpreter semantics.
#include <gtest/gtest.h>

#include "cir/builder.hpp"
#include "cir/interp.hpp"
#include "cir/printer.hpp"
#include "cir/verify.hpp"
#include "nf/nf_cir.hpp"

namespace clara::cir {
namespace {

/// Simple handler: get_hdr returns canned values, tables always hit.
class FixedHandler final : public VCallHandler {
 public:
  explicit FixedHandler(std::uint64_t payload = 300, std::uint64_t proto = 6) {
    fields_[static_cast<std::size_t>(HdrField::kPayloadLen)] = payload;
    fields_[static_cast<std::size_t>(HdrField::kProto)] = proto;
    fields_[static_cast<std::size_t>(HdrField::kFlowHash)] = 0xabcdef;
    fields_[static_cast<std::size_t>(HdrField::kTcpFlags)] = 1;
    fields_[static_cast<std::size_t>(HdrField::kDstPort)] = 80;
  }
  std::uint64_t handle(VCall v, std::span<const std::uint64_t> args) override {
    switch (v) {
      case VCall::kGetHdr: return fields_[args[0]];
      case VCall::kTableLookup: return table_hit ? 1 : 0;
      case VCall::kMeter: return 1;
      case VCall::kCsum: return 0x1234;
      default: return 0;
    }
  }
  bool table_hit = true;

 private:
  std::uint64_t fields_[kNumHdrFields] = {};
};

Function simple_fn() {
  FunctionBuilder b("simple");
  const auto entry = b.create_block("entry");
  b.set_insert_point(entry);
  const auto x = b.add(Value::of_imm(2), Value::of_imm(3));
  b.store_scratch(Value::of_imm(0), x);
  b.ret();
  return b.take();
}

TEST(Builder, ProducesVerifiableFunction) {
  const auto fn = simple_fn();
  EXPECT_TRUE(verify(fn).ok());
  EXPECT_EQ(fn.blocks.size(), 1u);
  EXPECT_EQ(fn.num_regs, 1u);
}

TEST(Builder, AllNfBuildersVerify) {
  for (const auto& fn :
       {nf::build_lpm_nf(), nf::build_nat_nf(), nf::build_fw_nf(), nf::build_dpi_nf(), nf::build_hh_nf(),
        nf::build_meter_nf(), nf::build_flowstats_nf(), nf::build_rewrite_nf(), nf::build_vnf_chain(),
        nf::build_csum_loop_nf(), nf::build_rate_estimator_nf()}) {
    const auto status = verify(fn);
    EXPECT_TRUE(status.ok()) << fn.name << ": " << (status.ok() ? "" : status.error().message);
  }
}

TEST(Builder, FindBlockAndState) {
  const auto fn = nf::build_nat_nf();
  EXPECT_NE(fn.find_block("entry"), ~0u);
  EXPECT_NE(fn.find_block("translate"), ~0u);
  EXPECT_EQ(fn.find_block("zzz"), ~0u);
  EXPECT_EQ(fn.find_state("flow_table"), 0u);
  EXPECT_EQ(fn.find_state("zzz"), ~0u);
}

TEST(Verifier, RejectsEmptyFunction) {
  Function fn;
  fn.name = "empty";
  EXPECT_FALSE(verify(fn).ok());
}

TEST(Verifier, RejectsMissingTerminator) {
  FunctionBuilder b("f");
  b.set_insert_point(b.create_block("entry"));
  b.add(Value::of_imm(1), Value::of_imm(2));
  const auto fn = b.take();  // no ret
  EXPECT_FALSE(verify(fn).ok());
}

TEST(Verifier, RejectsTerminatorMidBlock) {
  FunctionBuilder b("f");
  b.set_insert_point(b.create_block("entry"));
  b.ret();
  b.add(Value::of_imm(1), Value::of_imm(2));
  b.ret();
  EXPECT_FALSE(verify(b.take()).ok());
}

TEST(Verifier, RejectsUseBeforeDef) {
  FunctionBuilder b("f");
  const auto entry = b.create_block("entry");
  const auto next = b.create_block("next");
  b.set_insert_point(entry);
  b.br(next);
  b.set_insert_point(next);
  // Use register 5 that nothing defines.
  Function fn = b.take();
  Instr use;
  use.op = Opcode::kAdd;
  use.dst = 6;
  use.args = {Value::of_reg(5), Value::of_imm(1)};
  fn.blocks[1].instrs.insert(fn.blocks[1].instrs.begin(), use);
  Instr ret;
  ret.op = Opcode::kRet;
  fn.blocks[1].instrs.push_back(ret);
  fn.num_regs = 7;
  EXPECT_FALSE(verify(fn).ok());
}

TEST(Verifier, RejectsDoubleDefinition) {
  Function fn = simple_fn();
  // Duplicate the defining instruction.
  fn.blocks[0].instrs.insert(fn.blocks[0].instrs.begin(), fn.blocks[0].instrs[0]);
  EXPECT_FALSE(verify(fn).ok());
}

TEST(Verifier, RejectsDefOnOnlyOnePath) {
  // value defined in the 'then' arm only, used after the join.
  FunctionBuilder b("f");
  const auto entry = b.create_block("entry");
  const auto then_blk = b.create_block("then");
  const auto join = b.create_block("join");
  b.set_insert_point(entry);
  const auto cond = b.cmp_eq(Value::of_imm(1), Value::of_imm(1));
  b.cond_br(cond, then_blk, join);
  b.set_insert_point(then_blk);
  const auto v = b.add(Value::of_imm(1), Value::of_imm(2));
  b.br(join);
  b.set_insert_point(join);
  b.store_scratch(Value::of_imm(0), v);  // v not defined on the entry->join edge
  b.ret();
  EXPECT_FALSE(verify(b.take()).ok());
}

TEST(Verifier, AcceptsPhiMerge) {
  FunctionBuilder b("f");
  const auto entry = b.create_block("entry");
  const auto then_blk = b.create_block("then");
  const auto join = b.create_block("join");
  b.set_insert_point(entry);
  const auto cond = b.cmp_eq(Value::of_imm(1), Value::of_imm(1));
  b.cond_br(cond, then_blk, join);
  b.set_insert_point(then_blk);
  const auto v = b.add(Value::of_imm(1), Value::of_imm(2));
  b.br(join);
  b.set_insert_point(join);
  const auto merged = b.phi();
  b.add_incoming(merged, v, then_blk);
  b.add_incoming(merged, Value::of_imm(0), entry);
  b.store_scratch(Value::of_imm(0), merged);
  b.ret();
  EXPECT_TRUE(verify(b.take()).ok());
}

TEST(Verifier, RejectsPhiMissingPred) {
  FunctionBuilder b("f");
  const auto entry = b.create_block("entry");
  const auto then_blk = b.create_block("then");
  const auto join = b.create_block("join");
  b.set_insert_point(entry);
  const auto cond = b.cmp_eq(Value::of_imm(1), Value::of_imm(1));
  b.cond_br(cond, then_blk, join);
  b.set_insert_point(then_blk);
  b.br(join);
  b.set_insert_point(join);
  const auto merged = b.phi();
  b.add_incoming(merged, Value::of_imm(1), then_blk);  // entry edge missing
  b.store_scratch(Value::of_imm(0), merged);
  b.ret();
  EXPECT_FALSE(verify(b.take()).ok());
}

TEST(Verifier, RejectsBadStateIndex) {
  Function fn = simple_fn();
  Instr load;
  load.op = Opcode::kLoad;
  load.space = MemSpace::kState;
  load.state = 3;  // no states declared
  load.dst = 1;
  load.args = {Value::of_imm(0)};
  fn.blocks[0].instrs.insert(fn.blocks[0].instrs.begin(), load);
  fn.num_regs = 2;
  EXPECT_FALSE(verify(fn).ok());
}

TEST(Verifier, RejectsWrongVcallArity) {
  FunctionBuilder b("f");
  b.set_insert_point(b.create_block("entry"));
  b.call("vcall_csum", {}, true);  // csum needs 1 arg
  b.ret();
  EXPECT_FALSE(verify(b.take()).ok());
}

TEST(Verifier, RejectsVcallStateOutOfRange) {
  FunctionBuilder b("f");
  b.set_insert_point(b.create_block("entry"));
  b.call("vcall_table_lookup", {Value::of_imm(2), Value::of_imm(1)}, true);  // state 2 undeclared
  b.ret();
  EXPECT_FALSE(verify(b.take()).ok());
}

TEST(Verifier, RejectsValuedCallOnVoidVcall) {
  FunctionBuilder b("f");
  b.set_insert_point(b.create_block("entry"));
  b.call("vcall_drop", {}, true);  // drop produces no value
  b.ret();
  EXPECT_FALSE(verify(b.take()).ok());
}

TEST(Verifier, ModuleDuplicateFunctionNames) {
  Module mod;
  mod.name = "m";
  mod.functions.push_back(simple_fn());
  mod.functions.push_back(simple_fn());
  EXPECT_FALSE(verify(mod).ok());
}

TEST(VCalls, NameRoundTrip) {
  for (int i = 0; i <= static_cast<int>(VCall::kDrop); ++i) {
    const auto v = static_cast<VCall>(i);
    const auto parsed = parse_vcall(vcall_name(v));
    ASSERT_TRUE(parsed.has_value()) << vcall_name(v);
    EXPECT_EQ(*parsed, v);
  }
  EXPECT_FALSE(parse_vcall("vcall_bogus").has_value());
}

TEST(VCalls, HdrFieldRoundTrip) {
  for (std::uint8_t i = 0; i < kNumHdrFields; ++i) {
    const auto f = static_cast<HdrField>(i);
    EXPECT_EQ(parse_hdr_field(hdr_field_name(f)).value(), f);
  }
  EXPECT_FALSE(parse_hdr_field("bogus").has_value());
}

TEST(VCalls, FrameworkMapping) {
  EXPECT_EQ(framework_api_to_vcall("rte_hash_lookup").value(), VCall::kTableLookup);
  EXPECT_EQ(framework_api_to_vcall("bpf_map_update_elem").value(), VCall::kTableUpdate);
  EXPECT_EQ(framework_api_to_vcall("click_network_header").value(), VCall::kParse);
  EXPECT_FALSE(framework_api_to_vcall("memcpy").has_value());
}

// --- Printer / parser round trip ------------------------------------------

class RoundTripTest : public ::testing::TestWithParam<int> {
 protected:
  static Function nf_by_index(int i) {
    switch (i) {
      case 0: return nf::build_lpm_nf();
      case 1: return nf::build_nat_nf();
      case 2: return nf::build_fw_nf();
      case 3: return nf::build_dpi_nf();
      case 4: return nf::build_hh_nf();
      case 5: return nf::build_meter_nf();
      case 6: return nf::build_flowstats_nf();
      case 7: return nf::build_rewrite_nf();
      case 8: return nf::build_vnf_chain();
      case 9: return nf::build_csum_loop_nf();
      default: return nf::build_rate_estimator_nf();
    }
  }
};

TEST_P(RoundTripTest, PrintParsePrintIsStable) {
  Module mod;
  mod.name = "roundtrip";
  mod.functions.push_back(nf_by_index(GetParam()));
  const auto text1 = print_module(mod);
  const auto parsed = parse_module(text1);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message << "\n" << text1;
  EXPECT_TRUE(verify(parsed.value()).ok());
  const auto text2 = print_module(parsed.value());
  EXPECT_EQ(text1, text2);
}

INSTANTIATE_TEST_SUITE_P(AllNfs, RoundTripTest, ::testing::Range(0, 11));

TEST(Parser, RejectsMissingModuleHeader) {
  EXPECT_FALSE(parse_module("func f {\n block e:\n ret\n}\n").ok());
}

TEST(Parser, RejectsUnknownOpcode) {
  EXPECT_FALSE(parse_module("module m\nfunc f {\nblock e:\n%0 = frobnicate.i64 1, 2\nret\n}\n").ok());
}

TEST(Parser, RejectsUnknownBranchTarget) {
  EXPECT_FALSE(parse_module("module m\nfunc f {\nblock e:\nbr nowhere\n}\n").ok());
}

TEST(Parser, RejectsUnknownState) {
  EXPECT_FALSE(parse_module("module m\nfunc f {\nblock e:\n%0 = load.i64 state(nope)[0]\nret\n}\n").ok());
}

TEST(Parser, RejectsUnterminatedFunction) {
  EXPECT_FALSE(parse_module("module m\nfunc f {\nblock e:\nret\n").ok());
}

TEST(Parser, AcceptsComments) {
  const auto parsed = parse_module("module m\n; comment\nfunc f {\nblock e:\n  ; inner\n  ret\n}\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().functions.size(), 1u);
}

TEST(Parser, ParsesTripAnnotation) {
  const auto parsed = parse_module(
      "module m\nfunc f {\nblock e [trip=2*payload_len+3]:\nret\n}\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const auto& block = parsed.value().functions[0].blocks[0];
  EXPECT_TRUE(block.has_trip);
  EXPECT_DOUBLE_EQ(block.trip.scale, 2.0);
  EXPECT_EQ(block.trip.param, "payload_len");
  EXPECT_DOUBLE_EQ(block.trip.bias, 3.0);
}

// --- Interpreter ------------------------------------------------------------

TEST(Interp, ArithmeticAndControl) {
  FunctionBuilder b("f");
  const auto entry = b.create_block("entry");
  const auto yes = b.create_block("yes");
  const auto no = b.create_block("no");
  b.set_insert_point(entry);
  const auto v = b.mul(Value::of_imm(6), Value::of_imm(7));
  const auto cond = b.cmp_eq(v, Value::of_imm(42));
  b.cond_br(cond, yes, no);
  b.set_insert_point(yes);
  b.store_scratch(Value::of_imm(0), Value::of_imm(1));
  b.ret();
  b.set_insert_point(no);
  b.ret();
  const auto fn = b.take();

  FixedHandler handler;
  Interpreter interp(fn, handler);
  const auto result = interp.run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().block_counts[yes], 1u);
  EXPECT_EQ(result.value().block_counts[no], 0u);
}

TEST(Interp, TypeMasking) {
  FunctionBuilder b("f");
  b.set_insert_point(b.create_block("entry"));
  const auto v = b.add(Value::of_imm(255), Value::of_imm(1), Type::kI8);  // wraps to 0
  const auto cond = b.cmp_eq(v, Value::of_imm(0));
  const auto out = b.select(cond, Value::of_imm(1), Value::of_imm(2));
  b.store_scratch(Value::of_imm(0), out);
  b.ret();
  const auto fn = b.take();
  FixedHandler handler;
  Interpreter interp(fn, handler);
  EXPECT_TRUE(interp.run().ok());
}

TEST(Interp, DivisionByZeroFails) {
  FunctionBuilder b("f");
  b.set_insert_point(b.create_block("entry"));
  b.div(Value::of_imm(1), Value::of_imm(0));
  b.ret();
  const auto fn = b.take();
  FixedHandler handler;
  Interpreter interp(fn, handler);
  EXPECT_FALSE(interp.run().ok());
}

TEST(Interp, LoopExecutesTripTimes) {
  // The DPI scan loop should run payload_len times.
  const auto fn = nf::build_dpi_nf();
  FixedHandler handler(/*payload=*/123);
  Interpreter interp(fn, handler);
  const auto result = interp.run();
  ASSERT_TRUE(result.ok()) << result.error().message;
  const auto loop = fn.find_block("scan_loop");
  EXPECT_EQ(result.value().block_counts[loop], 123u);
}

TEST(Interp, StepLimitTriggers) {
  const auto fn = nf::build_dpi_nf();
  FixedHandler handler(/*payload=*/10000);
  Interpreter interp(fn, handler);
  EXPECT_FALSE(interp.run(/*max_steps=*/100).ok());
}

TEST(Interp, RecordsVcallEventsWithArgs) {
  const auto fn = nf::build_lpm_nf({.rules = 5000, .use_flow_cache = true});
  // LPM uses framework names; substitute first via raw interpretation
  // failure check.
  FixedHandler handler;
  Interpreter interp(fn, handler);
  EXPECT_FALSE(interp.run().ok());  // unsubstituted rte_* calls are an error
}

TEST(Interp, ScratchMemoryPersists) {
  FunctionBuilder b("f");
  const auto entry = b.create_block("entry");
  const auto yes = b.create_block("yes");
  const auto no = b.create_block("no");
  b.set_insert_point(entry);
  b.store_scratch(Value::of_imm(4), Value::of_imm(99));
  const auto back = b.load_scratch(Value::of_imm(4));
  const auto cond = b.cmp_eq(back, Value::of_imm(99));
  b.cond_br(cond, yes, no);
  b.set_insert_point(yes);
  b.ret();
  b.set_insert_point(no);
  b.ret();
  const auto fn = b.take();
  FixedHandler handler;
  Interpreter interp(fn, handler);
  const auto result = interp.run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().block_counts[yes], 1u);
}

TEST(Interp, StateMemoryDefaultsToZero) {
  FunctionBuilder b("f");
  const auto state = b.add_state(StateObject{"s", 8, 16, StatePattern::kArray});
  const auto entry = b.create_block("entry");
  const auto yes = b.create_block("yes");
  const auto no = b.create_block("no");
  b.set_insert_point(entry);
  const auto v = b.load_state(state, Value::of_imm(3));
  const auto cond = b.cmp_eq(v, Value::of_imm(0));
  b.cond_br(cond, yes, no);
  b.set_insert_point(yes);
  b.ret();
  b.set_insert_point(no);
  b.ret();
  const auto fn = b.take();
  FixedHandler handler;
  Interpreter interp(fn, handler);
  const auto result = interp.run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().block_counts[yes], 1u);
}

TEST(SymExprTest, Evaluation) {
  const auto c = SymExpr::constant(5.0);
  EXPECT_TRUE(c.is_constant());
  EXPECT_DOUBLE_EQ(c.eval(123.0), 5.0);
  const auto e = SymExpr::of_param("len", 2.0, 1.0);
  EXPECT_FALSE(e.is_constant());
  EXPECT_DOUBLE_EQ(e.eval(10.0), 21.0);
}

}  // namespace
}  // namespace clara::cir
