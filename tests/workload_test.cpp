// Tests for workload profiles, trace generation, and trace I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <unordered_map>

#include "workload/profile.hpp"
#include "workload/trace_io.hpp"
#include "workload/tracegen.hpp"

namespace clara::workload {
namespace {

TEST(Profile, ParseDefaults) {
  const auto p = parse_profile("");
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p.value().tcp_fraction, 0.8);
  EXPECT_EQ(p.value().flows, 10000u);
}

TEST(Profile, ParseFullSpec) {
  const auto p = parse_profile("tcp=0.6 flows=500 zipf=1.2 payload=200:1400 pps=30000 packets=5000 arrivals=poisson seed=7");
  ASSERT_TRUE(p.ok()) << p.error().message;
  const auto& v = p.value();
  EXPECT_DOUBLE_EQ(v.tcp_fraction, 0.6);
  EXPECT_EQ(v.flows, 500u);
  EXPECT_DOUBLE_EQ(v.zipf_alpha, 1.2);
  EXPECT_EQ(v.payload_min, 200);
  EXPECT_EQ(v.payload_max, 1400);
  EXPECT_DOUBLE_EQ(v.pps, 30000.0);
  EXPECT_EQ(v.packets, 5000u);
  EXPECT_EQ(v.arrivals, ArrivalProcess::kPoisson);
  EXPECT_EQ(v.seed, 7u);
}

TEST(Profile, SerializeRoundTrip) {
  auto p = parse_profile("tcp=0.5 flows=100 payload=64:1500 pps=1000 packets=42").value();
  const auto p2 = parse_profile(p.serialize());
  ASSERT_TRUE(p2.ok()) << p2.error().message;
  EXPECT_DOUBLE_EQ(p2.value().tcp_fraction, p.tcp_fraction);
  EXPECT_EQ(p2.value().payload_max, p.payload_max);
  EXPECT_EQ(p2.value().packets, p.packets);
}

TEST(Profile, RejectsBadInput) {
  EXPECT_FALSE(parse_profile("tcp=1.5").ok());
  EXPECT_FALSE(parse_profile("flows=0").ok());
  EXPECT_FALSE(parse_profile("flows=-3").ok());
  EXPECT_FALSE(parse_profile("payload=1400:200").ok());
  EXPECT_FALSE(parse_profile("pps=0").ok());
  EXPECT_FALSE(parse_profile("arrivals=sometimes").ok());
  EXPECT_FALSE(parse_profile("unknown_key=1").ok());
  EXPECT_FALSE(parse_profile("garbage").ok());
}

TEST(TraceGen, Deterministic) {
  const auto profile = parse_profile("packets=1000 seed=9").value();
  const auto a = generate_trace(profile);
  const auto b = generate_trace(profile);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.packets[i].flow_id, b.packets[i].flow_id);
    EXPECT_EQ(a.packets[i].arrival_ns, b.packets[i].arrival_ns);
  }
}

TEST(TraceGen, TcpFractionApproximatelyRespected) {
  const auto profile = parse_profile("tcp=0.7 packets=20000 flows=2000").value();
  const auto trace = generate_trace(profile);
  EXPECT_NEAR(trace.tcp_fraction(), 0.7, 0.05);
}

TEST(TraceGen, PayloadRangeRespected) {
  const auto profile = parse_profile("payload=100:200 packets=5000").value();
  const auto trace = generate_trace(profile);
  for (const auto& p : trace.packets) {
    EXPECT_GE(p.payload_len, 100);
    EXPECT_LE(p.payload_len, 200);
  }
  EXPECT_NEAR(trace.mean_payload(), 150.0, 5.0);
}

TEST(TraceGen, FixedPayload) {
  const auto profile = parse_profile("payload=300 packets=100").value();
  const auto trace = generate_trace(profile);
  for (const auto& p : trace.packets) EXPECT_EQ(p.payload_len, 300);
}

TEST(TraceGen, DeterministicArrivalSpacing) {
  const auto profile = parse_profile("pps=1000000 packets=100").value();  // 1000 ns apart
  const auto trace = generate_trace(profile);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_EQ(trace.packets[i].arrival_ns - trace.packets[i - 1].arrival_ns, 1000u);
  }
}

TEST(TraceGen, PoissonArrivalsMeanRate) {
  auto profile = parse_profile("pps=1000000 packets=50000 arrivals=poisson").value();
  const auto trace = generate_trace(profile);
  const double span_ns = static_cast<double>(trace.packets.back().arrival_ns);
  const double observed_pps = static_cast<double>(trace.size()) / (span_ns / 1e9);
  EXPECT_NEAR(observed_pps / 1e6, 1.0, 0.05);
}

TEST(TraceGen, FirstTcpPacketOfFlowIsSyn) {
  const auto profile = parse_profile("packets=5000 flows=500 tcp=1.0").value();
  const auto trace = generate_trace(profile);
  std::unordered_map<std::uint32_t, bool> seen;
  for (const auto& p : trace.packets) {
    if (!seen[p.flow_id]) {
      EXPECT_TRUE(p.is_syn()) << "first packet of flow " << p.flow_id;
      seen[p.flow_id] = true;
    } else {
      EXPECT_FALSE(p.is_syn());
    }
  }
}

TEST(TraceGen, ZipfSkewsFlowPopularity) {
  const auto skewed = generate_trace(parse_profile("packets=20000 flows=1000 zipf=1.3").value());
  std::unordered_map<std::uint32_t, std::uint64_t> counts;
  for (const auto& p : skewed.packets) ++counts[p.flow_id];
  // The most popular flow should hold far more than 1/1000 of traffic.
  std::uint64_t top = 0;
  for (const auto& [f, c] : counts) top = std::max(top, c);
  EXPECT_GT(static_cast<double>(top) / 20000.0, 0.05);
}

TEST(TraceGen, FlowInvariantsStable) {
  // All packets of a flow share the 5-tuple and protocol.
  const auto trace = generate_trace(parse_profile("packets=5000 flows=100").value());
  std::unordered_map<std::uint32_t, PacketMeta> first;
  for (const auto& p : trace.packets) {
    const auto it = first.find(p.flow_id);
    if (it == first.end()) {
      first[p.flow_id] = p;
    } else {
      EXPECT_EQ(p.src_ip, it->second.src_ip);
      EXPECT_EQ(p.dst_port, it->second.dst_port);
      EXPECT_EQ(p.proto, it->second.proto);
      EXPECT_EQ(p.flow_hash(), it->second.flow_hash());
    }
  }
}

TEST(PacketMetaTest, FrameLenByProto) {
  PacketMeta tcp;
  tcp.proto = 6;
  tcp.payload_len = 100;
  EXPECT_EQ(tcp.frame_len(), 154u);
  PacketMeta udp;
  udp.proto = 17;
  udp.payload_len = 100;
  EXPECT_EQ(udp.frame_len(), 142u);
}

TEST(PacketMetaTest, FlowHashDependsOnTuple) {
  PacketMeta a;
  a.src_ip = 1;
  PacketMeta b;
  b.src_ip = 2;
  EXPECT_NE(a.flow_hash(), b.flow_hash());
  PacketMeta c = a;
  EXPECT_EQ(a.flow_hash(), c.flow_hash());
}

TEST(TraceIo, RoundTrip) {
  const auto trace = generate_trace(parse_profile("packets=2000 payload=64:1500").value());
  const std::string path = "/tmp/clara_trace_test.cltr";
  ASSERT_TRUE(write_trace(trace, path).ok());
  const auto loaded = read_trace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  ASSERT_EQ(loaded.value().size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& a = trace.packets[i];
    const auto& b = loaded.value().packets[i];
    EXPECT_EQ(a.flow_id, b.flow_id);
    EXPECT_EQ(a.src_ip, b.src_ip);
    EXPECT_EQ(a.dst_ip, b.dst_ip);
    EXPECT_EQ(a.src_port, b.src_port);
    EXPECT_EQ(a.dst_port, b.dst_port);
    EXPECT_EQ(a.proto, b.proto);
    EXPECT_EQ(a.tcp_flags, b.tcp_flags);
    EXPECT_EQ(a.payload_len, b.payload_len);
    EXPECT_EQ(a.arrival_ns, b.arrival_ns);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMissingFile) {
  EXPECT_FALSE(read_trace("/tmp/definitely_missing_clara_trace.cltr").ok());
}

TEST(TraceIo, RejectsBadMagic) {
  const std::string path = "/tmp/clara_bad_magic.cltr";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("NOPE00000000000000", 1, 16, f);
  std::fclose(f);
  EXPECT_FALSE(read_trace(path).ok());
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsTruncatedRecords) {
  const auto trace = generate_trace(parse_profile("packets=10").value());
  const std::string path = "/tmp/clara_trunc.cltr";
  ASSERT_TRUE(write_trace(trace, path).ok());
  // Truncate mid-record.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 10), 0);
  EXPECT_FALSE(read_trace(path).ok());
  std::remove(path.c_str());
}

TEST(TraceStats, DistinctFlows) {
  const auto trace = generate_trace(parse_profile("packets=10000 flows=300 zipf=0.5").value());
  EXPECT_LE(trace.distinct_flows(), 300u);
  EXPECT_GT(trace.distinct_flows(), 250u);  // most flows appear
}

}  // namespace
}  // namespace clara::workload
