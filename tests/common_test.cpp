// Tests for the common substrate: RNG, Zipf sampling, statistics,
// strings, tables, Result.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace clara {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, UniformInclusiveRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values appear
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfSampler z(100, 1.1);
  double total = 0;
  for (std::size_t i = 0; i < z.size(); ++i) total += z.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, RankZeroMostPopular) {
  ZipfSampler z(1000, 1.0);
  for (std::size_t i = 1; i < 10; ++i) EXPECT_GT(z.pmf(0), z.pmf(i));
}

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfSampler z(50, 0.0);
  for (std::size_t i = 0; i < z.size(); ++i) EXPECT_NEAR(z.pmf(i), 1.0 / 50.0, 1e-9);
}

TEST(Zipf, SampleMatchesPmf) {
  Rng rng(3);
  ZipfSampler z(10, 1.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, z.pmf(i), 0.01) << "rank " << i;
  }
}

TEST(Zipf, SingleElement) {
  Rng rng(1);
  ZipfSampler z(1, 1.5);
  EXPECT_EQ(z.sample(rng), 0u);
  EXPECT_NEAR(z.pmf(0), 1.0, 1e-12);
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(Accumulator, MergeEqualsCombined) {
  Accumulator a, b, all;
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.next_double() * 100.0;
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(Series, Percentiles) {
  Series s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.99), 99.01, 0.2);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
}

TEST(Series, MeanAndEmpty) {
  Series s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(0.5), 0.0);
  s.add(2.0);
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(42.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
}

TEST(Histogram, RenderNonEmpty) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  h.add(1.5);
  const auto text = h.render(20);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(LinearFitTest, ExactLine) {
  std::vector<double> xs{1, 2, 3, 4}, ys{3, 5, 7, 9};  // y = 1 + 2x
  const auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(LinearFitTest, ConstantData) {
  std::vector<double> xs{1, 2, 3}, ys{4, 4, 4};
  const auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
}

TEST(LinearFitTest, DegenerateInputs) {
  EXPECT_EQ(linear_fit({}, {}).slope, 0.0);
  const auto fit = linear_fit({5.0}, {7.0});
  EXPECT_DOUBLE_EQ(fit.intercept, 7.0);
}

TEST(KneeTest, FindsKnee) {
  // Flat at 100, then doubles past index 4.
  std::vector<double> lat{100, 105, 110, 108, 150, 240, 500};
  EXPECT_EQ(find_knee(lat), 5u);
}

TEST(KneeTest, NoKnee) {
  std::vector<double> lat{100, 110, 120, 130};
  EXPECT_EQ(find_knee(lat), lat.size());
}

TEST(KneeTest, Empty) { EXPECT_EQ(find_knee({}), 0u); }

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-7").value(), -7);
  EXPECT_FALSE(parse_int("4x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("3.5").has_value());
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e3").value(), -1000.0);
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.2.3").has_value());
}

TEST(Strings, Strf) { EXPECT_EQ(strf("%d-%s", 3, "x"), "3-x"); }

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(4096), "4 KiB");
  EXPECT_EQ(format_bytes(3ULL << 20), "3 MiB");
  EXPECT_EQ(format_bytes(8ULL << 30), "8 GiB");
}

TEST(Strings, FormatCount) {
  EXPECT_EQ(format_count(7), "7");
  EXPECT_EQ(format_count(1234), "1,234");
  EXPECT_EQ(format_count(1234567), "1,234,567");
}

TEST(Table, RendersAligned) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "10000"});
  const auto text = t.render();
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(text.find("| b     | 10000 |"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(t.render().find("| x |"), std::string::npos);
}

TEST(ResultType, ValueAndError) {
  Result<int> ok(5);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  EXPECT_EQ(ok.value_or(9), 5);

  Result<int> bad = make_error("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "nope");
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(ResultType, VoidStatus) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  Status bad = make_error("x");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "x");
}

TEST(TypesTest, ByteLiterals) {
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(3_MiB, 3u * 1024 * 1024);
  EXPECT_EQ(1_GiB, 1024ull * 1024 * 1024);
}

}  // namespace
}  // namespace clara
