// Tests for the paper's §6 extension features: energy analysis, partial
// offloading, and symbolic path enumeration (§3.5 alternative).
#include <gtest/gtest.h>

#include "cir/builder.hpp"
#include "core/clara.hpp"
#include "core/energy.hpp"
#include "core/partial.hpp"
#include "nf/nf_cir.hpp"
#include "nf/nf_ported.hpp"
#include "nicsim/sim.hpp"
#include "passes/api_subst.hpp"
#include "passes/dataflow.hpp"
#include "passes/patterns.hpp"
#include "passes/symexec.hpp"
#include "workload/tracegen.hpp"

namespace clara {
namespace {

workload::Trace make_trace(const std::string& spec) {
  return workload::generate_trace(workload::parse_profile(spec).value());
}

/// Runs the pipeline far enough to get a graph + mapping for a fn.
struct Pipeline {
  cir::Function fn;
  lnic::NicProfile profile;
  passes::DataflowGraph graph;
  mapping::Mapper mapper;
  mapping::Mapping mapping;

  Pipeline(cir::Function raw, const workload::Trace& trace)
      : fn(std::move(raw)), profile(lnic::netronome_agilio_cx()), mapper(profile) {
    passes::substitute_framework_apis(fn);
    passes::collapse_packet_loops(fn);
    const auto hints = core::hints_from_trace(trace, profile);
    graph = passes::DataflowGraph::build(fn, hints);
    auto result = mapper.map(graph, hints, {.pps = trace.profile.pps});
    EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().message);
    mapping = std::move(result).value();
  }
};

// --- Energy -----------------------------------------------------------------

TEST(Energy, DefaultsFilled) {
  lnic::ParameterStore params;
  core::ensure_energy_defaults(params, "netronome-agilio-cx");
  EXPECT_TRUE(params.has(core::energy_keys::kNpuPerCycle));
  EXPECT_TRUE(params.has(core::energy_keys::kIdleWatts));
  // Profile-specific defaults differ.
  lnic::ParameterStore soc;
  core::ensure_energy_defaults(soc, "soc-arm");
  EXPECT_GT(soc.scalar(core::energy_keys::kNpuPerCycle), params.scalar(core::energy_keys::kNpuPerCycle));
}

TEST(Energy, DefaultsDoNotOverride) {
  lnic::ParameterStore params;
  params.set_scalar(core::energy_keys::kIdleWatts, 99.0);
  core::ensure_energy_defaults(params, "netronome-agilio-cx");
  EXPECT_DOUBLE_EQ(params.scalar(core::energy_keys::kIdleWatts), 99.0);
}

TEST(Energy, PredictionPositiveAndRateScaling) {
  const auto trace = make_trace("payload=300 pps=60000 packets=5000");
  Pipeline p(nf::build_nat_nf(), trace);
  const auto estimate = core::predict_energy(p.fn, p.graph, p.mapping, p.mapper, trace);
  EXPECT_GT(estimate.nj_per_packet, 0.0);
  EXPECT_GT(estimate.watts_at_rate, 14.0);  // at least idle power

  const auto fast_trace = make_trace("payload=300 pps=6000000 packets=5000");
  Pipeline p2(nf::build_nat_nf(), fast_trace);
  const auto fast = core::predict_energy(p2.fn, p2.graph, p2.mapping, p2.mapper, fast_trace);
  EXPECT_GT(fast.watts_at_rate, estimate.watts_at_rate);           // more dynamic power
  EXPECT_LT(fast.nj_per_packet_total, estimate.nj_per_packet_total);  // idle amortized
}

TEST(Energy, DpiCostsMoreThanRewrite) {
  const auto trace = make_trace("payload=1000 pps=60000 packets=5000");
  Pipeline dpi(nf::build_dpi_nf(), trace);
  Pipeline rewrite(nf::build_rewrite_nf(), trace);
  const auto e_dpi = core::predict_energy(dpi.fn, dpi.graph, dpi.mapping, dpi.mapper, trace);
  const auto e_rw = core::predict_energy(rewrite.fn, rewrite.graph, rewrite.mapping, rewrite.mapper, trace);
  EXPECT_GT(e_dpi.nj_per_packet, 2.0 * e_rw.nj_per_packet);
}

TEST(Energy, SimulatorMeasuresEnergy) {
  nicsim::NicSim sim;
  auto& table = sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
  nf::NatProgram program(table, true);
  const auto stats = sim.run(program, make_trace("payload=300 pps=60000 packets=5000"));
  EXPECT_GT(stats.energy_nj_per_packet, 0.0);
  EXPECT_GT(stats.energy_watts, 15.0);
  EXPECT_LT(stats.energy_watts, 60.0);
}

TEST(Energy, PredictionTracksSimulatorWithinFactor) {
  // Energy is a coarser model than latency; require factor-2 agreement.
  const auto trace = make_trace("tcp=0.8 flows=10000 payload=300 pps=60000 packets=10000");
  Pipeline p(nf::build_nat_nf(), trace);
  const auto predicted = core::predict_energy(p.fn, p.graph, p.mapping, p.mapper, trace);

  nicsim::NicSim sim;
  auto& table = sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
  nf::NatProgram program(table, true);
  const auto stats = sim.run(program, trace);

  EXPECT_GT(predicted.nj_per_packet, stats.energy_nj_per_packet / 2.0);
  EXPECT_LT(predicted.nj_per_packet, stats.energy_nj_per_packet * 2.0);
}

// --- Partial offloading -------------------------------------------------------

TEST(Partial, IncludesEndpointPlans) {
  const auto trace = make_trace("payload=300 pps=60000 packets=3000");
  Pipeline p(nf::build_nat_nf(), trace);
  const auto result = core::plan_partial_offload(p.fn, p.graph, p.mapping, p.mapper, trace);
  ASSERT_TRUE(result.ok()) << result.error().message;
  const auto& plans = result.value().plans;
  ASSERT_GE(plans.size(), 2u);
  EXPECT_EQ(plans.front().cut, 0u);                    // all host
  EXPECT_EQ(plans.back().cut, p.graph.size());         // full offload
  EXPECT_GT(plans.front().pcie_us, 0.0);               // host plan pays PCIe
  EXPECT_DOUBLE_EQ(plans.back().pcie_us, 0.0);         // full offload does not
}

TEST(Partial, BestIsMinimal) {
  const auto trace = make_trace("payload=600 pps=60000 packets=3000");
  Pipeline p(nf::build_vnf_chain(), trace);
  const auto result = core::plan_partial_offload(p.fn, p.graph, p.mapping, p.mapper, trace);
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  for (const auto& plan : r.plans) {
    EXPECT_GE(plan.total_us(), r.best_plan().total_us() - 1e-9);
  }
}

TEST(Partial, NicFilterPlusHostTailPrefersSplit) {
  // The classic partial-offload shape: a NIC-side filter drops half the
  // traffic (halving PCIe crossings), and the surviving packets get a
  // floating-point-heavy tail that is brutal on NPUs (30-cycle FP
  // emulation) but nearly free on a host core. With host cycles priced
  // as the scarce resource, the best plan cuts between filter and tail.
  cir::FunctionBuilder b("filter_then_fp");
  const auto table = b.add_state(cir::StateObject{"allowed", 32, 8192, cir::StatePattern::kHashTable});
  const auto entry = b.create_block("entry");
  const auto tail = b.create_block("fp_tail");
  const auto rejected = b.create_block("rejected");
  b.set_insert_point(entry);
  b.vcall(cir::VCall::kParse, {}, false);
  const auto hash = b.get_hdr(cir::HdrField::kFlowHash);
  const auto hit = b.vcall(cir::VCall::kTableLookup, {cir::Value::of_imm(table), hash});
  b.cond_br(hit, tail, rejected);
  b.set_insert_point(tail);
  cir::Value acc = cir::Value::of_imm(1);
  for (int i = 0; i < 300; ++i) acc = b.fmul(acc, cir::Value::of_imm(3));
  b.store_scratch(cir::Value::of_imm(0), acc);
  b.vcall(cir::VCall::kEmit, {cir::Value::of_imm(1)}, false);
  b.ret();
  b.set_insert_point(rejected);
  b.vcall(cir::VCall::kDrop, {}, false);
  b.ret();

  const auto trace = make_trace("payload=300 pps=60000 packets=3000");
  Pipeline p(b.take(), trace);
  core::HostModel host;
  host.host_core_weight = 20.0;  // host cores are the scarce resource
  const auto result = core::plan_partial_offload(p.fn, p.graph, p.mapping, p.mapper, trace, host);
  ASSERT_TRUE(result.ok());
  const auto& best = result.value().best_plan();
  EXPECT_GT(best.cut, 0u);                     // not pure-host
  EXPECT_LT(best.cut, p.graph.size());         // not full offload
  EXPECT_LT(best.crossing_fraction, 0.9);      // the filter pays off
}

TEST(Partial, DescribeListsAllPlans) {
  const auto trace = make_trace("payload=300 pps=60000 packets=3000");
  Pipeline p(nf::build_nat_nf(), trace);
  const auto result = core::plan_partial_offload(p.fn, p.graph, p.mapping, p.mapper, trace);
  ASSERT_TRUE(result.ok());
  const auto text = core::describe_partial(result.value(), p.graph);
  EXPECT_NE(text.find("full offload"), std::string::npos);
  EXPECT_NE(text.find("all host"), std::string::npos);
  EXPECT_NE(text.find("<== best"), std::string::npos);
}

// --- Symbolic path enumeration -------------------------------------------------

TEST(SymExec, NatHasHitAndMissPaths) {
  auto fn = nf::build_nat_nf();
  passes::substitute_framework_apis(fn);
  const auto paths = passes::enumerate_paths(fn);
  EXPECT_TRUE(paths.complete);
  ASSERT_EQ(paths.paths.size(), 2u);
  bool saw_hit = false, saw_miss = false;
  for (const auto& path : paths.paths) {
    const auto text = path.describe(fn);
    if (text.find("lookup(flow_table) hit") != std::string::npos &&
        text.find("!(") == std::string::npos) {
      saw_hit = true;
    }
    if (text.find("!(lookup(flow_table) hit)") != std::string::npos) saw_miss = true;
    EXPECT_EQ(path.exit, passes::NfPath::Exit::kEmit);
  }
  EXPECT_TRUE(saw_hit);
  EXPECT_TRUE(saw_miss);
}

TEST(SymExec, FirewallPathsNameTcpFlags) {
  auto fn = nf::build_fw_nf();
  passes::substitute_framework_apis(fn);
  const auto paths = passes::enumerate_paths(fn);
  EXPECT_TRUE(paths.complete);
  // established / non-SYN-drop / SYN+rule-accept / SYN+rule-reject.
  ASSERT_EQ(paths.paths.size(), 4u);
  int drops = 0, emits = 0;
  bool saw_flag_condition = false;
  for (const auto& path : paths.paths) {
    (path.exit == passes::NfPath::Exit::kDrop ? drops : emits)++;
    if (path.describe(fn).find("tcp_flags & 0x1") != std::string::npos) saw_flag_condition = true;
  }
  EXPECT_EQ(drops, 2);
  EXPECT_EQ(emits, 2);
  EXPECT_TRUE(saw_flag_condition);
}

TEST(SymExec, DpiLoopBounded) {
  auto fn = nf::build_dpi_nf();
  passes::substitute_framework_apis(fn);
  const auto paths = passes::enumerate_paths(fn);
  EXPECT_TRUE(paths.complete);
  EXPECT_GE(paths.paths.size(), 2u);   // empty payload vs scanned
  EXPECT_LE(paths.paths.size(), 8u);   // loop bounded, no explosion
  for (const auto& path : paths.paths) {
    EXPECT_LE(path.blocks.size(), 10u);
  }
}

TEST(SymExec, CollapsedDpiHasLinearPaths) {
  auto fn = nf::build_dpi_nf();
  passes::substitute_framework_apis(fn);
  passes::collapse_packet_loops(fn);
  const auto paths = passes::enumerate_paths(fn);
  EXPECT_TRUE(paths.complete);
  // payload>0 x (match/alarm vs pass) + empty-payload path.
  EXPECT_GE(paths.paths.size(), 3u);
}

TEST(SymExec, PathBudgetMarksIncomplete) {
  auto fn = nf::build_fw_nf();
  passes::substitute_framework_apis(fn);
  const auto paths = passes::enumerate_paths(fn, /*max_paths=*/1);
  EXPECT_FALSE(paths.complete);
  EXPECT_EQ(paths.paths.size(), 1u);
}

TEST(SymExec, RewriteSinglePath) {
  auto fn = nf::build_rewrite_nf();
  passes::substitute_framework_apis(fn);
  const auto paths = passes::enumerate_paths(fn);
  ASSERT_EQ(paths.paths.size(), 1u);
  EXPECT_EQ(paths.paths[0].describe(fn).find("(always)"), 0u);
}

TEST(SymExec, MeterConditionNamed) {
  auto fn = nf::build_meter_nf();
  passes::substitute_framework_apis(fn);
  const auto paths = passes::enumerate_paths(fn);
  ASSERT_EQ(paths.paths.size(), 2u);
  bool saw = false;
  for (const auto& path : paths.paths) {
    if (path.describe(fn).find("meter(buckets) conforming") != std::string::npos) saw = true;
  }
  EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace clara
