// Tests for the mapper: pool construction, feasibility, the ILP encoding
// (Π/Γ/Θ), the greedy baseline, and mapping shapes on the built-in
// profiles.
#include <gtest/gtest.h>

#include "cir/builder.hpp"
#include "mapping/mapping.hpp"
#include "nf/nf_cir.hpp"
#include "passes/api_subst.hpp"
#include "passes/patterns.hpp"

namespace clara::mapping {
namespace {

using passes::CostHints;
using passes::DataflowGraph;

cir::Function lowered(cir::Function fn, bool collapse = true) {
  passes::substitute_framework_apis(fn);
  if (collapse) passes::collapse_packet_loops(fn);
  return fn;
}

struct Prepared {
  cir::Function fn;
  DataflowGraph graph;
};

Prepared prepare(cir::Function raw, const CostHints& hints) {
  Prepared* p = new Prepared{lowered(std::move(raw)), DataflowGraph{}};
  p->graph = DataflowGraph::build(p->fn, hints);
  return *p;  // intentionally leaked per-test; keeps fn alive for graph
}

TEST(Pools, NetronomePools) {
  const auto profile = lnic::netronome_agilio_cx();
  const auto pools = build_pools(profile.graph);
  // parser, csum, crypto, lpm-engine, npu pool.
  EXPECT_EQ(pools.size(), 5u);
  double npu_parallelism = 0.0;
  for (const auto& pool : pools) {
    if (pool.kind == lnic::UnitKind::kNpuCore) {
      npu_parallelism = pool.parallelism;
      EXPECT_EQ(pool.members.size(), 28u);
    }
  }
  EXPECT_DOUBLE_EQ(npu_parallelism, 224.0);
}

TEST(Pools, AsicStagesStaySeparate) {
  const auto profile = lnic::pipeline_asic_nic();
  const auto pools = build_pools(profile.graph);
  int ma_pools = 0;
  for (const auto& pool : pools) {
    if (pool.kind == lnic::UnitKind::kHeaderEngine) ++ma_pools;
  }
  EXPECT_EQ(ma_pools, 4);  // four pipeline stages, distinct stage ids
}

TEST(Mapper, AccessCyclesUsesNumaAverage) {
  const auto profile = lnic::netronome_agilio_cx();
  const Mapper mapper(profile);
  const UnitPool* npu = nullptr;
  for (const auto& pool : mapper.pools()) {
    if (pool.kind == lnic::UnitKind::kNpuCore) npu = &pool;
  }
  ASSERT_NE(npu, nullptr);
  const auto ctm0 = profile.graph.find_by_name("ctm0").value();
  // 7 of 28 NPUs are local (weight 1), 21 remote (weight 2): avg 1.75.
  EXPECT_NEAR(mapper.access_cycles(*npu, ctm0), 50.0 * 1.75, 1e-9);
  const auto emem = profile.graph.find_by_name("emem").value();
  EXPECT_NEAR(mapper.access_cycles(*npu, emem), 500.0, 1e-9);
}

TEST(Mapper, NatMapsRealistically) {
  const auto profile = lnic::netronome_agilio_cx();
  const Mapper mapper(profile);
  CostHints hints;
  const auto prep = prepare(nf::build_nat_nf(), hints);
  const auto result = mapper.map(prep.graph, hints);
  ASSERT_TRUE(result.ok()) << result.error().message;
  const auto& m = result.value();

  // The checksum site lands on the checksum accelerator; the 8 MiB flow
  // table only fits EMEM.
  bool csum_on_accel = false;
  for (std::size_t i = 0; i < prep.graph.nodes().size(); ++i) {
    for (const auto& site : prep.graph.nodes()[i].vcalls) {
      if (site.v == cir::VCall::kCsum) {
        csum_on_accel = mapper.pools()[m.node_pool[i]].kind == lnic::UnitKind::kChecksumAccel;
      }
    }
  }
  EXPECT_TRUE(csum_on_accel);
  const auto* region = profile.graph.node(m.state_region[0]).memory();
  EXPECT_EQ(region->kind, lnic::MemKind::kEmem);
  EXPECT_GT(m.objective, 0.0);
}

TEST(Mapper, LpmMapsToEngine) {
  const auto profile = lnic::netronome_agilio_cx();
  const Mapper mapper(profile);
  CostHints hints;
  hints.flow_cache_hit_rate = 0.9;
  const auto prep = prepare(nf::build_lpm_nf({.rules = 10000, .use_flow_cache = true}), hints);
  const auto result = mapper.map(prep.graph, hints);
  ASSERT_TRUE(result.ok()) << result.error().message;
  bool lpm_on_engine = false;
  for (std::size_t i = 0; i < prep.graph.nodes().size(); ++i) {
    for (const auto& site : prep.graph.nodes()[i].vcalls) {
      if (site.v == cir::VCall::kLpmLookup) {
        lpm_on_engine = mapper.pools()[result.value().node_pool[i]].kind == lnic::UnitKind::kLpmEngine;
      }
    }
  }
  EXPECT_TRUE(lpm_on_engine);
}

TEST(Mapper, SmallStatePrefersFastMemory) {
  // A small firewall conn table should not end up in EMEM when CTM/IMEM
  // are cheaper and big enough.
  const auto profile = lnic::netronome_agilio_cx();
  const Mapper mapper(profile);
  CostHints hints;
  const auto prep = prepare(nf::build_fw_nf({.conn_entries = 1024, .conn_entry_bytes = 32, .rules = 128}), hints);
  const auto result = mapper.map(prep.graph, hints);
  ASSERT_TRUE(result.ok()) << result.error().message;
  for (const NodeId region : result.value().state_region) {
    EXPECT_NE(profile.graph.node(region).memory()->kind, lnic::MemKind::kEmem);
  }
}

TEST(Mapper, CapacityForcesSpill) {
  // Two state objects that each fit CTM but not together: one must go
  // deeper.
  cir::FunctionBuilder b("two_tables");
  const auto s0 = b.add_state(cir::StateObject{"t0", 64, 2000, cir::StatePattern::kHashTable});  // 128 KiB
  const auto s1 = b.add_state(cir::StateObject{"t1", 64, 2000, cir::StatePattern::kHashTable});  // 128 KiB
  b.set_insert_point(b.create_block("entry"));
  const auto h = b.get_hdr(cir::HdrField::kFlowHash);
  b.vcall(cir::VCall::kTableLookup, {cir::Value::of_imm(s0), h});
  b.vcall(cir::VCall::kTableLookup, {cir::Value::of_imm(s1), h});
  b.vcall(cir::VCall::kEmit, {cir::Value::of_imm(1)}, false);
  b.ret();

  const auto profile = lnic::netronome_agilio_cx();  // CTM = 256 KiB x 0.75 usable
  const Mapper mapper(profile);
  CostHints hints;
  const auto prep = prepare(b.take(), hints);
  const auto result = mapper.map(prep.graph, hints);
  ASSERT_TRUE(result.ok()) << result.error().message;
  const auto& m = result.value();
  // With per-island CTMs, both can be CTM-resident only in *different*
  // CTMs; verify no single region is over capacity.
  std::map<NodeId, double> used;
  for (std::size_t s = 0; s < 2; ++s) {
    used[m.state_region[s]] += 64.0 * 2000.0;
  }
  for (const auto& [region, bytes] : used) {
    const auto* mem = profile.graph.node(region).memory();
    double usable = static_cast<double>(mem->capacity);
    if (mem->kind == lnic::MemKind::kCtm) usable *= 0.75;
    EXPECT_LE(bytes, usable);
  }
}

TEST(Mapper, InfeasibleWhenStateTooBig) {
  cir::FunctionBuilder b("huge");
  const auto s = b.add_state(cir::StateObject{"t", 64, 1ull << 30, cir::StatePattern::kHashTable});  // 64 GiB
  b.set_insert_point(b.create_block("entry"));
  const auto h = b.get_hdr(cir::HdrField::kFlowHash);
  b.vcall(cir::VCall::kTableLookup, {cir::Value::of_imm(s), h});
  b.ret();
  const auto profile = lnic::netronome_agilio_cx();
  const Mapper mapper(profile);
  CostHints hints;
  const auto prep = prepare(b.take(), hints);
  EXPECT_FALSE(mapper.map(prep.graph, hints).ok());
  EXPECT_FALSE(mapper.map_greedy(prep.graph, hints).ok());
}

TEST(Mapper, ThetaRejectsImpossibleRate) {
  // DPI without pattern collapse is NPU-heavy; at an absurd offered rate
  // the Θ service-capacity constraint must bite.
  const auto profile = lnic::netronome_agilio_cx();
  const Mapper mapper(profile);
  CostHints hints;
  hints.params["payload_len"] = 1400.0;
  hints.avg_payload = 1400.0;
  auto fn = lowered(nf::build_dpi_nf(), /*collapse=*/true);
  const auto graph = DataflowGraph::build(fn, hints);
  MapOptions options;
  options.pps = 50e6;  // 50 Mpps of 1400-byte DPI is beyond this NIC
  EXPECT_FALSE(mapper.map(graph, hints, options).ok());
  options.pps = 60'000.0;
  EXPECT_TRUE(mapper.map(graph, hints, options).ok());
}

TEST(Mapper, IlpNeverWorseThanGreedy) {
  const auto profile = lnic::netronome_agilio_cx();
  const Mapper mapper(profile);
  CostHints hints;
  for (auto* builder : {+[] { return nf::build_nat_nf(); }, +[] { return nf::build_fw_nf(); },
                        +[] { return nf::build_hh_nf(); }, +[] { return nf::build_vnf_chain(); }}) {
    const auto prep = prepare(builder(), hints);
    const auto ilp = mapper.map(prep.graph, hints);
    const auto greedy = mapper.map_greedy(prep.graph, hints);
    ASSERT_TRUE(ilp.ok()) << ilp.error().message;
    ASSERT_TRUE(greedy.ok()) << greedy.error().message;
    EXPECT_LE(ilp.value().objective, greedy.value().objective + 1e-6) << prep.fn.name;
  }
}

TEST(Mapper, PipelineAsicRejectsPayloadScan) {
  // The ASIC has only anemic microengines; DPI maps but the Θ capacity
  // dies at moderate rate — and general compute can never reach the MA
  // stages.
  const auto profile = lnic::pipeline_asic_nic();
  const Mapper mapper(profile);
  CostHints hints;
  hints.params["payload_len"] = 1400.0;
  hints.avg_payload = 1400.0;
  const auto prep = prepare(nf::build_dpi_nf(), hints);
  MapOptions options;
  options.pps = 3e6;
  EXPECT_FALSE(mapper.map(prep.graph, hints, options).ok());
}

TEST(Mapper, RewriteMapsOntoAsicStages) {
  // Pure header work should be mappable on the pipeline ASIC.
  const auto profile = lnic::pipeline_asic_nic();
  const Mapper mapper(profile);
  CostHints hints;
  const auto prep = prepare(nf::build_rewrite_nf(), hints);
  const auto result = mapper.map(prep.graph, hints);
  ASSERT_TRUE(result.ok()) << result.error().message;
}

TEST(Mapper, PipelineOrderRespectedOnAsic) {
  const auto profile = lnic::pipeline_asic_nic();
  const Mapper mapper(profile);
  CostHints hints;
  const auto prep = prepare(nf::build_rewrite_nf(), hints);
  const auto result = mapper.map(prep.graph, hints);
  ASSERT_TRUE(result.ok());
  const auto& m = result.value();
  for (const auto& edge : prep.graph.edges()) {
    const int stage_from = mapper.pools()[m.node_pool[edge.from]].pipeline_stage;
    const int stage_to = mapper.pools()[m.node_pool[edge.to]].pipeline_stage;
    EXPECT_LE(stage_from, stage_to);
  }
}

TEST(Mapper, GreedyMarksItself) {
  const auto profile = lnic::netronome_agilio_cx();
  const Mapper mapper(profile);
  CostHints hints;
  const auto prep = prepare(nf::build_hh_nf(), hints);
  const auto greedy = mapper.map_greedy(prep.graph, hints);
  ASSERT_TRUE(greedy.ok());
  EXPECT_TRUE(greedy.value().greedy);
  const auto ilp = mapper.map(prep.graph, hints);
  ASSERT_TRUE(ilp.ok());
  EXPECT_FALSE(ilp.value().greedy);
  EXPECT_GT(ilp.value().ilp_nodes_explored, 0u);
}

TEST(Mapper, ReportMentionsBindings) {
  const auto profile = lnic::netronome_agilio_cx();
  const Mapper mapper(profile);
  CostHints hints;
  const auto prep = prepare(nf::build_nat_nf(), hints);
  const auto result = mapper.map(prep.graph, hints);
  ASSERT_TRUE(result.ok());
  const auto report = describe_mapping(result.value(), prep.graph, mapper, prep.fn);
  EXPECT_NE(report.find("flow_table"), std::string::npos);
  EXPECT_NE(report.find("checksum"), std::string::npos);
  EXPECT_NE(report.find("emem"), std::string::npos);
}

TEST(Mapper, SocHasNoAccelerCsumChoice) {
  // On the ARM SoC, checksum must run on cores (csum accel is absent) —
  // mapping still succeeds via software fallback.
  const auto profile = lnic::soc_arm_nic();
  const Mapper mapper(profile);
  CostHints hints;
  const auto prep = prepare(nf::build_nat_nf(), hints);
  const auto result = mapper.map(prep.graph, hints);
  ASSERT_TRUE(result.ok()) << result.error().message;
  for (std::size_t i = 0; i < prep.graph.nodes().size(); ++i) {
    for (const auto& site : prep.graph.nodes()[i].vcalls) {
      if (site.v == cir::VCall::kCsum) {
        EXPECT_EQ(mapper.pools()[result.value().node_pool[i]].kind, lnic::UnitKind::kNpuCore);
      }
    }
  }
}

}  // namespace
}  // namespace clara::mapping
