// Tests for the SmartNIC simulator: caches, tables, service units, the
// execution engine, and behavioural properties (monotonicity, queueing,
// contention, drops).
#include <gtest/gtest.h>

#include "nf/nf_ported.hpp"
#include "nicsim/cache.hpp"
#include "nicsim/sim.hpp"
#include "workload/tracegen.hpp"

namespace clara::nicsim {
namespace {

workload::Trace make_trace(const std::string& spec) {
  return workload::generate_trace(workload::parse_profile(spec).value());
}

TEST(SetAssocCacheTest, HitAfterMiss) {
  SetAssocCache cache(4096, 64, 4);
  EXPECT_FALSE(cache.access(0));
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(63));   // same line
  EXPECT_FALSE(cache.access(64));  // next line
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(SetAssocCacheTest, LruEviction) {
  // 1 set x 2 ways: lines A, B fill; touching A then inserting C evicts B.
  SetAssocCache cache(128, 64, 2);
  ASSERT_EQ(cache.num_sets() * cache.ways(), 2u);
  const std::uint64_t set_stride = 64ull * cache.num_sets();
  const std::uint64_t a = 0, b = set_stride, c = 2 * set_stride;
  cache.access(a);
  cache.access(b);
  cache.access(a);        // A is MRU
  cache.access(c);        // evicts B
  EXPECT_TRUE(cache.access(a));
  EXPECT_FALSE(cache.access(b));  // was evicted
}

TEST(SetAssocCacheTest, WorkingSetBelowCapacityAllHits) {
  SetAssocCache cache(1_MiB, 64, 8);
  const std::size_t lines = (1_MiB / 64) / 2;  // half capacity
  for (std::size_t round = 0; round < 3; ++round) {
    for (std::size_t l = 0; l < lines; ++l) cache.access(l * 64);
  }
  // After the cold round, everything hits.
  EXPECT_EQ(cache.misses(), lines);
  EXPECT_EQ(cache.hits(), 2 * lines);
}

TEST(SetAssocCacheTest, WorkingSetAboveCapacityThrashes) {
  SetAssocCache cache(64_KiB, 64, 8);
  const std::size_t lines = 4 * (64_KiB / 64);  // 4x capacity, circular scan
  for (std::size_t round = 0; round < 3; ++round) {
    for (std::size_t l = 0; l < lines; ++l) cache.access(l * 64);
  }
  EXPECT_LT(cache.hit_rate(), 0.05);  // LRU + circular scan = ~0 hits
}

TEST(SetAssocCacheTest, FlushResets) {
  SetAssocCache cache(4096, 64, 4);
  cache.access(0);
  cache.flush();
  EXPECT_EQ(cache.hits() + cache.misses(), 0u);
  EXPECT_FALSE(cache.access(0));
}

TEST(LruTableTest, InsertAndHit) {
  LruTable t(4);
  EXPECT_FALSE(t.lookup_or_insert(1));
  EXPECT_TRUE(t.lookup_or_insert(1));
  EXPECT_EQ(t.size(), 1u);
}

TEST(LruTableTest, EvictsLeastRecentlyUsed) {
  LruTable t(3);
  t.lookup_or_insert(1);
  t.lookup_or_insert(2);
  t.lookup_or_insert(3);
  t.lookup_or_insert(1);  // refresh 1; LRU is now 2
  t.lookup_or_insert(4);  // evicts 2
  EXPECT_TRUE(t.contains(1));
  EXPECT_FALSE(t.contains(2));
  EXPECT_TRUE(t.contains(3));
  EXPECT_TRUE(t.contains(4));
}

TEST(LruTableTest, ZeroCapacityNeverHits) {
  LruTable t(0);
  EXPECT_FALSE(t.lookup_or_insert(1));
  EXPECT_FALSE(t.lookup_or_insert(1));
}

TEST(LruTableTest, ClearEmpties) {
  LruTable t(4);
  t.lookup_or_insert(1);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.contains(1));
}

TEST(LruTableTest, StressAgainstReference) {
  LruTable t(16);
  std::vector<std::uint64_t> reference;  // front = MRU
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const std::uint64_t key = (i * 7919) % 40;
    const bool hit = t.lookup_or_insert(key);
    const auto it = std::find(reference.begin(), reference.end(), key);
    const bool ref_hit = it != reference.end();
    EXPECT_EQ(hit, ref_hit) << "step " << i;
    if (ref_hit) reference.erase(it);
    reference.insert(reference.begin(), key);
    if (reference.size() > 16) reference.pop_back();
  }
}

TEST(ExactTableTest, LookupMissesUntilUpdate) {
  ExactTable t("t", 1024, 64, MemLevel::kCtm);
  EXPECT_FALSE(t.lookup(42).hit);
  t.update(42);
  EXPECT_TRUE(t.lookup(42).hit);
  EXPECT_EQ(t.occupied(), 1u);
}

TEST(ExactTableTest, SlotCollisionEvicts) {
  ExactTable t("t", 1, 64, MemLevel::kCtm);  // single slot
  t.update(1);
  EXPECT_TRUE(t.lookup(1).hit);
  t.update(2);
  EXPECT_TRUE(t.lookup(2).hit);
  EXPECT_FALSE(t.lookup(1).hit);
}

TEST(ExactTableTest, AddressesWithinFootprint) {
  ExactTable t("t", 100, 32, MemLevel::kEmem);
  t.set_base(1 << 20);
  for (std::uint64_t key = 1; key < 50; ++key) {
    const auto plan = t.lookup(key);
    EXPECT_GE(plan.addr0, t.base());
    EXPECT_LT(plan.addr1, t.base() + t.address_span());
  }
}

TEST(ServiceUnitTest, SerializesRequests) {
  ServiceUnit unit;
  EXPECT_EQ(unit.request(0, 10), 10u);
  EXPECT_EQ(unit.request(0, 10), 20u);   // queued behind the first
  EXPECT_EQ(unit.request(100, 5), 105u); // idle gap
  EXPECT_EQ(unit.busy_cycles(), 25u);
}

TEST(ServiceUnitTest, SaturatesInsteadOfWrapping) {
  // Regression: extreme service values used to wrap the 64-bit timeline,
  // silently reordering every later reservation. The unit must pin at
  // the top of the cycle range instead.
  const Cycles top = ~Cycles{0};
  ServiceUnit unit;
  EXPECT_EQ(unit.request(top - 5, 100), top);    // start + service overflows
  EXPECT_EQ(unit.request(0, 100), top);          // queued behind the pinned unit
  EXPECT_EQ(unit.busy_cycles(), 200u);

  ServiceUnit unit2;
  EXPECT_EQ(unit2.request(10, top), top);        // service alone near the limit
  EXPECT_EQ(unit2.request(top, top), top);       // both extreme
  EXPECT_EQ(unit2.busy_cycles(), top);           // busy accounting saturates too
}

TEST(NicSimTest, ExtremeServiceValuesDoNotWrapTimeline) {
  // A config with absurd accelerator costs must yield a saturated (huge)
  // latency, never a wrapped-around small one.
  NicConfig config;
  config.csum_accel_base = 1e30;  // would overflow any integer cast
  config.crypto_base = 1e30;
  NicSim sim(config);
  auto& sa = sim.create_table("sa", 1024, 64, MemLevel::kCtm);
  nf::CryptoGwProgram program(sa, /*use_crypto_accel=*/true);
  workload::PacketMeta pkt;
  pkt.payload_len = 512;
  sa.update(pkt.flow_hash());  // SA hit so the crypto path actually runs
  const Cycles t = sim.measure_one(program, pkt);
  EXPECT_EQ(t, ~Cycles{0});  // pinned at the end of time, not wrapped

  // Sane configs stay far away from saturation.
  NicSim sane;
  auto& sane_sa = sane.create_table("sa", 1024, 64, MemLevel::kCtm);
  sane_sa.update(pkt.flow_hash());
  nf::CryptoGwProgram sane_program(sane_sa, true);
  EXPECT_LT(sane.measure_one(sane_program, pkt), Cycles{1} << 40);
}

TEST(NicSimTest, MeasureOneIsDeterministic) {
  NicSim sim;
  nf::RewriteProgram program;
  workload::PacketMeta pkt;
  pkt.payload_len = 300;
  const auto a = sim.measure_one(program, pkt);
  NicSim sim2;
  const auto b = sim2.measure_one(program, pkt);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0u);
}

TEST(NicSimTest, LatencyGrowsWithPayload) {
  NicSim sim;
  nf::DpiProgram program;
  Cycles prev = 0;
  for (std::uint16_t payload : {100, 400, 800, 1200}) {
    workload::PacketMeta pkt;
    pkt.payload_len = payload;
    const auto t = sim.measure_one(program, pkt);
    EXPECT_GT(t, prev) << payload;
    prev = t;
  }
}

TEST(NicSimTest, SpillKicksInAboveResidency) {
  // The per-byte slope above the CTM residency exceeds the slope below.
  NicSim sim;
  nf::RewriteProgram program;
  auto measure = [&](std::uint16_t payload) {
    workload::PacketMeta pkt;
    pkt.payload_len = payload;
    return static_cast<double>(sim.measure_one(program, pkt));
  };
  const double slope_small = (measure(800) - measure(400)) / 400.0;
  const double slope_large = (measure(2200) - measure(1800)) / 400.0;
  EXPECT_GT(slope_large, slope_small + 1.0);
}

TEST(NicSimTest, CsumAccelBeatsSoftware) {
  workload::PacketMeta pkt;
  pkt.payload_len = 1000;
  // Fresh simulator per variant; measure twice and keep the warm-table
  // number so both variants take the lookup-hit path.
  auto measure = [&](bool accel) {
    NicSim sim;
    auto& table = sim.create_table("t", 1024, 64, MemLevel::kCtm);
    nf::NatProgram program(table, accel);
    sim.measure_one(program, pkt);
    return static_cast<double>(sim.measure_one(program, pkt));
  };
  const double fast = measure(true);
  const double slow = measure(false);
  EXPECT_NEAR(slow - fast, 1700.0, 10.0);
}

TEST(NicSimTest, TablePlacementOrdersLatency) {
  // FW conn table in CTM vs IMEM vs EMEM: deeper memory, higher latency.
  // A tiny EMEM cache keeps the table working set uncacheable (with the
  // default 3 MiB cache a 500-flow table would be fully cached, and
  // cached EMEM legitimately beats IMEM — see EmemCacheObservedOnHotTable).
  NicConfig config;
  config.emem_cache_bytes = 4096;
  std::vector<double> means;
  for (const MemLevel level : {MemLevel::kCtm, MemLevel::kImem, MemLevel::kEmem}) {
    NicSim sim(config);
    auto& conn = sim.create_table("conn", 2048, 32, level);
    auto& rules = sim.create_table("rules", 256, 32, MemLevel::kCtm);
    nf::FwProgram program(conn, rules);
    const auto trace = make_trace("packets=3000 flows=500 tcp=1.0 pps=60000");
    means.push_back(sim.run(program, trace).mean_latency());
  }
  EXPECT_LT(means[0], means[1]);
  EXPECT_LT(means[1], means[2]);
}

TEST(NicSimTest, FlowCacheHelpsSkewedTraffic) {
  const auto trace = make_trace("packets=5000 flows=2000 zipf=1.2 pps=60000");
  NicSim with_fc;
  auto& lpm_fc = with_fc.create_lpm("routes", 10000, 4096);
  nf::LpmProgram fast(lpm_fc, true);
  const auto t_fc = with_fc.run(fast, trace);

  NicSim without_fc;
  auto& lpm_nofc = without_fc.create_lpm("routes", 10000, 4096);
  nf::LpmProgram slow(lpm_nofc, false);
  const auto t_nofc = without_fc.run(slow, trace);

  EXPECT_LT(t_fc.mean_latency() * 3.0, t_nofc.mean_latency());
  EXPECT_GT(t_fc.flow_cache_hit_rate, 0.5);
}

TEST(NicSimTest, LpmLatencyGrowsWithRules) {
  double prev = 0.0;
  for (std::uint64_t rules : {5000ull, 15000ull, 30000ull}) {
    NicSim sim;
    auto& lpm = sim.create_lpm("routes", rules, 0);
    nf::LpmProgram program(lpm, false);
    workload::PacketMeta pkt;
    pkt.payload_len = 300;
    const auto t = static_cast<double>(sim.measure_one(program, pkt));
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(NicSimTest, QueueWaitGrowsWithRate) {
  // With 224 hardware threads, queueing only appears near saturation:
  // DPI at 1400 B holds a thread ~20 us, so thread occupancy binds
  // around 11-16 Mpps and waits are clearly positive by 22 Mpps.
  std::vector<double> waits;
  for (const char* spec :
       {"packets=4000 pps=1000000 payload=1400", "packets=4000 pps=8000000 payload=1400",
        "packets=8000 pps=22000000 payload=1400"}) {
    NicSim sim;
    nf::DpiProgram program;
    const auto stats = sim.run(program, make_trace(spec));
    waits.push_back(stats.queue_wait.mean());
  }
  EXPECT_GE(waits[1], waits[0]);
  // Past saturation the bounded ingress queue drops instead of queueing
  // deeper, so the wait plateaus rather than growing — but it is heavy.
  EXPECT_GT(waits[2], 1000.0);
}

TEST(NicSimTest, EmemCacheObservedOnHotTable) {
  NicSim sim;
  auto& table = sim.create_table("t", 4096, 64, MemLevel::kEmem);  // 256 KiB << 3 MiB cache
  nf::NatProgram program(table, true);
  const auto stats = sim.run(program, make_trace("packets=8000 flows=200 pps=60000"));
  EXPECT_GT(stats.emem_cache_hit_rate, 0.8);  // small working set stays cached
}

TEST(NicSimTest, BigWorkingSetThrashesEmemCache) {
  // Working set (distinct flows x entry) well above the cache capacity.
  NicConfig config;
  config.emem_cache_bytes = 64_KiB;
  NicSim sim(config);
  auto& table = sim.create_table("t", 1 << 20, 64, MemLevel::kEmem);  // 64 MiB table
  nf::NatProgram program(table, true);
  const auto stats = sim.run(program, make_trace("packets=8000 flows=100000 zipf=0.0 pps=60000"));
  // NAT's update re-touches the lines its lookup just fetched, so even a
  // thrashing table keeps ~3/5 intra-packet hits; cross-packet reuse is
  // what the tiny cache kills (compare EmemCacheObservedOnHotTable's >0.8).
  EXPECT_LT(stats.emem_cache_hit_rate, 0.7);
}

TEST(NicSimTest, PerProtoStatsPopulated) {
  NicSim sim;
  nf::RewriteProgram program;
  const auto stats = sim.run(program, make_trace("packets=2000 tcp=0.5 pps=60000"));
  EXPECT_GT(stats.tcp_latency.count(), 0u);
  EXPECT_GT(stats.udp_latency.count(), 0u);
  EXPECT_GT(stats.syn_latency.count(), 0u);
  EXPECT_EQ(stats.packets, 2000u);
  EXPECT_EQ(stats.drops, 0u);
}

TEST(NicSimTest, OverloadDropsPackets) {
  NicConfig config;
  config.ingress_queue_capacity = 16;
  NicSim sim(config);
  nf::DpiProgram program;  // heavy per-packet work
  const auto stats = sim.run(program, make_trace("packets=20000 pps=16000000 payload=1400"));
  EXPECT_GT(stats.drops, 0u);
  EXPECT_EQ(stats.packets + stats.drops, 20000u);
}

TEST(NicSimTest, ThroughputReported) {
  NicSim sim;
  nf::RewriteProgram program;
  const auto stats = sim.run(program, make_trace("packets=5000 pps=60000"));
  EXPECT_NEAR(stats.achieved_pps, 60000.0, 6000.0);  // keeps up at low load
}

TEST(NicSimTest, ResetTimelineClearsCaches) {
  NicSim sim;
  auto& table = sim.create_table("t", 4096, 64, MemLevel::kEmem);
  nf::NatProgram program(table, true);
  sim.run(program, make_trace("packets=2000 flows=100 pps=60000"));
  const auto warm_hits = sim.emem_cache().hits();
  EXPECT_GT(warm_hits, 0u);
  sim.reset_timeline();
  EXPECT_EQ(sim.emem_cache().hits(), 0u);
}

TEST(NicSimTest, FallthroughProgramsEmit) {
  // A program that never calls emit()/drop() still terminates cleanly.
  class Noop final : public NicProgram {
   public:
    void handle(NicApi&) override {}
    [[nodiscard]] std::string name() const override { return "noop"; }
  };
  NicSim sim;
  Noop program;
  const auto stats = sim.run(program, make_trace("packets=100 pps=60000"));
  EXPECT_EQ(stats.packets, 100u);
  EXPECT_GT(stats.mean_latency(), 0.0);
}

TEST(NicSimTest, ParallelismAbsorbsBurst) {
  // At moderate rate, many threads keep queue wait near zero even for a
  // moderately expensive program.
  NicSim sim;
  auto& table = sim.create_table("t", 65536, 64, MemLevel::kEmem);
  nf::NatProgram program(table, true);
  const auto stats = sim.run(program, make_trace("packets=5000 pps=60000"));
  EXPECT_LT(stats.queue_wait.mean(), 50.0);
}

TEST(NicConfigTest, Helpers) {
  NicConfig config;
  EXPECT_EQ(config.total_npus(), 28);
  EXPECT_EQ(config.total_threads(), 224);
  EXPECT_NEAR(config.cycles_per_packet(60000.0), 800e6 / 60000.0, 1e-6);
}

}  // namespace
}  // namespace clara::nicsim
