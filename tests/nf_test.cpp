// NF corpus tests: semantic checks of each unported CIR function
// (interpreted against controlled packets) and of each hand-ported
// simulator program, plus CIR/ported correspondence checks.
#include <gtest/gtest.h>

#include "cir/interp.hpp"
#include "core/clara.hpp"
#include "nf/nf_cir.hpp"
#include "nf/nf_ported.hpp"
#include "nicsim/sim.hpp"
#include "passes/api_subst.hpp"
#include "workload/tracegen.hpp"

namespace clara::nf {
namespace {

using cir::HdrField;
using cir::VCall;

/// Interpreter handler driven by a concrete PacketMeta plus canned
/// table outcomes.
class PacketHandler final : public cir::VCallHandler {
 public:
  explicit PacketHandler(const workload::PacketMeta& pkt) : pkt_(pkt) {}

  std::uint64_t handle(VCall v, std::span<const std::uint64_t> args) override {
    switch (v) {
      case VCall::kGetHdr:
        switch (static_cast<HdrField>(args[0])) {
          case HdrField::kProto: return pkt_.proto;
          case HdrField::kSrcIp: return pkt_.src_ip;
          case HdrField::kDstIp: return pkt_.dst_ip;
          case HdrField::kSrcPort: return pkt_.src_port;
          case HdrField::kDstPort: return pkt_.dst_port;
          case HdrField::kTcpFlags: return pkt_.tcp_flags;
          case HdrField::kPayloadLen: return pkt_.payload_len;
          case HdrField::kPktLen: return pkt_.frame_len();
          case HdrField::kFlowHash: return pkt_.flow_hash();
        }
        return 0;
      case VCall::kTableLookup: return table_hit ? 1 : 0;
      case VCall::kMeter: return meter_conforming ? 1 : 0;
      case VCall::kCsum: return 0xbeef;
      case VCall::kEmit: emitted = true; return 0;
      case VCall::kDrop: dropped = true; return 0;
      default: return 0;
    }
  }

  bool table_hit = true;
  bool meter_conforming = true;
  bool emitted = false;
  bool dropped = false;

 private:
  workload::PacketMeta pkt_;
};

cir::ExecTrace run_nf(cir::Function fn, PacketHandler& handler) {
  passes::substitute_framework_apis(fn);
  cir::Interpreter interp(fn, handler);
  auto result = interp.run();
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().message);
  return result.ok() ? std::move(result).value() : cir::ExecTrace{};
}

workload::PacketMeta tcp_packet(std::uint8_t flags = 0, std::uint16_t payload = 300) {
  workload::PacketMeta pkt;
  pkt.proto = 6;
  pkt.tcp_flags = flags;
  pkt.payload_len = payload;
  pkt.src_ip = 0x11223344;
  pkt.dst_port = 443;
  return pkt;
}

// --- CIR semantics --------------------------------------------------------------

TEST(NfSemantics, FirewallEstablishedFastPath) {
  PacketHandler handler(tcp_packet());
  handler.table_hit = true;
  run_nf(build_fw_nf(), handler);
  EXPECT_TRUE(handler.emitted);
  EXPECT_FALSE(handler.dropped);
}

TEST(NfSemantics, FirewallDropsNonSynWithoutState) {
  PacketHandler handler(tcp_packet(/*flags=*/0));
  handler.table_hit = false;
  run_nf(build_fw_nf(), handler);
  EXPECT_TRUE(handler.dropped);
}

TEST(NfSemantics, FirewallAdmitsSyn) {
  PacketHandler handler(tcp_packet(/*flags=*/workload::kFlagSyn));
  handler.table_hit = false;
  // Rule lookup also uses table_hit=false -> reject path. Verify the
  // rule-gated behaviour both ways by toggling after the conn miss is
  // consumed — simplest: all lookups hit => accept.
  PacketHandler admit(tcp_packet(workload::kFlagSyn));
  admit.table_hit = true;  // conn hit -> established fast path
  run_nf(build_fw_nf(), admit);
  EXPECT_TRUE(admit.emitted);
}

TEST(NfSemantics, MeterDropsNonConforming) {
  PacketHandler handler(tcp_packet());
  handler.meter_conforming = false;
  run_nf(build_meter_nf(), handler);
  EXPECT_TRUE(handler.dropped);
  PacketHandler ok(tcp_packet());
  run_nf(build_meter_nf(), ok);
  EXPECT_TRUE(ok.emitted);
}

TEST(NfSemantics, NatAlwaysEmits) {
  for (const bool hit : {true, false}) {
    PacketHandler handler(tcp_packet());
    handler.table_hit = hit;
    const auto trace = run_nf(build_nat_nf(), handler);
    EXPECT_TRUE(handler.emitted);
    // Miss path executes the insert block.
    const auto fn = build_nat_nf();
    const auto insert = fn.find_block("insert");
    EXPECT_EQ(trace.block_counts[insert], hit ? 0u : 1u);
  }
}

TEST(NfSemantics, CryptoGwEncryptsOnlyWithSa) {
  auto fn = build_crypto_gw_nf();
  for (const bool has_sa : {true, false}) {
    PacketHandler handler(tcp_packet(0, 800));
    handler.table_hit = has_sa;
    auto fn_copy = fn;
    passes::substitute_framework_apis(fn_copy);
    cir::Interpreter interp(fn_copy, handler);
    const auto result = interp.run();
    ASSERT_TRUE(result.ok());
    bool saw_crypto = false;
    for (const auto& event : result.value().vcalls) {
      if (event.v == VCall::kCrypto) {
        saw_crypto = true;
        EXPECT_EQ(event.args[0], 800u);  // encrypts the payload length
      }
    }
    EXPECT_EQ(saw_crypto, has_sa);
    EXPECT_TRUE(handler.emitted);
  }
}

TEST(NfSemantics, DpiScansEveryByte) {
  PacketHandler handler(tcp_packet(0, 77));
  const auto fn = build_dpi_nf();
  auto fn_copy = fn;
  passes::substitute_framework_apis(fn_copy);
  cir::Interpreter interp(fn_copy, handler);
  const auto result = interp.run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().block_counts[fn.find_block("scan_loop")], 77u);
}

TEST(NfSemantics, VnfEmitsWhenConforming) {
  PacketHandler handler(tcp_packet(0, 128));
  run_nf(build_vnf_chain(), handler);
  EXPECT_TRUE(handler.emitted);
  PacketHandler exceed(tcp_packet(0, 128));
  exceed.meter_conforming = false;
  run_nf(build_vnf_chain(), exceed);
  EXPECT_TRUE(exceed.dropped);
}

// --- Ported program behaviour -------------------------------------------------

workload::Trace small_trace(const char* extra = "") {
  return workload::generate_trace(
      workload::parse_profile(std::string("payload=300 pps=60000 packets=2000 ") + extra).value());
}

TEST(NfPorted, CryptoAccelFasterThanSoftware) {
  workload::PacketMeta pkt = tcp_packet(0, 1024);
  auto measure = [&](bool accel) {
    nicsim::NicSim sim;
    auto& sa = sim.create_table("sa", 4096, 64, nicsim::MemLevel::kCtm);
    CryptoGwProgram program(sa, accel);
    sim.measure_one(program, pkt);             // warm (installs nothing; lookup misses)
    return static_cast<double>(sim.measure_one(program, pkt));
  };
  // Note: without an installed SA the lookup misses and crypto is
  // skipped; install one by using the same key table-side.
  nicsim::NicSim sim;
  auto& sa = sim.create_table("sa", 4096, 64, nicsim::MemLevel::kCtm);
  sa.update(pkt.flow_hash());
  CryptoGwProgram fast(sa, true);
  CryptoGwProgram slow(sa, false);
  const auto t_fast = sim.measure_one(fast, pkt);
  const auto t_slow = sim.measure_one(slow, pkt);
  EXPECT_GT(t_slow, t_fast * 5);  // sw AES is ~25x the engine on the payload part
  (void)measure;
}

TEST(NfPorted, FirewallFastPathCheaperThanSetup) {
  nicsim::NicSim sim;
  auto& conn = sim.create_table("conn", 16384, 64, nicsim::MemLevel::kImem);
  auto& rules = sim.create_table("rules", 1024, 32, nicsim::MemLevel::kCtm);
  FwProgram program(conn, rules);
  auto pkt = tcp_packet(workload::kFlagSyn);
  const auto setup = sim.measure_one(program, pkt);       // SYN: rule check + insert
  pkt.tcp_flags = 0;
  const auto established = sim.measure_one(program, pkt); // now state exists
  EXPECT_LT(established, setup);
}

TEST(NfPorted, HhLatencyInsensitiveToFlowCount) {
  // HH does constant work per packet; only cache behaviour shifts.
  std::vector<double> means;
  for (const char* flows : {"flows=100", "flows=20000"}) {
    nicsim::NicSim sim;
    auto& counters = sim.create_table("counters", 1 << 16, 32, nicsim::MemLevel::kImem);
    HhProgram program(counters);
    means.push_back(sim.run(program, small_trace(flows)).mean_latency());
  }
  EXPECT_NEAR(means[0], means[1], means[0] * 0.1);  // IMEM has no cache: identical
}

TEST(NfPorted, AllProgramsDeliverEveryPacket) {
  const auto trace = small_trace();
  {
    nicsim::NicSim sim;
    auto& t = sim.create_table("t", 1024, 64, nicsim::MemLevel::kCtm);
    NatProgram p(t, true);
    EXPECT_EQ(sim.run(p, trace).packets, trace.size());
  }
  {
    nicsim::NicSim sim;
    auto& sa = sim.create_table("sa", 1024, 64, nicsim::MemLevel::kCtm);
    CryptoGwProgram p(sa, true);
    EXPECT_EQ(sim.run(p, trace).packets, trace.size());
  }
  {
    nicsim::NicSim sim;
    auto& s = sim.create_table("s", 1024, 32, nicsim::MemLevel::kImem);
    FlowStatsProgram p(s);
    EXPECT_EQ(sim.run(p, trace).packets, trace.size());
  }
}

// --- Clara end-to-end on the new NF ------------------------------------------

TEST(NfClara, CryptoGwMapsToCryptoEngine) {
  core::Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto trace = small_trace();
  const auto analysis = analyzer.analyze(build_crypto_gw_nf(), trace);
  ASSERT_TRUE(analysis.ok()) << analysis.error().message;
  EXPECT_NE(analysis.value().report.find("crypto"), std::string::npos);
  EXPECT_GT(analysis.value().prediction.mean_latency_cycles, 0.0);
}

TEST(NfClara, CryptoGwAccuracy) {
  core::Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto trace = workload::generate_trace(
      workload::parse_profile("tcp=0.8 flows=2000 payload=800 pps=60000 packets=20000").value());
  const auto analysis = analyzer.analyze(build_crypto_gw_nf(), trace);
  ASSERT_TRUE(analysis.ok()) << analysis.error().message;

  nicsim::NicSim sim;
  auto& sa = sim.create_table("sa_table", 4096, 64, nicsim::MemLevel::kCtm);
  // Pre-install SAs for all flows: Clara's workload model treats
  // repeat-flow lookups as hits, matching a gateway with provisioned SAs.
  for (const auto& pkt : trace.packets) sa.update(pkt.flow_hash());
  CryptoGwProgram ported(sa, true);
  const auto stats = sim.run(ported, trace);

  const double err = std::abs(analysis.value().prediction.mean_latency_cycles - stats.mean_latency()) /
                     stats.mean_latency();
  EXPECT_LT(err, 0.25) << "predicted " << analysis.value().prediction.mean_latency_cycles << " actual "
                       << stats.mean_latency();
}

}  // namespace
}  // namespace clara::nf
