// Accuracy-ledger tests: determinism of the validation matrix across
// job counts, coherence of the per-component attribution, and the
// tolerance-band gating that `clara bench diff` applies to
// BENCH_accuracy.json (synthetic-drift matrix: regression, clean,
// improvement).
#include <gtest/gtest.h>

#include <string>

#include "common/json.hpp"
#include "obs/accuracy.hpp"
#include "obs/benchdiff.hpp"

namespace clara {
namespace {

/// Reduced matrix keeps the jobs sweep cheap; the full matrix runs in
/// the bench fixture (ctest -L accuracy) and the property suite.
std::vector<obs::ValidationScenario> small_matrix() {
  std::vector<obs::ValidationScenario> matrix;
  matrix.push_back({"nat", "small", "tcp=0.8 flows=2000 payload=400 pps=60000 packets=4000"});
  matrix.push_back({"lpm", "small", "tcp=0.8 flows=2000 payload=300 pps=60000 packets=4000",
                    5'000, true});
  matrix.push_back({"firewall", "small", "tcp=1.0 flows=2000 payload=400 pps=60000 packets=4000"});
  matrix.push_back({"vnf-chain", "small", "tcp=0.8 flows=2000 payload=400 pps=60000 packets=4000"});
  return matrix;
}

std::string run_json(std::size_t jobs) {
  obs::AccuracyOptions options;
  options.jobs = jobs;
  options.max_packets = 2'000;
  const obs::AccuracyLedger ledger(options);
  return ledger.run(small_matrix(), lnic::netronome_agilio_cx()).to_json();
}

TEST(AccuracyLedger, BitIdenticalAcrossJobCounts) {
  const std::string j1 = run_json(1);
  EXPECT_EQ(j1, run_json(2));
  EXPECT_EQ(j1, run_json(8));
}

TEST(AccuracyLedger, ReportIsCoherent) {
  obs::AccuracyOptions options;
  options.max_packets = 2'000;
  const obs::AccuracyLedger ledger(options);
  const auto report = ledger.run(small_matrix(), lnic::netronome_agilio_cx());
  ASSERT_EQ(report.failures, 0u);
  ASSERT_EQ(report.scenarios.size(), 4u);
  ASSERT_EQ(report.per_nf.size(), 4u);
  for (const auto& s : report.scenarios) {
    ASSERT_TRUE(s.ok) << s.error;
    EXPECT_GT(s.predicted_cycles, 0.0);
    EXPECT_GT(s.simulated_cycles, 0.0);
    EXPECT_LT(s.rel_err, 0.5) << s.scenario.name();
    // Attribution identity: the shares are |pred_c - sim_c| scaled by
    // the simulated total, so their sum bounds the headline error from
    // above (opposite-sign component gaps cancel in the total only).
    double share_sum = 0.0;
    for (const auto& c : s.components) share_sum += c.error_share;
    EXPECT_GE(share_sum + 1e-9, s.rel_err) << s.scenario.name();
  }
  for (const auto& nf : report.per_nf) {
    EXPECT_GE(nf.p95_rel_err, 0.0);
    EXPECT_GE(nf.max_rel_err, nf.mean_rel_err - 1e-12) << nf.nf;
    EXPECT_FALSE(nf.worst_component.empty());
  }
}

TEST(AccuracyLedger, JsonParsesAndEchoesSeed) {
  obs::AccuracyOptions options;
  options.seed = 1234;
  options.max_packets = 1'000;
  const obs::AccuracyLedger ledger(options);
  const auto report = ledger.run(small_matrix(), lnic::netronome_agilio_cx());
  const auto doc = Json::parse(report.to_json());
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  EXPECT_EQ(doc.value().string_at("schema"), "clara-bench-accuracy/1");
  EXPECT_DOUBLE_EQ(doc.value().number_at("seed"), 1234.0);
  ASSERT_NE(doc.value().get("scenarios"), nullptr);
  EXPECT_EQ(doc.value().get("scenarios")->as_array().size(), 4u);
  ASSERT_NE(doc.value().get("nfs"), nullptr);
  EXPECT_EQ(doc.value().get("nfs")->as_array().size(), 4u);
}

TEST(AccuracyLedger, UnknownNfFailsScenarioNotRun) {
  obs::AccuracyOptions options;
  options.max_packets = 500;
  const obs::AccuracyLedger ledger(options);
  std::vector<obs::ValidationScenario> matrix;
  matrix.push_back({"no-such-nf", "x", "payload=300 pps=60000 packets=500"});
  const auto report = ledger.run(matrix, lnic::netronome_agilio_cx());
  ASSERT_EQ(report.scenarios.size(), 1u);
  EXPECT_FALSE(report.scenarios[0].ok);
  EXPECT_EQ(report.failures, 1u);
  EXPECT_TRUE(report.per_nf.empty());
}

// ---------------------------------------------------------------------
// Gating matrix: synthetic drift against a fixed baseline document.

constexpr char kBaseline[] = R"({
  "schema": "clara-bench-accuracy/1",
  "seed": 42,
  "failures": 0,
  "scenarios": [],
  "nfs": [
    {"name": "nat", "scenarios": 3, "mean_rel_err": 0.060, "p95_rel_err": 0.100,
     "max_rel_err": 0.100, "worst_component": "emem-cache-miss",
     "worst_component_share": 0.050, "components": []},
    {"name": "lpm", "scenarios": 4, "mean_rel_err": 0.030, "p95_rel_err": 0.120,
     "max_rel_err": 0.120, "worst_component": "lpm-engine",
     "worst_component_share": 0.030, "components": []}
  ]
})";

std::string drifted(double nat_mean, double nat_p95, int failures = 0) {
  std::string out = R"({
  "schema": "clara-bench-accuracy/1",
  "seed": 42,
  "failures": )";
  out += std::to_string(failures);
  out += R"(,
  "scenarios": [],
  "nfs": [
    {"name": "nat", "scenarios": 3, "mean_rel_err": )";
  out += std::to_string(nat_mean);
  out += R"(, "p95_rel_err": )";
  out += std::to_string(nat_p95);
  out += R"(, "max_rel_err": 0.100, "worst_component": "emem-cache-miss",
     "worst_component_share": 0.050, "components": []},
    {"name": "lpm", "scenarios": 4, "mean_rel_err": 0.030, "p95_rel_err": 0.120,
     "max_rel_err": 0.120, "worst_component": "lpm-engine",
     "worst_component_share": 0.030, "components": []}
  ]
})";
  return out;
}

obs::BenchDiffReport diff(const std::string& old_text, const std::string& new_text) {
  const auto old_doc = Json::parse(old_text);
  const auto new_doc = Json::parse(new_text);
  EXPECT_TRUE(old_doc.ok() && new_doc.ok());
  const auto report = obs::diff_accuracy_json(old_doc.value(), new_doc.value(), {});
  EXPECT_TRUE(report.ok()) << (report.ok() ? "" : report.error().message);
  return report.value();
}

TEST(AccuracyDiff, SelfComparisonIsClean) {
  const auto report = diff(kBaseline, kBaseline);
  EXPECT_FALSE(report.has_regression());
  EXPECT_EQ(report.regressions(), 0u);
}

TEST(AccuracyDiff, DriftWithinBandPasses) {
  // +1.5 points mean, +3 points p95: inside the 2/4-point bands.
  const auto report = diff(kBaseline, drifted(0.075, 0.130));
  EXPECT_FALSE(report.has_regression());
}

TEST(AccuracyDiff, MeanDriftBeyondBandFails) {
  // +3 points mean exceeds the 2-point band.
  const auto report = diff(kBaseline, drifted(0.090, 0.100));
  EXPECT_TRUE(report.has_regression());
  bool found = false;
  for (const auto& row : report.rows) {
    if (row.scenario == "accuracy/nat" && row.metric == "mean_rel_err") {
      EXPECT_EQ(row.status, obs::BenchDiffRow::Status::kRegressed);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AccuracyDiff, P95DriftBeyondBandFails) {
  // +5 points p95 exceeds the 4-point band while the mean stays put.
  const auto report = diff(kBaseline, drifted(0.060, 0.150));
  EXPECT_TRUE(report.has_regression());
}

TEST(AccuracyDiff, ImprovementIsReportedNotGated) {
  const auto report = diff(kBaseline, drifted(0.020, 0.050));
  EXPECT_FALSE(report.has_regression());
  bool improved = false;
  for (const auto& row : report.rows) {
    if (row.scenario == "accuracy/nat" && row.status == obs::BenchDiffRow::Status::kImproved) {
      improved = true;
    }
  }
  EXPECT_TRUE(improved);
}

TEST(AccuracyDiff, NewScenarioFailureGates) {
  const auto report = diff(kBaseline, drifted(0.060, 0.100, /*failures=*/1));
  EXPECT_TRUE(report.has_regression());
}

TEST(AccuracyDiff, SchemaMismatchRejected) {
  const auto perf = Json::parse(R"({"schema": "clara-bench-perf/1", "micro": []})");
  const auto acc = Json::parse(kBaseline);
  ASSERT_TRUE(perf.ok() && acc.ok());
  const auto report = obs::diff_accuracy_json(perf.value(), acc.value(), {});
  EXPECT_FALSE(report.ok());
}

TEST(AccuracyDiff, WiderBandsTolerateTheSameDrift) {
  const auto old_doc = Json::parse(kBaseline);
  const auto new_doc = Json::parse(drifted(0.090, 0.150));
  ASSERT_TRUE(old_doc.ok() && new_doc.ok());
  obs::AccuracyDiffOptions wide;
  wide.mean_band = 0.05;
  wide.p95_band = 0.10;
  const auto report = obs::diff_accuracy_json(old_doc.value(), new_doc.value(), wide);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().has_regression());
}

}  // namespace
}  // namespace clara
