// Tests for trace analysis: the statistics must recover the generating
// profile's parameters (the inverse-problem property).
#include <gtest/gtest.h>

#include "common/strings.hpp"
#include "workload/analysis.hpp"

namespace clara::workload {
namespace {

Trace make(const std::string& spec) { return generate_trace(parse_profile(spec).value()); }

TEST(TraceAnalysis, RecoversZipfAlpha) {
  for (const double alpha : {0.0, 0.8, 1.2}) {
    const auto trace = make(strf("flows=5000 zipf=%.1f packets=60000", alpha));
    const auto analysis = analyze_trace(trace);
    EXPECT_NEAR(analysis.zipf_alpha, alpha, 0.15) << "alpha " << alpha;
  }
}

TEST(TraceAnalysis, RecoversTcpFraction) {
  const auto analysis = analyze_trace(make("tcp=0.65 packets=30000 flows=3000"));
  EXPECT_NEAR(analysis.tcp_fraction, 0.65, 0.03);
}

TEST(TraceAnalysis, DetectsArrivalProcess) {
  const auto paced = analyze_trace(make("packets=20000 arrivals=deterministic"));
  const auto bursty = analyze_trace(make("packets=20000 arrivals=poisson"));
  EXPECT_LT(paced.arrival_cv, 0.1);
  EXPECT_NEAR(bursty.arrival_cv, 1.0, 0.15);
  EXPECT_NEAR(paced.observed_pps, 60000.0, 2000.0);
}

TEST(TraceAnalysis, TopFlowsOrderedAndConsistent) {
  const auto trace = make("flows=1000 zipf=1.2 packets=30000");
  const auto analysis = analyze_trace(trace, 5);
  ASSERT_EQ(analysis.top_flows.size(), 5u);
  for (std::size_t i = 1; i < analysis.top_flows.size(); ++i) {
    EXPECT_GE(analysis.top_flows[i - 1].packets, analysis.top_flows[i].packets);
  }
  // Rank 0 of a zipf-1.2 distribution carries a visible share.
  EXPECT_GT(analysis.top_flows[0].share, 0.05);
  EXPECT_GT(analysis.top1pct_share, analysis.top_flows[0].share - 1e-9);
  EXPECT_GE(analysis.top10pct_share, analysis.top1pct_share);
}

TEST(TraceAnalysis, SynShareMatchesFlowArrivals) {
  // Every flow SYNs exactly once: SYN share of TCP ~ distinct/total.
  const auto trace = make("tcp=1.0 flows=2000 packets=20000 zipf=0.5");
  const auto analysis = analyze_trace(trace);
  const double expected = static_cast<double>(analysis.distinct_flows) / 20000.0;
  EXPECT_NEAR(analysis.syn_fraction, expected, 0.01);
}

TEST(TraceAnalysis, EmptyTraceSafe) {
  Trace empty;
  const auto analysis = analyze_trace(empty);
  EXPECT_EQ(analysis.packets, 0u);
  EXPECT_FALSE(analysis.render().empty());
}

TEST(ProfileFromTrace, RoundTripsGeneratorParameters) {
  const auto original = parse_profile("tcp=0.7 flows=4000 zipf=1.0 payload=300:900 pps=80000 packets=40000 arrivals=poisson").value();
  const auto trace = generate_trace(original);
  const auto recovered = profile_from_trace(trace);
  EXPECT_NEAR(recovered.tcp_fraction, 0.7, 0.03);
  EXPECT_NEAR(static_cast<double>(recovered.flows), 4000.0, 600.0);  // rare flows may not appear
  EXPECT_NEAR(recovered.zipf_alpha, 1.0, 0.15);
  EXPECT_EQ(recovered.payload_min, 300);
  EXPECT_EQ(recovered.payload_max, 900);
  EXPECT_NEAR(recovered.pps, 80000.0, 4000.0);
  EXPECT_EQ(recovered.arrivals, ArrivalProcess::kPoisson);
}

TEST(ProfileFromTrace, RegeneratedTraceIsStatisticallySimilar) {
  const auto original = make("flows=3000 zipf=1.1 payload=400 pps=60000 packets=30000");
  const auto regenerated = generate_trace(profile_from_trace(original));
  const auto a = analyze_trace(original);
  const auto b = analyze_trace(regenerated);
  EXPECT_NEAR(a.zipf_alpha, b.zipf_alpha, 0.2);
  EXPECT_NEAR(a.mean_payload, b.mean_payload, 20.0);
  EXPECT_NEAR(a.top10pct_share, b.top10pct_share, 0.1);
}

}  // namespace
}  // namespace clara::workload
