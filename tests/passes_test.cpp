// Tests for analysis passes: CFG/dominators/loops, block frequencies,
// API substitution, idiom pattern matching, the cost model, and dataflow
// graph construction.
#include <gtest/gtest.h>

#include "cir/builder.hpp"
#include "cir/verify.hpp"
#include "lnic/profiles.hpp"
#include "nf/nf_cir.hpp"
#include "passes/api_subst.hpp"
#include "passes/cfg.hpp"
#include "passes/costmodel.hpp"
#include "passes/dataflow.hpp"
#include "passes/patterns.hpp"

namespace clara::passes {
namespace {

using cir::FunctionBuilder;
using cir::Value;

cir::Function diamond_fn() {
  FunctionBuilder b("diamond");
  const auto entry = b.create_block("entry");
  const auto left = b.create_block("left");
  const auto right = b.create_block("right");
  const auto join = b.create_block("join");
  b.set_insert_point(entry);
  const auto cond = b.cmp_eq(Value::of_imm(1), Value::of_imm(1));
  b.cond_br(cond, left, right);
  b.set_insert_point(left);
  b.br(join);
  b.set_insert_point(right);
  b.br(join);
  b.set_insert_point(join);
  b.ret();
  return b.take();
}

TEST(CfgTest, PredsAndSuccs) {
  const auto fn = diamond_fn();
  const Cfg cfg(fn);
  EXPECT_EQ(cfg.succs(0).size(), 2u);
  EXPECT_EQ(cfg.preds(3).size(), 2u);
  EXPECT_EQ(cfg.preds(0).size(), 0u);
}

TEST(CfgTest, RpoStartsAtEntryEndsAtExit) {
  const auto fn = diamond_fn();
  const Cfg cfg(fn);
  ASSERT_EQ(cfg.rpo().size(), 4u);
  EXPECT_EQ(cfg.rpo().front(), 0u);
  EXPECT_EQ(cfg.rpo().back(), 3u);
}

TEST(CfgTest, Dominators) {
  const auto fn = diamond_fn();
  const Cfg cfg(fn);
  EXPECT_TRUE(cfg.dominates(0, 3));
  EXPECT_TRUE(cfg.dominates(0, 1));
  EXPECT_FALSE(cfg.dominates(1, 3));  // join reachable via right too
  EXPECT_TRUE(cfg.dominates(3, 3));
  EXPECT_EQ(cfg.idom(3), 0u);
}

TEST(CfgTest, UnreachableBlockExcluded) {
  FunctionBuilder b("f");
  const auto entry = b.create_block("entry");
  b.create_block("orphan");
  const auto orphan = 1u;
  b.set_insert_point(entry);
  b.ret();
  b.set_insert_point(orphan);
  b.ret();
  const auto fn = b.take();
  const Cfg cfg(fn);
  EXPECT_TRUE(cfg.reachable(0));
  EXPECT_FALSE(cfg.reachable(1));
  EXPECT_EQ(cfg.rpo().size(), 1u);
}

TEST(CfgTest, FindsNaturalLoop) {
  const auto fn = nf::build_dpi_nf();
  const Cfg cfg(fn);
  const auto loops = find_loops(fn, cfg);
  ASSERT_EQ(loops.size(), 1u);
  const auto loop_block = fn.find_block("scan_loop");
  EXPECT_EQ(loops[0].header, loop_block);
  EXPECT_EQ(loops[0].latch, loop_block);
  EXPECT_EQ(loops[0].body.size(), 1u);
}

TEST(CfgTest, NoLoopsInDiamond) {
  const auto fn = diamond_fn();
  const Cfg cfg(fn);
  EXPECT_TRUE(find_loops(fn, cfg).empty());
}

TEST(Frequencies, DiamondSplitsFlow) {
  const auto fn = diamond_fn();
  const Cfg cfg(fn);
  const auto freq = estimate_block_frequencies(fn, cfg, 0.5, {});
  EXPECT_DOUBLE_EQ(freq[0], 1.0);
  EXPECT_DOUBLE_EQ(freq[1], 0.5);
  EXPECT_DOUBLE_EQ(freq[2], 0.5);
  EXPECT_DOUBLE_EQ(freq[3], 1.0);
}

TEST(Frequencies, BiasedBranch) {
  const auto fn = diamond_fn();
  const Cfg cfg(fn);
  const auto freq = estimate_block_frequencies(fn, cfg, 0.9, {});
  EXPECT_DOUBLE_EQ(freq[1], 0.9);  // target0 = left
  EXPECT_NEAR(freq[2], 0.1, 1e-12);
}

TEST(Frequencies, TripMultiplier) {
  const auto fn = nf::build_dpi_nf();
  const Cfg cfg(fn);
  const auto freq = estimate_block_frequencies(fn, cfg, 0.5, {{"payload_len", 200.0}});
  const auto loop = fn.find_block("scan_loop");
  // entry flow 1.0, branch prob to loop 0.5, trip 200 -> 100 executions.
  EXPECT_NEAR(freq[loop], 100.0, 1e-9);
}

TEST(ApiSubst, RewritesDpdkCalls) {
  auto fn = nf::build_nat_nf();
  const auto report = substitute_framework_apis(fn);
  EXPECT_GE(report.substituted, 4u);  // mtod, hash_lookup, add_key, cksum, tx_burst
  EXPECT_TRUE(report.unknown_calls.empty());
  // All calls are now canonical vcalls.
  for (const auto& block : fn.blocks) {
    for (const auto& instr : block.instrs) {
      if (instr.op == cir::Opcode::kCall) EXPECT_TRUE(cir::is_vcall(instr.callee)) << instr.callee;
    }
  }
  EXPECT_TRUE(cir::verify(fn).ok());
}

TEST(ApiSubst, LpmGetsFlowCacheDefault) {
  auto fn = nf::build_lpm_nf({.rules = 1000, .use_flow_cache = true});
  substitute_framework_apis(fn);
  bool found = false;
  for (const auto& block : fn.blocks) {
    for (const auto& instr : block.instrs) {
      if (instr.op == cir::Opcode::kCall && instr.callee == "vcall_lpm_lookup") {
        found = true;
        ASSERT_EQ(instr.args.size(), 3u);
        EXPECT_TRUE(instr.args[2].is_imm());
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(ApiSubst, ReportsUnknownCalls) {
  FunctionBuilder b("f");
  b.set_insert_point(b.create_block("entry"));
  b.call("my_mystery_helper", {}, false);
  b.ret();
  auto fn = b.take();
  const auto report = substitute_framework_apis(fn);
  EXPECT_EQ(report.substituted, 0u);
  ASSERT_EQ(report.unknown_calls.size(), 1u);
  EXPECT_EQ(report.unknown_calls[0], "my_mystery_helper");
}

TEST(ApiSubst, IdempotentOnCanonical) {
  auto fn = nf::build_fw_nf();
  substitute_framework_apis(fn);
  const auto again = substitute_framework_apis(fn);
  EXPECT_EQ(again.substituted, 0u);
}

TEST(Patterns, CollapsesScanLoop) {
  auto fn = nf::build_dpi_nf();
  const auto report = collapse_packet_loops(fn);
  EXPECT_EQ(report.scan_loops, 1u);
  EXPECT_EQ(report.csum_loops, 0u);
  EXPECT_TRUE(cir::verify(fn).ok()) << cir::verify(fn).error().message;
  // The loop block is now a single vcall + br, no longer self-looping.
  const auto loop = fn.find_block("scan_loop");
  ASSERT_NE(loop, ~0u);
  ASSERT_EQ(fn.blocks[loop].instrs.size(), 2u);
  EXPECT_EQ(fn.blocks[loop].instrs[0].callee, "vcall_payload_scan");
  EXPECT_FALSE(fn.blocks[loop].has_trip);
}

TEST(Patterns, CollapsesCsumLoop) {
  auto fn = nf::build_csum_loop_nf();
  const auto report = collapse_packet_loops(fn);
  EXPECT_EQ(report.csum_loops, 1u);
  EXPECT_EQ(report.scan_loops, 0u);
  EXPECT_TRUE(cir::verify(fn).ok());
  const auto loop = fn.find_block("sum_loop");
  EXPECT_EQ(fn.blocks[loop].instrs[0].callee, "vcall_csum");
}

TEST(Patterns, LeavesNonIdiomLoopsAlone) {
  // A loop over *state* memory is not a packet-byte idiom.
  FunctionBuilder b("f");
  const auto state = b.add_state(cir::StateObject{"s", 8, 64, cir::StatePattern::kArray});
  const auto entry = b.create_block("entry");
  const auto loop = b.create_block("loop");
  const auto out = b.create_block("out");
  b.set_insert_point(entry);
  b.br(loop);
  b.set_insert_point(loop);
  const auto i = b.phi();
  const auto v = b.load_state(state, i);
  (void)v;
  const auto i1 = b.add(i, Value::of_imm(1));
  const auto more = b.cmp_lt(i1, Value::of_imm(64));
  b.cond_br(more, loop, out);
  b.add_incoming(i, Value::of_imm(0), entry);
  b.add_incoming(i, i1, loop);
  b.set_insert_point(out);
  b.ret();
  auto fn = b.take();
  const auto report = collapse_packet_loops(fn);
  EXPECT_EQ(report.total(), 0u);
}

TEST(Patterns, VnfLoopCollapses) {
  auto fn = nf::build_vnf_chain();
  const auto report = collapse_packet_loops(fn);
  EXPECT_EQ(report.scan_loops, 1u);
  EXPECT_TRUE(cir::verify(fn).ok());
}

TEST(InstrMixTest, CountsClasses) {
  auto fn = nf::build_nat_nf();
  substitute_framework_apis(fn);
  const auto translate = fn.find_block("translate");
  const auto mix = instr_mix(fn.blocks[translate], 0, fn.blocks[translate].instrs.size());
  EXPECT_GE(mix.alu, 1u);  // the xor
  EXPECT_EQ(mix.mul, 0u);
  EXPECT_GE(mix.branch, 0u);
}

TEST(InstrMixTest, StateAccessesCounted) {
  auto fn = nf::build_hh_nf();
  substitute_framework_apis(fn);
  InstrMix total;
  for (const auto& block : fn.blocks) total.add(instr_mix(block, 0, block.instrs.size()));
  EXPECT_EQ(total.state_reads.at(0), 1u);  // the explicit counter read-back
}

TEST(InstrMixTest, AddMerges) {
  InstrMix a, b;
  a.alu = 2;
  a.state_reads[0] = 1;
  b.alu = 3;
  b.state_reads[0] = 2;
  b.state_writes[1] = 4;
  a.add(b);
  EXPECT_EQ(a.alu, 5u);
  EXPECT_EQ(a.state_reads[0], 3u);
  EXPECT_EQ(a.state_writes[1], 4u);
}

TEST(CostModel, VcallSupportMatrix) {
  using cir::VCall;
  using lnic::UnitKind;
  EXPECT_TRUE(unit_supports_vcall(UnitKind::kNpuCore, false, VCall::kCrypto));
  EXPECT_TRUE(unit_supports_vcall(UnitKind::kChecksumAccel, false, VCall::kCsum));
  EXPECT_FALSE(unit_supports_vcall(UnitKind::kChecksumAccel, false, VCall::kCrypto));
  EXPECT_FALSE(unit_supports_vcall(UnitKind::kHeaderEngine, false, VCall::kTableLookup));  // parser
  EXPECT_TRUE(unit_supports_vcall(UnitKind::kHeaderEngine, true, VCall::kTableLookup));    // MA stage
  EXPECT_FALSE(unit_supports_vcall(UnitKind::kLpmEngine, false, VCall::kCsum));
  EXPECT_TRUE(unit_supports_vcall(UnitKind::kLpmEngine, false, VCall::kLpmLookup));
}

TEST(CostModel, GeneralComputeSupport) {
  using lnic::UnitKind;
  InstrMix clean;
  clean.alu = 3;
  clean.cmp = 1;
  EXPECT_TRUE(unit_supports_general_compute(UnitKind::kNpuCore, false, clean));
  EXPECT_TRUE(unit_supports_general_compute(UnitKind::kHeaderEngine, true, clean));
  EXPECT_FALSE(unit_supports_general_compute(UnitKind::kHeaderEngine, false, clean));
  InstrMix heavy = clean;
  heavy.mul = 1;
  EXPECT_FALSE(unit_supports_general_compute(UnitKind::kHeaderEngine, true, heavy));
  InstrMix empty;
  EXPECT_TRUE(unit_supports_general_compute(UnitKind::kChecksumAccel, false, empty));
  EXPECT_FALSE(unit_supports_general_compute(UnitKind::kChecksumAccel, false, clean));
}

TEST(CostModel, CsumAccelVsSoftware) {
  const auto profile = lnic::netronome_agilio_cx();
  CostHints hints;
  const double accel =
      vcall_compute_cycles(cir::VCall::kCsum, lnic::UnitKind::kChecksumAccel, 1000.0, nullptr, profile.params, hints);
  const double sw =
      vcall_compute_cycles(cir::VCall::kCsum, lnic::UnitKind::kNpuCore, 1000.0, nullptr, profile.params, hints);
  EXPECT_NEAR(accel, 300.0, 1.0);
  EXPECT_NEAR(sw - accel, 1700.0, 1.0);  // the paper's "1700 extra cycles"
}

TEST(CostModel, LpmEngineUsesFlowCacheHitRate) {
  const auto profile = lnic::netronome_agilio_cx();
  cir::StateObject table{"routes", 16, 10000, cir::StatePattern::kArray};
  CostHints all_hit;
  all_hit.flow_cache_hit_rate = 1.0;
  CostHints all_miss;
  all_miss.flow_cache_hit_rate = 0.0;
  const double hit =
      vcall_compute_cycles(cir::VCall::kLpmLookup, lnic::UnitKind::kLpmEngine, 0, &table, profile.params, all_hit);
  const double miss =
      vcall_compute_cycles(cir::VCall::kLpmLookup, lnic::UnitKind::kLpmEngine, 0, &table, profile.params, all_miss);
  EXPECT_NEAR(hit, 200.0, 1.0);
  EXPECT_GT(miss, 100000.0);  // DRAM table walk at 10k entries
}

TEST(CostModel, LpmCostGrowsWithEntries) {
  const auto profile = lnic::netronome_agilio_cx();
  CostHints miss;
  miss.flow_cache_hit_rate = 0.0;
  double prev = 0.0;
  for (std::uint64_t entries : {5000ull, 10000ull, 20000ull, 30000ull}) {
    cir::StateObject table{"routes", 16, entries, cir::StatePattern::kArray};
    const double cost =
        vcall_compute_cycles(cir::VCall::kLpmLookup, lnic::UnitKind::kLpmEngine, 0, &table, profile.params, miss);
    EXPECT_GT(cost, prev);
    prev = cost;
  }
}

TEST(CostModel, StateAccessCounts) {
  cir::StateObject table{"t", 64, 65536, cir::StatePattern::kHashTable};
  EXPECT_DOUBLE_EQ(vcall_state_accesses(cir::VCall::kTableLookup, lnic::UnitKind::kNpuCore, &table), 2.0);
  EXPECT_DOUBLE_EQ(vcall_state_accesses(cir::VCall::kTableLookup, lnic::UnitKind::kHeaderEngine, &table), 1.0);
  // LPM walk memory costs live in the kLpmDram curve on every unit kind.
  EXPECT_DOUBLE_EQ(vcall_state_accesses(cir::VCall::kLpmLookup, lnic::UnitKind::kLpmEngine, &table), 0.0);
  EXPECT_DOUBLE_EQ(vcall_state_accesses(cir::VCall::kLpmLookup, lnic::UnitKind::kNpuCore, &table), 0.0);
  EXPECT_DOUBLE_EQ(vcall_state_accesses(cir::VCall::kCsum, lnic::UnitKind::kNpuCore, nullptr), 0.0);
}

TEST(CostModel, PacketAccessResidencySplit) {
  const auto profile = lnic::netronome_agilio_cx();
  // Small packet: all CTM.
  EXPECT_NEAR(packet_access_cycles(300.0, -1.0, profile.params), 50.0, 1e-9);
  // Large packet: average between CTM head and EMEM tail.
  const double large = packet_access_cycles(2048.0, -1.0, profile.params);
  EXPECT_GT(large, 50.0);
  EXPECT_LT(large, 500.0);
  // Offset-directed access.
  EXPECT_NEAR(packet_access_cycles(2048.0, 100.0, profile.params), 50.0, 1e-9);
  EXPECT_NEAR(packet_access_cycles(2048.0, 1500.0, profile.params), 500.0, 1e-9);
}

TEST(CostModel, FpEmulationPenalty) {
  const auto netronome = lnic::netronome_agilio_cx();
  const auto soc = lnic::soc_arm_nic();
  InstrMix mix;
  mix.fp = 4;
  const double on_npu = mix_compute_cycles(mix, lnic::UnitKind::kNpuCore, netronome.params);
  const double on_arm = mix_compute_cycles(mix, lnic::UnitKind::kNpuCore, soc.params);
  EXPECT_GT(on_npu, 10.0 * on_arm);  // no FPU on the NPU
}

TEST(Dataflow, IsolatesAccelVcalls) {
  auto fn = nf::build_nat_nf();
  substitute_framework_apis(fn);
  CostHints hints;
  const auto graph = DataflowGraph::build(fn, hints);
  int accel_nodes = 0;
  for (const auto& node : graph.nodes()) {
    if (node.accel_candidate) {
      ++accel_nodes;
      EXPECT_EQ(node.end - node.begin, 1u);
      ASSERT_EQ(node.vcalls.size(), 1u);
      EXPECT_TRUE(is_accel_vcall(node.vcalls[0].v));
    }
  }
  EXPECT_EQ(accel_nodes, 2);  // parse + csum
}

TEST(Dataflow, NodeOfCoversAllInstrs) {
  auto fn = nf::build_fw_nf();
  substitute_framework_apis(fn);
  CostHints hints;
  const auto graph = DataflowGraph::build(fn, hints);
  for (std::uint32_t blk = 0; blk < fn.blocks.size(); ++blk) {
    for (std::uint32_t i = 0; i < fn.blocks[blk].instrs.size(); ++i) {
      const auto node = graph.node_of(blk, i);
      ASSERT_NE(node, ~0u) << "block " << blk << " instr " << i;
      EXPECT_EQ(graph.nodes()[node].block, blk);
      EXPECT_GE(i, graph.nodes()[node].begin);
      EXPECT_LT(i, graph.nodes()[node].end);
    }
  }
}

TEST(Dataflow, EdgesFollowCfg) {
  auto fn = nf::build_fw_nf();
  substitute_framework_apis(fn);
  CostHints hints;
  const auto graph = DataflowGraph::build(fn, hints);
  // Every edge connects existing nodes and stays within weight bounds.
  for (const auto& edge : graph.edges()) {
    EXPECT_LT(edge.from, graph.size());
    EXPECT_LT(edge.to, graph.size());
    EXPECT_GT(edge.weight, 0.0);
    EXPECT_LE(edge.weight, 1.0 + 1e-9);
  }
  EXPECT_GT(graph.edges().size(), 0u);
}

TEST(Dataflow, WeightsReflectBranching) {
  auto fn = nf::build_fw_nf();
  substitute_framework_apis(fn);
  CostHints hints;
  hints.branch_prob = 0.5;
  const auto graph = DataflowGraph::build(fn, hints);
  const auto entry_blk = fn.find_block("entry");
  const auto reject_blk = fn.find_block("reject");
  double entry_weight = 0.0, reject_weight = 0.0;
  for (const auto& node : graph.nodes()) {
    if (node.block == entry_blk) entry_weight = node.weight;
    if (node.block == reject_blk) reject_weight = node.weight;
  }
  EXPECT_DOUBLE_EQ(entry_weight, 1.0);
  EXPECT_GT(reject_weight, 0.0);
  EXPECT_LT(reject_weight, 1.0);
}

}  // namespace
}  // namespace clara::passes
