// Tests for the LNIC graph model, parameter store, and NIC profiles.
#include <gtest/gtest.h>

#include "lnic/lnic.hpp"
#include "lnic/params.hpp"
#include "lnic/profiles.hpp"

namespace clara::lnic {
namespace {

Graph small_graph() {
  Graph g;
  const auto npu = g.add_compute("npu", ComputeUnit{UnitKind::kNpuCore, 0, 8, 1});
  const auto mem = g.add_memory("mem", MemoryRegion{MemKind::kCtm, 256_KiB, 0, 0});
  g.add_edge(npu, mem, EdgeKind::kMemAccess, 1.0);
  return g;
}

TEST(LnicGraph, AddAndQueryNodes) {
  Graph g = small_graph();
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.compute_units().size(), 1u);
  EXPECT_EQ(g.memory_regions().size(), 1u);
  EXPECT_TRUE(g.switch_hubs().empty());
  EXPECT_TRUE(g.find_by_name("npu").has_value());
  EXPECT_FALSE(g.find_by_name("nope").has_value());
}

TEST(LnicGraph, NodeTypeDispatch) {
  Graph g = small_graph();
  EXPECT_EQ(g.node(0).type(), NodeType::kCompute);
  EXPECT_NE(g.node(0).compute(), nullptr);
  EXPECT_EQ(g.node(0).memory(), nullptr);
  EXPECT_EQ(g.node(1).type(), NodeType::kMemory);
}

TEST(LnicGraph, AccessWeight) {
  Graph g = small_graph();
  EXPECT_DOUBLE_EQ(g.access_weight(0, 1).value(), 1.0);
  const auto far = g.add_memory("far", MemoryRegion{MemKind::kEmem, 1_GiB, -1, 0});
  EXPECT_FALSE(g.access_weight(0, far).has_value());
}

TEST(LnicGraph, ValidatesCleanGraph) {
  EXPECT_TRUE(small_graph().validate().ok());
}

TEST(LnicGraph, RejectsBadMemAccessEdge) {
  Graph g;
  const auto a = g.add_memory("m1", MemoryRegion{});
  const auto b = g.add_memory("m2", MemoryRegion{});
  g.add_edge(a, b, EdgeKind::kMemAccess, 1.0);
  EXPECT_FALSE(g.validate().ok());
}

TEST(LnicGraph, RejectsSubUnityNumaWeight) {
  Graph g;
  const auto npu = g.add_compute("npu", ComputeUnit{});
  const auto mem = g.add_memory("mem", MemoryRegion{});
  g.add_edge(npu, mem, EdgeKind::kMemAccess, 0.5);
  EXPECT_FALSE(g.validate().ok());
}

TEST(LnicGraph, RejectsComputeWithoutMemory) {
  Graph g;
  g.add_compute("npu", ComputeUnit{});
  EXPECT_FALSE(g.validate().ok());
}

TEST(LnicGraph, RejectsBackwardsPipelineEdge) {
  Graph g;
  const auto late = g.add_compute("late", ComputeUnit{UnitKind::kNpuCore, 0, 1, 2});
  const auto early = g.add_compute("early", ComputeUnit{UnitKind::kNpuCore, 0, 1, 0});
  const auto mem = g.add_memory("mem", MemoryRegion{});
  g.add_edge(late, mem, EdgeKind::kMemAccess, 1.0);
  g.add_edge(early, mem, EdgeKind::kMemAccess, 1.0);
  g.add_edge(late, early, EdgeKind::kPipeline);
  EXPECT_FALSE(g.validate().ok());
}

TEST(LnicGraph, RejectsHierarchyBetweenNonMemory) {
  Graph g = small_graph();
  g.add_edge(0, 1, EdgeKind::kHierarchy);  // compute -> memory
  EXPECT_FALSE(g.validate().ok());
}

TEST(LnicGraph, PipelineReachability) {
  Graph g;
  const auto a = g.add_compute("a", ComputeUnit{UnitKind::kHeaderEngine, -1, 1, 0});
  const auto b = g.add_compute("b", ComputeUnit{UnitKind::kNpuCore, -1, 1, 1});
  const auto c = g.add_compute("c", ComputeUnit{UnitKind::kNpuCore, -1, 1, 2});
  g.add_edge(a, b, EdgeKind::kPipeline);
  g.add_edge(b, c, EdgeKind::kPipeline);
  EXPECT_TRUE(g.pipeline_reachable(a, c));
  EXPECT_FALSE(g.pipeline_reachable(c, a));
  EXPECT_TRUE(g.pipeline_reachable(b, b));
}

TEST(LnicGraph, UnitsOfKind) {
  const auto profile = netronome_agilio_cx();
  EXPECT_EQ(profile.graph.units_of_kind(UnitKind::kChecksumAccel).size(), 1u);
  EXPECT_EQ(profile.graph.units_of_kind(UnitKind::kNpuCore).size(), 28u);
}

TEST(PiecewiseLinearTest, InterpolatesAndClamps) {
  PiecewiseLinear pl({{0.0, 10.0}, {100.0, 110.0}});
  EXPECT_DOUBLE_EQ(pl.eval(-5.0), 10.0);   // clamp low
  EXPECT_DOUBLE_EQ(pl.eval(0.0), 10.0);
  EXPECT_DOUBLE_EQ(pl.eval(50.0), 60.0);   // interpolation
  EXPECT_DOUBLE_EQ(pl.eval(100.0), 110.0);
  EXPECT_DOUBLE_EQ(pl.eval(1e9), 110.0);   // clamp high
}

TEST(PiecewiseLinearTest, UnsortedInputSorted) {
  PiecewiseLinear pl({{100.0, 200.0}, {0.0, 0.0}});
  EXPECT_DOUBLE_EQ(pl.eval(50.0), 100.0);
}

TEST(PiecewiseLinearTest, Constant) {
  const auto pl = PiecewiseLinear::constant(7.0);
  EXPECT_DOUBLE_EQ(pl.eval(-100.0), 7.0);
  EXPECT_DOUBLE_EQ(pl.eval(100.0), 7.0);
}

TEST(ParameterStoreTest, ScalarsAndCurves) {
  ParameterStore p;
  p.set_scalar("a", 3.5);
  p.set_curve("c", PiecewiseLinear({{0.0, 1.0}, {10.0, 11.0}}));
  EXPECT_DOUBLE_EQ(p.scalar("a"), 3.5);
  EXPECT_TRUE(p.has("a"));
  EXPECT_TRUE(p.has("c"));
  EXPECT_FALSE(p.has("zzz"));
  EXPECT_DOUBLE_EQ(p.eval("c", 5.0), 6.0);
  EXPECT_DOUBLE_EQ(p.eval("a", 42.0), 3.5);  // scalar constant in x
  EXPECT_FALSE(p.try_scalar("zzz").has_value());
  EXPECT_EQ(p.try_curve("a"), nullptr);
  EXPECT_NE(p.try_curve("c"), nullptr);
}

TEST(ParameterStoreTest, SerializeRoundTrip) {
  ParameterStore p;
  p.set_scalar("x.y", 2.25);
  p.set_scalar("neg", -17.0);
  p.set_curve("curve.z", PiecewiseLinear({{0.0, 60.0}, {1000.0, 300.0}}));
  const auto text = p.serialize();
  const auto parsed = ParameterStore::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_DOUBLE_EQ(parsed.value().scalar("x.y"), 2.25);
  EXPECT_DOUBLE_EQ(parsed.value().scalar("neg"), -17.0);
  EXPECT_DOUBLE_EQ(parsed.value().eval("curve.z", 500.0), 180.0);
}

TEST(ParameterStoreTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParameterStore::parse("no equals sign").ok());
  EXPECT_FALSE(ParameterStore::parse("k = notanumber").ok());
  EXPECT_FALSE(ParameterStore::parse("k = [(1,2), (3]").ok());
  EXPECT_FALSE(ParameterStore::parse("k = []").ok());
  EXPECT_FALSE(ParameterStore::parse("= 5").ok());
}

TEST(ParameterStoreTest, ParseIgnoresCommentsAndBlanks) {
  const auto parsed = ParameterStore::parse("# comment\n\nk = 1\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed.value().scalar("k"), 1.0);
}

class ProfileTest : public ::testing::TestWithParam<int> {};

TEST_P(ProfileTest, GraphValidates) {
  const auto profiles = all_profiles();
  const auto& profile = profiles[static_cast<std::size_t>(GetParam())];
  const auto status = profile.graph.validate();
  EXPECT_TRUE(status.ok()) << profile.name << ": " << (status.ok() ? "" : status.error().message);
}

TEST_P(ProfileTest, ParamsComplete) {
  const auto profiles = all_profiles();
  const auto& profile = profiles[static_cast<std::size_t>(GetParam())];
  const auto status = validate_params(profile.params);
  EXPECT_TRUE(status.ok()) << profile.name << ": " << (status.ok() ? "" : status.error().message);
}

TEST_P(ProfileTest, HasComputeAndMemory) {
  const auto profiles = all_profiles();
  const auto& profile = profiles[static_cast<std::size_t>(GetParam())];
  EXPECT_FALSE(profile.graph.compute_units().empty()) << profile.name;
  EXPECT_FALSE(profile.graph.memory_regions().empty()) << profile.name;
  EXPECT_FALSE(profile.graph.switch_hubs().empty()) << profile.name;
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileTest, ::testing::Values(0, 1, 2));

TEST(Profiles, NetronomePaperNumbers) {
  const auto profile = netronome_agilio_cx();
  const auto& p = profile.params;
  // §3.2: CTM ~50 cycles, IMEM ~250, EMEM ~500; checksum 1000 B ~300.
  EXPECT_DOUBLE_EQ(p.scalar(keys::kMemReadCtm), 50.0);
  EXPECT_DOUBLE_EQ(p.scalar(keys::kMemReadImem), 250.0);
  EXPECT_DOUBLE_EQ(p.scalar(keys::kMemReadEmem), 500.0);
  EXPECT_NEAR(p.eval(keys::kCsumAccel, 1000.0), 300.0, 1.0);
  EXPECT_DOUBLE_EQ(p.scalar(keys::kCsumSwExtra), 1700.0);
  // Metadata modifications 2-5 cycles; parse ~150 for a 40 B header.
  EXPECT_GE(p.scalar(keys::kInstrMove), 2.0);
  EXPECT_LE(p.scalar(keys::kInstrMove), 5.0);
  EXPECT_NEAR(p.scalar(keys::kParseBase) + 40.0 * p.scalar(keys::kParsePerByte), 150.0, 10.0);
}

TEST(Profiles, NetronomeIslandStructure) {
  const auto profile = netronome_agilio_cx();
  // Remote CTM access is NUMA-weighted.
  const auto npu0 = profile.graph.find_by_name("npu0_0");
  const auto ctm0 = profile.graph.find_by_name("ctm0");
  const auto ctm1 = profile.graph.find_by_name("ctm1");
  ASSERT_TRUE(npu0 && ctm0 && ctm1);
  EXPECT_DOUBLE_EQ(profile.graph.access_weight(*npu0, *ctm0).value(), 1.0);
  EXPECT_DOUBLE_EQ(profile.graph.access_weight(*npu0, *ctm1).value(), 2.0);
}

TEST(Profiles, NetronomeParserIsNotMatchAction) {
  const auto profile = netronome_agilio_cx();
  const auto parser = profile.graph.find_by_name("parser");
  ASSERT_TRUE(parser.has_value());
  EXPECT_FALSE(profile.graph.node(*parser).compute()->match_action);
}

TEST(Profiles, AsicStagesAreMatchAction) {
  const auto profile = pipeline_asic_nic();
  const auto stage = profile.graph.find_by_name("ma-stage0");
  ASSERT_TRUE(stage.has_value());
  EXPECT_TRUE(profile.graph.node(*stage).compute()->match_action);
}

TEST(Profiles, DistinctCharacters) {
  // The three profiles should have meaningfully different parameters —
  // that is the point of cross-NIC comparison.
  const auto netronome = netronome_agilio_cx();
  const auto soc = soc_arm_nic();
  const auto asic = pipeline_asic_nic();
  EXPECT_GT(soc.params.scalar(keys::kClockHz), netronome.params.scalar(keys::kClockHz));
  EXPECT_LT(asic.params.scalar(keys::kParseBase), netronome.params.scalar(keys::kParseBase));
  EXPECT_EQ(soc.params.scalar(keys::kFlowCacheCapacity), 0.0);
}

}  // namespace
}  // namespace clara::lnic
