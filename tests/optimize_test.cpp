// Tests for the CIR cleanup passes: constant folding, branch
// simplification, dead-code elimination, unreachable-block removal —
// and the preservation properties (verification + observational
// equivalence under the interpreter).
#include <gtest/gtest.h>

#include "cir/builder.hpp"
#include "cir/interp.hpp"
#include "cir/verify.hpp"
#include "nf/nf_cir.hpp"
#include "passes/api_subst.hpp"
#include "passes/optimize.hpp"
#include "passes/patterns.hpp"

namespace clara::passes {
namespace {

using cir::FunctionBuilder;
using cir::Opcode;
using cir::Value;

class CountingHandler final : public cir::VCallHandler {
 public:
  std::uint64_t handle(cir::VCall v, std::span<const std::uint64_t> args) override {
    calls.emplace_back(v, std::vector<std::uint64_t>(args.begin(), args.end()));
    switch (v) {
      case cir::VCall::kGetHdr: return 300;   // any field reads 300
      case cir::VCall::kTableLookup: return 1;
      case cir::VCall::kMeter: return 1;
      default: return 0;
    }
  }
  std::vector<std::pair<cir::VCall, std::vector<std::uint64_t>>> calls;
};

TEST(Optimize, FoldsConstantChain) {
  FunctionBuilder b("f");
  b.set_insert_point(b.create_block("entry"));
  const auto a = b.add(Value::of_imm(2), Value::of_imm(3));   // 5
  const auto c = b.mul(a, Value::of_imm(4));                  // 20
  const auto d = b.cmp_gt(c, Value::of_imm(10));              // 1
  b.vcall(cir::VCall::kEmit, {d}, false);
  b.ret();
  auto fn = b.take();
  const auto report = optimize(fn);
  EXPECT_GE(report.folded, 3u);
  EXPECT_GE(report.dead_removed, 3u);  // the folded defs die
  EXPECT_TRUE(cir::verify(fn).ok());
  // The emit call now takes a constant.
  const auto& instrs = fn.blocks[0].instrs;
  ASSERT_EQ(instrs.size(), 2u);  // call + ret
  EXPECT_EQ(instrs[0].op, Opcode::kCall);
  EXPECT_TRUE(instrs[0].args[0].is_imm());
  EXPECT_EQ(instrs[0].args[0].imm, 1);
}

TEST(Optimize, SimplifiesConstantBranchAndRemovesDeadBlock) {
  FunctionBuilder b("f");
  const auto entry = b.create_block("entry");
  const auto live = b.create_block("live");
  const auto dead = b.create_block("dead");
  b.set_insert_point(entry);
  const auto cond = b.cmp_eq(Value::of_imm(1), Value::of_imm(1));
  b.cond_br(cond, live, dead);
  b.set_insert_point(live);
  b.vcall(cir::VCall::kEmit, {Value::of_imm(1)}, false);
  b.ret();
  b.set_insert_point(dead);
  b.vcall(cir::VCall::kDrop, {}, false);
  b.ret();
  auto fn = b.take();
  const auto report = optimize(fn);
  EXPECT_EQ(report.branches_simplified, 1u);
  EXPECT_EQ(report.blocks_removed, 1u);
  EXPECT_EQ(fn.blocks.size(), 2u);
  EXPECT_TRUE(cir::verify(fn).ok());
}

TEST(Optimize, PrunesPhiEdgesOfRemovedBranch) {
  FunctionBuilder b("f");
  const auto entry = b.create_block("entry");
  const auto left = b.create_block("left");
  const auto join = b.create_block("join");
  b.set_insert_point(entry);
  const auto cond = b.cmp_eq(Value::of_imm(0), Value::of_imm(1));  // false -> join directly
  b.cond_br(cond, left, join);
  b.set_insert_point(left);
  const auto v = b.add(Value::of_imm(7), Value::of_imm(0));
  b.br(join);
  b.set_insert_point(join);
  const auto merged = b.phi();
  b.add_incoming(merged, v, left);
  b.add_incoming(merged, Value::of_imm(9), entry);
  b.vcall(cir::VCall::kEmit, {merged}, false);
  b.ret();
  auto fn = b.take();
  optimize(fn);
  ASSERT_TRUE(cir::verify(fn).ok()) << cir::verify(fn).error().message;
  // The phi folded to its single surviving input (9).
  bool emit_arg_is_9 = false;
  for (const auto& block : fn.blocks) {
    for (const auto& instr : block.instrs) {
      if (instr.op == Opcode::kCall && instr.callee == "vcall_emit") {
        emit_arg_is_9 = instr.args[0].is_imm() && instr.args[0].imm == 9;
      }
    }
  }
  EXPECT_TRUE(emit_arg_is_9);
}

TEST(Optimize, NeverRemovesCallsOrStores) {
  FunctionBuilder b("f");
  const auto state = b.add_state(cir::StateObject{"s", 8, 16, cir::StatePattern::kArray});
  b.set_insert_point(b.create_block("entry"));
  b.vcall(cir::VCall::kCsum, {Value::of_imm(100)});  // result unused, but effects priced
  b.store_state(state, Value::of_imm(0), Value::of_imm(1));
  b.ret();
  auto fn = b.take();
  const auto before = fn.blocks[0].instrs.size();
  optimize(fn);
  EXPECT_EQ(fn.blocks[0].instrs.size(), before);
}

TEST(Optimize, DoesNotFoldDivByZero) {
  FunctionBuilder b("f");
  b.set_insert_point(b.create_block("entry"));
  const auto v = b.div(Value::of_imm(5), Value::of_imm(0));
  b.vcall(cir::VCall::kEmit, {v}, false);
  b.ret();
  auto fn = b.take();
  optimize(fn);
  EXPECT_EQ(fn.blocks[0].instrs[0].op, Opcode::kDiv);  // left in place
}

TEST(Optimize, IdempotentOnCorpus) {
  for (auto builder : {+[] { return nf::build_nat_nf(); }, +[] { return nf::build_fw_nf(); },
                       +[] { return nf::build_dpi_nf(); }, +[] { return nf::build_vnf_chain(); }}) {
    auto fn = builder();
    substitute_framework_apis(fn);
    optimize(fn);
    auto second = optimize(fn);
    EXPECT_EQ(second.total(), 0u) << fn.name;
    EXPECT_TRUE(cir::verify(fn).ok()) << fn.name;
  }
}

TEST(Optimize, PreservesObservableBehaviour) {
  // Same vcall sequence (names + argument values) before and after, for
  // every corpus NF, under a fixed environment.
  for (auto builder : {+[] { return nf::build_nat_nf(); }, +[] { return nf::build_fw_nf(); },
                       +[] { return nf::build_hh_nf(); }, +[] { return nf::build_meter_nf(); },
                       +[] { return nf::build_crypto_gw_nf(); }, +[] { return nf::build_rewrite_nf(); }}) {
    auto original = builder();
    substitute_framework_apis(original);
    auto optimized = original;
    optimize(optimized);
    ASSERT_TRUE(cir::verify(optimized).ok()) << original.name;

    CountingHandler h1, h2;
    cir::Interpreter i1(original, h1);
    cir::Interpreter i2(optimized, h2);
    ASSERT_TRUE(i1.run().ok()) << original.name;
    ASSERT_TRUE(i2.run().ok()) << original.name;
    ASSERT_EQ(h1.calls.size(), h2.calls.size()) << original.name;
    for (std::size_t i = 0; i < h1.calls.size(); ++i) {
      EXPECT_EQ(h1.calls[i].first, h2.calls[i].first) << original.name << " call " << i;
      EXPECT_EQ(h1.calls[i].second, h2.calls[i].second) << original.name << " call " << i;
    }
  }
}

TEST(Optimize, ShrinksHandWrittenSlop) {
  // A function with obvious front-end slop: folds shrink it measurably.
  FunctionBuilder b("sloppy");
  const auto entry = b.create_block("entry");
  b.set_insert_point(entry);
  Value acc = Value::of_imm(0);
  for (int i = 0; i < 20; ++i) acc = b.add(acc, Value::of_imm(i));
  const auto unused1 = b.mul(Value::of_imm(3), Value::of_imm(7));
  const auto unused2 = b.bxor(unused1, unused1);
  (void)unused2;
  b.vcall(cir::VCall::kEmit, {acc}, false);
  b.ret();
  auto fn = b.take();
  const auto before = fn.blocks[0].instrs.size();
  const auto report = optimize(fn);
  EXPECT_LT(fn.blocks[0].instrs.size(), before / 2);
  EXPECT_GE(report.folded, 20u);
}

}  // namespace
}  // namespace clara::passes
