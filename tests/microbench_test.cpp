// Tests for microbenchmark-based parameter extraction: the fitted
// parameters must recover the simulator's ground-truth configuration.
#include <gtest/gtest.h>

#include "lnic/profiles.hpp"
#include "microbench/microbench.hpp"

namespace clara::microbench {
namespace {

namespace keys = lnic::keys;

class ExtractionTest : public ::testing::Test {
 protected:
  static const ExtractionResult& result() {
    static const ExtractionResult r =
        extract_parameters(nicsim::netronome_config(), lnic::netronome_agilio_cx().params);
    return r;
  }
};

TEST_F(ExtractionTest, AllRequiredKeysPresent) {
  const auto status = lnic::validate_params(result().params);
  EXPECT_TRUE(status.ok()) << (status.ok() ? "" : status.error().message);
}

TEST_F(ExtractionTest, MemoryLatenciesRecovered) {
  const auto& p = result().params;
  const nicsim::NicConfig truth;
  EXPECT_NEAR(p.scalar(keys::kMemReadLocal), static_cast<double>(truth.local_latency), 1.0);
  EXPECT_NEAR(p.scalar(keys::kMemReadCtm), static_cast<double>(truth.ctm_latency), 2.0);
  EXPECT_NEAR(p.scalar(keys::kMemReadImem), static_cast<double>(truth.imem_latency), 5.0);
  EXPECT_NEAR(p.scalar(keys::kMemReadEmem), static_cast<double>(truth.emem_latency), 25.0);
  EXPECT_NEAR(p.scalar(keys::kEmemCacheHit), static_cast<double>(truth.emem_cache_hit_latency), 10.0);
}

TEST_F(ExtractionTest, DatapathSlopesRecovered) {
  const auto& p = result().params;
  const nicsim::NicConfig truth;
  EXPECT_NEAR(p.scalar(keys::kIngressDmaPerByte), truth.ingress_per_byte, 0.1);
  EXPECT_NEAR(p.scalar(keys::kSpillPerByte), truth.spill_per_byte, 0.3);
  EXPECT_NEAR(p.scalar(keys::kEgressBase), static_cast<double>(truth.egress_base), 20.0);
}

TEST_F(ExtractionTest, ChecksumCurveRecovered) {
  const auto& p = result().params;
  const nicsim::NicConfig truth;
  // The paper's headline numbers: ~300 cycles at 1000 B on the
  // accelerator, ~1700 extra in software.
  const double at_1000 = truth.csum_accel_base + truth.csum_accel_per_byte * 1000.0;
  EXPECT_NEAR(p.eval(keys::kCsumAccel, 1000.0), at_1000, 10.0);
  EXPECT_NEAR(p.scalar(keys::kCsumSwExtra), static_cast<double>(truth.csum_sw_extra), 30.0);
}

TEST_F(ExtractionTest, CryptoRecovered) {
  const auto& p = result().params;
  const nicsim::NicConfig truth;
  const double at_1024 = truth.crypto_base + truth.crypto_per_byte * 1024.0;
  EXPECT_NEAR(p.eval(keys::kCryptoAccel, 1024.0), at_1024, at_1024 * 0.1);
  EXPECT_NEAR(p.scalar(keys::kCryptoSwFactor), truth.crypto_sw_factor, 3.0);
}

TEST_F(ExtractionTest, LpmCurveRecovered) {
  const auto& p = result().params;
  const nicsim::NicConfig truth;
  for (double entries : {5000.0, 20000.0, 30000.0}) {
    const double truth_cost = truth.lpm_dram_base + truth.lpm_dram_per_entry * entries;
    // The key-dependent walk factor leaves sampling noise in the fit.
    EXPECT_NEAR(p.eval(keys::kLpmDram, entries), truth_cost, truth_cost * 0.08) << entries;
  }
  EXPECT_NEAR(p.scalar(keys::kFlowCacheHit), static_cast<double>(truth.flow_cache_hit), 20.0);
}

TEST_F(ExtractionTest, ParseAndMoveRecovered) {
  const auto& p = result().params;
  const nicsim::NicConfig truth;
  const double parse_truth = static_cast<double>(truth.parse_base) + truth.parse_per_byte * 40.0;
  EXPECT_NEAR(p.scalar(keys::kParseBase) + 40.0 * p.scalar(keys::kParsePerByte), parse_truth, 10.0);
  EXPECT_NEAR(p.scalar(keys::kInstrMove), static_cast<double>(truth.move_cycles), 0.5);
}

TEST_F(ExtractionTest, KneeFindsEmemCacheCapacity) {
  // The working-set sweep should put the knee at ~3 MiB (the cache size).
  const auto discovered = result().discovered_emem_cache;
  EXPECT_GE(discovered, 2_MiB);
  EXPECT_LE(discovered, 6_MiB);
}

TEST_F(ExtractionTest, ReportIsHumanReadable) {
  EXPECT_NE(result().report.find("mem:"), std::string::npos);
  EXPECT_NE(result().report.find("csum:"), std::string::npos);
  EXPECT_NE(result().report.find("lpm:"), std::string::npos);
}

TEST(WorkingSetCurve, MonotoneAfterCache) {
  const auto curve = emem_workingset_curve(nicsim::netronome_config());
  ASSERT_GE(curve.size(), 4u);
  // Latency below capacity is flat and low; above it, much higher.
  const double below = curve.front().second;
  const double above = curve.back().second;
  EXPECT_GT(above, 2.0 * below);
}

TEST(ExtractedVsDatabook, CloseEnoughToSwap) {
  // The extracted store should be usable in place of the databook for
  // every scalar key (within 25%), demonstrating the "shielded from
  // users, reusable across NFs" property of §3.2.
  const auto databook = lnic::netronome_agilio_cx().params;
  const auto extracted =
      extract_parameters(nicsim::netronome_config(), databook).params;
  for (const auto& key : lnic::required_keys()) {
    const auto a = databook.try_scalar(key);
    const auto b = extracted.try_scalar(key);
    if (!a || !b) continue;  // curves handled separately
    if (*a == 0.0) {
      EXPECT_NEAR(*b, 0.0, 30.0) << key;
    } else {
      EXPECT_NEAR(*b / *a, 1.0, 0.25) << key << " databook=" << *a << " extracted=" << *b;
    }
  }
}

}  // namespace
}  // namespace clara::microbench
