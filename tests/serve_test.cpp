// Serve subsystem tests (ctest label `serve`): Request/Response JSON
// round-trips are byte-identical, unknown fields are rejected with a
// typed kParse error and a did-you-mean suggestion, the Service answers
// identical requests with byte-identical payloads at every jobs level,
// a warm daemon answers repeated analyses without re-solving the ILP,
// deadline expiry degrades instead of erroring, and the admission gate
// rejects overload with typed responses rather than dropped
// connections. Clean under -DCLARA_SANITIZE=thread.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "core/cache.hpp"
#include "core/request.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/loadgen.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"

namespace clara::serve {
namespace {

using core::Request;
using core::RequestKind;
using core::Response;

class JobsGuard {
 public:
  explicit JobsGuard(std::size_t n) : saved_(parallel::jobs()) { parallel::set_jobs(n); }
  ~JobsGuard() { parallel::set_jobs(saved_); }

 private:
  std::size_t saved_;
};

/// Clears the process-wide analysis cache on entry and exit so tests
/// don't see each other's entries or hit counters.
class CacheGuard {
 public:
  CacheGuard() { core::analysis_cache().clear(); }
  ~CacheGuard() { core::analysis_cache().clear(); }
};

constexpr const char* kSmallWorkload =
    "tcp=0.8 flows=2000 payload=300 pps=60000 packets=2000 seed=42";

Request small_analyze(const char* nf = "lpm") {
  Request request;
  request.id = "t";
  request.kind = RequestKind::kAnalyze;
  request.nf = nf;
  request.workload = kSmallWorkload;
  return request;
}

std::string temp_socket(const char* tag) {
  return strf("/tmp/clara-serve-test-%s-%d.sock", tag, static_cast<int>(::getpid()));
}

// --- wire format -------------------------------------------------------------

TEST(ServeWireTest, RequestRoundTripIsByteIdenticalForEveryKind) {
  std::vector<Request> requests;
  {
    Request r = small_analyze();
    r.id = "analyze-1";
    r.nic = "netronome-agilio-cx";
    r.options.stages = core::PipelineStages::no_patterns();
    r.options.map.time_budget_ms = 12.5;
    r.options.predict.payload_buckets = 7;
    r.energy = true;
    r.breakdown = true;
    r.partial = true;
    r.paths = true;
    requests.push_back(std::move(r));
  }
  {
    Request r = small_analyze("nat");
    r.id = "sweep-1";
    r.kind = RequestKind::kSweep;
    r.sweep_pps = {10'000.0, 60'000.0, 123'456.789};
    requests.push_back(std::move(r));
  }
  {
    Request r = small_analyze("nat");
    r.id = "repair-1";
    r.kind = RequestKind::kRepair;
    r.fault_plan = "fail-unit csum\nderate-unit npu0 50\n";
    requests.push_back(std::move(r));
  }
  {
    Request r = small_analyze("rewrite");
    r.id = "validate-\"quoted\"\n";
    r.kind = RequestKind::kValidate;
    r.trace_file = "/tmp/some trace.cltr";
    r.options.use_cache = false;
    r.options.fail_on_unknown_calls = false;
    requests.push_back(std::move(r));
  }
  for (const Request& request : requests) {
    const std::string first = request.to_json();
    auto parsed = Request::from_json(first);
    ASSERT_TRUE(parsed.ok()) << first << "\n" << parsed.error().message;
    EXPECT_EQ(parsed.value().to_json(), first) << "kind=" << to_string(request.kind);
  }
}

TEST(ServeWireTest, ResponseRoundTripIsByteIdentical) {
  Response response;
  response.id = "r-1";
  response.kind = RequestKind::kSweep;
  response.ok = true;
  response.nf_name = "nat";
  response.nic = "netronome-agilio-cx";
  response.workload = kSmallWorkload;
  response.substituted = 3;
  response.patterns = 1;
  response.degraded = true;
  response.repaired = true;
  response.repair_displaced = 2;
  response.repair_pinned = 5;
  response.mean_latency_cycles = 1234.5678901234;
  response.mean_latency_us = 0.1;  // classic binary-unrepresentable
  response.worst_case_cycles = 1e9 + 1;
  response.throughput_pps = 60'000.0;
  response.bottleneck = "emem";
  response.emem_cache_hit_rate = 2.0 / 3.0;
  response.flow_cache_hit_rate = 1e-9;
  response.classes.push_back({"tcp \"syn\"", 0.25, 812.0});
  response.classes.push_back({"udp", 0.75, 97.125});
  response.report = "line one\nline two\n";
  response.breakdown_text = "a\tb\n";
  response.partial_text = "plan 1\n";
  response.paths_text = "NF behaviours (2 paths):\n";
  response.energy_nj_per_packet = 42.0625;
  // A seed above 2^53 would lose precision as a double; the wire format
  // carries seeds as strings.
  response.sweep.push_back({60'000.0, 0xFFFF'FFFF'FFFF'FFFFull, true, "", 1.5, 900.0, "sram"});
  response.sweep.push_back({80'000.0, 7, false, "solver: infeasible", 0.0, 0.0, ""});
  response.predicted_cycles = 811.0;
  response.simulated_cycles = 808.5;
  response.rel_err = 0.0030902348523;
  response.validation_text = "component table\n";

  const std::string first = response.to_json();
  auto parsed = Response::from_json(first);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().to_json(), first);
  EXPECT_EQ(parsed.value().sweep[0].seed, 0xFFFF'FFFF'FFFF'FFFFull);
}

TEST(ServeWireTest, ErrorResponseRoundTripsEveryCode) {
  for (const ErrorCode code :
       {ErrorCode::kUnspecified, ErrorCode::kParse, ErrorCode::kVerify, ErrorCode::kUnknownCall,
        ErrorCode::kInfeasible, ErrorCode::kDeadline, ErrorCode::kInternal,
        ErrorCode::kOverloaded}) {
    const Response original = core::error_response(small_analyze(), code, "why: \"because\"");
    const std::string first = original.to_json();
    auto parsed = Response::from_json(first);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    EXPECT_EQ(parsed.value().error_code, code);
    EXPECT_EQ(parsed.value().to_json(), first);
  }
}

TEST(ServeWireTest, UnknownFieldRejectedWithSuggestion) {
  const std::string good = small_analyze().to_json();
  // Misspell "workload" -> "worklod": strict parsing must reject it with
  // a typed kParse error and a did-you-mean hint, not silently ignore.
  std::string bad = good;
  const auto pos = bad.find("\"workload\"");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 10, "\"worklod\"");
  auto parsed = Request::from_json(bad);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, ErrorCode::kParse);
  EXPECT_NE(parsed.error().message.find("worklod"), std::string::npos) << parsed.error().message;
  EXPECT_NE(parsed.error().message.find("did you mean \"workload\""), std::string::npos)
      << parsed.error().message;
}

TEST(ServeWireTest, NestedUnknownFieldAndKindTyposRejected) {
  auto nested = Request::from_json(
      R"({"proto":"clara-serve/1","id":"x","kind":"analyze","map":{"time_budget_m":5}})");
  ASSERT_FALSE(nested.ok());
  EXPECT_EQ(nested.error().code, ErrorCode::kParse);
  EXPECT_NE(nested.error().message.find("did you mean \"time_budget_ms\""), std::string::npos)
      << nested.error().message;

  auto kind = Request::from_json(R"({"proto":"clara-serve/1","id":"x","kind":"analyse"})");
  ASSERT_FALSE(kind.ok());
  EXPECT_NE(kind.error().message.find("did you mean \"analyze\""), std::string::npos)
      << kind.error().message;
}

TEST(ServeWireTest, ForeignProtocolRejected) {
  auto parsed = Request::from_json(R"({"proto":"clara-serve/2","id":"x","kind":"analyze"})");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, ErrorCode::kParse);
  EXPECT_NE(parsed.error().message.find("clara-serve/1"), std::string::npos);
}

// --- registry ----------------------------------------------------------------

TEST(ServeRegistryTest, CorpusIsCompleteAndBuildable) {
  const auto& registry = nf_registry();
  ASSERT_GE(registry.size(), 13u);
  std::set<std::string> names;
  for (const auto& entry : registry) {
    names.insert(entry.name);
    const auto fn = entry.build();
    EXPECT_FALSE(fn.name.empty()) << entry.name;
  }
  EXPECT_EQ(names.size(), registry.size()) << "duplicate NF names";
  EXPECT_NE(find_nf("lpm"), nullptr);
  EXPECT_EQ(find_nf("no-such-nf"), nullptr);
}

// --- service -----------------------------------------------------------------

TEST(ServeServiceTest, AnalyzeIsByteIdenticalAcrossJobsLevels) {
  CacheGuard cache;
  Service service(ServiceOptions{0});
  std::string reference;
  for (const std::size_t jobs_level : {1u, 2u, 8u}) {
    JobsGuard jobs(jobs_level);
    const Response response = service.handle(small_analyze());
    ASSERT_TRUE(response.ok) << response.error;
    const std::string line = response.to_json();
    if (reference.empty()) {
      reference = line;
    } else {
      EXPECT_EQ(line, reference) << "jobs=" << jobs_level;
    }
  }
  // The payload carries the effective workload (seed included) but no
  // timing or cache-visibility fields — that is what makes it stable.
  EXPECT_NE(reference.find("seed=42"), std::string::npos);
}

TEST(ServeServiceTest, WarmCacheAnswersWithoutIlpSolves) {
  CacheGuard cache;
  Service service(ServiceOptions{0});
  auto& solves = obs::metrics().counter("ilp/solves");

  const Response cold = service.handle(small_analyze("nat"));
  ASSERT_TRUE(cold.ok) << cold.error;

  const auto hits_before = core::analysis_cache().stats().hits;
  const std::uint64_t solves_before = solves.value();
  const Response warm = service.handle(small_analyze("nat"));
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(solves.value(), solves_before) << "warm analyze must not re-solve the ILP";
  EXPECT_GT(core::analysis_cache().stats().hits, hits_before);
  EXPECT_EQ(warm.to_json(), cold.to_json());
}

TEST(ServeServiceTest, DeadlineExpiryDegradesInsteadOfFailing) {
  Service service(ServiceOptions{0});
  Request request = small_analyze("nat");
  request.options.use_cache = false;  // force a live solve
  request.options.map.time_budget_ms = 1e-6;
  const Response response = service.handle(request);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_TRUE(response.degraded);
}

TEST(ServeServiceTest, UnknownNfAndNicGetTypedErrors) {
  Service service(ServiceOptions{0});
  Request typo = small_analyze("lmp");
  Response response = service.handle(typo);
  ASSERT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, ErrorCode::kParse);
  EXPECT_NE(response.error.find("did you mean \"lpm\""), std::string::npos) << response.error;
  EXPECT_EQ(response.id, typo.id);

  Request nic = small_analyze();
  nic.nic = "no-such-nic";
  response = service.handle(nic);
  ASSERT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, ErrorCode::kParse);
}

TEST(ServeServiceTest, RepairAppliesUnitFaultsPerRequest) {
  CacheGuard cache;
  Service service(ServiceOptions{0});

  const Response healthy = service.handle(small_analyze("nat"));
  ASSERT_TRUE(healthy.ok) << healthy.error;

  Request repair = small_analyze("nat");
  repair.kind = RequestKind::kRepair;
  repair.fault_plan = "fail-unit csum\n";
  const Response repaired = service.handle(repair);
  ASSERT_TRUE(repaired.ok) << repaired.error;
  EXPECT_TRUE(repaired.repaired);
  EXPECT_GE(repaired.repair_displaced, 1u);
  EXPECT_GE(repaired.repair_pinned, 1u);
  EXPECT_FALSE(healthy.repaired);

  // Armed injection sites are process-global; a serve request naming
  // one is rejected rather than silently affecting other clients.
  Request sites = repair;
  sites.fault_plan = "site nicsim/drop p=0.5\n";
  const Response rejected = service.handle(sites);
  ASSERT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error_code, ErrorCode::kParse);
}

TEST(ServeServiceTest, SweepValidatesGridAndReturnsPoints) {
  CacheGuard cache;
  Service service(ServiceOptions{0});

  Request empty = small_analyze("nat");
  empty.kind = RequestKind::kSweep;
  Response response = service.handle(empty);
  ASSERT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, ErrorCode::kParse);

  Request sweep = small_analyze("nat");
  sweep.kind = RequestKind::kSweep;
  sweep.sweep_pps = {40'000.0, 80'000.0};
  response = service.handle(sweep);
  ASSERT_TRUE(response.ok) << response.error;
  ASSERT_EQ(response.sweep.size(), 2u);
  EXPECT_EQ(response.sweep[0].pps, 40'000.0);
  EXPECT_TRUE(response.sweep[0].ok) << response.sweep[0].error;
}

TEST(ServeServiceTest, HelloKindIsNotServable) {
  Service service(ServiceOptions{0});
  Request hello = small_analyze();
  hello.kind = RequestKind::kHello;
  const Response response = service.handle(hello);
  ASSERT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, ErrorCode::kParse);
}

TEST(ServeServiceTest, InflightGateBoundsAndReleases) {
  InflightGate gate(2);
  EXPECT_TRUE(gate.try_acquire());
  EXPECT_TRUE(gate.try_acquire());
  EXPECT_FALSE(gate.try_acquire());
  gate.release();
  EXPECT_TRUE(gate.try_acquire());
  EXPECT_EQ(gate.inflight(), 2u);
  gate.release();
  gate.release();
  EXPECT_EQ(gate.inflight(), 0u);

  InflightGate unlimited(0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(unlimited.try_acquire());
}

// --- daemon ------------------------------------------------------------------

TEST(ServeDaemonTest, ConcurrentClientsGetByteIdenticalResponsesAtEveryJobsLevel) {
  CacheGuard cache;
  std::string reference;
  for (const std::size_t jobs_level : {1u, 2u, 8u}) {
    JobsGuard jobs(jobs_level);
    DaemonOptions options;
    options.socket_path = temp_socket("determinism");
    Daemon daemon(options);
    ASSERT_TRUE(daemon.start().ok());

    constexpr std::size_t kClients = 4;
    std::vector<std::string> lines(kClients);
    std::vector<std::thread> workers;
    for (std::size_t c = 0; c < kClients; ++c) {
      workers.emplace_back([&, c] {
        auto client = Client::connect(options.socket_path);
        if (!client) return;  // leaves lines[c] empty -> fails below
        Request request = small_analyze();
        request.id = "same-id";  // identical requests, identical bytes
        auto response = client.value().call(request);
        if (response.ok()) lines[c] = response.value().to_json();
      });
    }
    for (auto& worker : workers) worker.join();
    daemon.stop();

    for (std::size_t c = 0; c < kClients; ++c) {
      ASSERT_FALSE(lines[c].empty()) << "jobs=" << jobs_level << " client=" << c;
      EXPECT_EQ(lines[c], lines[0]) << "jobs=" << jobs_level << " client=" << c;
    }
    if (reference.empty()) {
      reference = lines[0];
    } else {
      EXPECT_EQ(lines[0], reference) << "jobs=" << jobs_level;
    }
  }
}

TEST(ServeDaemonTest, DeadlineExceededIsDegradedNotConnectionError) {
  DaemonOptions options;
  options.socket_path = temp_socket("deadline");
  Daemon daemon(options);
  ASSERT_TRUE(daemon.start().ok());

  auto client = Client::connect(options.socket_path);
  ASSERT_TRUE(client.ok()) << client.error().message;
  Request request = small_analyze("nat");
  request.id = "deadline-1";
  request.options.use_cache = false;
  request.options.map.time_budget_ms = 1e-6;
  auto response = client.value().call(request);
  ASSERT_TRUE(response.ok()) << response.error().message;
  EXPECT_TRUE(response.value().ok) << response.value().error;
  EXPECT_TRUE(response.value().degraded);

  // The connection survives and serves the next request.
  Request next = small_analyze();
  next.id = "after-deadline";
  auto second = client.value().call(next);
  ASSERT_TRUE(second.ok()) << second.error().message;
  EXPECT_TRUE(second.value().ok);
  daemon.stop();
}

TEST(ServeDaemonTest, PipelinedRequestsAnswerByCorrelationId) {
  CacheGuard cache;
  DaemonOptions options;
  options.socket_path = temp_socket("pipeline");
  Daemon daemon(options);
  ASSERT_TRUE(daemon.start().ok());

  auto client = Client::connect(options.socket_path);
  ASSERT_TRUE(client.ok()) << client.error().message;
  constexpr std::size_t kPipelined = 8;
  for (std::size_t i = 0; i < kPipelined; ++i) {
    Request request = small_analyze(i % 2 == 0 ? "lpm" : "rewrite");
    request.id = strf("p-%zu", i);
    ASSERT_TRUE(client.value().send(request).ok());
  }
  std::set<std::string> seen;
  for (std::size_t i = 0; i < kPipelined; ++i) {
    auto response = client.value().read_response();
    ASSERT_TRUE(response.ok()) << response.error().message;
    EXPECT_TRUE(response.value().ok) << response.value().error;
    seen.insert(response.value().id);
  }
  EXPECT_EQ(seen.size(), kPipelined) << "every pipelined id answered exactly once";
  daemon.stop();
}

TEST(ServeDaemonTest, OverloadRejectsWithTypedResponsesNotDrops) {
  CacheGuard cache;
  JobsGuard jobs(4);
  DaemonOptions options;
  options.socket_path = temp_socket("overload");
  options.max_inflight = 1;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.start().ok());

  // Warm the cache so the flood turns around quickly.
  {
    auto warm = Client::connect(options.socket_path);
    ASSERT_TRUE(warm.ok());
    Request request = small_analyze();
    request.id = "warm";
    ASSERT_TRUE(warm.value().call(request).ok());
  }

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kPerClient = 12;
  std::atomic<std::size_t> ok_count{0};
  std::atomic<std::size_t> overloaded{0};
  std::atomic<std::size_t> dropped{0};
  std::atomic<std::size_t> other_errors{0};
  std::vector<std::thread> workers;
  for (std::size_t c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      auto client = Client::connect(options.socket_path);
      if (!client) {
        dropped.fetch_add(1);
        return;
      }
      for (std::size_t i = 0; i < kPerClient; ++i) {
        Request request = small_analyze();
        request.id = strf("flood-%zu-%zu", c, i);
        auto response = client.value().call(request);
        if (!response.ok()) {
          dropped.fetch_add(1);
          return;
        }
        if (response.value().ok) {
          ok_count.fetch_add(1);
        } else if (response.value().error_code == ErrorCode::kOverloaded) {
          overloaded.fetch_add(1);
        } else {
          other_errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  daemon.stop();

  EXPECT_EQ(dropped.load(), 0u);
  EXPECT_EQ(other_errors.load(), 0u);
  EXPECT_GT(ok_count.load(), 0u);
  EXPECT_EQ(ok_count.load() + overloaded.load(), kClients * kPerClient);
}

TEST(ServeDaemonTest, LoadgenSustainsMixedLoadWithZeroDrops) {
  CacheGuard cache;
  JobsGuard jobs(4);
  LoadGenOptions options;
  options.requests = 64;  // the full 1000+ bar runs in `clara bench serve`
  options.connections = 8;
  auto report = run_loadgen(options);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_EQ(report.value().dropped_connections, 0u);
  EXPECT_EQ(report.value().failed, 0u);
  EXPECT_EQ(report.value().ok, 64u);
  EXPECT_TRUE(report.value().in_process);
  // A warm daemon answers the repeated analyze/sweep mix from the
  // shared cache; only repair (degraded-profile solve per request) and
  // validate legitimately re-solve, so ILP work stays far below one
  // solve per request. The strict no-solve-on-repeat property for
  // analyze is asserted in WarmCacheAnswersWithoutIlpSolves.
  EXPECT_LT(report.value().warm_ilp_solves, 64u / 4);
  EXPECT_GT(report.value().warm_hit_rate, 0.5);
  EXPECT_GT(report.value().p99_us, 0.0);
  EXPECT_GE(report.value().p99_us, report.value().p50_us);
}

}  // namespace
}  // namespace clara::serve
