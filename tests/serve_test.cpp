// Serve subsystem tests (ctest label `serve`): Request/Response JSON
// round-trips are byte-identical, unknown fields are rejected with a
// typed kParse error and a did-you-mean suggestion, the Service answers
// identical requests with byte-identical payloads at every jobs level,
// a warm daemon answers repeated analyses without re-solving the ILP,
// deadline expiry degrades instead of erroring, and the admission gate
// rejects overload with typed responses rather than dropped
// connections. The resilience half (docs/robustness.md "Serve
// resilience"): a seeded mutation-fuzz corpus over the wire parser,
// hostile-client limits (oversized lines, newline-less floods,
// slow-loris drips, connection caps), accept-loop errno survival,
// connection-slot reaping, bounded drain, and the chaos loadgen
// contract — every request ends in exactly one response or one typed
// client error, reproducibly at jobs=1/2/8. Clean under
// -DCLARA_SANITIZE=thread.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "core/cache.hpp"
#include "core/request.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/loadgen.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"

namespace clara::serve {
namespace {

using core::Request;
using core::RequestKind;
using core::Response;

class JobsGuard {
 public:
  explicit JobsGuard(std::size_t n) : saved_(parallel::jobs()) { parallel::set_jobs(n); }
  ~JobsGuard() { parallel::set_jobs(saved_); }

 private:
  std::size_t saved_;
};

/// Clears the process-wide analysis cache on entry and exit so tests
/// don't see each other's entries or hit counters.
class CacheGuard {
 public:
  CacheGuard() { core::analysis_cache().clear(); }
  ~CacheGuard() { core::analysis_cache().clear(); }
};

constexpr const char* kSmallWorkload =
    "tcp=0.8 flows=2000 payload=300 pps=60000 packets=2000 seed=42";

Request small_analyze(const char* nf = "lpm") {
  Request request;
  request.id = "t";
  request.kind = RequestKind::kAnalyze;
  request.nf = nf;
  request.workload = kSmallWorkload;
  return request;
}

std::string temp_socket(const char* tag) {
  return strf("/tmp/clara-serve-test-%s-%d.sock", tag, static_cast<int>(::getpid()));
}

/// Raw AF_UNIX client for hostile-peer tests the typed Client cannot
/// express: garbage bytes, newline-less floods, mid-line stalls. Recv
/// is bounded (2 s) so a daemon bug surfaces as a failed assertion,
/// never a hung test.
class RawClient {
 public:
  explicit RawClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    const timeval tv{2, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  RawClient(const RawClient&) = delete;
  RawClient& operator=(const RawClient&) = delete;

  [[nodiscard]] bool ok() const { return fd_ >= 0; }

  bool send_bytes(std::string_view data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;  // EPIPE after a server-side close is expected
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// One '\n'-terminated line, or empty on EOF / recv timeout.
  std::string read_line() {
    while (true) {
      if (const auto nl = buffer_.find('\n'); nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return {};
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Drains until the server closes: true on EOF or a reset (a close
  /// with our unread bytes still queued surfaces as ECONNRESET), false
  /// only on a recv timeout — the server is holding us open.
  bool at_eof() {
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return true;
      if (n < 0) return errno != EAGAIN && errno != EWOULDBLOCK;
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

// --- wire format -------------------------------------------------------------

TEST(ServeWireTest, RequestRoundTripIsByteIdenticalForEveryKind) {
  std::vector<Request> requests;
  {
    Request r = small_analyze();
    r.id = "analyze-1";
    r.nic = "netronome-agilio-cx";
    r.options.stages = core::PipelineStages::no_patterns();
    r.options.map.time_budget_ms = 12.5;
    r.options.predict.payload_buckets = 7;
    r.energy = true;
    r.breakdown = true;
    r.partial = true;
    r.paths = true;
    requests.push_back(std::move(r));
  }
  {
    Request r = small_analyze("nat");
    r.id = "sweep-1";
    r.kind = RequestKind::kSweep;
    r.sweep_pps = {10'000.0, 60'000.0, 123'456.789};
    requests.push_back(std::move(r));
  }
  {
    Request r = small_analyze("nat");
    r.id = "repair-1";
    r.kind = RequestKind::kRepair;
    r.fault_plan = "fail-unit csum\nderate-unit npu0 50\n";
    requests.push_back(std::move(r));
  }
  {
    Request r = small_analyze("rewrite");
    r.id = "validate-\"quoted\"\n";
    r.kind = RequestKind::kValidate;
    r.trace_file = "/tmp/some trace.cltr";
    r.options.use_cache = false;
    r.options.fail_on_unknown_calls = false;
    requests.push_back(std::move(r));
  }
  for (const Request& request : requests) {
    const std::string first = request.to_json();
    auto parsed = Request::from_json(first);
    ASSERT_TRUE(parsed.ok()) << first << "\n" << parsed.error().message;
    EXPECT_EQ(parsed.value().to_json(), first) << "kind=" << to_string(request.kind);
  }
}

TEST(ServeWireTest, ResponseRoundTripIsByteIdentical) {
  Response response;
  response.id = "r-1";
  response.kind = RequestKind::kSweep;
  response.ok = true;
  response.nf_name = "nat";
  response.nic = "netronome-agilio-cx";
  response.workload = kSmallWorkload;
  response.substituted = 3;
  response.patterns = 1;
  response.degraded = true;
  response.repaired = true;
  response.repair_displaced = 2;
  response.repair_pinned = 5;
  response.mean_latency_cycles = 1234.5678901234;
  response.mean_latency_us = 0.1;  // classic binary-unrepresentable
  response.worst_case_cycles = 1e9 + 1;
  response.throughput_pps = 60'000.0;
  response.bottleneck = "emem";
  response.emem_cache_hit_rate = 2.0 / 3.0;
  response.flow_cache_hit_rate = 1e-9;
  response.classes.push_back({"tcp \"syn\"", 0.25, 812.0});
  response.classes.push_back({"udp", 0.75, 97.125});
  response.report = "line one\nline two\n";
  response.breakdown_text = "a\tb\n";
  response.partial_text = "plan 1\n";
  response.paths_text = "NF behaviours (2 paths):\n";
  response.energy_nj_per_packet = 42.0625;
  // A seed above 2^53 would lose precision as a double; the wire format
  // carries seeds as strings.
  response.sweep.push_back({60'000.0, 0xFFFF'FFFF'FFFF'FFFFull, true, "", 1.5, 900.0, "sram"});
  response.sweep.push_back({80'000.0, 7, false, "solver: infeasible", 0.0, 0.0, ""});
  response.predicted_cycles = 811.0;
  response.simulated_cycles = 808.5;
  response.rel_err = 0.0030902348523;
  response.validation_text = "component table\n";

  const std::string first = response.to_json();
  auto parsed = Response::from_json(first);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().to_json(), first);
  EXPECT_EQ(parsed.value().sweep[0].seed, 0xFFFF'FFFF'FFFF'FFFFull);
}

TEST(ServeWireTest, ErrorResponseRoundTripsEveryCode) {
  for (const ErrorCode code :
       {ErrorCode::kUnspecified, ErrorCode::kParse, ErrorCode::kVerify, ErrorCode::kUnknownCall,
        ErrorCode::kInfeasible, ErrorCode::kDeadline, ErrorCode::kInternal,
        ErrorCode::kOverloaded}) {
    const Response original = core::error_response(small_analyze(), code, "why: \"because\"");
    const std::string first = original.to_json();
    auto parsed = Response::from_json(first);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    EXPECT_EQ(parsed.value().error_code, code);
    EXPECT_EQ(parsed.value().to_json(), first);
  }
}

TEST(ServeWireTest, UnknownFieldRejectedWithSuggestion) {
  const std::string good = small_analyze().to_json();
  // Misspell "workload" -> "worklod": strict parsing must reject it with
  // a typed kParse error and a did-you-mean hint, not silently ignore.
  std::string bad = good;
  const auto pos = bad.find("\"workload\"");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 10, "\"worklod\"");
  auto parsed = Request::from_json(bad);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, ErrorCode::kParse);
  EXPECT_NE(parsed.error().message.find("worklod"), std::string::npos) << parsed.error().message;
  EXPECT_NE(parsed.error().message.find("did you mean \"workload\""), std::string::npos)
      << parsed.error().message;
}

TEST(ServeWireTest, NestedUnknownFieldAndKindTyposRejected) {
  auto nested = Request::from_json(
      R"({"proto":"clara-serve/1","id":"x","kind":"analyze","map":{"time_budget_m":5}})");
  ASSERT_FALSE(nested.ok());
  EXPECT_EQ(nested.error().code, ErrorCode::kParse);
  EXPECT_NE(nested.error().message.find("did you mean \"time_budget_ms\""), std::string::npos)
      << nested.error().message;

  auto kind = Request::from_json(R"({"proto":"clara-serve/1","id":"x","kind":"analyse"})");
  ASSERT_FALSE(kind.ok());
  EXPECT_NE(kind.error().message.find("did you mean \"analyze\""), std::string::npos)
      << kind.error().message;
}

TEST(ServeWireTest, ForeignProtocolRejected) {
  auto parsed = Request::from_json(R"({"proto":"clara-serve/2","id":"x","kind":"analyze"})");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, ErrorCode::kParse);
  EXPECT_NE(parsed.error().message.find("clara-serve/1"), std::string::npos);
}

// --- registry ----------------------------------------------------------------

TEST(ServeRegistryTest, CorpusIsCompleteAndBuildable) {
  const auto& registry = nf_registry();
  ASSERT_GE(registry.size(), 13u);
  std::set<std::string> names;
  for (const auto& entry : registry) {
    names.insert(entry.name);
    const auto fn = entry.build();
    EXPECT_FALSE(fn.name.empty()) << entry.name;
  }
  EXPECT_EQ(names.size(), registry.size()) << "duplicate NF names";
  EXPECT_NE(find_nf("lpm"), nullptr);
  EXPECT_EQ(find_nf("no-such-nf"), nullptr);
}

// --- service -----------------------------------------------------------------

TEST(ServeServiceTest, AnalyzeIsByteIdenticalAcrossJobsLevels) {
  CacheGuard cache;
  Service service(ServiceOptions{0});
  std::string reference;
  for (const std::size_t jobs_level : {1u, 2u, 8u}) {
    JobsGuard jobs(jobs_level);
    const Response response = service.handle(small_analyze());
    ASSERT_TRUE(response.ok) << response.error;
    const std::string line = response.to_json();
    if (reference.empty()) {
      reference = line;
    } else {
      EXPECT_EQ(line, reference) << "jobs=" << jobs_level;
    }
  }
  // The payload carries the effective workload (seed included) but no
  // timing or cache-visibility fields — that is what makes it stable.
  EXPECT_NE(reference.find("seed=42"), std::string::npos);
}

TEST(ServeServiceTest, WarmCacheAnswersWithoutIlpSolves) {
  CacheGuard cache;
  Service service(ServiceOptions{0});
  auto& solves = obs::metrics().counter("ilp/solves");

  const Response cold = service.handle(small_analyze("nat"));
  ASSERT_TRUE(cold.ok) << cold.error;

  const auto hits_before = core::analysis_cache().stats().hits;
  const std::uint64_t solves_before = solves.value();
  const Response warm = service.handle(small_analyze("nat"));
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(solves.value(), solves_before) << "warm analyze must not re-solve the ILP";
  EXPECT_GT(core::analysis_cache().stats().hits, hits_before);
  EXPECT_EQ(warm.to_json(), cold.to_json());
}

TEST(ServeServiceTest, DeadlineExpiryDegradesInsteadOfFailing) {
  Service service(ServiceOptions{0});
  Request request = small_analyze("nat");
  request.options.use_cache = false;  // force a live solve
  request.options.map.time_budget_ms = 1e-6;
  const Response response = service.handle(request);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_TRUE(response.degraded);
}

TEST(ServeServiceTest, UnknownNfAndNicGetTypedErrors) {
  Service service(ServiceOptions{0});
  Request typo = small_analyze("lmp");
  Response response = service.handle(typo);
  ASSERT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, ErrorCode::kParse);
  EXPECT_NE(response.error.find("did you mean \"lpm\""), std::string::npos) << response.error;
  EXPECT_EQ(response.id, typo.id);

  Request nic = small_analyze();
  nic.nic = "no-such-nic";
  response = service.handle(nic);
  ASSERT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, ErrorCode::kParse);
}

TEST(ServeServiceTest, RepairAppliesUnitFaultsPerRequest) {
  CacheGuard cache;
  Service service(ServiceOptions{0});

  const Response healthy = service.handle(small_analyze("nat"));
  ASSERT_TRUE(healthy.ok) << healthy.error;

  Request repair = small_analyze("nat");
  repair.kind = RequestKind::kRepair;
  repair.fault_plan = "fail-unit csum\n";
  const Response repaired = service.handle(repair);
  ASSERT_TRUE(repaired.ok) << repaired.error;
  EXPECT_TRUE(repaired.repaired);
  EXPECT_GE(repaired.repair_displaced, 1u);
  EXPECT_GE(repaired.repair_pinned, 1u);
  EXPECT_FALSE(healthy.repaired);

  // Armed injection sites are process-global; a serve request naming
  // one is rejected rather than silently affecting other clients.
  Request sites = repair;
  sites.fault_plan = "site nicsim/drop p=0.5\n";
  const Response rejected = service.handle(sites);
  ASSERT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error_code, ErrorCode::kParse);
}

TEST(ServeServiceTest, SweepValidatesGridAndReturnsPoints) {
  CacheGuard cache;
  Service service(ServiceOptions{0});

  Request empty = small_analyze("nat");
  empty.kind = RequestKind::kSweep;
  Response response = service.handle(empty);
  ASSERT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, ErrorCode::kParse);

  Request sweep = small_analyze("nat");
  sweep.kind = RequestKind::kSweep;
  sweep.sweep_pps = {40'000.0, 80'000.0};
  response = service.handle(sweep);
  ASSERT_TRUE(response.ok) << response.error;
  ASSERT_EQ(response.sweep.size(), 2u);
  EXPECT_EQ(response.sweep[0].pps, 40'000.0);
  EXPECT_TRUE(response.sweep[0].ok) << response.sweep[0].error;
}

TEST(ServeServiceTest, HelloKindIsNotServable) {
  Service service(ServiceOptions{0});
  Request hello = small_analyze();
  hello.kind = RequestKind::kHello;
  const Response response = service.handle(hello);
  ASSERT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, ErrorCode::kParse);
}

TEST(ServeServiceTest, InflightGateBoundsAndReleases) {
  InflightGate gate(2);
  EXPECT_TRUE(gate.try_acquire());
  EXPECT_TRUE(gate.try_acquire());
  EXPECT_FALSE(gate.try_acquire());
  gate.release();
  EXPECT_TRUE(gate.try_acquire());
  EXPECT_EQ(gate.inflight(), 2u);
  gate.release();
  gate.release();
  EXPECT_EQ(gate.inflight(), 0u);

  InflightGate unlimited(0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(unlimited.try_acquire());
}

// --- daemon ------------------------------------------------------------------

TEST(ServeDaemonTest, ConcurrentClientsGetByteIdenticalResponsesAtEveryJobsLevel) {
  CacheGuard cache;
  std::string reference;
  for (const std::size_t jobs_level : {1u, 2u, 8u}) {
    JobsGuard jobs(jobs_level);
    DaemonOptions options;
    options.socket_path = temp_socket("determinism");
    Daemon daemon(options);
    ASSERT_TRUE(daemon.start().ok());

    constexpr std::size_t kClients = 4;
    std::vector<std::string> lines(kClients);
    std::vector<std::thread> workers;
    for (std::size_t c = 0; c < kClients; ++c) {
      workers.emplace_back([&, c] {
        auto client = Client::connect(options.socket_path);
        if (!client) return;  // leaves lines[c] empty -> fails below
        Request request = small_analyze();
        request.id = "same-id";  // identical requests, identical bytes
        auto response = client.value().call(request);
        if (response.ok()) lines[c] = response.value().to_json();
      });
    }
    for (auto& worker : workers) worker.join();
    daemon.stop();

    for (std::size_t c = 0; c < kClients; ++c) {
      ASSERT_FALSE(lines[c].empty()) << "jobs=" << jobs_level << " client=" << c;
      EXPECT_EQ(lines[c], lines[0]) << "jobs=" << jobs_level << " client=" << c;
    }
    if (reference.empty()) {
      reference = lines[0];
    } else {
      EXPECT_EQ(lines[0], reference) << "jobs=" << jobs_level;
    }
  }
}

TEST(ServeDaemonTest, DeadlineExceededIsDegradedNotConnectionError) {
  DaemonOptions options;
  options.socket_path = temp_socket("deadline");
  Daemon daemon(options);
  ASSERT_TRUE(daemon.start().ok());

  auto client = Client::connect(options.socket_path);
  ASSERT_TRUE(client.ok()) << client.error().message;
  Request request = small_analyze("nat");
  request.id = "deadline-1";
  request.options.use_cache = false;
  request.options.map.time_budget_ms = 1e-6;
  auto response = client.value().call(request);
  ASSERT_TRUE(response.ok()) << response.error().message;
  EXPECT_TRUE(response.value().ok) << response.value().error;
  EXPECT_TRUE(response.value().degraded);

  // The connection survives and serves the next request.
  Request next = small_analyze();
  next.id = "after-deadline";
  auto second = client.value().call(next);
  ASSERT_TRUE(second.ok()) << second.error().message;
  EXPECT_TRUE(second.value().ok);
  daemon.stop();
}

TEST(ServeDaemonTest, PipelinedRequestsAnswerByCorrelationId) {
  CacheGuard cache;
  DaemonOptions options;
  options.socket_path = temp_socket("pipeline");
  Daemon daemon(options);
  ASSERT_TRUE(daemon.start().ok());

  auto client = Client::connect(options.socket_path);
  ASSERT_TRUE(client.ok()) << client.error().message;
  constexpr std::size_t kPipelined = 8;
  for (std::size_t i = 0; i < kPipelined; ++i) {
    Request request = small_analyze(i % 2 == 0 ? "lpm" : "rewrite");
    request.id = strf("p-%zu", i);
    ASSERT_TRUE(client.value().send(request).ok());
  }
  std::set<std::string> seen;
  for (std::size_t i = 0; i < kPipelined; ++i) {
    auto response = client.value().read_response();
    ASSERT_TRUE(response.ok()) << response.error().message;
    EXPECT_TRUE(response.value().ok) << response.value().error;
    seen.insert(response.value().id);
  }
  EXPECT_EQ(seen.size(), kPipelined) << "every pipelined id answered exactly once";
  daemon.stop();
}

TEST(ServeDaemonTest, OverloadRejectsWithTypedResponsesNotDrops) {
  CacheGuard cache;
  JobsGuard jobs(4);
  DaemonOptions options;
  options.socket_path = temp_socket("overload");
  options.max_inflight = 1;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.start().ok());

  // Warm the cache so the flood turns around quickly.
  {
    auto warm = Client::connect(options.socket_path);
    ASSERT_TRUE(warm.ok());
    Request request = small_analyze();
    request.id = "warm";
    ASSERT_TRUE(warm.value().call(request).ok());
  }

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kPerClient = 12;
  std::atomic<std::size_t> ok_count{0};
  std::atomic<std::size_t> overloaded{0};
  std::atomic<std::size_t> dropped{0};
  std::atomic<std::size_t> other_errors{0};
  std::vector<std::thread> workers;
  for (std::size_t c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      auto client = Client::connect(options.socket_path);
      if (!client) {
        dropped.fetch_add(1);
        return;
      }
      for (std::size_t i = 0; i < kPerClient; ++i) {
        Request request = small_analyze();
        request.id = strf("flood-%zu-%zu", c, i);
        auto response = client.value().call(request);
        if (!response.ok()) {
          dropped.fetch_add(1);
          return;
        }
        if (response.value().ok) {
          ok_count.fetch_add(1);
        } else if (response.value().error_code == ErrorCode::kOverloaded) {
          overloaded.fetch_add(1);
        } else {
          other_errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  daemon.stop();

  EXPECT_EQ(dropped.load(), 0u);
  EXPECT_EQ(other_errors.load(), 0u);
  EXPECT_GT(ok_count.load(), 0u);
  EXPECT_EQ(ok_count.load() + overloaded.load(), kClients * kPerClient);
}

TEST(ServeDaemonTest, LoadgenSustainsMixedLoadWithZeroDrops) {
  CacheGuard cache;
  JobsGuard jobs(4);
  LoadGenOptions options;
  options.requests = 64;  // the full 1000+ bar runs in `clara bench serve`
  options.connections = 8;
  auto report = run_loadgen(options);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_EQ(report.value().dropped_connections, 0u);
  EXPECT_EQ(report.value().failed, 0u);
  EXPECT_EQ(report.value().ok, 64u);
  EXPECT_TRUE(report.value().in_process);
  // A warm daemon answers the repeated analyze/sweep mix from the
  // shared cache; only repair (degraded-profile solve per request) and
  // validate legitimately re-solve, so ILP work stays far below one
  // solve per request. The strict no-solve-on-repeat property for
  // analyze is asserted in WarmCacheAnswersWithoutIlpSolves.
  EXPECT_LT(report.value().warm_ilp_solves, 64u / 4);
  EXPECT_GT(report.value().warm_hit_rate, 0.5);
  EXPECT_GT(report.value().p99_us, 0.0);
  EXPECT_GE(report.value().p99_us, report.value().p50_us);
}

// --- wire fuzz ---------------------------------------------------------------

TEST(ServeWireTest, RetryAfterMsRoundTrips) {
  Response rejected = core::error_response(small_analyze(), ErrorCode::kOverloaded, "busy");
  rejected.retry_after_ms = 12.5;
  const std::string line = rejected.to_json();
  auto parsed = Response::from_json(line);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().retry_after_ms, 12.5);
  EXPECT_EQ(parsed.value().error_code, ErrorCode::kOverloaded);
  EXPECT_EQ(parsed.value().to_json(), line);
}

// Seeded corpus fuzz over the wire parser: byte mutations of real
// request and response lines must produce typed kParse errors or valid
// parses — never a crash, hang, or abort. Deterministic: the mutation
// stream derives from fixed seeds, so a failure reproduces.
TEST(ServeWireFuzzTest, MutatedWireCorpusNeverCrashes) {
  std::vector<std::string> corpus;
  {
    Request r = small_analyze();
    r.id = "fuzz-analyze";
    r.nic = "netronome-agilio-cx";
    r.energy = true;
    r.breakdown = true;
    corpus.push_back(r.to_json());
  }
  {
    Request r = small_analyze("nat");
    r.id = "fuzz-sweep";
    r.kind = RequestKind::kSweep;
    r.sweep_pps = {10'000.0, 60'000.0};
    corpus.push_back(r.to_json());
  }
  {
    Request r = small_analyze("nat");
    r.id = "fuzz-repair";
    r.kind = RequestKind::kRepair;
    r.fault_plan = "fail-unit csum\n";
    corpus.push_back(r.to_json());
  }
  {
    Response response = core::error_response(small_analyze(), ErrorCode::kOverloaded, "busy");
    response.retry_after_ms = 5.0;
    corpus.push_back(response.to_json());
  }

  std::size_t parsed_ok = 0, rejected = 0;
  for (std::size_t c = 0; c < corpus.size(); ++c) {
    const bool is_response = c == corpus.size() - 1;
    for (std::uint64_t round = 0; round < 80; ++round) {
      Rng rng(parallel::shard_seed(0x5E44Eu + c, round));
      std::string mutated = corpus[c];
      const std::size_t flips = 1 + rng.next_below(8);
      for (std::size_t f = 0; f < flips && !mutated.empty(); ++f) {
        mutated[rng.next_below(mutated.size())] = static_cast<char>(rng.next_below(256));
      }
      if (is_response) {
        auto parsed = Response::from_json(mutated);
        if (parsed.ok()) {
          ++parsed_ok;
        } else {
          ++rejected;
          EXPECT_EQ(parsed.error().code, ErrorCode::kParse);
          EXPECT_FALSE(parsed.error().message.empty());
        }
      } else {
        auto parsed = Request::from_json(mutated);
        if (parsed.ok()) {
          ++parsed_ok;
        } else {
          ++rejected;
          EXPECT_EQ(parsed.error().code, ErrorCode::kParse);
          EXPECT_FALSE(parsed.error().message.empty());
        }
      }
    }
  }
  // The corpus is strict JSON, so most mutations must be caught.
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(parsed_ok + rejected, corpus.size() * 80);
}

TEST(ServeWireFuzzTest, TruncatedLinesRejectedAtEveryPrefix) {
  Request r = small_analyze();
  r.id = "truncate-me";
  const std::string line = r.to_json();
  for (std::size_t cut = 0; cut < line.size(); ++cut) {
    auto parsed = Request::from_json(line.substr(0, cut));
    ASSERT_FALSE(parsed.ok()) << "prefix of " << cut << " bytes parsed as a full request";
    EXPECT_EQ(parsed.error().code, ErrorCode::kParse);
  }
}

TEST(ServeWireFuzzTest, FieldReorderingIsAcceptedAndCanonicalized) {
  // Same key/value set, scrambled order: the parser is order-independent
  // and re-serialization is canonical, so both spellings land on
  // identical bytes.
  const std::string in_order = strf(
      R"({"proto":"clara-serve/1","id":"reorder","kind":"analyze","nf":"lpm","workload":"%s"})",
      kSmallWorkload);
  const std::string scrambled = strf(
      R"({"workload":"%s","kind":"analyze","nf":"lpm","id":"reorder","proto":"clara-serve/1"})",
      kSmallWorkload);
  auto a = Request::from_json(in_order);
  auto b = Request::from_json(scrambled);
  ASSERT_TRUE(a.ok()) << a.error().message;
  ASSERT_TRUE(b.ok()) << b.error().message;
  EXPECT_EQ(a.value().to_json(), b.value().to_json());
}

TEST(ServeWireFuzzTest, DepthBombRejectedWithTypedError) {
  std::string bomb = R"({"proto":"clara-serve/1","id":"bomb","kind":"sweep","sweep_pps":)";
  bomb += std::string(256, '[');
  bomb += "1";
  bomb += std::string(256, ']');
  bomb += "}";
  auto parsed = Request::from_json(bomb);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, ErrorCode::kParse);
}

TEST(ServeWireFuzzTest, OversizedLineRejectedBeforeParsing) {
  const std::string huge(core::kMaxWireBytes + 1, ' ');
  auto request = Request::from_json(huge);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.error().code, ErrorCode::kParse);
  auto response = Response::from_json(huge);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error().code, ErrorCode::kParse);
}

// --- client retry ------------------------------------------------------------

TEST(ServeClientTest, RetryBackoffIsDeterministicAndBounded) {
  const RetryOptions options;  // base 1 ms, cap 200 ms, seed 42
  // Pure function: same inputs, same backoff.
  EXPECT_EQ(retry_backoff_ms(options, "req-1", 1, 0.0), retry_backoff_ms(options, "req-1", 1, 0.0));
  // Exponential with jitter in [0.5, 1.0) of the base: attempt 1 -> base
  // 1 ms, attempt 5 -> base 16 ms, attempt 20 -> capped at 200 ms.
  const double first = retry_backoff_ms(options, "req-1", 1, 0.0);
  EXPECT_GE(first, 0.5);
  EXPECT_LT(first, 1.0);
  const double fifth = retry_backoff_ms(options, "req-1", 5, 0.0);
  EXPECT_GE(fifth, 8.0);
  EXPECT_LT(fifth, 16.0);
  const double capped = retry_backoff_ms(options, "req-1", 20, 0.0);
  EXPECT_GE(capped, 100.0);
  EXPECT_LT(capped, 200.0);
  // The server's retry_after_ms hint replaces the exponential base.
  const double hinted = retry_backoff_ms(options, "req-1", 1, 40.0);
  EXPECT_GE(hinted, 20.0);
  EXPECT_LT(hinted, 40.0);
  // Different ids draw different jitter (with overwhelming probability).
  EXPECT_NE(retry_backoff_ms(options, "req-1", 1, 0.0), retry_backoff_ms(options, "req-2", 1, 0.0));
}

TEST(ServeClientTest, CallWithRetryReconnectsAcrossDaemonRestart) {
  CacheGuard cache;
  const std::string path = temp_socket("restart");
  DaemonOptions options;
  options.socket_path = path;

  auto first_daemon = std::make_unique<Daemon>(options);
  ASSERT_TRUE(first_daemon->start().ok());
  auto client = Client::connect(path);
  ASSERT_TRUE(client.ok()) << client.error().message;
  Request request = small_analyze();
  request.id = "before-restart";
  ASSERT_TRUE(client.value().call(request).ok());

  first_daemon->stop();
  first_daemon.reset();
  Daemon second_daemon(options);
  ASSERT_TRUE(second_daemon.start().ok());

  // The client still holds the dead socket; call_with_retry notices the
  // transport error and reconnects to the restarted daemon.
  Request after = small_analyze();
  after.id = "after-restart";
  RetryStats stats;
  auto response = client.value().call_with_retry(after, {}, &stats);
  ASSERT_TRUE(response.ok()) << response.error().message;
  EXPECT_TRUE(response.value().ok) << response.value().error;
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_GE(stats.retries, 1u);
  second_daemon.stop();
}

// --- daemon hardening --------------------------------------------------------

// Regression (the seed's accept loop exited on any non-EINTR errno): a
// transient EMFILE injected into accept() must back off and retry, not
// kill the listener. serve/accept_fail fires on every other accept
// attempt; all six clients still get served.
TEST(ServeDaemonTest, AcceptLoopSurvivesInjectedEmfile) {
  CacheGuard cache;
  fault::FaultPlan plan;
  plan.seed = 7;
  fault::SiteSpec spec;
  spec.site = "serve/accept_fail";
  spec.every = 2;
  plan.add_site(spec);
  fault::ScopedPlan scoped(plan);

  DaemonOptions options;
  options.socket_path = temp_socket("acceptfail");
  Daemon daemon(options);
  ASSERT_TRUE(daemon.start().ok());
  for (std::size_t i = 0; i < 6; ++i) {
    auto client = Client::connect(options.socket_path);
    ASSERT_TRUE(client.ok()) << "connection " << i << ": " << client.error().message;
    Request request = small_analyze();
    request.id = strf("emfile-%zu", i);
    auto response = client.value().call(request);
    ASSERT_TRUE(response.ok()) << response.error().message;
    EXPECT_TRUE(response.value().ok) << response.value().error;
  }
  EXPECT_GT(daemon.accept_retries(), 0u);
  daemon.stop();
  EXPECT_EQ(daemon.connections_accepted(), 6u);
}

// Regression (the seed kept one std::thread per connection ever served):
// finished connection slots are reaped by the accept loop, so tracked
// slots stay near the open count instead of growing with churn.
TEST(ServeDaemonTest, FinishedConnectionSlotsAreReaped) {
  CacheGuard cache;
  DaemonOptions options;
  options.socket_path = temp_socket("reap");
  Daemon daemon(options);
  ASSERT_TRUE(daemon.start().ok());

  constexpr std::size_t kChurn = 16;
  for (std::size_t i = 0; i < kChurn; ++i) {
    auto client = Client::connect(options.socket_path);
    ASSERT_TRUE(client.ok()) << client.error().message;
    Request request = small_analyze();
    request.id = strf("churn-%zu", i);
    ASSERT_TRUE(client.value().call(request).ok());
  }  // each destructor closes; the conn thread finishes on EOF

  for (int spin = 0; spin < 500 && daemon.open_connections() > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(daemon.open_connections(), 0u);
  // One more accept drives the reap of everything already finished.
  auto last = Client::connect(options.socket_path);
  ASSERT_TRUE(last.ok()) << last.error().message;
  std::size_t tracked = daemon.tracked_connections();
  for (int spin = 0; spin < 500 && tracked > 3; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    tracked = daemon.tracked_connections();
  }
  EXPECT_LE(tracked, 3u) << "finished connection threads must be reaped, not accumulated";
  EXPECT_EQ(daemon.connections_accepted(), kChurn + 1);
  daemon.stop();
}

TEST(ServeDaemonTest, ConnectionLimitRejectsWithTypedOverloadedHello) {
  DaemonOptions options;
  options.socket_path = temp_socket("connlimit");
  options.max_connections = 1;
  options.retry_after_ms = 7.0;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.start().ok());

  auto first = Client::connect(options.socket_path);
  ASSERT_TRUE(first.ok()) << first.error().message;
  auto second = Client::connect(options.socket_path);
  ASSERT_FALSE(second.ok()) << "second connection must be rejected at max_connections=1";
  EXPECT_EQ(second.error().code, ErrorCode::kOverloaded);
  EXPECT_NE(second.error().message.find("retry_after_ms=7"), std::string::npos)
      << second.error().message;

  // Releasing the slot re-admits (the conn thread must notice the close
  // first, so retry briefly).
  first.value().close();
  bool admitted = false;
  for (int attempt = 0; attempt < 400 && !admitted; ++attempt) {
    auto retry = Client::connect(options.socket_path);
    if (retry.ok()) admitted = true;
    if (!admitted) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(admitted);
  daemon.stop();
}

TEST(ServeDaemonTest, OversizedLineGetsTypedParseCloseNotHang) {
  DaemonOptions options;
  options.socket_path = temp_socket("bigline");
  options.max_line_bytes = 4096;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.start().ok());

  auto client = Client::connect(options.socket_path);
  ASSERT_TRUE(client.ok()) << client.error().message;
  Request request = small_analyze();
  request.id = "big";
  request.workload = std::string(8192, 'x');
  ASSERT_TRUE(client.value().send(request).ok());
  auto response = client.value().read_response();
  ASSERT_TRUE(response.ok()) << response.error().message;
  EXPECT_FALSE(response.value().ok);
  EXPECT_EQ(response.value().error_code, ErrorCode::kParse);
  EXPECT_EQ(response.value().id, "big") << "id salvaged from the rejected line";
  auto next = client.value().read_response();
  EXPECT_FALSE(next.ok()) << "connection must be closed after the typed rejection";
  daemon.stop();
}

TEST(ServeDaemonTest, NewlinelessFloodCutOffAtBufferCap) {
  DaemonOptions options;
  options.socket_path = temp_socket("flood");
  options.max_line_bytes = 2048;
  options.max_buffer_bytes = 4096;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.start().ok());

  RawClient raw(options.socket_path);
  ASSERT_TRUE(raw.ok());
  ASSERT_FALSE(raw.read_line().empty()) << "no hello";
  // 64 KiB without a newline: the per-connection buffer cap (4 KiB) must
  // cut this off with a typed response — it never accumulates.
  const std::string flood(64 * 1024, 'a');
  (void)raw.send_bytes(flood);  // the server may close us mid-send
  const std::string line = raw.read_line();
  ASSERT_FALSE(line.empty()) << "expected a typed close response";
  auto response = Response::from_json(line);
  ASSERT_TRUE(response.ok()) << line;
  EXPECT_FALSE(response.value().ok);
  EXPECT_EQ(response.value().error_code, ErrorCode::kParse);
  EXPECT_TRUE(raw.at_eof());
  daemon.stop();
}

TEST(ServeDaemonTest, SlowLorisStallTimedOutWithinDeadline) {
  DaemonOptions options;
  options.socket_path = temp_socket("loris");
  options.read_deadline_ms = 150.0;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.start().ok());

  RawClient raw(options.socket_path);
  ASSERT_TRUE(raw.ok());
  ASSERT_FALSE(raw.read_line().empty()) << "no hello";
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(raw.send_bytes(R"({"proto":"clara-serve/1","id":"loris")"));
  // ...and never finish the line. The daemon must cut us off with a
  // typed response once read_deadline_ms expires.
  const std::string line = raw.read_line();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start).count();
  ASSERT_FALSE(line.empty()) << "expected a typed timeout response";
  auto response = Response::from_json(line);
  ASSERT_TRUE(response.ok()) << line;
  EXPECT_FALSE(response.value().ok);
  EXPECT_EQ(response.value().error_code, ErrorCode::kParse);
  EXPECT_EQ(response.value().id, "loris") << "id salvaged from the stalled partial line";
  EXPECT_LT(elapsed_ms, 1500.0) << "connection held far past the read deadline";
  EXPECT_TRUE(raw.at_eof());
  daemon.stop();
}

// The deadline is measured from the FIRST byte of the pending line, so
// a drip of one byte per 30 ms (each gap far below the deadline) cannot
// hold the connection open forever.
TEST(ServeDaemonTest, ByteDripCannotResetReadDeadline) {
  DaemonOptions options;
  options.socket_path = temp_socket("drip");
  options.read_deadline_ms = 120.0;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.start().ok());

  RawClient raw(options.socket_path);
  ASSERT_TRUE(raw.ok());
  ASSERT_FALSE(raw.read_line().empty()) << "no hello";
  for (int i = 0; i < 12; ++i) {  // ~360 ms of drip against a 120 ms deadline
    (void)raw.send_bytes("x");    // sends start failing once the server closes
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  const std::string line = raw.read_line();
  ASSERT_FALSE(line.empty()) << "expected a typed timeout response";
  auto response = Response::from_json(line);
  ASSERT_TRUE(response.ok()) << line;
  EXPECT_FALSE(response.value().ok);
  EXPECT_EQ(response.value().error_code, ErrorCode::kParse);
  EXPECT_TRUE(raw.at_eof());
  daemon.stop();
}

TEST(ServeDaemonTest, WriteFailureAbortsRemainingPipeline) {
  CacheGuard cache;
  DaemonOptions options;
  options.socket_path = temp_socket("writefail");
  Daemon daemon(options);
  ASSERT_TRUE(daemon.start().ok());

  auto& write_errors = obs::metrics().counter("serve/write_errors");
  auto& aborted = obs::metrics().counter("serve/aborted_requests");
  const std::uint64_t before = write_errors.value() + aborted.value();
  {
    auto client = Client::connect(options.socket_path);
    ASSERT_TRUE(client.ok()) << client.error().message;
    for (std::size_t i = 0; i < 6; ++i) {
      Request request = small_analyze("nat");
      request.id = strf("gone-%zu", i);
      request.options.use_cache = false;  // keep each request live for a while
      ASSERT_TRUE(client.value().send(request).ok());
    }
  }  // close without reading a single response
  for (int spin = 0; spin < 1000 && daemon.open_connections() > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  daemon.stop();
  EXPECT_GT(write_errors.value() + aborted.value(), before)
      << "a dead peer must surface as write errors / aborted pipeline work";
}

// Satellite: drain polish. begin_drain() stops accepting, answers new
// requests on live connections with a typed kOverloaded ("draining"),
// and stop() is bounded by drain_deadline_ms even when a client never
// goes away.
TEST(ServeDaemonTest, DrainAnswersTypedAndStopIsBounded) {
  CacheGuard cache;
  DaemonOptions options;
  options.socket_path = temp_socket("drain");
  options.drain_deadline_ms = 250.0;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.start().ok());

  auto client = Client::connect(options.socket_path);
  ASSERT_TRUE(client.ok()) << client.error().message;
  Request request = small_analyze();
  request.id = "pre-drain";
  ASSERT_TRUE(client.value().call(request).ok());

  daemon.begin_drain();
  EXPECT_TRUE(daemon.draining());
  auto late = Client::connect(options.socket_path);
  EXPECT_FALSE(late.ok()) << "listener must be closed while draining";

  Request during = small_analyze();
  during.id = "mid-drain";
  auto response = client.value().call(during);
  ASSERT_TRUE(response.ok()) << response.error().message;
  EXPECT_FALSE(response.value().ok);
  EXPECT_EQ(response.value().error_code, ErrorCode::kOverloaded);
  EXPECT_NE(response.value().error.find("draining"), std::string::npos)
      << response.value().error;
  EXPECT_GT(response.value().retry_after_ms, 0.0);

  // The client stays connected forever; stop() must still return within
  // the drain deadline (plus scheduling slack), force-closing it.
  const auto start = std::chrono::steady_clock::now();
  daemon.stop();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start).count();
  EXPECT_LT(elapsed_ms, 2000.0) << "stop() hung past the drain deadline";
}

// --- chaos gate --------------------------------------------------------------

// The chaos loadgen contract, in-process: with all four serve fault
// sites armed, every request ends in exactly one well-formed response
// or one typed client error — zero silent drops — and the retry
// accounting is a pure function of the plan seed, so it reproduces
// bit-identically at jobs=1/2/8.
TEST(ServeChaosTest, ChaosContractHoldsAndRetriesAreDeterministicAcrossJobs) {
  CacheGuard cache;
  std::vector<std::uint64_t> retries;
  std::vector<std::uint64_t> reconnects;
  for (const std::size_t jobs_level : {1u, 2u, 8u}) {
    JobsGuard jobs(jobs_level);
    LoadGenOptions options;
    options.requests = 96;
    options.connections = 4;
    options.chaos = true;
    auto report = run_loadgen(options);
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_EQ(report.value().dropped_requests, 0u) << "jobs=" << jobs_level;
    EXPECT_EQ(report.value().ok + report.value().failed + report.value().client_errors,
              report.value().requests)
        << "jobs=" << jobs_level << ": every request needs exactly one outcome";
    EXPECT_GT(report.value().retries, 0u) << "the default chaos plan must actually bite";
    retries.push_back(report.value().retries);
    reconnects.push_back(report.value().reconnects);
  }
  EXPECT_EQ(retries[1], retries[0]) << "retry accounting differs between jobs=1 and jobs=2";
  EXPECT_EQ(retries[2], retries[0]) << "retry accounting differs between jobs=1 and jobs=8";
  EXPECT_EQ(reconnects[1], reconnects[0]);
  EXPECT_EQ(reconnects[2], reconnects[0]);
}

}  // namespace
}  // namespace clara::serve
