// Multicore-only contract gate (ctest label `perf`): the two parallel
// substrates tracked in BENCH_perf.json — wave-parallel branch-and-bound
// and the sharded sweep driver — must actually beat their serial runs
// when real cores are available. Auto-skips on starved runners
// (hardware_concurrency < 4: time-sliced threads can't honor the
// contract; perf_micro flags such runs `oversubscribed` and benchdiff
// gates them on regression only) and under ThreadSanitizer (instrumented
// synchronization distorts the ratio).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/parallel.hpp"
#include "core/sweep.hpp"
#include "ilp/instances.hpp"
#include "ilp/solver.hpp"
#include "nf/nf_ported.hpp"
#include "nicsim/sim.hpp"
#include "workload/tracegen.hpp"

#if defined(__SANITIZE_THREAD__)
#define CLARA_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CLARA_TSAN 1
#endif
#endif

namespace clara {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

constexpr std::size_t kJobs = 4;

bool skip_reason(std::string* why) {
#ifdef CLARA_TSAN
  *why = "ThreadSanitizer build: instrumented synchronization distorts speedup";
  return true;
#else
  if (std::thread::hardware_concurrency() < kJobs) {
    *why = "needs >= 4 hardware threads; this runner is oversubscribed";
    return true;
  }
  return false;
#endif
}

class JobsGuard {
 public:
  explicit JobsGuard(std::size_t n) : saved_(parallel::jobs()) { parallel::set_jobs(n); }
  ~JobsGuard() { parallel::set_jobs(saved_); }

 private:
  std::size_t saved_;
};

TEST(Speedup, BranchAndBoundParallelBeatsSerial) {
  std::string why;
  if (skip_reason(&why)) GTEST_SKIP() << why;
  JobsGuard guard(kJobs);

  const auto model = ilp::make_market_split(20, 3);
  ilp::SolveOptions options;
  options.max_nodes = 10'000;

  options.jobs = 1;
  (void)ilp::solve_milp(model, options);  // warmup (pool spin-up, page-in)
  auto t0 = Clock::now();
  const auto serial = ilp::solve_milp(model, options);
  const double serial_ms = ms_since(t0);

  options.jobs = kJobs;
  t0 = Clock::now();
  const auto parallel_run = ilp::solve_milp(model, options);
  const double parallel_ms = ms_since(t0);

  // Determinism first — a fast wrong answer is not a speedup.
  EXPECT_EQ(serial.status, parallel_run.status);
  EXPECT_EQ(serial.objective, parallel_run.objective);
  EXPECT_EQ(serial.values, parallel_run.values);
  EXPECT_EQ(serial.nodes_explored, parallel_run.nodes_explored);
  EXPECT_EQ(serial.pivots, parallel_run.pivots);
  ASSERT_GT(parallel_ms, 0.0);
  EXPECT_GT(serial_ms / parallel_ms, 1.0)
      << "serial " << serial_ms << " ms vs parallel " << parallel_ms << " ms at jobs=" << kJobs;
}

TEST(Speedup, SweepReplayParallelBeatsSerial) {
  std::string why;
  if (skip_reason(&why)) GTEST_SKIP() << why;
  JobsGuard guard(kJobs);

  const auto eval = [](const core::SweepPoint& point, core::SweepResult& result) {
    auto profile = workload::parse_profile("tcp=0.8 flows=2000 payload=300 packets=4000").value();
    profile.pps = point.load_pps;
    profile.seed = point.seed;
    const auto trace = workload::generate_trace(profile);
    nicsim::NicSim sim;
    auto& table = sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
    nf::NatProgram program(table, true);
    const auto stats = sim.run(program, trace);
    result.value = stats.mean_latency();
    result.stats.add(stats.mean_latency());
  };
  std::vector<double> loads;
  for (std::size_t i = 0; i < 8; ++i) loads.push_back(20'000.0 + 20'000.0 * static_cast<double>(i));
  const auto grid = core::make_grid(loads, {}, 42);

  core::SweepOptions options;
  options.jobs = 1;
  (void)core::run_sweep(grid, eval, options);  // warmup
  auto t0 = Clock::now();
  const auto serial = core::run_sweep(grid, eval, options);
  const double serial_ms = ms_since(t0);

  options.jobs = kJobs;
  t0 = Clock::now();
  const auto parallel_run = core::run_sweep(grid, eval, options);
  const double parallel_ms = ms_since(t0);

  ASSERT_EQ(serial.size(), parallel_run.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].value, parallel_run[i].value) << "point " << i;
  }
  ASSERT_GT(parallel_ms, 0.0);
  EXPECT_GT(serial_ms / parallel_ms, 1.0)
      << "serial " << serial_ms << " ms vs parallel " << parallel_ms << " ms at jobs=" << kJobs;
}

}  // namespace
}  // namespace clara
