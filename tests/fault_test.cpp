// Deterministic fault injection + incremental mapping repair
// (DESIGN.md §13, docs/robustness.md).
//
// Covers: FaultPlan parse/serialize round-trips and typed parse errors;
// purity/determinism of the trigger decision; injection sites in the
// simulator and the cache; LNIC unit fail/derate; Mapper::repair after
// resource loss (including jobs-level bit-identity and the report NOTE);
// the Analyzer degraded/repaired/greedy flag matrix; sweep
// retry-once-then-record; and the hardened CIR parser, including a
// seeded byte-mutation fuzz corpus that must return Result errors and
// never abort.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cir/printer.hpp"
#include "cir/verify.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/cache.hpp"
#include "core/clara.hpp"
#include "core/sweep.hpp"
#include "fault/fault.hpp"
#include "frontend/p4lite.hpp"
#include "lnic/profiles.hpp"
#include "mapping/mapping.hpp"
#include "nf/nf_cir.hpp"
#include "nf/nf_ported.hpp"
#include "common/json.hpp"
#include "nicsim/sim.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "passes/api_subst.hpp"
#include "passes/dataflow.hpp"
#include "workload/tracegen.hpp"

#ifndef CLARA_EXAMPLES_DIR
#define CLARA_EXAMPLES_DIR "examples"
#endif

namespace {

using namespace clara;

workload::Trace test_trace(std::uint64_t packets = 2000) {
  auto profile =
      workload::parse_profile("tcp=0.8 flows=2000 payload=300 pps=60000 packets=" +
                              std::to_string(packets))
          .value();
  return workload::generate_trace(profile);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// --- FaultPlan parsing and trigger semantics ---------------------------------

TEST(FaultPlanTest, ParseSerializeRoundTrip) {
  const std::string text =
      "# degraded-mode scenario\n"
      "seed 42\n"
      "site nicsim/drop p=0.25\n"
      "site nicsim/emem_spike every=64 factor=8\n"
      "site ilp/wave_timeout at=2\n"
      "fail-unit csum\n"
      "derate-unit npu0 50\n";
  auto plan = fault::FaultPlan::parse(text);
  ASSERT_TRUE(plan.ok()) << plan.error().message;
  EXPECT_EQ(plan.value().seed, 42u);
  ASSERT_EQ(plan.value().sites.size(), 3u);
  EXPECT_EQ(plan.value().sites[0].site, "nicsim/drop");
  EXPECT_DOUBLE_EQ(plan.value().sites[0].probability, 0.25);
  EXPECT_EQ(plan.value().sites[1].every, 64u);
  EXPECT_DOUBLE_EQ(plan.value().sites[1].factor, 8.0);
  EXPECT_EQ(plan.value().sites[2].at, 2u);
  ASSERT_EQ(plan.value().failed_units.size(), 1u);
  EXPECT_EQ(plan.value().failed_units[0], "csum");
  ASSERT_EQ(plan.value().derated_units.size(), 1u);
  EXPECT_EQ(plan.value().derated_units[0].first, "npu0");
  EXPECT_DOUBLE_EQ(plan.value().derated_units[0].second, 50.0);

  auto round = fault::FaultPlan::parse(plan.value().serialize());
  ASSERT_TRUE(round.ok()) << round.error().message;
  EXPECT_EQ(round.value().seed, plan.value().seed);
  ASSERT_EQ(round.value().sites.size(), plan.value().sites.size());
  for (std::size_t i = 0; i < round.value().sites.size(); ++i) {
    EXPECT_EQ(round.value().sites[i].site, plan.value().sites[i].site);
    EXPECT_DOUBLE_EQ(round.value().sites[i].probability, plan.value().sites[i].probability);
    EXPECT_EQ(round.value().sites[i].every, plan.value().sites[i].every);
    EXPECT_EQ(round.value().sites[i].at, plan.value().sites[i].at);
    EXPECT_DOUBLE_EQ(round.value().sites[i].factor, plan.value().sites[i].factor);
  }
  EXPECT_EQ(round.value().failed_units, plan.value().failed_units);
  EXPECT_EQ(round.value().derated_units, plan.value().derated_units);
}

TEST(FaultPlanTest, ParseErrorsAreTyped) {
  const char* bad[] = {
      "frobnicate 3\n",                  // unknown directive
      "site nicsim/drop\n",              // no trigger
      "site nicsim/drop p=1.5\n",        // probability out of range
      "site nicsim/drop every=0\n",      // zero period
      "seed banana\n",                   // bad seed
      "derate-unit npu0 250\n",          // pct out of range
  };
  for (const char* text : bad) {
    auto plan = fault::FaultPlan::parse(text);
    ASSERT_FALSE(plan.ok()) << "accepted: " << text;
    EXPECT_EQ(plan.error().code, ErrorCode::kParse) << text;
  }
}

TEST(FaultPlanTest, ShouldFireIsPureAndDeterministic) {
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.add_site({"t/at", 0.0, 0, 5, 0.0});
  plan.add_site({"t/every", 0.0, 10, fault::kNoTrigger, 0.0});
  plan.add_site({"t/prob", 0.5, 0, fault::kNoTrigger, 0.0});

  EXPECT_TRUE(plan.should_fire("t/at", 5));
  EXPECT_FALSE(plan.should_fire("t/at", 4));
  EXPECT_FALSE(plan.should_fire("t/at", 6));
  for (std::uint64_t k = 0; k < 40; ++k) {
    EXPECT_EQ(plan.should_fire("t/every", k), (k % 10) == 9) << k;
  }
  // The Bernoulli draw is a pure function of (seed, site, key): repeated
  // queries agree, and at p=0.5 both outcomes occur over a small range.
  int fired = 0;
  for (std::uint64_t k = 0; k < 64; ++k) {
    const bool first = plan.should_fire("t/prob", k);
    EXPECT_EQ(first, plan.should_fire("t/prob", k));
    fired += first ? 1 : 0;
  }
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);
  // An unarmed site never fires.
  EXPECT_FALSE(plan.should_fire("t/unarmed", 5));
}

TEST(FaultPlanTest, InjectRequiresInstalledPlanAndCounts) {
  fault::clear_plan();
  EXPECT_FALSE(fault::active());
  EXPECT_FALSE(fault::inject("t/at", 5));

  fault::FaultPlan plan;
  plan.add_site({"t/at", 0.0, 0, 5, 3.5});
  fault::ScopedPlan scoped(plan);
  EXPECT_TRUE(fault::active());
  auto& counter = obs::metrics().counter("fault/injected", "site=t/at");
  const auto before = counter.value();
  EXPECT_TRUE(fault::inject("t/at", 5));
  EXPECT_FALSE(fault::inject("t/at", 6));
  EXPECT_EQ(counter.value(), before + 1);
  EXPECT_DOUBLE_EQ(fault::site_factor("t/at", 1.0), 3.5);
  EXPECT_DOUBLE_EQ(fault::site_factor("t/other", 1.0), 1.0);
}

TEST(FaultPlanTest, FiringSiteDumpsFlightRecorder) {
  // Any fault/ site firing must auto-dump the flight recorder once
  // (docs/observability.md): the dump is Chrome trace JSON containing
  // the fault_fire event that triggered it.
  auto& rec = obs::recorder();
  rec.reset_auto_dump();
  rec.set_dump_dir(testing::TempDir());
  fault::FaultPlan plan;
  plan.add_site({"t/dump", 0.0, 0, 7, 1.0});
  fault::ScopedPlan scoped(plan);
  ASSERT_TRUE(fault::inject("t/dump", 7));
  const std::string path = rec.last_dump_path();
  ASSERT_FALSE(path.empty()) << "fault fire must trigger an automatic recorder dump";
  EXPECT_NE(path.find("clara_flight_fault_t_dump.json"), std::string::npos) << path;
  const auto doc = Json::parse(read_file(path));
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  // The filename is sanitized; the JSON keeps the raw reason.
  EXPECT_EQ(doc.value().get("clara_flight")->string_at("reason"), "fault_t/dump");
  bool saw_fault_fire = false;
  for (const auto& e : doc.value().get("traceEvents")->as_array()) {
    if (e.string_at("name") == "flight/fault_fire") saw_fault_fire = true;
  }
  EXPECT_TRUE(saw_fault_fire);
  // Later failures in the same process reuse the throttle: no dump storm.
  EXPECT_TRUE(rec.auto_dump("another").empty());
  rec.reset_auto_dump();
  rec.set_dump_dir("");
  std::remove(path.c_str());
}

// --- simulator injection sites -----------------------------------------------

nicsim::RunStats run_nat_sim(const workload::Trace& trace) {
  nicsim::NicSim sim;
  auto& table = sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
  nf::NatProgram program(table, true);
  return sim.run(program, trace);
}

TEST(NicSimFaultTest, DropInjectionIsDeterministic) {
  const auto trace = test_trace();
  fault::clear_plan();
  const auto baseline = run_nat_sim(trace);

  fault::FaultPlan plan;
  plan.seed = 11;
  plan.add_site({"nicsim/drop", 0.0, 50, fault::kNoTrigger, 0.0});
  fault::ScopedPlan scoped(plan);
  const auto faulted_a = run_nat_sim(trace);
  const auto faulted_b = run_nat_sim(trace);

  EXPECT_GT(faulted_a.drops, baseline.drops);
  // Same plan + same trace on fresh simulators: bit-identical outcome.
  EXPECT_EQ(faulted_a.drops, faulted_b.drops);
  EXPECT_EQ(faulted_a.packets, faulted_b.packets);
  EXPECT_EQ(faulted_a.latency.mean(), faulted_b.latency.mean());
}

TEST(NicSimFaultTest, SpikeAndThrottleRaiseLatencyDeterministically) {
  const auto trace = test_trace();
  fault::clear_plan();
  const auto baseline = run_nat_sim(trace);

  fault::FaultPlan plan;
  plan.seed = 3;
  plan.add_site({"nicsim/emem_spike", 0.0, 8, fault::kNoTrigger, 6.0});
  plan.add_site({"nicsim/unit_throttle", 0.0, 4, fault::kNoTrigger, 5.0});
  fault::ScopedPlan scoped(plan);
  const auto faulted_a = run_nat_sim(trace);
  const auto faulted_b = run_nat_sim(trace);

  EXPECT_GT(faulted_a.latency.mean(), baseline.latency.mean());
  EXPECT_EQ(faulted_a.latency.mean(), faulted_b.latency.mean());
  EXPECT_EQ(faulted_a.drops, baseline.drops);  // perf faults, not loss
}

TEST(NicSimFaultTest, QueueOverflowInjectionDropsPackets) {
  const auto trace = test_trace();
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.add_site({"nicsim/queue_overflow", 0.0, 100, fault::kNoTrigger, 0.0});
  fault::ScopedPlan scoped(plan);
  const auto faulted = run_nat_sim(trace);
  EXPECT_GE(faulted.drops, trace.size() / 100 - 1);
}

// --- LNIC unit faults --------------------------------------------------------

TEST(LnicFaultTest, MarkOfflineRemovesUnitFromPools) {
  auto profile = lnic::netronome_agilio_cx();
  const auto healthy_pools = mapping::build_pools(profile.graph);
  const auto healthy_hash = core::hash_profile(profile);

  auto marked = profile.graph.mark_offline("csum");
  ASSERT_TRUE(marked.ok()) << marked.error().message;
  EXPECT_GE(marked.value(), 1);

  const auto faulted_pools = mapping::build_pools(profile.graph);
  EXPECT_LT(faulted_pools.size(), healthy_pools.size());
  for (const auto& pool : faulted_pools) {
    EXPECT_NE(pool.kind, lnic::UnitKind::kChecksumAccel);
  }
  // Fault state is part of the profile's content digest.
  EXPECT_NE(core::hash_profile(profile), healthy_hash);

  auto unknown = profile.graph.mark_offline("no-such-unit");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().code, ErrorCode::kUnknownCall);
}

TEST(LnicFaultTest, DerateScalesPoolParallelism) {
  auto profile = lnic::netronome_agilio_cx();
  double healthy_npu = 0.0;
  for (const auto& pool : mapping::build_pools(profile.graph)) {
    if (pool.kind == lnic::UnitKind::kNpuCore) healthy_npu += pool.parallelism;
  }
  ASSERT_GT(healthy_npu, 0.0);

  auto derated = profile.graph.derate_units("npu", 0.5);
  ASSERT_TRUE(derated.ok()) << derated.error().message;
  EXPECT_GE(derated.value(), 1);
  double derated_npu = 0.0;
  for (const auto& pool : mapping::build_pools(profile.graph)) {
    if (pool.kind == lnic::UnitKind::kNpuCore) derated_npu += pool.parallelism;
  }
  EXPECT_NEAR(derated_npu, healthy_npu * 0.5, 1e-9);

  auto bad = profile.graph.derate_units("npu", 1.5);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kParse);
}

TEST(LnicFaultTest, ApplyPlanToProfile) {
  fault::FaultPlan plan;
  plan.failed_units.push_back("csum");
  plan.derated_units.emplace_back("npu", 50.0);
  auto profile = lnic::netronome_agilio_cx();
  auto applied = fault::apply_to_profile(plan, profile);
  ASSERT_TRUE(applied.ok()) << applied.error().message;
  EXPECT_GE(applied.value(), 2);

  fault::FaultPlan bogus;
  bogus.failed_units.push_back("warp-core");
  auto missing = fault::apply_to_profile(bogus, profile);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kUnknownCall);
}

// --- incremental mapping repair ----------------------------------------------

struct RepairFixture {
  cir::Function fn;
  passes::CostHints hints;
  passes::DataflowGraph graph;
  lnic::NicProfile faulted_profile;

  RepairFixture()
      : fn(nf::build_nat_nf()),
        graph((passes::substitute_framework_apis(fn), passes::DataflowGraph::build(fn, hints))),
        faulted_profile(lnic::netronome_agilio_cx()) {
    EXPECT_TRUE(faulted_profile.graph.mark_offline("csum").ok());
  }
};

TEST(RepairTest, RepairAfterAcceleratorLoss) {
  RepairFixture fx;
  const auto healthy_profile = lnic::netronome_agilio_cx();
  const mapping::Mapper healthy(healthy_profile);
  auto previous = healthy.map(fx.graph, fx.hints);
  ASSERT_TRUE(previous.ok()) << previous.error().message;
  EXPECT_FALSE(previous.value().repaired);

  const mapping::Mapper faulted(fx.faulted_profile);
  auto& repairs = obs::metrics().counter("ilp/repairs");
  const auto repairs_before = repairs.value();
  auto repaired = faulted.repair(fx.graph, fx.hints, previous.value());
  ASSERT_TRUE(repaired.ok()) << repaired.error().message;
  EXPECT_EQ(repairs.value(), repairs_before + 1);

  const auto& m = repaired.value();
  EXPECT_TRUE(m.repaired);
  EXPECT_GE(m.repair_displaced, 1u);
  EXPECT_EQ(m.node_pool.size(), previous.value().node_pool.size());
  EXPECT_EQ(m.state_region.size(), previous.value().state_region.size());
  // Losing the accelerator cannot make the NF cheaper.
  EXPECT_GE(m.objective, previous.value().objective - 1e-9);
  // Repair pins the survivors, so it can never beat the faulted model's
  // cold optimum.
  auto cold = faulted.map(fx.graph, fx.hints);
  ASSERT_TRUE(cold.ok());
  EXPECT_GE(m.objective, cold.value().objective - 1e-6);

  const auto report = mapping::describe_mapping(m, fx.graph, faulted, fx.fn);
  EXPECT_NE(report.find("repaired incrementally"), std::string::npos);
}

TEST(RepairTest, RepairIsBitIdenticalAcrossJobs) {
  RepairFixture fx;
  const auto healthy_profile = lnic::netronome_agilio_cx();
  const mapping::Mapper healthy(healthy_profile);
  auto previous = healthy.map(fx.graph, fx.hints);
  ASSERT_TRUE(previous.ok());
  const mapping::Mapper faulted(fx.faulted_profile);

  std::vector<mapping::Mapping> runs;
  for (const std::size_t jobs : {1u, 2u, 8u}) {
    parallel::set_jobs(jobs);
    auto repaired = faulted.repair(fx.graph, fx.hints, previous.value());
    ASSERT_TRUE(repaired.ok()) << "jobs=" << jobs;
    runs.push_back(std::move(repaired).value());
  }
  parallel::set_jobs(0);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].node_pool, runs[0].node_pool);
    EXPECT_EQ(runs[i].state_region, runs[0].state_region);
    EXPECT_EQ(runs[i].objective, runs[0].objective);  // bit-identical
    EXPECT_EQ(runs[i].repair_displaced, runs[0].repair_displaced);
  }
}

TEST(RepairTest, DerateWithoutDisplacementKeepsAssignments) {
  // A mild derate that leaves every pool Θ-feasible displaces nothing:
  // the repair returns the pinned assignment re-indexed, still flagged.
  auto fn = nf::build_nat_nf();
  passes::substitute_framework_apis(fn);
  passes::CostHints hints;
  const auto graph = passes::DataflowGraph::build(fn, hints);
  const auto healthy_profile = lnic::netronome_agilio_cx();
  const mapping::Mapper healthy(healthy_profile);
  auto previous = healthy.map(graph, hints);
  ASSERT_TRUE(previous.ok());

  auto profile = lnic::netronome_agilio_cx();
  ASSERT_TRUE(profile.graph.derate_units("npu", 0.9).ok());
  const mapping::Mapper faulted(profile);
  auto repaired = faulted.repair(graph, hints, previous.value());
  ASSERT_TRUE(repaired.ok()) << repaired.error().message;
  EXPECT_TRUE(repaired.value().repaired);
  EXPECT_EQ(repaired.value().repair_displaced, 0u);
  EXPECT_EQ(repaired.value().node_pool.size(), previous.value().node_pool.size());
}

// --- Analyzer flag matrix ----------------------------------------------------

TEST(AnalyzerFaultTest, RepairedAnalysisCarriesFlagAndNote) {
  const auto trace = test_trace();
  const auto nat = nf::build_nat_nf();
  core::AnalyzeOptions options;
  options.use_cache = false;

  const core::Analyzer healthy(lnic::netronome_agilio_cx());
  auto base = healthy.analyze(nat, trace, options);
  ASSERT_TRUE(base.ok()) << base.error().message;
  EXPECT_FALSE(base.value().repaired);

  auto profile = lnic::netronome_agilio_cx();
  ASSERT_TRUE(profile.graph.mark_offline("csum").ok());
  const core::Analyzer degraded(std::move(profile));
  auto repaired = degraded.repair(nat, trace, base.value(), options);
  ASSERT_TRUE(repaired.ok()) << repaired.error().message;
  EXPECT_TRUE(repaired.value().repaired);
  EXPECT_TRUE(repaired.value().mapping.repaired);
  EXPECT_FALSE(repaired.value().degraded);
  EXPECT_NE(repaired.value().report.find("repaired incrementally"), std::string::npos);
  // Software checksum costs more than the accelerator it replaced.
  EXPECT_GT(repaired.value().prediction.mean_latency_cycles,
            base.value().prediction.mean_latency_cycles);
}

TEST(AnalyzerFaultTest, RepairIsBitIdenticalAcrossJobs) {
  const auto trace = test_trace();
  const auto nat = nf::build_nat_nf();
  core::AnalyzeOptions options;
  options.use_cache = false;

  const core::Analyzer healthy(lnic::netronome_agilio_cx());
  auto base = healthy.analyze(nat, trace, options);
  ASSERT_TRUE(base.ok());

  std::vector<core::Analysis> runs;
  for (const std::size_t jobs : {1u, 2u, 8u}) {
    parallel::set_jobs(jobs);
    auto profile = lnic::netronome_agilio_cx();
    ASSERT_TRUE(profile.graph.mark_offline("csum").ok());
    const core::Analyzer degraded(std::move(profile));
    auto repaired = degraded.repair(nat, trace, base.value(), options);
    ASSERT_TRUE(repaired.ok()) << "jobs=" << jobs;
    runs.push_back(std::move(repaired).value());
  }
  parallel::set_jobs(0);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].mapping.node_pool, runs[0].mapping.node_pool);
    EXPECT_EQ(runs[i].prediction.mean_latency_cycles, runs[0].prediction.mean_latency_cycles);
    EXPECT_EQ(runs[i].report, runs[0].report);
  }
}

TEST(AnalyzerFaultTest, InjectedWaveTimeoutDegradesDeterministically) {
  // `ilp/wave_timeout at=0` fires the deadline check at the first wave,
  // before any incumbent exists — map() degrades to the greedy baseline,
  // flagged degraded. Unlike a tiny wall-clock budget this reproduces
  // bit-identically on any machine.
  const auto trace = test_trace();
  const auto nat = nf::build_nat_nf();
  core::AnalyzeOptions options;
  options.use_cache = false;

  fault::FaultPlan plan;
  plan.add_site({"ilp/wave_timeout", 0.0, 0, 0, 0.0});
  fault::ScopedPlan scoped(plan);

  const core::Analyzer analyzer(lnic::netronome_agilio_cx());
  auto a = analyzer.analyze(nat, trace, options);
  ASSERT_TRUE(a.ok()) << a.error().message;
  EXPECT_TRUE(a.value().degraded);
  EXPECT_TRUE(a.value().mapping.greedy);
  EXPECT_NE(a.value().report.find("NOTE: solver time budget expired"), std::string::npos);

  auto b = analyzer.analyze(nat, trace, options);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().prediction.mean_latency_cycles, b.value().prediction.mean_latency_cycles);
  EXPECT_EQ(a.value().report, b.value().report);
}

TEST(AnalyzerFaultTest, GreedyAblationStillReportsPlainMapping) {
  const auto trace = test_trace();
  const auto nat = nf::build_nat_nf();
  core::AnalyzeOptions options;
  options.use_cache = false;
  options.stages = core::PipelineStages::no_ilp();
  const core::Analyzer analyzer(lnic::netronome_agilio_cx());
  auto a = analyzer.analyze(nat, trace, options);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a.value().mapping.greedy);
  EXPECT_FALSE(a.value().degraded);
  EXPECT_FALSE(a.value().repaired);
  EXPECT_EQ(a.value().report.find("repaired incrementally"), std::string::npos);
}

// --- cache fault sites -------------------------------------------------------

TEST(CacheFaultTest, PoisonDetectionRecomputesIdenticalResults) {
  auto& cache = core::analysis_cache();
  cache.configure({});
  cache.clear();
  const auto trace = test_trace();
  const auto nat = nf::build_nat_nf();
  const core::Analyzer analyzer(lnic::netronome_agilio_cx());

  auto clean = analyzer.analyze(nat, trace);
  ASSERT_TRUE(clean.ok());

  fault::FaultPlan plan;
  plan.add_site({"cache/poison", 1.0, 0, fault::kNoTrigger, 0.0});
  fault::ScopedPlan scoped(plan);
  auto& detected = obs::metrics().counter("fault/cache_poison_detected", "stage=map");
  const auto before = detected.value();
  auto poisoned = analyzer.analyze(nat, trace);
  ASSERT_TRUE(poisoned.ok());
  // Every hit is detected as corrupt and recomputed: same answer,
  // different accounting.
  EXPECT_GT(detected.value(), before);
  EXPECT_EQ(poisoned.value().prediction.mean_latency_cycles,
            clean.value().prediction.mean_latency_cycles);
  EXPECT_EQ(poisoned.value().report, clean.value().report);
}

TEST(CacheFaultTest, EvictStormFlushesButPreservesResults) {
  auto& cache = core::analysis_cache();
  cache.configure({});
  cache.clear();
  const auto trace = test_trace();
  const auto nat = nf::build_nat_nf();
  const core::Analyzer analyzer(lnic::netronome_agilio_cx());

  auto clean = analyzer.analyze(nat, trace);
  ASSERT_TRUE(clean.ok());
  cache.clear();

  fault::FaultPlan plan;
  plan.add_site({"cache/evict_storm", 1.0, 0, fault::kNoTrigger, 0.0});
  fault::ScopedPlan scoped(plan);
  auto& storms = obs::metrics().counter("fault/cache_evict_storms", "stage=map");
  const auto before = storms.value();
  auto stormy = analyzer.analyze(nat, trace);
  ASSERT_TRUE(stormy.ok());
  EXPECT_GT(storms.value(), before);
  EXPECT_EQ(stormy.value().prediction.mean_latency_cycles,
            clean.value().prediction.mean_latency_cycles);
  cache.clear();
}

// --- sweep retry-once-then-record --------------------------------------------

TEST(SweepRetryTest, TransientFailureRecoversOnRetry) {
  const auto grid = core::make_grid({1e4, 2e4, 3e4, 4e4}, {}, 9);
  std::vector<std::atomic<int>> attempts(grid.size());
  const auto eval = [&](const core::SweepPoint& point, core::SweepResult& result) {
    const int attempt = ++attempts[point.index];
    if (point.index == 2 && attempt == 1) {
      result.ok = false;
      result.error = "transient";
      return;
    }
    result.value = point.load_pps;
    result.stats.add(point.load_pps);
  };
  core::SweepOptions options;
  options.jobs = 1;
  core::SweepFailureSummary summary;
  const auto results = core::run_sweep(grid, eval, options, &summary);
  ASSERT_EQ(results.size(), grid.size());
  for (const auto& r : results) EXPECT_TRUE(r.ok) << r.point.index;
  EXPECT_EQ(results[2].attempts, 2u);
  EXPECT_EQ(results[0].attempts, 1u);
  EXPECT_EQ(summary.shards, grid.size());
  EXPECT_EQ(summary.retried, 1u);
  EXPECT_EQ(summary.recovered, 1u);
  EXPECT_EQ(summary.failed, 0u);
  EXPECT_FALSE(summary.any_failures());
}

TEST(SweepRetryTest, PersistentFailureIsRecordedNotFatal) {
  const auto grid = core::make_grid({1e4, 2e4, 3e4}, {}, 9);
  const auto eval = [&](const core::SweepPoint& point, core::SweepResult& result) {
    if (point.index == 1) {
      result.ok = false;
      result.error = "shard is cursed";
      return;
    }
    result.value = point.load_pps;
  };
  auto& failures_metric = obs::metrics().counter("sweep/shard_failures");
  auto& retries_metric = obs::metrics().counter("sweep/shard_retries");
  const auto failures_before = failures_metric.value();
  const auto retries_before = retries_metric.value();

  for (const std::size_t jobs : {1u, 2u, 8u}) {
    core::SweepOptions options;
    options.jobs = jobs;
    core::SweepFailureSummary summary;
    const auto results = core::run_sweep(grid, eval, options, &summary);
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_EQ(results[1].attempts, 2u);
    EXPECT_TRUE(results[2].ok);
    EXPECT_EQ(summary.retried, 1u);
    EXPECT_EQ(summary.recovered, 0u);
    EXPECT_EQ(summary.failed, 1u);
    ASSERT_EQ(summary.errors.size(), 1u);
    EXPECT_NE(summary.errors[0].find("shard 1"), std::string::npos);
    EXPECT_NE(summary.errors[0].find("cursed"), std::string::npos);
  }
  EXPECT_EQ(failures_metric.value(), failures_before + 3);
  EXPECT_EQ(retries_metric.value(), retries_before + 3);
}

TEST(SweepRetryTest, SummaryMergesLikeHistograms) {
  core::SweepFailureSummary a;
  a.shards = 8;
  a.retried = 2;
  a.recovered = 1;
  a.failed = 1;
  a.errors = {"shard 3: x"};
  core::SweepFailureSummary b;
  b.shards = 4;
  b.failed = 2;
  b.retried = 2;
  b.errors = {"shard 0: y", "shard 2: z"};
  a.merge(b);
  EXPECT_EQ(a.shards, 12u);
  EXPECT_EQ(a.retried, 4u);
  EXPECT_EQ(a.recovered, 1u);
  EXPECT_EQ(a.failed, 3u);
  ASSERT_EQ(a.errors.size(), 3u);
  EXPECT_NE(a.describe().find("12 total"), std::string::npos);

  // The error list is capped; counts keep accumulating past it.
  core::SweepFailureSummary big;
  for (int i = 0; i < 40; ++i) {
    core::SweepFailureSummary one;
    one.shards = 1;
    one.failed = 1;
    one.errors = {"shard: e"};
    big.merge(one);
  }
  EXPECT_EQ(big.failed, 40u);
  EXPECT_EQ(big.errors.size(), core::SweepFailureSummary::kMaxErrors);
}

TEST(SweepRetryTest, PredictLoadSweepSurvivesInjectedSolverFault) {
  // A load sweep re-predicts a fixed mapping — the solver never reruns —
  // so an armed ilp/wave_timeout site must not disturb it: every point
  // succeeds and the failure summary stays clean.
  const auto trace = test_trace();
  const auto nat = nf::build_nat_nf();
  core::AnalyzeOptions options;
  options.use_cache = false;
  const core::Analyzer analyzer(lnic::netronome_agilio_cx());
  auto analysis = analyzer.analyze(nat, trace, options);
  ASSERT_TRUE(analysis.ok());

  fault::FaultPlan plan;
  plan.add_site({"ilp/wave_timeout", 0.0, 1, fault::kNoTrigger, 0.0});
  fault::ScopedPlan scoped(plan);
  core::SweepFailureSummary summary;
  const auto sweep = core::predict_load_sweep(analyzer, analysis.value(), trace.profile,
                                              {2e4, 6e4}, options, 1, &summary);
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_TRUE(sweep[0].ok) << sweep[0].error;
  EXPECT_TRUE(sweep[1].ok) << sweep[1].error;
  EXPECT_EQ(summary.shards, 2u);
  EXPECT_EQ(summary.failed, 0u);
}

// --- hardened CIR parser -----------------------------------------------------

TEST(ParserHardeningTest, OversizedInputRejectedWithParseCode) {
  std::string huge(9u << 20, 'a');
  auto mod = cir::parse_module(huge);
  ASSERT_FALSE(mod.ok());
  EXPECT_EQ(mod.error().code, ErrorCode::kParse);
  EXPECT_NE(mod.error().message.find("too large"), std::string::npos);
}

TEST(ParserHardeningTest, OverlongLineRejected) {
  std::string text = "module m\n; " + std::string(8192, 'x') + "\n";
  auto mod = cir::parse_module(text);
  ASSERT_FALSE(mod.ok());
  EXPECT_EQ(mod.error().code, ErrorCode::kParse);
  EXPECT_NE(mod.error().message.find("too long"), std::string::npos);
}

TEST(ParserHardeningTest, DeepNestingAndImbalanceRejected) {
  const std::string deep = "module m\nfunc f {\nblock b:\n%0 = add " + std::string(64, '(') +
                           "1" + std::string(64, ')') + "\nret\n}\n";
  auto mod = cir::parse_module(deep);
  ASSERT_FALSE(mod.ok());
  EXPECT_EQ(mod.error().code, ErrorCode::kParse);

  const std::string unbalanced = "module m\nfunc f {\nblock b:\n%0 = add ((1\nret\n}\n";
  auto mod2 = cir::parse_module(unbalanced);
  ASSERT_FALSE(mod2.ok());
  EXPECT_EQ(mod2.error().code, ErrorCode::kParse);
}

TEST(ParserHardeningTest, AllParserErrorsCarryParseCode) {
  const char* bad[] = {
      "",                                      // missing header
      "func f {\n}\n",                         // func before module
      "module m\nmodule m\n",                  // duplicate header
      "module m\nwat\n",                       // junk directive
      "module m\nfunc f {\n%0 = add 1\n}\n",   // instruction outside block
      "module m\nfunc f {\nblock b:\nbr nowhere\n}\n",  // unknown label
  };
  for (const char* text : bad) {
    auto mod = cir::parse_module(text);
    ASSERT_FALSE(mod.ok()) << text;
    EXPECT_EQ(mod.error().code, ErrorCode::kParse) << text;
  }
}

// Seeded corpus fuzz: byte mutations of real sources must produce Result
// errors (or valid parses), never a crash or abort. Deterministic — the
// mutation stream derives from fixed seeds, so a failure reproduces.
TEST(ParserFuzzTest, MutatedCirCorpusNeverCrashes) {
  std::vector<std::string> corpus;
  for (auto&& fn : {nf::build_nat_nf(), nf::build_lpm_nf(), nf::build_dpi_nf()}) {
    cir::Module mod;
    mod.name = "fuzz";
    mod.functions.push_back(fn);
    corpus.push_back(cir::print_module(mod));
  }
  // Raw non-CIR text exercises the top-level rejects.
  corpus.push_back(read_file(std::string(CLARA_EXAMPLES_DIR) + "/nfs/firewall.p4nf"));

  std::size_t parsed_ok = 0, rejected = 0;
  for (std::size_t c = 0; c < corpus.size(); ++c) {
    for (std::uint64_t round = 0; round < 60; ++round) {
      Rng rng(parallel::shard_seed(0xF02Du + c, round));
      std::string mutated = corpus[c];
      const std::size_t flips = 1 + rng.next_below(8);
      for (std::size_t f = 0; f < flips && !mutated.empty(); ++f) {
        const std::size_t pos = rng.next_below(mutated.size());
        mutated[pos] = static_cast<char>(rng.next_below(256));
      }
      auto mod = cir::parse_module(mutated);
      if (mod.ok()) {
        ++parsed_ok;
        for (const auto& fn : mod.value().functions) (void)cir::verify(fn);
      } else {
        ++rejected;
        EXPECT_FALSE(mod.error().message.empty());
      }
    }
  }
  // The corpus is real text, so most mutations must be caught as errors.
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(parsed_ok + rejected, corpus.size() * 60);
}

TEST(ParserFuzzTest, MutatedP4CorpusNeverCrashes) {
  const char* files[] = {"firewall.p4nf", "rate_limiter.p4nf", "router.p4nf"};
  for (std::size_t c = 0; c < 3; ++c) {
    const auto source = read_file(std::string(CLARA_EXAMPLES_DIR) + "/nfs/" + files[c]);
    ASSERT_FALSE(source.empty()) << files[c];
    for (std::uint64_t round = 0; round < 40; ++round) {
      Rng rng(parallel::shard_seed(0xBEEF + c, round));
      std::string mutated = source;
      const std::size_t flips = 1 + rng.next_below(6);
      for (std::size_t f = 0; f < flips; ++f) {
        mutated[rng.next_below(mutated.size())] = static_cast<char>(rng.next_below(256));
      }
      auto fn = frontend::compile_p4lite(mutated);
      if (fn.ok()) {
        (void)cir::verify(fn.value());
      } else {
        EXPECT_FALSE(fn.error().message.empty());
      }
    }
  }
}

}  // namespace
