// Determinism gate for the parallel execution substrate (ctest label
// `perf`): solve_milp must return bit-identical Solutions at jobs = 1, 2
// and 8 on the mapping models built from the NFs under examples/nfs/,
// the sharded sweep driver must produce identical results at every jobs
// level, and the LP warm start must agree with a cold solve.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/sweep.hpp"
#include "frontend/p4lite.hpp"
#include "ilp/simplex.hpp"
#include "ilp/solver.hpp"
#include "lnic/profiles.hpp"
#include "mapping/mapping.hpp"
#include "passes/api_subst.hpp"
#include "passes/dataflow.hpp"
#include "passes/patterns.hpp"

#ifndef CLARA_EXAMPLES_DIR
#define CLARA_EXAMPLES_DIR "examples"
#endif

namespace clara {
namespace {

class JobsGuard {
 public:
  explicit JobsGuard(std::size_t n) : saved_(parallel::jobs()) { parallel::set_jobs(n); }
  ~JobsGuard() { parallel::set_jobs(saved_); }

 private:
  std::size_t saved_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Compiles one of the shipped P4-lite NFs and solves its mapping MILP
/// at the requested concurrency, returning the full Mapping.
mapping::Mapping map_example(const std::string& nf_file, std::size_t jobs_level) {
  JobsGuard guard(jobs_level);
  auto compiled = frontend::compile_p4lite(read_file(std::string(CLARA_EXAMPLES_DIR) + "/nfs/" + nf_file));
  EXPECT_TRUE(compiled.ok()) << nf_file;
  cir::Function fn = std::move(compiled).value();
  passes::substitute_framework_apis(fn);
  passes::collapse_packet_loops(fn);
  const passes::CostHints hints;
  const auto graph = passes::DataflowGraph::build(fn, hints);
  const auto profile = lnic::netronome_agilio_cx();
  const mapping::Mapper mapper(profile);
  auto result = mapper.map(graph, hints);
  EXPECT_TRUE(result.ok()) << nf_file << ": " << result.error().message;
  return std::move(result).value();
}

TEST(PerfDeterminism, ExampleMappingModelsIdenticalAcrossJobs) {
  for (const char* nf : {"firewall.p4nf", "router.p4nf", "rate_limiter.p4nf"}) {
    const auto serial = map_example(nf, 1);
    for (const std::size_t jobs_level : {2u, 8u}) {
      const auto parallel_run = map_example(nf, jobs_level);
      EXPECT_EQ(serial.status, parallel_run.status) << nf << " jobs=" << jobs_level;
      EXPECT_EQ(serial.objective, parallel_run.objective) << nf << " jobs=" << jobs_level;
      EXPECT_EQ(serial.node_pool, parallel_run.node_pool) << nf << " jobs=" << jobs_level;
      EXPECT_EQ(serial.state_region, parallel_run.state_region) << nf << " jobs=" << jobs_level;
      EXPECT_EQ(serial.ilp_nodes_explored, parallel_run.ilp_nodes_explored) << nf << " jobs=" << jobs_level;
      EXPECT_EQ(serial.ilp_pivots, parallel_run.ilp_pivots) << nf << " jobs=" << jobs_level;
    }
  }
}

/// A small assignment+capacity model with the same structure as the
/// mapper's encoding but enough fractional tension to force branching.
ilp::Model branching_model() {
  ilp::Model m;
  Rng rng(99);
  constexpr int kItems = 14;
  std::vector<int> x;
  ilp::LinExpr cap;
  ilp::LinExpr objective;
  for (int i = 0; i < kItems; ++i) {
    x.push_back(m.add_binary("x_" + std::to_string(i)));
    const double weight = 3.0 + static_cast<double>(rng.next_u64() % 17);
    const double cost = 1.0 + static_cast<double>(rng.next_u64() % 23);
    cap.add(x.back(), weight);
    objective.add(x.back(), -cost);  // minimize negative value = maximize value
  }
  m.add_constraint(std::move(cap), ilp::Sense::kLe, 60.0, "capacity");
  m.set_objective(std::move(objective));
  return m;
}

TEST(PerfDeterminism, SolveMilpBitIdenticalAcrossJobs) {
  const auto model = branching_model();
  ilp::MilpOptions options;
  options.jobs = 1;
  const auto serial = solve_milp(model, options);
  ASSERT_EQ(serial.status, ilp::SolveStatus::kOptimal);
  EXPECT_GT(serial.nodes_explored, 1u);  // the instance must actually branch
  for (const std::size_t jobs_level : {2u, 8u}) {
    options.jobs = jobs_level;
    const auto parallel_run = solve_milp(model, options);
    EXPECT_EQ(serial.status, parallel_run.status);
    EXPECT_EQ(serial.objective, parallel_run.objective) << "jobs=" << jobs_level;
    EXPECT_EQ(serial.values, parallel_run.values) << "jobs=" << jobs_level;
    EXPECT_EQ(serial.nodes_explored, parallel_run.nodes_explored) << "jobs=" << jobs_level;
    EXPECT_EQ(serial.pivots, parallel_run.pivots) << "jobs=" << jobs_level;
  }
}

TEST(PerfDeterminism, SweepIdenticalAcrossJobs) {
  const auto points = core::make_grid({10'000.0, 20'000.0, 40'000.0}, {{1.0}, {2.0}}, 42);
  ASSERT_EQ(points.size(), 6u);
  core::SweepOptions options;
  options.hist_lo = 0.0;
  options.hist_hi = 100.0;
  options.hist_buckets = 16;
  const core::SweepEval eval = [](const core::SweepPoint& point, core::SweepResult& out) {
    Rng rng(point.seed);
    double sum = 0.0;
    for (int i = 0; i < 1'000; ++i) {
      const double sample = static_cast<double>(rng.next_u64() % 100);
      sum += sample;
      out.stats.add(sample);
      out.histogram.add(sample);
    }
    out.value = sum * point.load_pps * point.params.front();
  };
  options.jobs = 1;
  const auto serial = core::run_sweep(points, eval, options);
  const auto serial_hist = core::merge_histograms(serial, options);
  for (const std::size_t jobs_level : {2u, 8u}) {
    options.jobs = jobs_level;
    const auto parallel_run = core::run_sweep(points, eval, options);
    ASSERT_EQ(parallel_run.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].point.index, parallel_run[i].point.index);
      EXPECT_EQ(serial[i].point.seed, parallel_run[i].point.seed);
      EXPECT_EQ(serial[i].value, parallel_run[i].value) << "point " << i << " jobs=" << jobs_level;
      EXPECT_EQ(serial[i].stats.count(), parallel_run[i].stats.count());
      EXPECT_EQ(serial[i].stats.mean(), parallel_run[i].stats.mean());
    }
    const auto parallel_hist = core::merge_histograms(parallel_run, options);
    ASSERT_EQ(serial_hist.bucket_count(), parallel_hist.bucket_count());
    for (std::size_t b = 0; b < serial_hist.bucket_count(); ++b) {
      EXPECT_EQ(serial_hist.bucket(b), parallel_hist.bucket(b)) << "bucket " << b;
    }
  }
}

TEST(PerfDeterminism, WarmStartMatchesColdSolve) {
  // max 3x + 2y + 4z under two capacity rows (solved as minimization).
  ilp::Model m;
  const int x = m.add_continuous("x", 0.0, 10.0);
  const int y = m.add_continuous("y", 0.0, 10.0);
  const int z = m.add_continuous("z", 0.0, 10.0);
  m.add_constraint(ilp::LinExpr().add(x, 1).add(y, 2).add(z, 1), ilp::Sense::kLe, 14);
  m.add_constraint(ilp::LinExpr().add(x, 3).add(y, 1).add(z, 2), ilp::Sense::kLe, 20);
  m.set_objective(ilp::LinExpr().add(x, -3).add(y, -2).add(z, -4));
  const auto cold = solve_lp(m);
  ASSERT_EQ(cold.status, ilp::SolveStatus::kOptimal);
  ASSERT_FALSE(cold.basis.empty());

  // Re-solving the same model from its own optimal basis must agree and
  // must not pivot more than the cold solve did.
  ilp::LpOptions warm_options;
  warm_options.warm_basis = cold.basis;
  const auto warm = solve_lp(m, warm_options);
  ASSERT_EQ(warm.status, ilp::SolveStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  ASSERT_EQ(warm.values.size(), cold.values.size());
  for (std::size_t i = 0; i < cold.values.size(); ++i) {
    EXPECT_NEAR(warm.values[i], cold.values[i], 1e-9) << "var " << i;
  }
  // warm.pivots includes the basis-installation pivots, so it is not
  // comparable to cold.pivots on a toy model; it just has to be finite
  // and small (no phase-1 restart).
  EXPECT_LT(warm.pivots, 50u);
}

}  // namespace
}  // namespace clara
