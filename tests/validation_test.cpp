// Cross-cutting validation properties: worst-case bounds vs simulator
// tails, throughput predictions vs simulator saturation, and energy
// consistency across the corpus — parameterized over NFs.
#include <gtest/gtest.h>

#include "common/strings.hpp"
#include "core/clara.hpp"
#include "nf/nf_cir.hpp"
#include "nf/nf_ported.hpp"
#include "nicsim/sim.hpp"
#include "workload/tracegen.hpp"

namespace clara {
namespace {

workload::Trace make_trace(const std::string& spec) {
  return workload::generate_trace(workload::parse_profile(spec).value());
}

nicsim::MemLevel level_of(const lnic::NicProfile& profile, NodeId region) {
  switch (profile.graph.node(region).memory()->kind) {
    case lnic::MemKind::kLocal: return nicsim::MemLevel::kLocal;
    case lnic::MemKind::kCtm: return nicsim::MemLevel::kCtm;
    case lnic::MemKind::kImem: return nicsim::MemLevel::kImem;
    case lnic::MemKind::kEmem: return nicsim::MemLevel::kEmem;
  }
  return nicsim::MemLevel::kEmem;
}

TEST(Validation, WorstCaseBoundsNatTail) {
  const auto trace = make_trace("tcp=0.8 flows=50000 zipf=0.2 payload=300:1400 pps=60000 packets=30000");
  core::Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto analysis = analyzer.analyze(nf::build_nat_nf(), trace);
  ASSERT_TRUE(analysis.ok()) << analysis.error().message;
  const auto& pred = analysis.value().prediction;
  EXPECT_GT(pred.worst_case_cycles, pred.mean_latency_cycles);

  nicsim::NicSim sim;
  auto& table = sim.create_table("flow_table", 131072, 64,
                                 level_of(analyzer.profile(), analysis.value().mapping.state_region[0]));
  nf::NatProgram ported(table, true);
  const auto stats = sim.run(ported, trace);
  // The WCET-style bound must dominate the simulator's p99.
  EXPECT_GE(pred.worst_case_cycles, stats.p99_latency())
      << "worst-case " << pred.worst_case_cycles << " vs sim p99 " << stats.p99_latency();
  // ... without being uselessly loose.
  EXPECT_LT(pred.worst_case_cycles, stats.p99_latency() * 10.0);
}

TEST(Validation, WorstCaseBoundsLpmTail) {
  const auto trace = make_trace("flows=20000 zipf=0.8 payload=300 pps=60000 packets=20000");
  core::Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto analysis =
      analyzer.analyze(nf::build_lpm_nf({.rules = 10000, .use_flow_cache = true}), trace);
  ASSERT_TRUE(analysis.ok());

  nicsim::NicSim sim;
  auto& lpm = sim.create_lpm("routes", 10000, 4096);
  nf::LpmProgram ported(lpm, true);
  const auto stats = sim.run(ported, trace);
  // Worst case = flow-cache miss + deepest walk; must cover sim p99.
  EXPECT_GE(analysis.value().prediction.worst_case_cycles, stats.p99_latency());
}

TEST(Validation, ThroughputPredictionMatchesSaturation) {
  // Offer far more than the device can take; the simulator's achieved
  // rate is its real capacity, which Clara's bottleneck analysis should
  // bracket within a factor of two.
  const auto trace = make_trace("payload=1400 pps=30000000 packets=40000");
  core::Analyzer analyzer(lnic::netronome_agilio_cx());
  core::AnalyzeOptions options;
  options.map.pps = 60'000;  // map for a feasible rate; predict capacity
  const auto analysis = analyzer.analyze(nf::build_dpi_nf(), trace, options);
  ASSERT_TRUE(analysis.ok()) << analysis.error().message;

  nicsim::NicSim sim;
  nf::DpiProgram ported;
  const auto stats = sim.run(ported, trace);
  ASSERT_GT(stats.drops, 0u);  // genuinely saturated
  const double predicted = analysis.value().prediction.throughput_pps;
  EXPECT_GT(predicted, stats.achieved_pps / 2.0)
      << "predicted " << predicted << " achieved " << stats.achieved_pps;
  EXPECT_LT(predicted, stats.achieved_pps * 2.0)
      << "predicted " << predicted << " achieved " << stats.achieved_pps;
}

class CorpusAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(CorpusAccuracy, MeanLatencyWithin25Percent) {
  // Every NF with a faithful hand-port must predict within 25% on a
  // standard workload (the headline NFs have tighter dedicated tests).
  const auto trace = make_trace("tcp=0.8 flows=5000 payload=400 pps=60000 packets=15000");
  core::Analyzer analyzer(lnic::netronome_agilio_cx());

  cir::Function fn;
  std::unique_ptr<nicsim::NicProgram> program;
  nicsim::NicSim sim;
  switch (GetParam()) {
    case 0: {
      fn = nf::build_hh_nf();
      auto& counters = sim.create_table("counters", 16384, 32, nicsim::MemLevel::kImem);
      program = std::make_unique<nf::HhProgram>(counters);
      break;
    }
    case 1: {
      fn = nf::build_meter_nf();
      auto& buckets = sim.create_table("buckets", 4096, 32, nicsim::MemLevel::kCtm);
      program = std::make_unique<nf::MeterProgram>(buckets);
      break;
    }
    case 2: {
      fn = nf::build_flowstats_nf();
      auto& stats_table = sim.create_table("stats", 16384, 32, nicsim::MemLevel::kImem);
      program = std::make_unique<nf::FlowStatsProgram>(stats_table);
      break;
    }
    case 3: {
      fn = nf::build_rewrite_nf();
      program = std::make_unique<nf::RewriteProgram>();
      break;
    }
    default: {
      fn = nf::build_dpi_nf();
      program = std::make_unique<nf::DpiProgram>();
      break;
    }
  }

  auto analysis = analyzer.analyze(fn, trace);
  ASSERT_TRUE(analysis.ok()) << fn.name << ": " << analysis.error().message;
  // Align the simulator's table placements with Clara's mapping where
  // the dedicated construction above guessed differently is unnecessary:
  // these NFs' states are small enough that both sides use fast memory.
  const auto stats = sim.run(*program, trace);
  const double err = std::abs(analysis.value().prediction.mean_latency_cycles - stats.mean_latency()) /
                     stats.mean_latency();
  EXPECT_LT(err, 0.25) << fn.name << ": predicted " << analysis.value().prediction.mean_latency_cycles
                       << " actual " << stats.mean_latency();
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusAccuracy, ::testing::Range(0, 5));

class PayloadSweepAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(PayloadSweepAccuracy, DpiTracksPayload) {
  const int payload = GetParam();
  const auto trace = make_trace(strf("payload=%d pps=60000 packets=8000", payload));
  core::Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto analysis = analyzer.analyze(nf::build_dpi_nf(), trace);
  ASSERT_TRUE(analysis.ok());

  nicsim::NicSim sim;
  nf::DpiProgram ported;
  const auto stats = sim.run(ported, trace);
  const double err = std::abs(analysis.value().prediction.mean_latency_cycles - stats.mean_latency()) /
                     stats.mean_latency();
  EXPECT_LT(err, 0.15) << payload << "B";
}

INSTANTIATE_TEST_SUITE_P(Payloads, PayloadSweepAccuracy, ::testing::Values(100, 400, 800, 1200, 1500));

}  // namespace
}  // namespace clara
