// Tests for the LP/MILP solver: textbook cases, edge cases, and a
// property sweep checking branch-and-bound against brute force on random
// binary programs.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ilp/simplex.hpp"
#include "ilp/solver.hpp"

namespace clara::ilp {
namespace {

TEST(Simplex, SimpleMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  => x=4, y=0, obj 12.
  Model m;
  const int x = m.add_continuous("x");
  const int y = m.add_continuous("y");
  m.add_constraint(LinExpr().add(x, 1).add(y, 1), Sense::kLe, 4);
  m.add_constraint(LinExpr().add(x, 1).add(y, 3), Sense::kLe, 6);
  m.set_objective(LinExpr().add(x, -3).add(y, -2));  // minimize negative
  const auto sol = solve_lp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -12.0, 1e-6);
  EXPECT_NEAR(sol.value(x), 4.0, 1e-6);
  EXPECT_NEAR(sol.value(y), 0.0, 1e-6);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y s.t. x + y = 5, x >= 2 -> obj 5.
  Model m;
  const int x = m.add_continuous("x", 2.0);
  const int y = m.add_continuous("y");
  m.add_constraint(LinExpr().add(x, 1).add(y, 1), Sense::kEq, 5);
  m.set_objective(LinExpr().add(x, 1).add(y, 1));
  const auto sol = solve_lp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 5.0, 1e-6);
  EXPECT_GE(sol.value(x), 2.0 - 1e-9);
}

TEST(Simplex, GreaterEqualAndNegativeRhs) {
  // min 2x s.t. -x <= -3  (i.e. x >= 3) -> x = 3.
  Model m;
  const int x = m.add_continuous("x");
  m.add_constraint(LinExpr().add(x, -1), Sense::kLe, -3);
  m.set_objective(LinExpr().add(x, 2));
  const auto sol = solve_lp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.value(x), 3.0, 1e-6);
}

TEST(Simplex, InfeasibleDetected) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 1.0);
  m.add_constraint(LinExpr().add(x, 1), Sense::kGe, 5);
  m.set_objective(LinExpr().add(x, 1));
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, InfeasibleBoundOverride) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 10.0);
  m.set_objective(LinExpr().add(x, 1));
  LpOptions options;
  options.lo_override = {5.0};
  options.hi_override = {2.0};
  EXPECT_EQ(solve_lp(m, options).status, SolveStatus::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  Model m;
  const int x = m.add_continuous("x");
  m.set_objective(LinExpr().add(x, -1));  // minimize -x with x unbounded
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, VariableShifting) {
  // Lower bounds are handled by shifting: min x s.t. x >= 7 (bound only).
  Model m;
  const int x = m.add_continuous("x", 7.0, 100.0);
  m.set_objective(LinExpr().add(x, 1));
  const auto sol = solve_lp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.value(x), 7.0, 1e-9);
}

TEST(Simplex, ObjectiveConstant) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 1.0);
  m.set_objective(LinExpr(10.0).add(x, 1));
  const auto sol = solve_lp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 10.0, 1e-9);
}

TEST(Simplex, DegenerateRedundantConstraints) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 10.0);
  m.add_constraint(LinExpr().add(x, 1), Sense::kLe, 5);
  m.add_constraint(LinExpr().add(x, 1), Sense::kLe, 5);
  m.add_constraint(LinExpr().add(x, 2), Sense::kLe, 10);
  m.set_objective(LinExpr().add(x, -1));
  const auto sol = solve_lp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.value(x), 5.0, 1e-6);
}

TEST(LinExprTest, DenseMergesDuplicates) {
  LinExpr e;
  e.add(0, 1.0).add(0, 2.0).add(1, -1.0);
  const auto dense = e.dense(2);
  EXPECT_DOUBLE_EQ(dense[0], 3.0);
  EXPECT_DOUBLE_EQ(dense[1], -1.0);
}

TEST(Milp, SimpleKnapsack) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (binary) -> a,b -> 16.
  Model m;
  const int a = m.add_binary("a");
  const int b = m.add_binary("b");
  const int c = m.add_binary("c");
  m.add_constraint(LinExpr().add(a, 1).add(b, 1).add(c, 1), Sense::kLe, 2);
  m.set_objective(LinExpr().add(a, -10).add(b, -6).add(c, -4));
  const auto sol = solve_milp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -16.0, 1e-6);
  EXPECT_NEAR(sol.value(a), 1.0, 1e-6);
  EXPECT_NEAR(sol.value(b), 1.0, 1e-6);
  EXPECT_NEAR(sol.value(c), 0.0, 1e-6);
}

TEST(Milp, IntegralityMatters) {
  // LP relaxation gives x = 2.5; MILP must give 2 (x integer, 2x <= 5).
  Model m;
  const int x = m.add_integer("x", 0, 10);
  m.add_constraint(LinExpr().add(x, 2), Sense::kLe, 5);
  m.set_objective(LinExpr().add(x, -1));
  const auto sol = solve_milp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.value(x), 2.0, 1e-6);
}

TEST(Milp, InfeasibleInteger) {
  // 0.4 <= x <= 0.6 with x binary has no integer point.
  Model m;
  const int x = m.add_binary("x");
  m.add_constraint(LinExpr().add(x, 1), Sense::kGe, 0.4);
  m.add_constraint(LinExpr().add(x, 1), Sense::kLe, 0.6);
  m.set_objective(LinExpr().add(x, 1));
  EXPECT_EQ(solve_milp(m).status, SolveStatus::kInfeasible);
}

TEST(Milp, PureLpPassThrough) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 3.0);
  m.set_objective(LinExpr().add(x, -1));
  const auto sol = solve_milp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.value(x), 3.0, 1e-6);
}

TEST(Milp, AssignmentProblem) {
  // 3 tasks x 3 machines, minimize cost; classic assignment.
  const double cost[3][3] = {{4, 2, 8}, {4, 3, 7}, {3, 1, 6}};
  Model m;
  int x[3][3];
  for (int i = 0; i < 3; ++i) {
    LinExpr row;
    for (int j = 0; j < 3; ++j) {
      x[i][j] = m.add_binary("x");
      row.add(x[i][j], 1);
    }
    m.add_constraint(std::move(row), Sense::kEq, 1);
  }
  for (int j = 0; j < 3; ++j) {
    LinExpr col;
    for (int i = 0; i < 3; ++i) col.add(x[i][j], 1);
    m.add_constraint(std::move(col), Sense::kLe, 1);
  }
  LinExpr obj;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) obj.add(x[i][j], cost[i][j]);
  }
  m.set_objective(std::move(obj));
  const auto sol = solve_milp(m);
  ASSERT_TRUE(sol.optimal());
  // Optimal: task0->m1 (2), task1->m2 (7)?? brute force: permutations:
  // (0,1,2):4+3+6=13 (1,0,2):2+4+6=12 (1,2,0):2+7+3=12 (0,2,1):4+7+1=12
  // (2,0,1):8+4+1=13 (2,1,0):8+3+3=14 -> min 12.
  EXPECT_NEAR(sol.objective, 12.0, 1e-6);
}

TEST(Milp, PickBranchVarPrefersMostFractional) {
  // Regression: the score must reward closeness to 0.5, so a 0.49
  // fraction beats a 0.01 fraction (an earlier version scored by the
  // raw fraction and picked nearly-integral variables).
  Model m;
  const int a = m.add_binary("a");
  const int b = m.add_binary("b");
  const int c = m.add_binary("c");
  std::vector<double> values(3, 0.0);
  values[static_cast<std::size_t>(a)] = 1.01;  // fraction 0.01
  values[static_cast<std::size_t>(b)] = 0.49;  // most fractional
  values[static_cast<std::size_t>(c)] = 1.0;   // integral
  EXPECT_EQ(pick_branch_var(m, values, 1e-6), b);
  // Fractions symmetric around one half tie; the lowest index wins.
  values[static_cast<std::size_t>(a)] = 0.51;
  EXPECT_EQ(pick_branch_var(m, values, 1e-6), a);
  // All integral within tolerance: no branch candidate.
  values[static_cast<std::size_t>(a)] = 1.0;
  values[static_cast<std::size_t>(b)] = 0.0;
  EXPECT_EQ(pick_branch_var(m, values, 1e-6), -1);
}

// Property test: branch-and-bound equals brute-force enumeration on
// random binary programs.
class MilpPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MilpPropertyTest, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 17);
  const int n = 6;
  const int n_constraints = 4;

  Model m;
  std::vector<int> vars;
  std::vector<double> obj_coefs;
  for (int i = 0; i < n; ++i) {
    vars.push_back(m.add_binary("b"));
    obj_coefs.push_back(std::floor(rng.next_double() * 21.0) - 10.0);
  }
  LinExpr obj;
  for (int i = 0; i < n; ++i) obj.add(vars[i], obj_coefs[i]);
  m.set_objective(std::move(obj));

  std::vector<std::vector<double>> rows;
  std::vector<double> rhs;
  for (int c = 0; c < n_constraints; ++c) {
    LinExpr expr;
    std::vector<double> row;
    double total_pos = 0.0;
    for (int i = 0; i < n; ++i) {
      const double coef = std::floor(rng.next_double() * 11.0) - 5.0;
      row.push_back(coef);
      expr.add(vars[i], coef);
      if (coef > 0) total_pos += coef;
    }
    const double bound = std::floor(rng.next_double() * total_pos);
    rows.push_back(row);
    rhs.push_back(bound);
    m.add_constraint(std::move(expr), Sense::kLe, bound);
  }

  // Brute force over 2^n assignments.
  double best = 1e300;
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool feasible = true;
    for (int c = 0; c < n_constraints && feasible; ++c) {
      double lhs = 0.0;
      for (int i = 0; i < n; ++i) {
        if (mask & (1 << i)) lhs += rows[c][i];
      }
      feasible = lhs <= rhs[c] + 1e-9;
    }
    if (!feasible) continue;
    double value = 0.0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) value += obj_coefs[i];
    }
    best = std::min(best, value);
  }

  const auto sol = solve_milp(m);
  if (best == 1e300) {
    EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
  } else {
    ASSERT_TRUE(sol.optimal()) << "seed " << GetParam();
    EXPECT_NEAR(sol.objective, best, 1e-5) << "seed " << GetParam();
    // Solution must itself be feasible and integral.
    for (int c = 0; c < n_constraints; ++c) {
      double lhs = 0.0;
      for (int i = 0; i < n; ++i) lhs += rows[c][i] * sol.value(vars[i]);
      EXPECT_LE(lhs, rhs[c] + 1e-6);
    }
    for (int i = 0; i < n; ++i) {
      const double v = sol.value(vars[i]);
      EXPECT_NEAR(v, std::round(v), 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, MilpPropertyTest, ::testing::Range(0, 40));

// LP property: simplex optimum never exceeds any feasible point we can
// construct (random LPs with a known feasible point).
class LpPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LpPropertyTest, OptimumBeatsRandomFeasiblePoints) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  const int n = 5;
  Model m;
  std::vector<int> vars;
  for (int i = 0; i < n; ++i) vars.push_back(m.add_continuous("x", 0.0, 10.0));
  LinExpr obj;
  std::vector<double> c;
  for (int i = 0; i < n; ++i) {
    c.push_back(rng.next_double() * 4.0 - 2.0);
    obj.add(vars[i], c.back());
  }
  m.set_objective(std::move(obj));
  // Constraints with non-negative coefficients keep 0 feasible.
  std::vector<std::vector<double>> rows;
  std::vector<double> rhs;
  for (int k = 0; k < 3; ++k) {
    LinExpr e;
    std::vector<double> row;
    for (int i = 0; i < n; ++i) {
      const double coef = rng.next_double() * 3.0;
      row.push_back(coef);
      e.add(vars[i], coef);
    }
    rows.push_back(row);
    rhs.push_back(rng.next_double() * 20.0 + 1.0);
    m.add_constraint(std::move(e), Sense::kLe, rhs.back());
  }
  const auto sol = solve_lp(m);
  ASSERT_TRUE(sol.optimal());
  // Generate random feasible points by scaling random vectors into the
  // feasible region; the simplex optimum must be at least as good.
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> x(n);
    for (int i = 0; i < n; ++i) x[i] = rng.next_double() * 10.0;
    double worst_scale = 1.0;
    for (std::size_t k = 0; k < rows.size(); ++k) {
      double lhs = 0.0;
      for (int i = 0; i < n; ++i) lhs += rows[k][i] * x[i];
      if (lhs > rhs[k]) worst_scale = std::min(worst_scale, rhs[k] / lhs);
    }
    double value = 0.0;
    for (int i = 0; i < n; ++i) value += c[i] * x[i] * worst_scale;
    EXPECT_GE(value, sol.objective - 1e-6) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLps, LpPropertyTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace clara::ilp
