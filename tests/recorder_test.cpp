// Self-profiling subsystem tests: flight-recorder rings (wrap, clear,
// concurrent record/snapshot), the Chrome export shared with the span
// tracer (parses, sane fields, stable tids, file round-trip), auto-dump
// throttling, pool self-profile attribution coverage, bench-diff
// regression gating, the Prometheus metrics exposition, and the JSON
// parser they all lean on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/parallel.hpp"
#include "ilp/instances.hpp"
#include "ilp/solver.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/benchdiff.hpp"
#include "obs/recorder.hpp"

namespace clara::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// --- JSON parser -------------------------------------------------------------

TEST(JsonParser, ParsesScalarsArraysObjects) {
  const auto doc = Json::parse(
      R"({"s": "a\"bA", "n": -2.5e1, "t": true, "f": false, "z": null,
          "arr": [1, 2, 3], "obj": {"k": "v"}})");
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  const Json& j = doc.value();
  EXPECT_EQ(j.string_at("s"), "a\"bA");
  EXPECT_DOUBLE_EQ(j.number_at("n"), -25.0);
  EXPECT_TRUE(j.bool_at("t"));
  EXPECT_FALSE(j.bool_at("f"));
  ASSERT_NE(j.get("z"), nullptr);
  EXPECT_TRUE(j.get("z")->is_null());
  ASSERT_NE(j.get("arr"), nullptr);
  ASSERT_EQ(j.get("arr")->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(j.get("arr")->as_array()[2].as_double(), 3.0);
  ASSERT_NE(j.get("obj"), nullptr);
  EXPECT_EQ(j.get("obj")->string_at("k"), "v");
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_FALSE(Json::parse("").ok());
  EXPECT_FALSE(Json::parse("{").ok());
  EXPECT_FALSE(Json::parse("[1,]").ok());
  EXPECT_FALSE(Json::parse("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").ok());
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  EXPECT_FALSE(Json::parse(deep).ok());
  const auto err = Json::parse("nope");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, ErrorCode::kParse);
}

// --- flight recorder rings ---------------------------------------------------

TEST(FlightRecorder, RingWrapKeepsMostRecentEvents) {
  FlightRecorder rec;
  const std::size_t total = 2 * FlightRecorder::kRingCapacity + 17;
  for (std::size_t i = 0; i < total; ++i) {
    rec.record(FlightEventKind::kMark, i);
  }
  EXPECT_EQ(rec.total_recorded(), total);
  const auto events = rec.snapshot();
  ASSERT_LE(events.size(), FlightRecorder::kRingCapacity);
  ASSERT_FALSE(events.empty());
  // The newest events survive; the oldest surviving one is late enough
  // that everything before the wrap has been overwritten.
  EXPECT_EQ(events.back().a, total - 1);
  EXPECT_GE(events.front().a, total - FlightRecorder::kRingCapacity);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
  }
}

TEST(FlightRecorder, ClearDropsEventsAndDisabledRecordsNothing) {
  FlightRecorder rec;
  rec.record(FlightEventKind::kMark, 1);
  EXPECT_FALSE(rec.snapshot().empty());
  rec.clear();
  EXPECT_TRUE(rec.snapshot().empty());
  rec.set_enabled(false);
  rec.record(FlightEventKind::kMark, 2);
  EXPECT_TRUE(rec.snapshot().empty());
  rec.set_enabled(true);
  rec.record(FlightEventKind::kMark, 3);
  ASSERT_EQ(rec.snapshot().size(), 1u);
  EXPECT_EQ(rec.snapshot()[0].a, 3u);
}

TEST(FlightRecorder, ConcurrentRecordAndSnapshotIsSafe) {
  FlightRecorder rec;
  constexpr int kThreads = 4;
  constexpr std::size_t kPerThread = 20'000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const auto events = rec.snapshot();
      for (const auto& e : events) EXPECT_GE(e.ts_ns, 0);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&rec, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        rec.record(FlightEventKind::kMark, i, static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(rec.total_recorded(), kThreads * kPerThread);
  // Each thread's ring holds at most kRingCapacity of its own events.
  const auto events = rec.snapshot();
  EXPECT_LE(events.size(), kThreads * FlightRecorder::kRingCapacity);
  std::set<std::uint32_t> tids;
  for (const auto& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

// --- Chrome export -----------------------------------------------------------

TEST(FlightRecorderExport, ChromeJsonParsesWithSaneFields) {
  FlightRecorder rec;
  rec.record(FlightEventKind::kTaskStart, 0);
  rec.record(FlightEventKind::kTaskStop, 0, 1'000);
  rec.record(FlightEventKind::kWaveEnter, 7, 16);
  rec.record(FlightEventKind::kWaveExit, 7, 123'456);
  rec.record(FlightEventKind::kTaskStart, 1);  // unpaired: instant, not span
  const auto doc = Json::parse(rec.to_chrome_json("unit_test"));
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  const Json* events = doc.value().get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->as_array().empty());
  bool saw_task_span = false;
  for (const auto& e : events->as_array()) {
    EXPECT_GE(e.number_at("ts"), 0.0);
    EXPECT_DOUBLE_EQ(e.number_at("pid"), 1.0);
    const std::string ph = e.string_at("ph");
    EXPECT_TRUE(ph == "X" || ph == "i") << ph;
    if (ph == "X") {
      EXPECT_GE(e.number_at("dur"), 0.0);
      if (e.string_at("name") == "flight/task") saw_task_span = true;
    }
  }
  EXPECT_TRUE(saw_task_span);
  const Json* flight = doc.value().get("clara_flight");
  ASSERT_NE(flight, nullptr);
  EXPECT_EQ(flight->string_at("reason"), "unit_test");
  EXPECT_GT(flight->number_at("events"), 0.0);
}

TEST(FlightRecorderExport, TidsAreStableAcrossExports) {
  FlightRecorder rec;
  std::thread other([&rec] { rec.record(FlightEventKind::kMark, 1); });
  other.join();
  rec.record(FlightEventKind::kMark, 2);
  const auto tids_of = [](const Json& doc) {
    std::set<double> tids;
    for (const auto& e : doc.get("traceEvents")->as_array()) tids.insert(e.number_at("tid"));
    return tids;
  };
  const auto first = Json::parse(rec.to_chrome_json());
  const auto second = Json::parse(rec.to_chrome_json());
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(tids_of(first.value()), tids_of(second.value()));
  EXPECT_EQ(tids_of(first.value()).size(), 2u);
}

TEST(FlightRecorderExport, DumpToFileRoundTrips) {
  FlightRecorder rec;
  rec.record(FlightEventKind::kCacheHit, 1, 42);
  rec.record(FlightEventKind::kCacheMiss, 2, 43);
  const std::string path = testing::TempDir() + "clara_recorder_roundtrip.json";
  ASSERT_TRUE(rec.dump_to_file(path, "roundtrip"));
  const auto doc = Json::parse(read_file(path));
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  EXPECT_EQ(doc.value().get("clara_flight")->string_at("reason"), "roundtrip");
  bool saw_hit = false;
  for (const auto& e : doc.value().get("traceEvents")->as_array()) {
    if (e.string_at("name") == "flight/cache_hit") saw_hit = true;
  }
  EXPECT_TRUE(saw_hit);
  std::remove(path.c_str());
}

TEST(FlightRecorderExport, AutoDumpFiresOnceUntilReset) {
  FlightRecorder rec;
  rec.set_dump_dir(testing::TempDir());
  rec.record(FlightEventKind::kMark, 1);
  const std::string first = rec.auto_dump("reason one/2");
  ASSERT_FALSE(first.empty());
  // Reasons are sanitized into the filename.
  EXPECT_NE(first.find("clara_flight_reason_one_2.json"), std::string::npos);
  EXPECT_EQ(rec.last_dump_path(), first);
  EXPECT_TRUE(Json::parse(read_file(first)).ok());
  EXPECT_TRUE(rec.auto_dump("again").empty()) << "second auto dump must be throttled";
  rec.reset_auto_dump();
  EXPECT_TRUE(rec.last_dump_path().empty());
  const std::string second = rec.auto_dump("again");
  EXPECT_FALSE(second.empty());
  std::remove(first.c_str());
  std::remove(second.c_str());
}

// --- pool self-profiling -----------------------------------------------------

TEST(Profile, ParallelRegionCoverageIsHigh) {
  const std::size_t prev_jobs = parallel::jobs();
  parallel::set_jobs(4);
  ProfileScope scope;
  // A genuinely parallel region: the market-split B&B keeps every lane
  // busy for tens of milliseconds.
  ilp::SolveOptions options;
  options.max_nodes = 2'000;
  options.jobs = 4;
  const auto solution = ilp::solve_milp(ilp::make_market_split(20, 3), options);
  (void)solution;
  const auto report = scope.finish();
  parallel::set_jobs(prev_jobs);

  EXPECT_GT(report.wall_ns, 0u);
  ASSERT_GE(report.lanes.size(), 2u);
  EXPECT_EQ(report.lanes.back().name, "caller");
  EXPECT_EQ(report.lane_count, report.lanes.size());
  EXPECT_GT(report.tasks_run + report.tasks_inline, 0u);
  // Acceptance bar is 95% on the CLI's long-running profile; leave slack
  // for scheduler noise on short unit-test regions.
  EXPECT_GE(report.coverage(), 0.90) << report.render();
  EXPECT_LE(report.coverage(), 1.0 + 1e-9);
  const std::string rendered = report.render();
  EXPECT_NE(rendered.find("attribution coverage"), std::string::npos);
  EXPECT_NE(rendered.find("caller"), std::string::npos);
}

TEST(Profile, DeltaAttributesLaneBuckets) {
  parallel::PoolStats before;
  parallel::PoolStats after;
  before.worker_lanes.resize(1);
  after.worker_lanes.resize(1);
  after.worker_lanes[0].run_ns = 600;
  after.worker_lanes[0].sched_ns = 100;
  after.worker_lanes[0].idle_ns = 200;
  after.worker_lanes[0].tasks = 3;
  after.inline_lane.run_ns = 900;
  after.tasks_run = 3;
  const auto report = profile_delta(before, after, 1'000);
  ASSERT_EQ(report.lanes.size(), 2u);
  EXPECT_EQ(report.lanes[0].run_ns, 600u);
  EXPECT_EQ(report.lanes[0].sched_ns, 100u);
  EXPECT_EQ(report.lanes[0].idle_ns, 200u);
  EXPECT_EQ(report.lanes[1].name, "caller");
  EXPECT_EQ(report.lanes[1].run_ns, 900u);
  // worker measured 900 of 1000; caller 900 measured + 100 serial rest.
  EXPECT_NEAR(report.coverage(), (900.0 + 1000.0) / 2000.0, 1e-9);
}

// --- bench diff --------------------------------------------------------------

Json parse_or_die(const std::string& text) {
  auto doc = Json::parse(text);
  EXPECT_TRUE(doc.ok()) << doc.error().message;
  return doc.value();
}

std::string bench_run(double simplex_ns, double parallel_ms, double speedup, bool oversubscribed) {
  std::ostringstream out;
  out << R"({"schema": "clara-bench-perf/1", "jobs": 4, "hardware_concurrency": 8,
    "micro": [
      {"name": "simplex_solve", "ns_per_iter": )" << simplex_ns << R"(, "items_per_sec": 1.0},
      {"name": "tiny_op", "ns_per_iter": 50.0, "items_per_sec": 1.0}
    ],
    "parallel": [
      {"name": "milp_branch_and_bound", "jobs": 4, "serial_ms": 100.0,
       "parallel_ms": )" << parallel_ms << R"(, "speedup": )" << speedup << R"(,
       "oversubscribed": )" << (oversubscribed ? "true" : "false") << R"(}
    ],
    "cache": {"cold_ms": 10.0, "warm_ms": 1.0, "cache_warm_speedup": 10.0},
    "repair": {"cold_remap_ms": 4.0, "repair_ms": 1.0, "repair_remap_speedup": 4.0}})";
  return out.str();
}

TEST(BenchDiff, DetectsRegressionBeyondThreshold) {
  const auto old_run = parse_or_die(bench_run(1000.0, 40.0, 2.5, false));
  const auto new_run = parse_or_die(bench_run(1300.0, 40.0, 2.5, false));
  const auto report = diff_bench_json(old_run, new_run);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_TRUE(report.value().has_regression());
  EXPECT_EQ(report.value().regressions(), 1u);
  const std::string rendered = report.value().render(0.10);
  EXPECT_NE(rendered.find("REGRESSED"), std::string::npos);
  EXPECT_NE(rendered.find("FAIL"), std::string::npos);
}

TEST(BenchDiff, ImprovementAndNoiseAreNotRegressions) {
  const auto old_run = parse_or_die(bench_run(1000.0, 40.0, 2.5, false));
  // simplex improves 20%; tiny_op doubles but sits below the noise floor.
  auto new_text = bench_run(800.0, 40.0, 2.5, false);
  const auto pos = new_text.find("\"tiny_op\", \"ns_per_iter\": 50.0");
  ASSERT_NE(pos, std::string::npos);
  new_text.replace(pos, std::string("\"tiny_op\", \"ns_per_iter\": 50.0").size(),
                   "\"tiny_op\", \"ns_per_iter\": 120.0");
  const auto report = diff_bench_json(old_run, parse_or_die(new_text));
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().has_regression());
  bool saw_improved = false;
  bool saw_noise_skip = false;
  for (const auto& row : report.value().rows) {
    if (row.scenario == "micro/simplex_solve" && row.status == BenchDiffRow::Status::kImproved) {
      saw_improved = true;
    }
    if (row.scenario == "micro/tiny_op") {
      EXPECT_EQ(row.status, BenchDiffRow::Status::kSkipped);
      saw_noise_skip = true;
    }
  }
  EXPECT_TRUE(saw_improved);
  EXPECT_TRUE(saw_noise_skip);
  EXPECT_NE(report.value().render(0.10).find("PASS"), std::string::npos);
}

TEST(BenchDiff, OversubscribedRunsGateSpeedupOnRegressionOnly) {
  // A 2.0x -> 1.0x collapse is a regression even when both runs were
  // oversubscribed: the >1.0 contract is waived, the baseline isn't.
  const auto old_run = parse_or_die(bench_run(1000.0, 40.0, 2.0, true));
  const auto new_run = parse_or_die(bench_run(1000.0, 60.0, 1.0, true));
  const auto report = diff_bench_json(old_run, new_run);
  ASSERT_TRUE(report.ok());
  bool speedup_regressed = false;
  bool wall_regressed = false;
  for (const auto& row : report.value().rows) {
    if (row.scenario != "parallel/milp_branch_and_bound") continue;
    if (row.metric == "speedup") {
      speedup_regressed = row.status == BenchDiffRow::Status::kRegressed;
      EXPECT_NE(row.note.find("oversubscribed"), std::string::npos);
    }
    if (row.metric == "parallel_ms") {
      wall_regressed = row.status == BenchDiffRow::Status::kRegressed;
    }
  }
  EXPECT_TRUE(speedup_regressed);
  EXPECT_TRUE(wall_regressed);
}

TEST(BenchDiff, OversubscribedSubUnitSpeedupWithinThresholdIsOk) {
  // Time-sliced speedups below 1.0 are expected on a starved runner;
  // only movement against the baseline counts.
  const auto old_run = parse_or_die(bench_run(1000.0, 130.0, 0.77, true));
  const auto new_run = parse_or_die(bench_run(1000.0, 133.0, 0.75, true));
  const auto report = diff_bench_json(old_run, new_run);
  ASSERT_TRUE(report.ok());
  for (const auto& row : report.value().rows) {
    if (row.scenario == "parallel/milp_branch_and_bound" && row.metric == "speedup") {
      EXPECT_EQ(row.status, BenchDiffRow::Status::kOk);
    }
  }
  EXPECT_FALSE(report.value().has_regression());
}

TEST(BenchDiff, SpeedupBelowOneFailsContractWhenNotOversubscribed) {
  // With real cores available, parallel slower than serial is a
  // regression even if the baseline already had it (within threshold).
  const auto old_run = parse_or_die(bench_run(1000.0, 105.0, 0.95, false));
  const auto new_run = parse_or_die(bench_run(1000.0, 106.0, 0.94, false));
  const auto report = diff_bench_json(old_run, new_run);
  ASSERT_TRUE(report.ok());
  bool contract_fail = false;
  for (const auto& row : report.value().rows) {
    if (row.scenario == "parallel/milp_branch_and_bound" && row.metric == "speedup") {
      contract_fail = row.status == BenchDiffRow::Status::kRegressed &&
                      row.note.find("1.0 contract") != std::string::npos;
    }
  }
  EXPECT_TRUE(contract_fail);
}

TEST(BenchDiff, SolverPivotMicroGetsTighterThreshold) {
  // +7% on solver_pivot_ns regresses under its 5% gate while the same
  // drift on an ordinary micro would pass the 10% default.
  const auto make = [&](double pivot_ns) {
    std::ostringstream out;
    out << R"({"schema": "clara-bench-perf/1", "jobs": 4, "hardware_concurrency": 8,
      "micro": [
        {"name": "solver_pivot_ns", "ns_per_iter": )" << pivot_ns << R"(, "items_per_sec": 1.0},
        {"name": "simplex_solve", "ns_per_iter": )" << pivot_ns * 100.0 << R"(, "items_per_sec": 1.0}
      ]})";
    return parse_or_die(out.str());
  };
  const auto report = diff_bench_json(make(500.0), make(535.0));
  ASSERT_TRUE(report.ok());
  bool pivot_regressed = false;
  bool solve_ok = false;
  for (const auto& row : report.value().rows) {
    if (row.scenario == "micro/solver_pivot_ns" && row.metric == "ns_per_iter") {
      pivot_regressed = row.status == BenchDiffRow::Status::kRegressed;
      EXPECT_NE(row.note.find("pivot micro"), std::string::npos);
    }
    if (row.scenario == "micro/simplex_solve" && row.metric == "ns_per_iter") {
      solve_ok = row.status == BenchDiffRow::Status::kOk;
    }
  }
  EXPECT_TRUE(pivot_regressed);
  EXPECT_TRUE(solve_ok);
}

TEST(BenchDiff, SchemaMismatchAndMissingScenarios) {
  const auto good = parse_or_die(bench_run(1000.0, 40.0, 2.5, false));
  const auto bad = parse_or_die(R"({"schema": "something-else/9"})");
  EXPECT_FALSE(diff_bench_json(good, bad).ok());
  EXPECT_FALSE(diff_bench_json(bad, good).ok());

  // A scenario present in only one run is reported but never gated.
  auto trimmed = parse_or_die(
      R"({"schema": "clara-bench-perf/1",
          "micro": [{"name": "simplex_solve", "ns_per_iter": 1000.0}]})");
  const auto report = diff_bench_json(good, trimmed);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().has_regression());
  bool saw_only_in_old = false;
  for (const auto& row : report.value().rows) {
    if (row.note.find("only in old") != std::string::npos) saw_only_in_old = true;
  }
  EXPECT_TRUE(saw_only_in_old);
}

// --- Prometheus exposition ---------------------------------------------------

TEST(PrometheusExport, CountersGaugesHistogramsRender) {
  auto& registry = metrics();
  registry.counter("promtest/requests", "nf=nat").inc(3);
  registry.gauge("promtest/depth").set(7.5);
  auto& hist = registry.histogram("promtest/latency_ns");
  hist.observe(3.0);    // bucket le=4
  hist.observe(100.0);  // bucket le=128
  const std::string text = registry.to_prometheus();

  EXPECT_NE(text.find("# TYPE clara_promtest_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("clara_promtest_requests_total{nf=\"nat\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE clara_promtest_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("clara_promtest_depth 7.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE clara_promtest_latency_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("clara_promtest_latency_ns_bucket{le=\"4\"} 1"), std::string::npos);
  EXPECT_NE(text.find("clara_promtest_latency_ns_bucket{le=\"128\"} 2"), std::string::npos);
  EXPECT_NE(text.find("clara_promtest_latency_ns_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("clara_promtest_latency_ns_count 2"), std::string::npos);
  // The +Inf bucket closes this histogram's series (other histograms in
  // the shared registry have their own +Inf rows, so scope the search).
  const std::size_t le4 = text.find("clara_promtest_latency_ns_bucket{le=\"4\"} 1");
  ASSERT_NE(le4, std::string::npos);
  EXPECT_NE(text.find("clara_promtest_latency_ns_bucket{le=\"+Inf\"}", le4), std::string::npos);
}

}  // namespace
}  // namespace clara::obs
