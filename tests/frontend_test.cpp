// Tests for the P4-lite front end: compilation, verification, semantics
// (via the interpreter), end-to-end analysis, and error reporting.
#include <gtest/gtest.h>

#include "cir/interp.hpp"
#include "cir/printer.hpp"
#include "core/clara.hpp"
#include "frontend/p4lite.hpp"
#include "nf/nf_cir.hpp"
#include "passes/symexec.hpp"
#include "workload/tracegen.hpp"

namespace clara::frontend {
namespace {

constexpr const char* kFirewall = R"(
# stateful firewall in P4-lite
p4nf p4_firewall
state conn entries=16384 entry_bytes=64 pattern=hash

control {
  parse
  set seen = lookup conn hdr.flow_hash
  if seen {
    emit
  } else {
    if hdr.tcp_flags & 1 {
      update conn hdr.flow_hash
      emit
    } else {
      drop
    }
  }
}
)";

constexpr const char* kRouter = R"(
p4nf p4_router
state routes entries=20000 entry_bytes=16 pattern=array

control {
  parse
  lpm routes hdr.dst_ip
  sethdr src_port 4242
}
)";

class FixedHandler final : public cir::VCallHandler {
 public:
  std::uint64_t handle(cir::VCall v, std::span<const std::uint64_t> args) override {
    switch (v) {
      case cir::VCall::kGetHdr:
        switch (static_cast<cir::HdrField>(args[0])) {
          case cir::HdrField::kTcpFlags: return flags;
          case cir::HdrField::kFlowHash: return 0x1234;
          case cir::HdrField::kDstIp: return 0x0a000001;
          default: return 0;
        }
      case cir::VCall::kTableLookup: return hit ? 1 : 0;
      case cir::VCall::kEmit: emitted = true; return 0;
      case cir::VCall::kDrop: dropped = true; return 0;
      default: return 0;
    }
  }
  bool hit = false;
  std::uint64_t flags = 0;
  bool emitted = false;
  bool dropped = false;
};

TEST(P4Lite, CompilesAndVerifies) {
  const auto fn = compile_p4lite(kFirewall);
  ASSERT_TRUE(fn.ok()) << fn.error().message;
  EXPECT_EQ(fn.value().name, "p4_firewall");
  EXPECT_EQ(fn.value().state_objects.size(), 1u);
  EXPECT_EQ(fn.value().state_objects[0].entries, 16384u);
}

TEST(P4Lite, FirewallSemantics) {
  const auto fn = compile_p4lite(kFirewall).value();
  {
    FixedHandler h;
    h.hit = true;
    cir::Interpreter interp(fn, h);
    ASSERT_TRUE(interp.run().ok());
    EXPECT_TRUE(h.emitted);
    EXPECT_FALSE(h.dropped);
  }
  {
    FixedHandler h;
    h.hit = false;
    h.flags = 1;  // SYN: install + emit
    cir::Interpreter interp(fn, h);
    ASSERT_TRUE(interp.run().ok());
    EXPECT_TRUE(h.emitted);
  }
  {
    FixedHandler h;
    h.hit = false;
    h.flags = 0;  // no state, not SYN: drop
    cir::Interpreter interp(fn, h);
    ASSERT_TRUE(interp.run().ok());
    EXPECT_TRUE(h.dropped);
    EXPECT_FALSE(h.emitted);
  }
}

TEST(P4Lite, ImplicitEmitOnFallThrough) {
  const auto fn = compile_p4lite(kRouter).value();
  FixedHandler h;
  cir::Interpreter interp(fn, h);
  ASSERT_TRUE(interp.run().ok());
  EXPECT_TRUE(h.emitted);
}

TEST(P4Lite, ExpressionsAndVariables) {
  const auto fn = compile_p4lite(R"(
p4nf exprs
control {
  set a = 2 + 3 * 4
  set b = (a + 1) & 0xff
  set c = b == 15
  if c {
    drop
  }
  sethdr dst_port a - b
}
)");
  ASSERT_TRUE(fn.ok()) << fn.error().message;
  // a = 14, b = 15, c = 1 -> drop.
  FixedHandler h;
  cir::Interpreter interp(fn.value(), h);
  ASSERT_TRUE(interp.run().ok());
  EXPECT_TRUE(h.dropped);
}

TEST(P4Lite, BothArmsTerminating) {
  const auto fn = compile_p4lite(R"(
p4nf both
control {
  if hdr.proto == 6 {
    emit
  } else {
    drop
  }
}
)");
  ASSERT_TRUE(fn.ok()) << fn.error().message;
  const auto paths = passes::enumerate_paths(fn.value());
  EXPECT_EQ(paths.paths.size(), 2u);
}

TEST(P4Lite, RejectsBadPrograms) {
  EXPECT_FALSE(compile_p4lite("").ok());
  EXPECT_FALSE(compile_p4lite("p4nf x\ncontrol {").ok());                      // unterminated
  EXPECT_FALSE(compile_p4lite("p4nf x\ncontrol { frobnicate }").ok());          // unknown stmt
  EXPECT_FALSE(compile_p4lite("p4nf x\ncontrol { set a = b }").ok());           // unset var
  EXPECT_FALSE(compile_p4lite("p4nf x\ncontrol { lpm nosuch hdr.dst_ip }").ok());
  EXPECT_FALSE(compile_p4lite("p4nf x\ncontrol { sethdr nosuchfield 1 }").ok());
  EXPECT_FALSE(compile_p4lite("p4nf x\ncontrol { emit drop }").ok());           // unreachable
  EXPECT_FALSE(compile_p4lite("p4nf x\nstate s entries=4\ncontrol { }").ok());  // missing entry_bytes
  EXPECT_FALSE(compile_p4lite("p4nf x\ncontrol { set a = hdr.bogus }").ok());
}

TEST(P4Lite, ErrorsCarryLineNumbers) {
  const auto result = compile_p4lite("p4nf x\ncontrol {\n  parse\n  frobnicate\n}\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("line 4"), std::string::npos) << result.error().message;
}

TEST(P4Lite, AnalyzesEndToEnd) {
  const auto fn = compile_p4lite(kFirewall).value();
  core::Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto trace = workload::generate_trace(
      workload::parse_profile("tcp=1.0 flows=2000 payload=300 pps=60000 packets=10000").value());
  const auto analysis = analyzer.analyze(fn, trace);
  ASSERT_TRUE(analysis.ok()) << analysis.error().message;
  EXPECT_GT(analysis.value().prediction.mean_latency_cycles, 0.0);
  EXPECT_NE(analysis.value().report.find("conn"), std::string::npos);
}

TEST(P4Lite, RouterMapsLpmToEngine) {
  const auto fn = compile_p4lite(kRouter).value();
  core::Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto trace = workload::generate_trace(
      workload::parse_profile("flows=2000 zipf=1.2 payload=300 pps=60000 packets=10000").value());
  const auto analysis = analyzer.analyze(fn, trace);
  ASSERT_TRUE(analysis.ok()) << analysis.error().message;
  EXPECT_NE(analysis.value().report.find("match-action engine"), std::string::npos);
}

TEST(P4Lite, EquivalentToBuilderFirewallPrediction) {
  // The same firewall authored through the two front ends should predict
  // within a few percent of each other (different var-lowering overhead
  // is real but small).
  core::Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto trace = workload::generate_trace(
      workload::parse_profile("tcp=1.0 flows=2000 payload=300 pps=60000 packets=10000").value());
  const auto p4 = analyzer.analyze(compile_p4lite(kFirewall).value(), trace);
  ASSERT_TRUE(p4.ok());
  auto builder_fw = nf::build_fw_nf({.conn_entries = 16384, .conn_entry_bytes = 64, .rules = 1024});
  const auto built = analyzer.analyze(builder_fw, trace);
  ASSERT_TRUE(built.ok());
  const double a = p4.value().prediction.mean_latency_cycles;
  const double b = built.value().prediction.mean_latency_cycles;
  EXPECT_NEAR(a / b, 1.0, 0.25) << "p4 " << a << " builder " << b;
}

}  // namespace
}  // namespace clara::frontend
