file(REMOVE_RECURSE
  "CMakeFiles/offload_planning.dir/offload_planning.cpp.o"
  "CMakeFiles/offload_planning.dir/offload_planning.cpp.o.d"
  "offload_planning"
  "offload_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
