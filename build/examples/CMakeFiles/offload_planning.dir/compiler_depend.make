# Empty compiler generated dependencies file for offload_planning.
# This may be replaced when dependencies are built.
