
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/interference_study.cpp" "examples/CMakeFiles/interference_study.dir/interference_study.cpp.o" "gcc" "examples/CMakeFiles/interference_study.dir/interference_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/clara_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nf/CMakeFiles/clara_nf.dir/DependInfo.cmake"
  "/root/repo/build/src/nicsim/CMakeFiles/clara_nicsim.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/clara_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/clara_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/clara_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/cir/CMakeFiles/clara_cir.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/clara_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/lnic/CMakeFiles/clara_lnic.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/clara_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
