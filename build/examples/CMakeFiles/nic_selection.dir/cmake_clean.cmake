file(REMOVE_RECURSE
  "CMakeFiles/nic_selection.dir/nic_selection.cpp.o"
  "CMakeFiles/nic_selection.dir/nic_selection.cpp.o.d"
  "nic_selection"
  "nic_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
