# Empty compiler generated dependencies file for nic_selection.
# This may be replaced when dependencies are built.
