# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/lnic_test[1]_include.cmake")
include("/root/repo/build/tests/cir_test[1]_include.cmake")
include("/root/repo/build/tests/ilp_test[1]_include.cmake")
include("/root/repo/build/tests/passes_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/nicsim_test[1]_include.cmake")
include("/root/repo/build/tests/mapping_test[1]_include.cmake")
include("/root/repo/build/tests/microbench_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/nf_test[1]_include.cmake")
include("/root/repo/build/tests/validation_test[1]_include.cmake")
include("/root/repo/build/tests/optimize_test[1]_include.cmake")
include("/root/repo/build/tests/adversarial_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/compose_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
