file(REMOVE_RECURSE
  "CMakeFiles/lnic_test.dir/lnic_test.cpp.o"
  "CMakeFiles/lnic_test.dir/lnic_test.cpp.o.d"
  "lnic_test"
  "lnic_test.pdb"
  "lnic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
