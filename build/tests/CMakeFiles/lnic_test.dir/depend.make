# Empty dependencies file for lnic_test.
# This may be replaced when dependencies are built.
