# Empty dependencies file for nicsim_test.
# This may be replaced when dependencies are built.
