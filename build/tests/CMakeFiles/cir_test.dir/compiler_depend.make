# Empty compiler generated dependencies file for cir_test.
# This may be replaced when dependencies are built.
