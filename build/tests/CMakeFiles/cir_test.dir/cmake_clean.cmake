file(REMOVE_RECURSE
  "CMakeFiles/cir_test.dir/cir_test.cpp.o"
  "CMakeFiles/cir_test.dir/cir_test.cpp.o.d"
  "cir_test"
  "cir_test.pdb"
  "cir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
