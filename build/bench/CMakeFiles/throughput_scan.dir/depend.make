# Empty dependencies file for throughput_scan.
# This may be replaced when dependencies are built.
