file(REMOVE_RECURSE
  "CMakeFiles/throughput_scan.dir/throughput_scan.cpp.o"
  "CMakeFiles/throughput_scan.dir/throughput_scan.cpp.o.d"
  "throughput_scan"
  "throughput_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throughput_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
