# Empty dependencies file for fig3a_lpm.
# This may be replaced when dependencies are built.
