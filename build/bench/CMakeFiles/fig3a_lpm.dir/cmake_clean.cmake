file(REMOVE_RECURSE
  "CMakeFiles/fig3a_lpm.dir/fig3a_lpm.cpp.o"
  "CMakeFiles/fig3a_lpm.dir/fig3a_lpm.cpp.o.d"
  "fig3a_lpm"
  "fig3a_lpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_lpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
