# Empty compiler generated dependencies file for ablation_cachemodel.
# This may be replaced when dependencies are built.
