file(REMOVE_RECURSE
  "CMakeFiles/ablation_cachemodel.dir/ablation_cachemodel.cpp.o"
  "CMakeFiles/ablation_cachemodel.dir/ablation_cachemodel.cpp.o.d"
  "ablation_cachemodel"
  "ablation_cachemodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cachemodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
