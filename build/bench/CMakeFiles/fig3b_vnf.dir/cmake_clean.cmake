file(REMOVE_RECURSE
  "CMakeFiles/fig3b_vnf.dir/fig3b_vnf.cpp.o"
  "CMakeFiles/fig3b_vnf.dir/fig3b_vnf.cpp.o.d"
  "fig3b_vnf"
  "fig3b_vnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_vnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
