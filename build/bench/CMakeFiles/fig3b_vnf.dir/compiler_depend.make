# Empty compiler generated dependencies file for fig3b_vnf.
# This may be replaced when dependencies are built.
