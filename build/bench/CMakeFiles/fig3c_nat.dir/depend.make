# Empty dependencies file for fig3c_nat.
# This may be replaced when dependencies are built.
