file(REMOVE_RECURSE
  "CMakeFiles/fig3c_nat.dir/fig3c_nat.cpp.o"
  "CMakeFiles/fig3c_nat.dir/fig3c_nat.cpp.o.d"
  "fig3c_nat"
  "fig3c_nat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_nat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
