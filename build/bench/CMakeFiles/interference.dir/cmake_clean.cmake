file(REMOVE_RECURSE
  "CMakeFiles/interference.dir/interference.cpp.o"
  "CMakeFiles/interference.dir/interference.cpp.o.d"
  "interference"
  "interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
