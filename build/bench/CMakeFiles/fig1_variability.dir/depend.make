# Empty dependencies file for fig1_variability.
# This may be replaced when dependencies are built.
