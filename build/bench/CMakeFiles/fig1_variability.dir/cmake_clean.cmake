file(REMOVE_RECURSE
  "CMakeFiles/fig1_variability.dir/fig1_variability.cpp.o"
  "CMakeFiles/fig1_variability.dir/fig1_variability.cpp.o.d"
  "fig1_variability"
  "fig1_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
