# Empty compiler generated dependencies file for accuracy_summary.
# This may be replaced when dependencies are built.
