file(REMOVE_RECURSE
  "CMakeFiles/table_params.dir/table_params.cpp.o"
  "CMakeFiles/table_params.dir/table_params.cpp.o.d"
  "table_params"
  "table_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
