# Empty dependencies file for table_params.
# This may be replaced when dependencies are built.
