
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontend/p4lite.cpp" "src/frontend/CMakeFiles/clara_frontend.dir/p4lite.cpp.o" "gcc" "src/frontend/CMakeFiles/clara_frontend.dir/p4lite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cir/CMakeFiles/clara_cir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/clara_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
