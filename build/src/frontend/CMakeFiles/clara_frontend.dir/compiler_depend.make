# Empty compiler generated dependencies file for clara_frontend.
# This may be replaced when dependencies are built.
