file(REMOVE_RECURSE
  "libclara_frontend.a"
)
