file(REMOVE_RECURSE
  "CMakeFiles/clara_frontend.dir/p4lite.cpp.o"
  "CMakeFiles/clara_frontend.dir/p4lite.cpp.o.d"
  "libclara_frontend.a"
  "libclara_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
