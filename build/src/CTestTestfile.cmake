# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("lnic")
subdirs("cir")
subdirs("frontend")
subdirs("passes")
subdirs("ilp")
subdirs("mapping")
subdirs("nicsim")
subdirs("workload")
subdirs("microbench")
subdirs("nf")
subdirs("core")
subdirs("tools")
