file(REMOVE_RECURSE
  "CMakeFiles/clara_passes.dir/api_subst.cpp.o"
  "CMakeFiles/clara_passes.dir/api_subst.cpp.o.d"
  "CMakeFiles/clara_passes.dir/cfg.cpp.o"
  "CMakeFiles/clara_passes.dir/cfg.cpp.o.d"
  "CMakeFiles/clara_passes.dir/costmodel.cpp.o"
  "CMakeFiles/clara_passes.dir/costmodel.cpp.o.d"
  "CMakeFiles/clara_passes.dir/dataflow.cpp.o"
  "CMakeFiles/clara_passes.dir/dataflow.cpp.o.d"
  "CMakeFiles/clara_passes.dir/optimize.cpp.o"
  "CMakeFiles/clara_passes.dir/optimize.cpp.o.d"
  "CMakeFiles/clara_passes.dir/patterns.cpp.o"
  "CMakeFiles/clara_passes.dir/patterns.cpp.o.d"
  "CMakeFiles/clara_passes.dir/symexec.cpp.o"
  "CMakeFiles/clara_passes.dir/symexec.cpp.o.d"
  "libclara_passes.a"
  "libclara_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
