
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/passes/api_subst.cpp" "src/passes/CMakeFiles/clara_passes.dir/api_subst.cpp.o" "gcc" "src/passes/CMakeFiles/clara_passes.dir/api_subst.cpp.o.d"
  "/root/repo/src/passes/cfg.cpp" "src/passes/CMakeFiles/clara_passes.dir/cfg.cpp.o" "gcc" "src/passes/CMakeFiles/clara_passes.dir/cfg.cpp.o.d"
  "/root/repo/src/passes/costmodel.cpp" "src/passes/CMakeFiles/clara_passes.dir/costmodel.cpp.o" "gcc" "src/passes/CMakeFiles/clara_passes.dir/costmodel.cpp.o.d"
  "/root/repo/src/passes/dataflow.cpp" "src/passes/CMakeFiles/clara_passes.dir/dataflow.cpp.o" "gcc" "src/passes/CMakeFiles/clara_passes.dir/dataflow.cpp.o.d"
  "/root/repo/src/passes/optimize.cpp" "src/passes/CMakeFiles/clara_passes.dir/optimize.cpp.o" "gcc" "src/passes/CMakeFiles/clara_passes.dir/optimize.cpp.o.d"
  "/root/repo/src/passes/patterns.cpp" "src/passes/CMakeFiles/clara_passes.dir/patterns.cpp.o" "gcc" "src/passes/CMakeFiles/clara_passes.dir/patterns.cpp.o.d"
  "/root/repo/src/passes/symexec.cpp" "src/passes/CMakeFiles/clara_passes.dir/symexec.cpp.o" "gcc" "src/passes/CMakeFiles/clara_passes.dir/symexec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cir/CMakeFiles/clara_cir.dir/DependInfo.cmake"
  "/root/repo/build/src/lnic/CMakeFiles/clara_lnic.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/clara_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
