# Empty compiler generated dependencies file for clara_passes.
# This may be replaced when dependencies are built.
