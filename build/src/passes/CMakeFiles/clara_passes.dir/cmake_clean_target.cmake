file(REMOVE_RECURSE
  "libclara_passes.a"
)
