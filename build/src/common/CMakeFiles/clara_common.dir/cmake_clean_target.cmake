file(REMOVE_RECURSE
  "libclara_common.a"
)
