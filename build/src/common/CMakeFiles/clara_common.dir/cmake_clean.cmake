file(REMOVE_RECURSE
  "CMakeFiles/clara_common.dir/log.cpp.o"
  "CMakeFiles/clara_common.dir/log.cpp.o.d"
  "CMakeFiles/clara_common.dir/rng.cpp.o"
  "CMakeFiles/clara_common.dir/rng.cpp.o.d"
  "CMakeFiles/clara_common.dir/stats.cpp.o"
  "CMakeFiles/clara_common.dir/stats.cpp.o.d"
  "CMakeFiles/clara_common.dir/strings.cpp.o"
  "CMakeFiles/clara_common.dir/strings.cpp.o.d"
  "CMakeFiles/clara_common.dir/table.cpp.o"
  "CMakeFiles/clara_common.dir/table.cpp.o.d"
  "libclara_common.a"
  "libclara_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
