# Empty dependencies file for clara_common.
# This may be replaced when dependencies are built.
