file(REMOVE_RECURSE
  "CMakeFiles/clara_nf.dir/compose.cpp.o"
  "CMakeFiles/clara_nf.dir/compose.cpp.o.d"
  "CMakeFiles/clara_nf.dir/nf_cir.cpp.o"
  "CMakeFiles/clara_nf.dir/nf_cir.cpp.o.d"
  "CMakeFiles/clara_nf.dir/nf_ported.cpp.o"
  "CMakeFiles/clara_nf.dir/nf_ported.cpp.o.d"
  "libclara_nf.a"
  "libclara_nf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_nf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
