# Empty dependencies file for clara_nf.
# This may be replaced when dependencies are built.
