
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nf/compose.cpp" "src/nf/CMakeFiles/clara_nf.dir/compose.cpp.o" "gcc" "src/nf/CMakeFiles/clara_nf.dir/compose.cpp.o.d"
  "/root/repo/src/nf/nf_cir.cpp" "src/nf/CMakeFiles/clara_nf.dir/nf_cir.cpp.o" "gcc" "src/nf/CMakeFiles/clara_nf.dir/nf_cir.cpp.o.d"
  "/root/repo/src/nf/nf_ported.cpp" "src/nf/CMakeFiles/clara_nf.dir/nf_ported.cpp.o" "gcc" "src/nf/CMakeFiles/clara_nf.dir/nf_ported.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cir/CMakeFiles/clara_cir.dir/DependInfo.cmake"
  "/root/repo/build/src/nicsim/CMakeFiles/clara_nicsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/clara_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/clara_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
