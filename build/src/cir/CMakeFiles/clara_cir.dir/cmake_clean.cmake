file(REMOVE_RECURSE
  "CMakeFiles/clara_cir.dir/builder.cpp.o"
  "CMakeFiles/clara_cir.dir/builder.cpp.o.d"
  "CMakeFiles/clara_cir.dir/function.cpp.o"
  "CMakeFiles/clara_cir.dir/function.cpp.o.d"
  "CMakeFiles/clara_cir.dir/instr.cpp.o"
  "CMakeFiles/clara_cir.dir/instr.cpp.o.d"
  "CMakeFiles/clara_cir.dir/interp.cpp.o"
  "CMakeFiles/clara_cir.dir/interp.cpp.o.d"
  "CMakeFiles/clara_cir.dir/parser.cpp.o"
  "CMakeFiles/clara_cir.dir/parser.cpp.o.d"
  "CMakeFiles/clara_cir.dir/printer.cpp.o"
  "CMakeFiles/clara_cir.dir/printer.cpp.o.d"
  "CMakeFiles/clara_cir.dir/vcalls.cpp.o"
  "CMakeFiles/clara_cir.dir/vcalls.cpp.o.d"
  "CMakeFiles/clara_cir.dir/verify.cpp.o"
  "CMakeFiles/clara_cir.dir/verify.cpp.o.d"
  "libclara_cir.a"
  "libclara_cir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_cir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
