file(REMOVE_RECURSE
  "libclara_cir.a"
)
