
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cir/builder.cpp" "src/cir/CMakeFiles/clara_cir.dir/builder.cpp.o" "gcc" "src/cir/CMakeFiles/clara_cir.dir/builder.cpp.o.d"
  "/root/repo/src/cir/function.cpp" "src/cir/CMakeFiles/clara_cir.dir/function.cpp.o" "gcc" "src/cir/CMakeFiles/clara_cir.dir/function.cpp.o.d"
  "/root/repo/src/cir/instr.cpp" "src/cir/CMakeFiles/clara_cir.dir/instr.cpp.o" "gcc" "src/cir/CMakeFiles/clara_cir.dir/instr.cpp.o.d"
  "/root/repo/src/cir/interp.cpp" "src/cir/CMakeFiles/clara_cir.dir/interp.cpp.o" "gcc" "src/cir/CMakeFiles/clara_cir.dir/interp.cpp.o.d"
  "/root/repo/src/cir/parser.cpp" "src/cir/CMakeFiles/clara_cir.dir/parser.cpp.o" "gcc" "src/cir/CMakeFiles/clara_cir.dir/parser.cpp.o.d"
  "/root/repo/src/cir/printer.cpp" "src/cir/CMakeFiles/clara_cir.dir/printer.cpp.o" "gcc" "src/cir/CMakeFiles/clara_cir.dir/printer.cpp.o.d"
  "/root/repo/src/cir/vcalls.cpp" "src/cir/CMakeFiles/clara_cir.dir/vcalls.cpp.o" "gcc" "src/cir/CMakeFiles/clara_cir.dir/vcalls.cpp.o.d"
  "/root/repo/src/cir/verify.cpp" "src/cir/CMakeFiles/clara_cir.dir/verify.cpp.o" "gcc" "src/cir/CMakeFiles/clara_cir.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/clara_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
