# Empty compiler generated dependencies file for clara_cir.
# This may be replaced when dependencies are built.
