# Empty compiler generated dependencies file for clara_microbench.
# This may be replaced when dependencies are built.
