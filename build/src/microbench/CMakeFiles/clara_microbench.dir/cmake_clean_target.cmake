file(REMOVE_RECURSE
  "libclara_microbench.a"
)
