file(REMOVE_RECURSE
  "CMakeFiles/clara_microbench.dir/microbench.cpp.o"
  "CMakeFiles/clara_microbench.dir/microbench.cpp.o.d"
  "libclara_microbench.a"
  "libclara_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
