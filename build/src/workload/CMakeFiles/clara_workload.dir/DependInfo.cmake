
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/analysis.cpp" "src/workload/CMakeFiles/clara_workload.dir/analysis.cpp.o" "gcc" "src/workload/CMakeFiles/clara_workload.dir/analysis.cpp.o.d"
  "/root/repo/src/workload/packet.cpp" "src/workload/CMakeFiles/clara_workload.dir/packet.cpp.o" "gcc" "src/workload/CMakeFiles/clara_workload.dir/packet.cpp.o.d"
  "/root/repo/src/workload/profile.cpp" "src/workload/CMakeFiles/clara_workload.dir/profile.cpp.o" "gcc" "src/workload/CMakeFiles/clara_workload.dir/profile.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/workload/CMakeFiles/clara_workload.dir/trace_io.cpp.o" "gcc" "src/workload/CMakeFiles/clara_workload.dir/trace_io.cpp.o.d"
  "/root/repo/src/workload/tracegen.cpp" "src/workload/CMakeFiles/clara_workload.dir/tracegen.cpp.o" "gcc" "src/workload/CMakeFiles/clara_workload.dir/tracegen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/clara_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
