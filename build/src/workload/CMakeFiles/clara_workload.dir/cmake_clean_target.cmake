file(REMOVE_RECURSE
  "libclara_workload.a"
)
