file(REMOVE_RECURSE
  "CMakeFiles/clara_workload.dir/analysis.cpp.o"
  "CMakeFiles/clara_workload.dir/analysis.cpp.o.d"
  "CMakeFiles/clara_workload.dir/packet.cpp.o"
  "CMakeFiles/clara_workload.dir/packet.cpp.o.d"
  "CMakeFiles/clara_workload.dir/profile.cpp.o"
  "CMakeFiles/clara_workload.dir/profile.cpp.o.d"
  "CMakeFiles/clara_workload.dir/trace_io.cpp.o"
  "CMakeFiles/clara_workload.dir/trace_io.cpp.o.d"
  "CMakeFiles/clara_workload.dir/tracegen.cpp.o"
  "CMakeFiles/clara_workload.dir/tracegen.cpp.o.d"
  "libclara_workload.a"
  "libclara_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
