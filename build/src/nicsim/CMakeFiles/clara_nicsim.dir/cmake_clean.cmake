file(REMOVE_RECURSE
  "CMakeFiles/clara_nicsim.dir/cache.cpp.o"
  "CMakeFiles/clara_nicsim.dir/cache.cpp.o.d"
  "CMakeFiles/clara_nicsim.dir/sim.cpp.o"
  "CMakeFiles/clara_nicsim.dir/sim.cpp.o.d"
  "CMakeFiles/clara_nicsim.dir/tables.cpp.o"
  "CMakeFiles/clara_nicsim.dir/tables.cpp.o.d"
  "libclara_nicsim.a"
  "libclara_nicsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_nicsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
