file(REMOVE_RECURSE
  "libclara_nicsim.a"
)
