# Empty dependencies file for clara_nicsim.
# This may be replaced when dependencies are built.
