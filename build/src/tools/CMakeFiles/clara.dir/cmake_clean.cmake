file(REMOVE_RECURSE
  "CMakeFiles/clara.dir/clara_cli.cpp.o"
  "CMakeFiles/clara.dir/clara_cli.cpp.o.d"
  "clara"
  "clara.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
