# Empty dependencies file for clara.
# This may be replaced when dependencies are built.
