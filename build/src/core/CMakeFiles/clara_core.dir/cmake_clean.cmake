file(REMOVE_RECURSE
  "CMakeFiles/clara_core.dir/adversarial.cpp.o"
  "CMakeFiles/clara_core.dir/adversarial.cpp.o.d"
  "CMakeFiles/clara_core.dir/clara.cpp.o"
  "CMakeFiles/clara_core.dir/clara.cpp.o.d"
  "CMakeFiles/clara_core.dir/energy.cpp.o"
  "CMakeFiles/clara_core.dir/energy.cpp.o.d"
  "CMakeFiles/clara_core.dir/partial.cpp.o"
  "CMakeFiles/clara_core.dir/partial.cpp.o.d"
  "CMakeFiles/clara_core.dir/predict.cpp.o"
  "CMakeFiles/clara_core.dir/predict.cpp.o.d"
  "libclara_core.a"
  "libclara_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
