
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/mapping.cpp" "src/mapping/CMakeFiles/clara_mapping.dir/mapping.cpp.o" "gcc" "src/mapping/CMakeFiles/clara_mapping.dir/mapping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/passes/CMakeFiles/clara_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/clara_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/lnic/CMakeFiles/clara_lnic.dir/DependInfo.cmake"
  "/root/repo/build/src/cir/CMakeFiles/clara_cir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/clara_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
