file(REMOVE_RECURSE
  "libclara_mapping.a"
)
