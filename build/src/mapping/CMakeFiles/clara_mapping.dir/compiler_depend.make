# Empty compiler generated dependencies file for clara_mapping.
# This may be replaced when dependencies are built.
