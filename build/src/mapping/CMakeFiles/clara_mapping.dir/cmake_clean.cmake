file(REMOVE_RECURSE
  "CMakeFiles/clara_mapping.dir/mapping.cpp.o"
  "CMakeFiles/clara_mapping.dir/mapping.cpp.o.d"
  "libclara_mapping.a"
  "libclara_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
