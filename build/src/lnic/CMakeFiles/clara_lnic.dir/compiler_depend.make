# Empty compiler generated dependencies file for clara_lnic.
# This may be replaced when dependencies are built.
