file(REMOVE_RECURSE
  "libclara_lnic.a"
)
