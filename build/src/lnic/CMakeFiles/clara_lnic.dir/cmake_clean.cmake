file(REMOVE_RECURSE
  "CMakeFiles/clara_lnic.dir/lnic.cpp.o"
  "CMakeFiles/clara_lnic.dir/lnic.cpp.o.d"
  "CMakeFiles/clara_lnic.dir/params.cpp.o"
  "CMakeFiles/clara_lnic.dir/params.cpp.o.d"
  "CMakeFiles/clara_lnic.dir/profiles.cpp.o"
  "CMakeFiles/clara_lnic.dir/profiles.cpp.o.d"
  "libclara_lnic.a"
  "libclara_lnic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_lnic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
