file(REMOVE_RECURSE
  "CMakeFiles/clara_ilp.dir/model.cpp.o"
  "CMakeFiles/clara_ilp.dir/model.cpp.o.d"
  "CMakeFiles/clara_ilp.dir/simplex.cpp.o"
  "CMakeFiles/clara_ilp.dir/simplex.cpp.o.d"
  "CMakeFiles/clara_ilp.dir/solver.cpp.o"
  "CMakeFiles/clara_ilp.dir/solver.cpp.o.d"
  "libclara_ilp.a"
  "libclara_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
