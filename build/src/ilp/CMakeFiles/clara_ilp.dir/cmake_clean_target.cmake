file(REMOVE_RECURSE
  "libclara_ilp.a"
)
