# Empty compiler generated dependencies file for clara_ilp.
# This may be replaced when dependencies are built.
