// NIC selection: "which SmartNIC models are best suited for her
// workloads" (paper §1). Analyze one NF against every built-in LNIC
// profile and rank the backends — before owning any of the hardware.
//
//   $ ./examples/nic_selection [workload-spec]
//   $ ./examples/nic_selection "tcp=0.9 flows=50000 payload=600 pps=200000 packets=30000"
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/clara.hpp"
#include "nf/nf_cir.hpp"
#include "workload/tracegen.hpp"

int main(int argc, char** argv) {
  using namespace clara;

  const std::string spec =
      argc > 1 ? argv[1] : "tcp=0.8 flows=20000 zipf=1.1 payload=400 pps=100000 packets=30000";
  auto profile_result = workload::parse_profile(spec);
  if (!profile_result) {
    std::fprintf(stderr, "bad workload: %s\n", profile_result.error().message.c_str());
    return 1;
  }
  const auto trace = workload::generate_trace(profile_result.value());

  struct Candidate {
    std::string nf;
    cir::Function fn;
  };
  std::vector<Candidate> nfs;
  nfs.push_back({"nat", nf::build_nat_nf()});
  nfs.push_back({"lpm(10k rules)", nf::build_lpm_nf({.rules = 10000, .use_flow_cache = true})});
  nfs.push_back({"dpi", nf::build_dpi_nf()});
  nfs.push_back({"firewall", nf::build_fw_nf()});

  std::printf("workload: %s\n\n", spec.c_str());

  for (auto& candidate : nfs) {
    struct Row {
      std::string nic;
      double latency_us = 0.0;
      double throughput = 0.0;
      std::string bottleneck;
      bool feasible = false;
      std::string reason;
    };
    std::vector<Row> rows;
    for (auto& nic : lnic::all_profiles()) {
      core::Analyzer analyzer(std::move(nic));
      Row row;
      row.nic = analyzer.profile().name;
      auto analysis = analyzer.analyze(candidate.fn, trace);
      if (analysis) {
        row.feasible = true;
        row.latency_us = analysis.value().prediction.mean_latency_us;
        row.throughput = analysis.value().prediction.throughput_pps;
        row.bottleneck = analysis.value().prediction.bottleneck;
      } else {
        row.reason = analysis.error().message;
      }
      rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      if (a.feasible != b.feasible) return a.feasible;
      return a.latency_us < b.latency_us;
    });

    std::printf("=== %s ===\n", candidate.nf.c_str());
    TextTable table({"rank", "NIC", "latency (us)", "max throughput (pps)", "bottleneck / why not"});
    int rank = 1;
    for (const auto& row : rows) {
      if (row.feasible) {
        table.add_row({strf("%d", rank++), row.nic, strf("%.2f", row.latency_us),
                       strf("%.0f", row.throughput), row.bottleneck});
      } else {
        table.add_row({"-", row.nic, "-", "-", "infeasible: " + row.reason.substr(0, 48)});
      }
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}
