// Offload planning: "whether or not to offload a particular NF, [and]
// how to perform an effective port" (paper §1).
//
// For each NF, compare Clara's predicted SmartNIC latency against a
// simple x86 baseline cost model, print the offload verdict, and show
// the porting plan (unit bindings, state placement, hand-tuning hints)
// the developer would follow.
//
//   $ ./examples/offload_planning
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/clara.hpp"
#include "nf/nf_cir.hpp"
#include "workload/tracegen.hpp"

namespace {

using namespace clara;

/// A deliberately simple x86 host baseline: a 3.4 GHz core (the paper's
/// testbed is a Xeon E5-2643) processing the NF in software with DDR
/// latencies hidden by large caches, plus the PCIe round trip that
/// host-side processing always pays (~900 ns). This is the "don't
/// offload" alternative; the point is the comparison shape, not the
/// absolute number.
double x86_latency_us(const cir::Function& fn, const workload::Trace& trace) {
  const double ghz = 3.4;
  const double pcie_us = 0.9;
  double cycles = 600.0;  // rx/tx descriptor handling
  // Rough per-NF costs, scaled against what SmartNIC software pays.
  for (const auto& block : fn.blocks) {
    for (const auto& instr : block.instrs) {
      if (instr.op != cir::Opcode::kCall) continue;
      const auto v = cir::parse_vcall(instr.callee);
      const auto api = cir::framework_api_to_vcall(instr.callee);
      const auto call = v ? v : api;
      if (!call) continue;
      switch (*call) {
        case cir::VCall::kCsum: cycles += 80 + trace.mean_payload() * 0.12; break;
        case cir::VCall::kLpmLookup: cycles += 120; break;  // DXR/radix in L2
        case cir::VCall::kTableLookup: cycles += 90; break;
        case cir::VCall::kTableUpdate: cycles += 120; break;
        case cir::VCall::kPayloadScan: cycles += trace.mean_payload() * 1.2; break;
        case cir::VCall::kMeter: cycles += 60; break;
        case cir::VCall::kStatsUpdate: cycles += 50; break;
        default: cycles += 20; break;
      }
    }
    // DPI-style byte loops cost ~1.2 cycles/byte on a big OoO core.
    if (block.has_trip && !block.trip.is_constant()) cycles += trace.mean_payload() * 1.2;
  }
  return cycles / (ghz * 1000.0) + pcie_us;
}

}  // namespace

int main() {
  const auto trace = workload::generate_trace(
      workload::parse_profile("tcp=0.8 flows=20000 zipf=1.1 payload=600 pps=100000 packets=30000").value());

  core::Analyzer analyzer(lnic::netronome_agilio_cx());

  struct Case {
    const char* name;
    cir::Function fn;
  };
  std::vector<Case> cases;
  cases.push_back({"nat", nf::build_nat_nf()});
  cases.push_back({"lpm", nf::build_lpm_nf({.rules = 5000, .use_flow_cache = true})});
  cases.push_back({"dpi", nf::build_dpi_nf()});
  cases.push_back({"heavy_hitter", nf::build_hh_nf()});
  cases.push_back({"rate_estimator(FP)", nf::build_rate_estimator_nf()});

  // Offloading is about freeing host CPUs (the paper's §1 motivation),
  // not beating a 3.4 GHz Xeon on single-packet latency. Verdict:
  // offload when the NIC sustains the offered rate within a latency
  // budget; report how many host cores the offload frees.
  const double latency_budget_us = 25.0;
  const double offered_pps = trace.profile.pps;

  TextTable table({"NF", "x86 host (us)", "NIC predicted (us)", "NIC max pps", "cores freed", "verdict"});
  std::string plans;
  for (auto& c : cases) {
    const double host = x86_latency_us(c.fn, trace);
    auto analysis = analyzer.analyze(c.fn, trace);
    if (!analysis) {
      table.add_row({c.name, strf("%.2f", host), "-", "-", "-",
                     "cannot offload: " + analysis.error().message.substr(0, 40)});
      continue;
    }
    const double nic = analysis.value().prediction.mean_latency_us;
    const double nic_pps = analysis.value().prediction.throughput_pps;
    // Host service time per packet (PCIe excluded; it pipelines).
    const double host_service_s = (host - 0.9) * 1e-6;
    const double cores_freed = offered_pps * host_service_s;
    const bool offload = nic_pps >= offered_pps && nic <= latency_budget_us;
    table.add_row({c.name, strf("%.2f", host), strf("%.2f", nic), strf("%.0f", nic_pps),
                   strf("%.2f", cores_freed), offload ? "OFFLOAD" : "keep on host"});
    if (offload) plans += "\n" + analysis.value().report;
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n(budget: NIC latency <= %.0f us and NIC throughput >= offered %.0f pps)\n",
              latency_budget_us, offered_pps);
  std::printf("\nPorting plans for the NFs worth offloading:\n%s", plans.c_str());
  return 0;
}
