// Quickstart: predict an unported NF's SmartNIC latency, then check the
// prediction against the "hardware" (the cycle-accounting simulator)
// running the hand-ported implementation.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/clara.hpp"
#include "nf/nf_cir.hpp"
#include "nf/nf_ported.hpp"
#include "nicsim/sim.hpp"
#include "workload/tracegen.hpp"

int main() {
  using namespace clara;

  // 1. Describe the workload: 80% TCP, 10k flows, 300 B payloads at
  //    60 kpps (the paper's §4 setup, shortened to 50k packets).
  auto profile_result = workload::parse_profile("tcp=0.8 flows=10000 payload=300 pps=60000 packets=50000");
  if (!profile_result) {
    std::fprintf(stderr, "profile error: %s\n", profile_result.error().message.c_str());
    return 1;
  }
  const workload::Trace trace = workload::generate_trace(profile_result.value());

  // 2. The NF in its original, unported form (DPDK-style calls).
  const cir::Function nat = nf::build_nat_nf();

  // 3. Ask Clara for a prediction on a Netronome-like target.
  core::Analyzer clara_tool(lnic::netronome_agilio_cx());
  auto analysis = clara_tool.analyze(nat, trace);
  if (!analysis) {
    std::fprintf(stderr, "analysis error: %s\n", analysis.error().message.c_str());
    return 1;
  }
  const auto& a = analysis.value();

  std::printf("=== Clara prediction for '%s' ===\n", nat.name.c_str());
  std::printf("predicted mean latency : %.0f cycles (%.2f us)\n", a.prediction.mean_latency_cycles,
              a.prediction.mean_latency_us);
  std::printf("idealized throughput   : %.0f pps (bottleneck: %s)\n", a.prediction.throughput_pps,
              a.prediction.bottleneck.c_str());
  std::printf("per-packet-type profile:\n");
  for (const auto& cls : a.prediction.classes) {
    std::printf("  %-18s %5.1f%%  %8.0f cycles\n", cls.name.c_str(), cls.fraction * 100.0, cls.latency_cycles);
  }
  std::printf("\n%s\n", a.report.c_str());

  // 4. Validate: run the manually-ported NAT on the simulated NIC, with
  //    the flow table placed where Clara's mapping put it.
  nicsim::NicSim nic;
  auto& flow_table = nic.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
  nf::NatProgram ported(flow_table, /*use_csum_accel=*/true);
  const auto stats = nic.run(ported, trace);

  std::printf("=== Hardware (simulator) measurement ===\n");
  std::printf("actual mean latency    : %.0f cycles (p99 %.0f)\n", stats.mean_latency(), stats.p99_latency());
  const double err =
      (a.prediction.mean_latency_cycles - stats.mean_latency()) / stats.mean_latency() * 100.0;
  std::printf("prediction error       : %+.1f%%\n", err);
  return 0;
}
