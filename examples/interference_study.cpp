// Interference study (paper §3.5): what happens when two NFs share one
// SmartNIC? Clara slices the LNIC and accounts for cross-NF cache
// pressure; this example sweeps co-resident pairs and prints the
// predicted degradation matrix.
//
//   $ ./examples/interference_study
#include <cstdio>
#include <vector>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/clara.hpp"
#include "nf/nf_cir.hpp"
#include "workload/tracegen.hpp"

int main() {
  using namespace clara;

  const auto trace = workload::generate_trace(
      workload::parse_profile("tcp=0.8 flows=30000 zipf=0.5 payload=1200 pps=300000 packets=25000").value());

  core::Analyzer analyzer(lnic::netronome_agilio_cx());

  struct Case {
    const char* name;
    cir::Function fn;
  };
  std::vector<Case> cases;
  cases.push_back({"nat", nf::build_nat_nf()});
  cases.push_back({"dpi", nf::build_dpi_nf()});
  cases.push_back({"flow_stats", nf::build_flowstats_nf()});

  // Solo baselines.
  std::vector<double> solo(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    auto analysis = analyzer.analyze(cases[i].fn, trace);
    if (!analysis) {
      std::fprintf(stderr, "solo analysis failed: %s\n", analysis.error().message.c_str());
      return 1;
    }
    solo[i] = analysis.value().prediction.mean_latency_cycles;
    std::printf("solo %-12s: %8.0f cycles\n", cases[i].name, solo[i]);
  }

  std::printf("\npredicted slowdown of ROW when co-resident with COLUMN:\n");
  TextTable table({"NF \\ neighbour", cases[0].name, cases[1].name, cases[2].name});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    std::vector<std::string> row{cases[i].name};
    for (std::size_t j = 0; j < cases.size(); ++j) {
      if (i == j) {
        row.push_back("-");
        continue;
      }
      auto co = analyzer.coresident(cases[i].fn, trace, cases[j].fn, trace);
      if (!co) {
        row.push_back("err");
        continue;
      }
      row.push_back(strf("%.2fx", co.value().first.prediction.mean_latency_cycles / solo[i]));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: memory-hungry neighbours (NAT's 8 MiB flow table, DPI's spilled\n"
      "packet tails) cost their partners EMEM cache hit rate; compute-heavy\n"
      "neighbours cost NPU-pool headroom. Paper §3.5 sketches exactly this\n"
      "slicing analysis.\n");
  return 0;
}
