#include "workload/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/stats.hpp"
#include "common/strings.hpp"

namespace clara::workload {

TraceAnalysis analyze_trace(const Trace& trace, std::size_t top_k) {
  TraceAnalysis out;
  out.packets = trace.size();
  if (trace.packets.empty()) return out;

  std::unordered_map<std::uint32_t, FlowSummary> flows;
  std::uint64_t tcp = 0, syn = 0;
  double payload_sum = 0.0;
  out.min_payload = 0xffff;
  Accumulator inter_arrival;
  std::uint64_t prev_ns = trace.packets.front().arrival_ns;

  for (const auto& pkt : trace.packets) {
    auto& flow = flows[pkt.flow_id];
    flow.flow_id = pkt.flow_id;
    ++flow.packets;
    flow.bytes += pkt.frame_len();
    if (pkt.is_tcp()) {
      ++tcp;
      if (pkt.is_syn()) ++syn;
    }
    payload_sum += pkt.payload_len;
    out.min_payload = std::min(out.min_payload, pkt.payload_len);
    out.max_payload = std::max(out.max_payload, pkt.payload_len);
    if (pkt.arrival_ns > prev_ns) inter_arrival.add(static_cast<double>(pkt.arrival_ns - prev_ns));
    prev_ns = pkt.arrival_ns;
  }

  const auto total = static_cast<double>(out.packets);
  out.distinct_flows = static_cast<std::uint32_t>(flows.size());
  out.tcp_fraction = static_cast<double>(tcp) / total;
  out.syn_fraction = tcp > 0 ? static_cast<double>(syn) / static_cast<double>(tcp) : 0.0;
  out.mean_payload = payload_sum / total;
  if (inter_arrival.count() > 1 && inter_arrival.mean() > 0.0) {
    out.arrival_cv = inter_arrival.stddev() / inter_arrival.mean();
    const double span_s = static_cast<double>(trace.packets.back().arrival_ns) / 1e9;
    if (span_s > 0.0) out.observed_pps = total / span_s;
  }

  // Rank flows by packet count.
  std::vector<FlowSummary> ranked;
  ranked.reserve(flows.size());
  for (auto& [id, flow] : flows) {
    flow.share = static_cast<double>(flow.packets) / total;
    ranked.push_back(flow);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const FlowSummary& a, const FlowSummary& b) { return a.packets > b.packets; });

  const auto concentration = [&](double pct) {
    const auto n = std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(ranked.size() * pct)));
    std::uint64_t covered = 0;
    for (std::size_t i = 0; i < n && i < ranked.size(); ++i) covered += ranked[i].packets;
    return static_cast<double>(covered) / total;
  };
  out.top1pct_share = concentration(0.01);
  out.top10pct_share = concentration(0.10);

  // Zipf exponent: least-squares slope of log(freq) vs log(rank) over
  // the head of the distribution (tail ranks are quantization noise).
  const std::size_t fit_n = std::min<std::size_t>(ranked.size(), 200);
  if (fit_n >= 3) {
    std::vector<double> xs, ys;
    for (std::size_t i = 0; i < fit_n; ++i) {
      if (ranked[i].packets == 0) break;
      xs.push_back(std::log(static_cast<double>(i + 1)));
      ys.push_back(std::log(static_cast<double>(ranked[i].packets)));
    }
    if (xs.size() >= 3) {
      const auto fit = linear_fit(xs, ys);
      out.zipf_alpha = std::max(0.0, -fit.slope);
    }
  }

  ranked.resize(std::min(top_k, ranked.size()));
  out.top_flows = std::move(ranked);
  return out;
}

std::string TraceAnalysis::render() const {
  std::string out;
  out += strf("packets        : %s\n", format_count(packets).c_str());
  out += strf("distinct flows : %s\n", format_count(distinct_flows).c_str());
  out += strf("tcp fraction   : %.3f (SYN share of TCP: %.3f)\n", tcp_fraction, syn_fraction);
  out += strf("payload        : mean %.1f B, range [%u, %u]\n", mean_payload, min_payload, max_payload);
  if (observed_pps > 0.0) {
    out += strf("rate           : %.0f pps (inter-arrival CV %.2f — %s)\n", observed_pps, arrival_cv,
                arrival_cv < 0.3 ? "paced" : arrival_cv < 1.3 ? "Poisson-like" : "bursty");
  }
  out += strf("skew           : zipf alpha ~ %.2f; top 1%%/10%% of flows carry %.1f%%/%.1f%% of packets\n",
              zipf_alpha, top1pct_share * 100.0, top10pct_share * 100.0);
  if (!top_flows.empty()) {
    out += "top flows      :\n";
    for (const auto& flow : top_flows) {
      out += strf("  flow %-8u %8s pkts  %8s bytes  %5.2f%%\n", flow.flow_id,
                  format_count(flow.packets).c_str(), format_count(flow.bytes).c_str(), flow.share * 100.0);
    }
  }
  return out;
}

WorkloadProfile profile_from_trace(const Trace& trace) {
  const auto analysis = analyze_trace(trace, 0);
  WorkloadProfile profile;
  profile.tcp_fraction = analysis.tcp_fraction;
  profile.flows = std::max<std::uint32_t>(1, analysis.distinct_flows);
  profile.zipf_alpha = analysis.zipf_alpha;
  profile.payload_min = analysis.min_payload;
  profile.payload_max = analysis.max_payload;
  if (analysis.observed_pps > 0.0) profile.pps = analysis.observed_pps;
  profile.packets = analysis.packets;
  profile.arrivals = analysis.arrival_cv > 0.5 ? ArrivalProcess::kPoisson : ArrivalProcess::kDeterministic;
  return profile;
}

}  // namespace clara::workload
