#include "workload/packet.hpp"

namespace clara::workload {

std::uint64_t PacketMeta::flow_hash() const {
  // splitmix64-style mixing over the 5-tuple.
  std::uint64_t x = (static_cast<std::uint64_t>(src_ip) << 32) | dst_ip;
  x ^= (static_cast<std::uint64_t>(src_port) << 24) ^ (static_cast<std::uint64_t>(dst_port) << 8) ^ proto;
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace clara::workload
