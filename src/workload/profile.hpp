// Abstract workload profiles — paper §3.5.
//
// "The user may provide a 'workload profile' to describe the target
// traffic — e.g., a pcap trace or a more abstract profile such as
// '80% TCP vs 20% UDP' or '10k concurrent TCP flows with 300-byte
// average packet size'." This type is that profile, with a textual
// syntax for tools:
//
//   tcp=0.8 flows=10000 payload=300 zipf=1.1 pps=60000 packets=1000000
//   payload=200:1400     (uniform range)
#pragma once

#include <cstdint>
#include <string>

#include "common/result.hpp"

namespace clara::workload {

enum class ArrivalProcess {
  kDeterministic,  // fixed inter-arrival = 1/pps
  kPoisson,        // exponential inter-arrivals with mean 1/pps
};

struct WorkloadProfile {
  double tcp_fraction = 0.8;
  /// Number of concurrent flows; flow popularity is Zipf(zipf_alpha)
  /// (alpha = 0 gives uniform).
  std::uint32_t flows = 10'000;
  double zipf_alpha = 1.0;
  /// Payload size range [payload_min, payload_max]; equal = fixed size.
  std::uint16_t payload_min = 300;
  std::uint16_t payload_max = 300;
  /// Offered load in packets per second.
  double pps = 60'000.0;
  /// Trace length.
  std::uint64_t packets = 100'000;
  ArrivalProcess arrivals = ArrivalProcess::kDeterministic;
  std::uint64_t seed = 42;

  [[nodiscard]] double avg_payload() const {
    return (static_cast<double>(payload_min) + static_cast<double>(payload_max)) / 2.0;
  }

  /// Textual form round-trips through parse().
  [[nodiscard]] std::string serialize() const;
};

/// Parses "key=value" pairs separated by whitespace. Unknown keys are an
/// error; omitted keys keep their defaults.
Result<WorkloadProfile> parse_profile(const std::string& text);

}  // namespace clara::workload
