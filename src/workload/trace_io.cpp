#include "workload/trace_io.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/strings.hpp"

namespace clara::workload {

namespace {

constexpr char kMagic[4] = {'C', 'L', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kRecordSize = 28;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void put_u16(unsigned char* p, std::uint16_t v) {
  p[0] = v & 0xff;
  p[1] = (v >> 8) & 0xff;
}
void put_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = (v >> (8 * i)) & 0xff;
}
void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = (v >> (8 * i)) & 0xff;
}
std::uint16_t get_u16(const unsigned char* p) { return static_cast<std::uint16_t>(p[0] | (p[1] << 8)); }
std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

Status write_trace(const Trace& trace, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return make_error("cannot open for writing: " + path);

  unsigned char header[16];
  std::memcpy(header, kMagic, 4);
  put_u32(header + 4, kVersion);
  put_u64(header + 8, trace.packets.size());
  if (std::fwrite(header, 1, sizeof(header), f.get()) != sizeof(header)) {
    return make_error("short write on header: " + path);
  }

  unsigned char rec[kRecordSize];
  for (const auto& p : trace.packets) {
    put_u32(rec + 0, p.flow_id);
    put_u32(rec + 4, p.src_ip);
    put_u32(rec + 8, p.dst_ip);
    put_u16(rec + 12, p.src_port);
    put_u16(rec + 14, p.dst_port);
    rec[16] = p.proto;
    rec[17] = p.tcp_flags;
    put_u16(rec + 18, p.payload_len);
    put_u64(rec + 20, p.arrival_ns);
    if (std::fwrite(rec, 1, kRecordSize, f.get()) != kRecordSize) {
      return make_error("short write on record: " + path);
    }
  }
  return {};
}

Result<Trace> read_trace(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return make_error("cannot open for reading: " + path);

  unsigned char header[16];
  if (std::fread(header, 1, sizeof(header), f.get()) != sizeof(header)) {
    return make_error("truncated header: " + path);
  }
  if (std::memcmp(header, kMagic, 4) != 0) return make_error("bad magic (not a CLTR trace): " + path);
  const std::uint32_t version = get_u32(header + 4);
  if (version != kVersion) return make_error(strf("unsupported trace version %u", version));
  const std::uint64_t count = get_u64(header + 8);

  Trace trace;
  trace.packets.reserve(count);
  unsigned char rec[kRecordSize];
  for (std::uint64_t i = 0; i < count; ++i) {
    if (std::fread(rec, 1, kRecordSize, f.get()) != kRecordSize) {
      return make_error(strf("truncated record %llu in %s", (unsigned long long)i, path.c_str()));
    }
    PacketMeta p;
    p.flow_id = get_u32(rec + 0);
    p.src_ip = get_u32(rec + 4);
    p.dst_ip = get_u32(rec + 8);
    p.src_port = get_u16(rec + 12);
    p.dst_port = get_u16(rec + 14);
    p.proto = rec[16];
    p.tcp_flags = rec[17];
    p.payload_len = get_u16(rec + 18);
    p.arrival_ns = get_u64(rec + 20);
    trace.packets.push_back(p);
  }
  trace.profile.packets = count;
  return trace;
}

}  // namespace clara::workload
