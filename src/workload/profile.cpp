#include "workload/profile.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace clara::workload {

std::string WorkloadProfile::serialize() const {
  std::ostringstream os;
  os << "tcp=" << tcp_fraction << " flows=" << flows << " zipf=" << zipf_alpha;
  os << " payload=" << payload_min;
  if (payload_max != payload_min) os << ":" << payload_max;
  os << " pps=" << pps << " packets=" << packets;
  os << " arrivals=" << (arrivals == ArrivalProcess::kPoisson ? "poisson" : "deterministic");
  os << " seed=" << seed;
  return os.str();
}

Result<WorkloadProfile> parse_profile(const std::string& text) {
  WorkloadProfile p;
  for (const auto& raw : split(text, ' ')) {
    const auto token = trim(raw);
    if (token.empty()) continue;
    const auto eq = token.find('=');
    if (eq == std::string_view::npos) return make_error(strf("profile: expected key=value, got '%s'", std::string(token).c_str()));
    const auto key = token.substr(0, eq);
    const auto value = token.substr(eq + 1);

    if (key == "tcp") {
      const auto v = parse_double(value);
      if (!v || *v < 0.0 || *v > 1.0) return make_error("profile: tcp must be in [0,1]");
      p.tcp_fraction = *v;
    } else if (key == "flows") {
      const auto v = parse_int(value);
      if (!v || *v <= 0) return make_error("profile: flows must be positive");
      p.flows = static_cast<std::uint32_t>(*v);
    } else if (key == "zipf") {
      const auto v = parse_double(value);
      if (!v || *v < 0.0) return make_error("profile: zipf must be >= 0");
      p.zipf_alpha = *v;
    } else if (key == "payload") {
      const auto colon = value.find(':');
      if (colon == std::string_view::npos) {
        const auto v = parse_int(value);
        if (!v || *v < 0 || *v > 9000) return make_error("profile: bad payload");
        p.payload_min = p.payload_max = static_cast<std::uint16_t>(*v);
      } else {
        const auto lo = parse_int(value.substr(0, colon));
        const auto hi = parse_int(value.substr(colon + 1));
        if (!lo || !hi || *lo < 0 || *hi < *lo || *hi > 9000) return make_error("profile: bad payload range");
        p.payload_min = static_cast<std::uint16_t>(*lo);
        p.payload_max = static_cast<std::uint16_t>(*hi);
      }
    } else if (key == "pps") {
      const auto v = parse_double(value);
      if (!v || *v <= 0.0) return make_error("profile: pps must be positive");
      p.pps = *v;
    } else if (key == "packets") {
      const auto v = parse_int(value);
      if (!v || *v <= 0) return make_error("profile: packets must be positive");
      p.packets = static_cast<std::uint64_t>(*v);
    } else if (key == "arrivals") {
      if (value == "poisson") {
        p.arrivals = ArrivalProcess::kPoisson;
      } else if (value == "deterministic") {
        p.arrivals = ArrivalProcess::kDeterministic;
      } else {
        return make_error("profile: arrivals must be poisson or deterministic");
      }
    } else if (key == "seed") {
      const auto v = parse_int(value);
      if (!v || *v < 0) return make_error("profile: bad seed");
      p.seed = static_cast<std::uint64_t>(*v);
    } else {
      return make_error(strf("profile: unknown key '%s'", std::string(key).c_str()));
    }
  }
  return p;
}

}  // namespace clara::workload
