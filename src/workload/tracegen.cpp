#include "workload/tracegen.hpp"

#include <set>
#include <unordered_set>

#include "common/rng.hpp"

namespace clara::workload {

std::uint32_t Trace::distinct_flows() const {
  std::unordered_set<std::uint32_t> seen;
  for (const auto& p : packets) seen.insert(p.flow_id);
  return static_cast<std::uint32_t>(seen.size());
}

double Trace::mean_payload() const {
  if (packets.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& p : packets) sum += p.payload_len;
  return sum / static_cast<double>(packets.size());
}

double Trace::tcp_fraction() const {
  if (packets.empty()) return 0.0;
  std::size_t tcp = 0;
  for (const auto& p : packets) tcp += p.is_tcp() ? 1 : 0;
  return static_cast<double>(tcp) / static_cast<double>(packets.size());
}

Trace generate_trace(const WorkloadProfile& profile) {
  Trace trace;
  trace.profile = profile;
  trace.packets.reserve(profile.packets);

  Rng rng(profile.seed);
  const ZipfSampler zipf(profile.flows, profile.zipf_alpha);

  // Per-flow invariants: 5-tuple and protocol are properties of the
  // flow, not the packet.
  struct FlowInfo {
    std::uint32_t src_ip, dst_ip;
    std::uint16_t src_port, dst_port;
    std::uint8_t proto;
    bool started = false;  // has the SYN been emitted yet
  };
  std::vector<FlowInfo> flows(profile.flows);
  // Protocol is a flow invariant, but the profile's tcp fraction is a
  // *packet* fraction; under Zipf skew a handful of flows carry most
  // packets, so per-flow coin flips would miss the target badly. Greedy
  // balancing over the popularity mass keeps the packet-weighted TCP
  // share on target.
  double mass_total = 0.0;
  double mass_tcp = 0.0;
  for (std::uint32_t f = 0; f < profile.flows; ++f) {
    const double mass = zipf.pmf(f);
    const bool tcp = (mass_tcp + mass / 2.0) < profile.tcp_fraction * (mass_total + mass);
    flows[f].proto = tcp ? 6 : 17;
    mass_total += mass;
    if (tcp) mass_tcp += mass;
    flows[f].src_ip = static_cast<std::uint32_t>(rng.next_u64());
    flows[f].dst_ip = 0x0a000000u | (f & 0xffffffu);  // 10.x.y.z service VIPs
    flows[f].src_port = static_cast<std::uint16_t>(rng.uniform(1024, 65535));
    flows[f].dst_port = static_cast<std::uint16_t>(rng.chance(0.5) ? 80 : 443);
  }

  const double ns_per_packet = 1e9 / profile.pps;
  double now_ns = 0.0;

  for (std::uint64_t i = 0; i < profile.packets; ++i) {
    const auto flow_id = static_cast<std::uint32_t>(zipf.sample(rng));
    FlowInfo& flow = flows[flow_id];

    PacketMeta pkt;
    pkt.flow_id = flow_id;
    pkt.src_ip = flow.src_ip;
    pkt.dst_ip = flow.dst_ip;
    pkt.src_port = flow.src_port;
    pkt.dst_port = flow.dst_port;
    pkt.proto = flow.proto;
    if (flow.proto == 6 && !flow.started) {
      pkt.tcp_flags = kFlagSyn;
      flow.started = true;
    }
    pkt.payload_len = profile.payload_min == profile.payload_max
                          ? profile.payload_min
                          : static_cast<std::uint16_t>(rng.uniform(profile.payload_min, profile.payload_max));

    if (profile.arrivals == ArrivalProcess::kPoisson) {
      now_ns += rng.exponential(ns_per_packet);
    } else {
      now_ns += ns_per_packet;
    }
    pkt.arrival_ns = static_cast<std::uint64_t>(now_ns);

    trace.packets.push_back(pkt);
  }
  return trace;
}

}  // namespace clara::workload
