// Trace analysis: the statistics Clara's workload model feeds on, plus
// operator-facing summaries for `clara trace-info`. Given a trace (ours
// or converted from a capture), it recovers the abstract-profile axes:
// flow count, popularity skew (a Zipf-alpha estimate), top-talker
// concentration, size distribution, and observed rate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/tracegen.hpp"

namespace clara::workload {

struct FlowSummary {
  std::uint32_t flow_id = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  double share = 0.0;  // of trace packets
};

struct TraceAnalysis {
  std::uint64_t packets = 0;
  std::uint32_t distinct_flows = 0;
  double tcp_fraction = 0.0;
  double syn_fraction = 0.0;        // of TCP packets
  double mean_payload = 0.0;
  std::uint16_t min_payload = 0;
  std::uint16_t max_payload = 0;
  double observed_pps = 0.0;
  /// Arrival burstiness: coefficient of variation of inter-arrival
  /// times (0 = perfectly paced, ~1 = Poisson).
  double arrival_cv = 0.0;
  /// Estimated Zipf exponent of the flow-popularity distribution
  /// (least-squares fit of log rank vs log frequency; 0 ≈ uniform).
  double zipf_alpha = 0.0;
  /// Share of packets carried by the top 1% / 10% of flows.
  double top1pct_share = 0.0;
  double top10pct_share = 0.0;
  std::vector<FlowSummary> top_flows;  // descending, up to `top_k`

  [[nodiscard]] std::string render() const;
};

/// Analyzes a trace; `top_k` bounds the heavy-hitter list.
TraceAnalysis analyze_trace(const Trace& trace, std::size_t top_k = 10);

/// Reconstructs an abstract workload profile approximating the trace —
/// the inverse of generate_trace, useful for summarizing captures into
/// the profile syntax Clara's docs use.
WorkloadProfile profile_from_trace(const Trace& trace);

}  // namespace clara::workload
