// Packet and flow model for workload descriptions.
//
// Clara never touches real packet bytes: prediction and simulation both
// run on metadata (the fields NFs branch on) plus sizes. This matches
// the paper's workload abstraction ("80% TCP vs. 20% UDP", "10k
// concurrent TCP flows with 300-byte average packet size") while still
// supporting trace files.
#pragma once

#include <cstdint>

namespace clara::workload {

struct PacketMeta {
  std::uint32_t flow_id = 0;  // dense flow index within the trace
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 6;     // 6 = TCP, 17 = UDP
  std::uint8_t tcp_flags = 0; // bit 0 = SYN, bit 1 = FIN
  std::uint16_t payload_len = 0;
  std::uint64_t arrival_ns = 0;

  /// 5-tuple hash; stable across runs (used for flow tables and the
  /// flow cache on both the predictor and simulator sides).
  [[nodiscard]] std::uint64_t flow_hash() const;

  /// Total frame length: L2+L3+L4 headers (~54 B for TCP, ~42 for UDP)
  /// plus payload.
  [[nodiscard]] std::uint32_t frame_len() const {
    return payload_len + (proto == 6 ? 54u : 42u);
  }

  [[nodiscard]] bool is_tcp() const { return proto == 6; }
  [[nodiscard]] bool is_syn() const { return (tcp_flags & 0x1) != 0; }
};

inline constexpr std::uint8_t kFlagSyn = 0x1;
inline constexpr std::uint8_t kFlagFin = 0x2;

}  // namespace clara::workload
