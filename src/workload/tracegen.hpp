// Synthetic trace generation from an abstract workload profile.
//
// Substitutes for the datacenter pcap traces the paper's evaluation
// used (DESIGN.md §6): flow popularity is Zipf-distributed, the first
// packet of each TCP flow carries SYN, payload sizes draw uniformly from
// the profile's range, and arrivals follow the configured process.
// Generation is fully deterministic given the profile (including seed).
#pragma once

#include <vector>

#include "workload/packet.hpp"
#include "workload/profile.hpp"

namespace clara::workload {

struct Trace {
  std::vector<PacketMeta> packets;
  WorkloadProfile profile;

  [[nodiscard]] std::size_t size() const { return packets.size(); }

  /// Number of distinct flows actually present.
  [[nodiscard]] std::uint32_t distinct_flows() const;

  /// Mean payload length over the trace.
  [[nodiscard]] double mean_payload() const;

  /// Fraction of TCP packets.
  [[nodiscard]] double tcp_fraction() const;
};

Trace generate_trace(const WorkloadProfile& profile);

}  // namespace clara::workload
