// Binary trace persistence ("pcap-lite").
//
// A compact fixed-record format standing in for pcap in this repository
// (DESIGN.md §6): Clara only consumes packet metadata, so records carry
// the 5-tuple, flags, sizes and arrival timestamps. Layout (little
// endian):
//
//   header:  magic "CLTR" | u32 version | u64 packet count
//   record:  u32 flow_id | u32 src_ip | u32 dst_ip | u16 src_port |
//            u16 dst_port | u8 proto | u8 tcp_flags | u16 payload_len |
//            u64 arrival_ns                                   (28 bytes)
#pragma once

#include <string>

#include "common/result.hpp"
#include "workload/tracegen.hpp"

namespace clara::workload {

/// Serializes packets only (the generating profile is not persisted;
/// a loaded trace reports a default-constructed profile with the packet
/// count filled in).
Status write_trace(const Trace& trace, const std::string& path);

Result<Trace> read_trace(const std::string& path);

}  // namespace clara::workload
