#include "passes/dataflow.hpp"

#include <cassert>

#include "common/strings.hpp"
#include "obs/trace.hpp"

namespace clara::passes {

using cir::Instr;
using cir::Opcode;
using cir::VCall;

bool is_accel_vcall(VCall v) {
  switch (v) {
    case VCall::kParse:
    case VCall::kCsum:
    case VCall::kCrypto:
    case VCall::kLpmLookup:
      return true;
    default:
      return false;
  }
}

namespace {

/// Extracts a vcall site from a call instruction, or returns false.
bool site_of(const cir::Function& fn, std::uint32_t block, std::uint32_t instr_idx, VcallSite* site) {
  const Instr& instr = fn.blocks[block].instrs[instr_idx];
  if (instr.op != Opcode::kCall) return false;
  const auto v = cir::parse_vcall(instr.callee);
  if (!v) return false;
  site->block = block;
  site->instr = instr_idx;
  site->v = *v;
  site->state = ~0u;
  site->arg_hint = 0.0;
  if (!instr.args.empty() && instr.args[0].is_imm()) {
    if (*v == VCall::kLpmLookup || *v == VCall::kTableLookup || *v == VCall::kTableUpdate ||
        *v == VCall::kMeter || *v == VCall::kStatsUpdate) {
      site->state = static_cast<std::uint32_t>(instr.args[0].imm);
    }
  }
  if (*v == VCall::kLpmLookup && instr.args.size() >= 3 && instr.args[2].is_imm()) {
    site->use_flow_cache = instr.args[2].imm != 0;
  }
  // Length arguments: csum/crypto/scan take the size as args[0]; when it
  // is an immediate we record it, otherwise the hint stays 0 and the
  // caller substitutes the workload average.
  if ((*v == VCall::kCsum || *v == VCall::kCrypto || *v == VCall::kPayloadScan) && !instr.args.empty() &&
      instr.args[0].is_imm()) {
    site->arg_hint = static_cast<double>(instr.args[0].imm);
  }
  return true;
}

}  // namespace

DataflowGraph DataflowGraph::build(const cir::Function& fn, const CostHints& hints) {
  CLARA_TRACE_SCOPE("passes/dataflow");
  DataflowGraph g;
  g.fn_ = &fn;
  const Cfg cfg(fn);
  const auto freq = estimate_block_frequencies(fn, cfg, hints.branch_prob, hints.params);

  g.instr_node_.resize(fn.blocks.size());
  std::vector<std::uint32_t> block_first_node(fn.blocks.size(), ~0u);
  std::vector<std::uint32_t> block_last_node(fn.blocks.size(), ~0u);

  for (const std::uint32_t b : cfg.rpo()) {
    const auto& instrs = fn.blocks[b].instrs;
    g.instr_node_[b].assign(instrs.size(), ~0u);

    // Partition [0, n) into segments, splitting out accel vcalls.
    std::uint32_t seg_begin = 0;
    std::uint32_t prev_node = ~0u;
    auto close_segment = [&](std::uint32_t seg_end, bool accel) {
      if (seg_end <= seg_begin) return;
      DfNode node;
      node.id = static_cast<std::uint32_t>(g.nodes_.size());
      node.block = b;
      node.begin = seg_begin;
      node.end = seg_end;
      node.weight = freq[b];
      node.mix = instr_mix(fn.blocks[b], seg_begin, seg_end);
      node.accel_candidate = accel;
      for (std::uint32_t i = seg_begin; i < seg_end; ++i) {
        VcallSite site;
        if (site_of(fn, b, i, &site)) node.vcalls.push_back(site);
        g.instr_node_[b][i] = node.id;
      }
      node.label = accel ? strf("%s.%s", fn.blocks[b].label.c_str(),
                                cir::vcall_name(node.vcalls.front().v))
                         : strf("%s[%u:%u]", fn.blocks[b].label.c_str(), seg_begin, seg_end);
      if (prev_node != ~0u) g.edges_.push_back({prev_node, node.id, freq[b]});
      prev_node = node.id;
      if (block_first_node[b] == ~0u) block_first_node[b] = node.id;
      block_last_node[b] = node.id;
      g.nodes_.push_back(std::move(node));
      seg_begin = seg_end;
    };

    for (std::uint32_t i = 0; i < instrs.size(); ++i) {
      VcallSite site;
      if (site_of(fn, b, i, &site) && is_accel_vcall(site.v)) {
        close_segment(i, /*accel=*/false);
        seg_begin = i;
        close_segment(i + 1, /*accel=*/true);
      }
    }
    close_segment(static_cast<std::uint32_t>(instrs.size()), /*accel=*/false);
  }

  // Cross-block edges following the CFG.
  for (const std::uint32_t b : cfg.rpo()) {
    if (block_last_node[b] == ~0u) continue;
    for (const std::uint32_t s : cfg.succs(b)) {
      if (block_first_node[s] == ~0u) continue;
      g.edges_.push_back({block_last_node[b], block_first_node[s], std::min(freq[b], freq[s])});
    }
  }
  return g;
}

std::uint32_t DataflowGraph::node_of(std::uint32_t block, std::uint32_t instr) const {
  if (block >= instr_node_.size() || instr >= instr_node_[block].size()) return ~0u;
  return instr_node_[block][instr];
}

}  // namespace clara::passes
