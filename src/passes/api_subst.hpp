// Framework-API substitution — paper §3.3.
//
// NFs arrive written against framework libraries (Click elements, eBPF
// helpers, DPDK). The CIR keeps those as ordinary calls; this pass
// recognizes them from the callee name and rewrites each into the
// canonical virtual call it stands for ("Clara substitutes these calls
// with a set of 'virtual' calls, and binds them to the SmartNIC backend
// later in the analysis"). Unknown callees are left untouched and
// reported, so the caller can decide whether unanalyzable calls are
// fatal for its use case.
#pragma once

#include <string>
#include <vector>

#include "cir/function.hpp"

namespace clara::passes {

struct SubstitutionReport {
  /// Number of calls rewritten to vcalls.
  std::size_t substituted = 0;
  /// Callee names that were neither vcalls nor known framework APIs.
  std::vector<std::string> unknown_calls;
};

SubstitutionReport substitute_framework_apis(cir::Function& fn);
SubstitutionReport substitute_framework_apis(cir::Module& mod);

}  // namespace clara::passes
