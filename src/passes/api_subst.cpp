#include "passes/api_subst.hpp"

#include <algorithm>

#include "cir/builder.hpp"
#include "cir/vcalls.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace clara::passes {

using cir::Instr;
using cir::Opcode;
using cir::VCall;
using cir::Value;

namespace {

/// Adapts the argument list of a recognized framework call to the
/// canonical vcall arity. Framework surfaces in this repo pass arguments
/// in canonical order already; this trims extras (e.g. flags operands)
/// and pads defaults where the framework call omits a vcall argument
/// (e.g. rte_lpm_lookup has no flow-cache flag — default 1, matching the
/// hand-tuned implementations the paper benchmarks).
void adapt_args(VCall v, Instr& instr) {
  const unsigned want = cir::vcall_arg_count(v);
  if (instr.args.size() > want) {
    instr.args.resize(want);
  }
  while (instr.args.size() < want) {
    // Missing trailing arguments default to 1 for kLpmLookup's
    // use_flow_cache flag and 0 otherwise.
    const bool is_fc_flag = v == VCall::kLpmLookup && instr.args.size() == 2;
    instr.args.push_back(Value::of_imm(is_fc_flag ? 1 : 0));
  }
}

}  // namespace

SubstitutionReport substitute_framework_apis(cir::Function& fn) {
  CLARA_TRACE_SCOPE("passes/api_subst");
  SubstitutionReport report;
  for (auto& block : fn.blocks) {
    for (auto& instr : block.instrs) {
      if (instr.op != Opcode::kCall) continue;
      if (cir::is_vcall(instr.callee)) continue;  // already canonical
      const auto v = cir::framework_api_to_vcall(instr.callee);
      if (!v) {
        if (std::find(report.unknown_calls.begin(), report.unknown_calls.end(), instr.callee) ==
            report.unknown_calls.end()) {
          report.unknown_calls.push_back(instr.callee);
        }
        continue;
      }
      instr.callee = cir::vcall_name(*v);
      adapt_args(*v, instr);
      if (!cir::vcall_produces_value(*v)) instr.dst = cir::kNoReg;
      ++report.substituted;
    }
  }
  obs::metrics().counter("passes/api_calls_substituted").inc(report.substituted);
  return report;
}

SubstitutionReport substitute_framework_apis(cir::Module& mod) {
  SubstitutionReport total;
  for (auto& fn : mod.functions) {
    auto r = substitute_framework_apis(fn);
    total.substituted += r.substituted;
    for (auto& name : r.unknown_calls) {
      if (std::find(total.unknown_calls.begin(), total.unknown_calls.end(), name) == total.unknown_calls.end()) {
        total.unknown_calls.push_back(std::move(name));
      }
    }
  }
  return total;
}

}  // namespace clara::passes
