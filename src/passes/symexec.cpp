#include "passes/symexec.hpp"

#include <map>
#include <optional>

#include "cir/builder.hpp"
#include "cir/vcalls.hpp"
#include "common/strings.hpp"

namespace clara::passes {

using cir::HdrField;
using cir::Instr;
using cir::Opcode;
using cir::Value;
using cir::VCall;

namespace {

/// Symbolic value lattice: a constant, a header field (possibly masked),
/// a boolean condition over one, an opaque vcall result, or unknown.
struct SymVal {
  enum class Kind { kUnknown, kConst, kField, kCond, kOpaque } kind = Kind::kUnknown;
  std::uint64_t constant = 0;
  HdrField field = HdrField::kProto;
  std::uint64_t mask = ~0ULL;   // for kField
  std::string cond_text;        // for kCond / kOpaque (the "true" reading)

  static SymVal unknown() { return {}; }
  static SymVal of_const(std::uint64_t c) {
    SymVal v;
    v.kind = Kind::kConst;
    v.constant = c;
    return v;
  }
  static SymVal of_field(HdrField f, std::uint64_t mask = ~0ULL) {
    SymVal v;
    v.kind = Kind::kField;
    v.field = f;
    v.mask = mask;
    return v;
  }
  static SymVal of_cond(std::string text) {
    SymVal v;
    v.kind = Kind::kCond;
    v.cond_text = std::move(text);
    return v;
  }
  static SymVal of_opaque(std::string text) {
    SymVal v;
    v.kind = Kind::kOpaque;
    v.cond_text = std::move(text);
    return v;
  }
};

std::string field_expr(const SymVal& v) {
  if (v.mask == ~0ULL) return cir::hdr_field_name(v.field);
  return strf("(%s & 0x%llx)", cir::hdr_field_name(v.field), (unsigned long long)v.mask);
}

const char* cmp_name(Opcode op) {
  switch (op) {
    case Opcode::kEq: return "==";
    case Opcode::kNe: return "!=";
    case Opcode::kLt: return "<";
    case Opcode::kLe: return "<=";
    case Opcode::kGt: return ">";
    case Opcode::kGe: return ">=";
    default: return "?";
  }
}

struct PathState {
  std::uint32_t block = 0;
  std::uint32_t prev_block = ~0u;
  std::map<std::uint32_t, SymVal> regs;
  /// Scratch memory at constant addresses — front ends that lower
  /// variables to scratch slots (P4-lite) keep their provenance.
  std::map<std::uint64_t, SymVal> scratch;
  std::map<std::uint32_t, int> visits;  // per-block, for loop bounding
  NfPath path;
};

class Enumerator {
 public:
  Enumerator(const cir::Function& fn, std::size_t max_paths) : fn_(fn), max_paths_(max_paths) {}

  PathSet run() {
    PathSet out;
    std::vector<PathState> stack;
    stack.push_back(PathState{});
    while (!stack.empty()) {
      if (out.paths.size() >= max_paths_) {
        out.complete = false;
        break;
      }
      PathState state = std::move(stack.back());
      stack.pop_back();
      step(std::move(state), out, stack);
    }
    return out;
  }

 private:
  SymVal eval(const PathState& state, const Value& v) const {
    if (v.is_imm()) return SymVal::of_const(static_cast<std::uint64_t>(v.imm));
    if (v.is_reg()) {
      const auto it = state.regs.find(v.reg);
      if (it != state.regs.end()) return it->second;
    }
    return SymVal::unknown();
  }

  /// Executes one block; pushes successor states, or finishes the path.
  void step(PathState state, PathSet& out, std::vector<PathState>& stack) {
    const std::uint32_t b = state.block;
    state.path.blocks.push_back(b);
    if (++state.visits[b] > 2) {
      // Loop bound exceeded without finding the exit — abandon (the
      // collapsed/annotated form is the supported shape; this guards
      // against pathological CFGs).
      return;
    }

    const auto& instrs = fn_.blocks[b].instrs;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      const Instr& instr = instrs[i];
      switch (instr.op) {
        case Opcode::kPhi: {
          // Take the value flowing along the traversed edge.
          SymVal v = SymVal::unknown();
          for (std::size_t a = 0; a < instr.phi_preds.size(); ++a) {
            if (instr.phi_preds[a] == state.prev_block) v = eval(state, instr.args[a]);
          }
          state.regs[instr.dst] = v;
          break;
        }
        case Opcode::kAnd: {
          const SymVal lhs = eval(state, instr.args[0]);
          const SymVal rhs = eval(state, instr.args[1]);
          if (lhs.kind == SymVal::Kind::kField && rhs.kind == SymVal::Kind::kConst) {
            state.regs[instr.dst] = SymVal::of_field(lhs.field, lhs.mask & rhs.constant);
          } else if (rhs.kind == SymVal::Kind::kField && lhs.kind == SymVal::Kind::kConst) {
            state.regs[instr.dst] = SymVal::of_field(rhs.field, rhs.mask & lhs.constant);
          } else if (instr.dst != cir::kNoReg) {
            state.regs[instr.dst] = SymVal::unknown();
          }
          break;
        }
        case Opcode::kEq: case Opcode::kNe: case Opcode::kLt:
        case Opcode::kLe: case Opcode::kGt: case Opcode::kGe: {
          const SymVal lhs = eval(state, instr.args[0]);
          const SymVal rhs = eval(state, instr.args[1]);
          if (lhs.kind == SymVal::Kind::kField && rhs.kind == SymVal::Kind::kConst) {
            state.regs[instr.dst] = SymVal::of_cond(
                strf("%s %s %llu", field_expr(lhs).c_str(), cmp_name(instr.op), (unsigned long long)rhs.constant));
          } else if (rhs.kind == SymVal::Kind::kField && lhs.kind == SymVal::Kind::kConst) {
            state.regs[instr.dst] = SymVal::of_cond(
                strf("%llu %s %s", (unsigned long long)lhs.constant, cmp_name(instr.op), field_expr(rhs).c_str()));
          } else if (lhs.kind == SymVal::Kind::kOpaque || rhs.kind == SymVal::Kind::kOpaque) {
            const auto& opaque = lhs.kind == SymVal::Kind::kOpaque ? lhs : rhs;
            state.regs[instr.dst] = SymVal::of_opaque(opaque.cond_text);
          } else if (instr.dst != cir::kNoReg) {
            state.regs[instr.dst] = SymVal::unknown();
          }
          break;
        }
        case Opcode::kCall: {
          const auto v = cir::parse_vcall(instr.callee);
          if (!v) {
            if (instr.dst != cir::kNoReg) state.regs[instr.dst] = SymVal::unknown();
            break;
          }
          switch (*v) {
            case VCall::kGetHdr:
              if (instr.args[0].is_imm()) {
                state.regs[instr.dst] = SymVal::of_field(static_cast<HdrField>(instr.args[0].imm));
              }
              break;
            case VCall::kTableLookup: {
              const auto& name = fn_.state_objects[instr.args[0].imm].name;
              state.regs[instr.dst] = SymVal::of_opaque(strf("lookup(%s) hit", name.c_str()));
              break;
            }
            case VCall::kMeter: {
              const auto& name = fn_.state_objects[instr.args[0].imm].name;
              state.regs[instr.dst] = SymVal::of_opaque(strf("meter(%s) conforming", name.c_str()));
              break;
            }
            case VCall::kLpmLookup:
              if (instr.dst != cir::kNoReg) state.regs[instr.dst] = SymVal::unknown();
              break;
            case VCall::kEmit:
              state.path.exit = NfPath::Exit::kEmit;
              break;
            case VCall::kDrop:
              state.path.exit = NfPath::Exit::kDrop;
              break;
            default:
              if (instr.dst != cir::kNoReg) state.regs[instr.dst] = SymVal::unknown();
              break;
          }
          break;
        }
        case Opcode::kBr: {
          state.prev_block = b;
          state.block = instr.target0;
          stack.push_back(std::move(state));
          return;
        }
        case Opcode::kCondBr: {
          const SymVal cond = eval(state, instr.args[0]);
          auto fork = [&](std::uint32_t target, bool taken) {
            PathState next = state;
            next.prev_block = b;
            next.block = target;
            if (cond.kind == SymVal::Kind::kCond || cond.kind == SymVal::Kind::kOpaque) {
              next.path.conditions.push_back(
                  {taken ? cond.cond_text : "!(" + cond.cond_text + ")"});
            } else if (cond.kind == SymVal::Kind::kField) {
              next.path.conditions.push_back(
                  {taken ? field_expr(cond) + " != 0" : field_expr(cond) + " == 0"});
            } else {
              next.path.conditions.push_back({taken ? strf("%s:%zu taken", fn_.blocks[b].label.c_str(), i)
                                                    : strf("%s:%zu not taken", fn_.blocks[b].label.c_str(), i)});
            }
            stack.push_back(std::move(next));
          };
          if (cond.kind == SymVal::Kind::kConst) {
            // Concrete condition: single successor, no fork.
            PathState next = std::move(state);
            next.prev_block = b;
            next.block = cond.constant != 0 ? instr.target0 : instr.target1;
            stack.push_back(std::move(next));
            return;
          }
          fork(instr.target1, false);
          fork(instr.target0, true);
          return;
        }
        case Opcode::kRet:
          out.paths.push_back(std::move(state.path));
          return;
        case Opcode::kStore:
          if (instr.space == cir::MemSpace::kScratch && instr.args[0].is_imm()) {
            state.scratch[static_cast<std::uint64_t>(instr.args[0].imm)] = eval(state, instr.args[1]);
          }
          break;
        case Opcode::kLoad:
          if (instr.space == cir::MemSpace::kScratch && instr.args[0].is_imm()) {
            const auto it = state.scratch.find(static_cast<std::uint64_t>(instr.args[0].imm));
            state.regs[instr.dst] = it != state.scratch.end() ? it->second : SymVal::unknown();
          } else if (instr.dst != cir::kNoReg) {
            state.regs[instr.dst] = SymVal::unknown();
          }
          break;
        default:
          // Arithmetic and memory ops we do not track symbolically.
          if (instr.dst != cir::kNoReg && instr.op != Opcode::kStore) {
            state.regs[instr.dst] = SymVal::unknown();
          }
          break;
      }
    }
  }

  const cir::Function& fn_;
  std::size_t max_paths_;
};

}  // namespace

std::string NfPath::describe(const cir::Function& fn) const {
  std::string out;
  for (std::size_t i = 0; i < conditions.size(); ++i) {
    if (i) out += " && ";
    out += conditions[i].text;
  }
  if (conditions.empty()) out = "(always)";
  out += " -> ";
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (i) out += ".";
    out += fn.blocks[blocks[i]].label;
  }
  switch (exit) {
    case Exit::kEmit: out += " [emit]"; break;
    case Exit::kDrop: out += " [drop]"; break;
    case Exit::kReturn: out += " [return]"; break;
  }
  return out;
}

PathSet enumerate_paths(const cir::Function& fn, std::size_t max_paths) {
  Enumerator enumerator(fn, max_paths);
  return enumerator.run();
}

}  // namespace clara::passes
