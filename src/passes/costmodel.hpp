// Static cost model: prices CIR code on LNIC compute units.
//
// Splits each cost into a compute part (instruction mix × per-class
// cycles; vcall service curves) and a memory part (state accesses ×
// placement-dependent latency). The split matches the ILP structure:
// compute costs multiply the Π assignment variables, memory costs the
// Γ placement variables.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cir/function.hpp"
#include "cir/vcalls.hpp"
#include "lnic/lnic.hpp"
#include "lnic/params.hpp"

namespace clara::passes {

/// Static per-execution instruction mix of a range of instructions.
struct InstrMix {
  std::uint64_t alu = 0;
  std::uint64_t mul = 0;
  std::uint64_t div = 0;
  std::uint64_t cmp = 0;
  std::uint64_t branch = 0;
  std::uint64_t select = 0;
  std::uint64_t fp = 0;
  std::uint64_t packet_loads = 0;
  std::uint64_t packet_stores = 0;
  std::uint64_t scratch_ops = 0;
  std::uint64_t header_ops = 0;
  std::uint64_t phi = 0;
  /// Explicit (load/store) state accesses per state object index.
  std::map<std::uint32_t, std::uint64_t> state_reads;
  std::map<std::uint32_t, std::uint64_t> state_writes;

  void add(const InstrMix& other);
};

/// Mix over instrs [begin, end) of a block.
InstrMix instr_mix(const cir::BasicBlock& block, std::size_t begin, std::size_t end);

/// Workload-derived knobs the static cost model needs before a concrete
/// trace exists (the mapper runs pre-workload; the predictor later uses
/// exact per-packet values).
struct CostHints {
  /// Values for symbolic loop-trip parameters ("payload_len", ...).
  std::map<std::string, double> params;
  /// Average payload length for size-dependent vcalls priced statically.
  double avg_payload = 300.0;
  /// Expected flow-cache hit rate on the LPM engine (workload locality).
  double flow_cache_hit_rate = 0.8;
  /// Probability that a conditional branch takes its first target.
  double branch_prob = 0.5;

  [[nodiscard]] double param(const std::string& name, double fallback) const {
    const auto it = params.find(name);
    return it != params.end() ? it->second : fallback;
  }
};

/// Which vcalls a compute-unit kind can serve. NPUs serve everything
/// (software fallback); accelerators serve their own operation;
/// match-action header engines serve parse/header/table work, while
/// fixed-function parsers (match_action = false) serve only parse.
bool unit_supports_vcall(lnic::UnitKind kind, bool match_action, cir::VCall v);

/// True if the unit kind can execute general-purpose instruction mixes
/// (beyond simple header arithmetic).
bool unit_supports_general_compute(lnic::UnitKind kind, bool match_action, const InstrMix& mix);

/// Cycles for one execution of `mix` on a unit of `kind` (memory costs
/// for state accesses excluded; packet loads are priced separately by
/// the caller because packet residency depends on packet size).
double mix_compute_cycles(const InstrMix& mix, lnic::UnitKind kind, const lnic::ParameterStore& params);

/// Compute-side cycles of one vcall invocation on a unit of `kind`,
/// given the length/size argument `arg` (bytes for csum/crypto/scan,
/// unused otherwise). State-access cycles are excluded — use
/// vcall_state_accesses + state_access_cycles for those.
/// `state` supplies table geometry for lookup-style vcalls.
/// `use_flow_cache` is the kLpmLookup flag (the NF's third argument):
/// when false, every lookup walks the DRAM match-action tables.
double vcall_compute_cycles(cir::VCall v, lnic::UnitKind kind, double arg,
                            const cir::StateObject* state, const lnic::ParameterStore& params,
                            const CostHints& hints, bool use_flow_cache = true);

/// Number of (placement-dependent) state-memory accesses one invocation
/// of the vcall performs on a unit of `kind` (e.g. a hash-table lookup on
/// an NPU touches a bucket then an entry → 2; a software LPM walks a
/// trie → ~log2(entries)).
double vcall_state_accesses(cir::VCall v, lnic::UnitKind kind, const cir::StateObject* state);

/// Cycles of a single access from `unit` to memory region `region`
/// (base latency of the region level × the NUMA edge weight). Returns
/// a large penalty when the unit cannot reach the region at all — the
/// ILP uses hard constraints instead, but greedy/report paths want a
/// finite number.
double state_access_cycles(const lnic::Graph& graph, NodeId unit, NodeId region,
                           const lnic::ParameterStore& params, bool write);

/// Packet-byte access cost: packets up to the CTM-residency threshold
/// read at CTM latency; beyond it, the spilled tail reads at EMEM
/// latency. `offset_hint` < 0 prices an average access for a packet of
/// `pkt_len` bytes.
double packet_access_cycles(double pkt_len, double offset_hint, const lnic::ParameterStore& params);

}  // namespace clara::passes
