// Dataflow-graph construction — paper §3.3/Fig. 2(c).
//
// The mapper works on a coarser granularity than basic blocks: nodes are
// code segments ("code blocks" in the paper), edges follow traffic
// direction. Accelerator-eligible virtual calls (parse, checksum, crypto,
// LPM) are isolated into their own single-instruction nodes so the ILP
// can bind each of them to an accelerator independently of the
// surrounding general-purpose code; everything between them stays
// together as a general-compute segment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cir/function.hpp"
#include "cir/vcalls.hpp"
#include "passes/cfg.hpp"
#include "passes/costmodel.hpp"

namespace clara::passes {

struct VcallSite {
  std::uint32_t block = 0;
  std::uint32_t instr = 0;
  cir::VCall v = cir::VCall::kDrop;
  /// State-object index for state-taking vcalls; ~0u otherwise.
  std::uint32_t state = ~0u;
  /// Static size argument hint (bytes / entries) for curve-priced vcalls.
  double arg_hint = 0.0;
  /// kLpmLookup's flow-cache flag (third argument; true by default).
  bool use_flow_cache = true;
};

struct DfNode {
  std::uint32_t id = 0;
  std::string label;
  std::uint32_t block = 0;
  std::uint32_t begin = 0;  // instruction range [begin, end) within block
  std::uint32_t end = 0;
  /// Expected executions per packet (includes loop trips / branch probs).
  double weight = 0.0;
  InstrMix mix;
  std::vector<VcallSite> vcalls;
  /// True when this node is a lone accelerator-eligible vcall.
  bool accel_candidate = false;
};

struct DfEdge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  double weight = 0.0;
};

class DataflowGraph {
 public:
  /// Builds the graph for a (substituted, verified) function. Branch
  /// probabilities and loop-trip parameters come from `hints`.
  static DataflowGraph build(const cir::Function& fn, const CostHints& hints);

  [[nodiscard]] const std::vector<DfNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<DfEdge>& edges() const { return edges_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Node covering instruction `instr` of block `block`; ~0u when the
  /// block is unreachable.
  [[nodiscard]] std::uint32_t node_of(std::uint32_t block, std::uint32_t instr) const;

  /// Per-packet executions of every state access, aggregated over nodes:
  /// explicit loads/stores plus vcall-implied accesses are *not* included
  /// here — the mapper combines node weights with mixes itself.
  [[nodiscard]] const cir::Function* function() const { return fn_; }

 private:
  const cir::Function* fn_ = nullptr;
  std::vector<DfNode> nodes_;
  std::vector<DfEdge> edges_;
  /// node id per (block, instr): indexed by block, then instr.
  std::vector<std::vector<std::uint32_t>> instr_node_;
};

/// True for vcalls that get their own dataflow node (accelerator
/// candidates).
bool is_accel_vcall(cir::VCall v);

}  // namespace clara::passes
