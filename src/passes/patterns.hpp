// Idiom pattern matching — paper §3.3.
//
// "Sometimes semantic information may be better captured at a coarser
// granularity": a checksum computed as a byte loop, or a DPI scan loop,
// should be seen by the mapper as one SmartNIC-mappable operation, not a
// pile of ALU instructions. This pass recognizes single-block loops over
// packet bytes and collapses each into the corresponding virtual call:
//
//   * accumulation loops (a phi accumulates adds of packet loads)
//     become vcall_csum(len);
//   * comparison loops (packet loads feed comparisons) become
//     vcall_payload_scan(len).
//
// The loop bound becomes the vcall length argument; if exactly one value
// defined inside the loop is used outside it, the vcall result takes its
// register, preserving SSA without rewriting downstream code. Loops that
// do not fit the shape are left alone (they still map to NPU software).
#pragma once

#include <cstddef>

#include "cir/function.hpp"

namespace clara::passes {

struct PatternReport {
  std::size_t csum_loops = 0;
  std::size_t scan_loops = 0;

  [[nodiscard]] std::size_t total() const { return csum_loops + scan_loops; }
};

PatternReport collapse_packet_loops(cir::Function& fn);

}  // namespace clara::passes
