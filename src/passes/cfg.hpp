// Control-flow analysis over CIR functions: predecessor/successor maps,
// reverse post-order, dominators, and natural-loop detection. These feed
// the pattern matcher (loop idioms) and the dataflow-graph builder
// (region formation, frequency estimation).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cir/function.hpp"

namespace clara::passes {

class Cfg {
 public:
  explicit Cfg(const cir::Function& fn);

  [[nodiscard]] const std::vector<std::uint32_t>& preds(std::uint32_t block) const { return preds_[block]; }
  [[nodiscard]] const std::vector<std::uint32_t>& succs(std::uint32_t block) const { return succs_[block]; }
  [[nodiscard]] std::size_t size() const { return succs_.size(); }

  /// Blocks in reverse post-order of a DFS from the entry. Unreachable
  /// blocks are excluded.
  [[nodiscard]] const std::vector<std::uint32_t>& rpo() const { return rpo_; }
  [[nodiscard]] bool reachable(std::uint32_t block) const { return rpo_index_[block] != ~0u; }
  [[nodiscard]] std::uint32_t rpo_index(std::uint32_t block) const { return rpo_index_[block]; }

  /// Immediate dominator of each block (entry's idom is itself);
  /// ~0u for unreachable blocks. Cooper-Harvey-Kennedy algorithm.
  [[nodiscard]] std::uint32_t idom(std::uint32_t block) const { return idom_[block]; }
  [[nodiscard]] bool dominates(std::uint32_t a, std::uint32_t b) const;

 private:
  std::vector<std::vector<std::uint32_t>> preds_;
  std::vector<std::vector<std::uint32_t>> succs_;
  std::vector<std::uint32_t> rpo_;
  std::vector<std::uint32_t> rpo_index_;
  std::vector<std::uint32_t> idom_;
};

/// A natural loop: back edge latch->header where header dominates latch.
struct Loop {
  std::uint32_t header = 0;
  std::uint32_t latch = 0;
  std::vector<std::uint32_t> body;  // includes header and latch
};

/// All natural loops of the function (one per back edge; loops sharing a
/// header are reported separately).
std::vector<Loop> find_loops(const cir::Function& fn, const Cfg& cfg);

/// Expected executions of each block per invocation, for the static cost
/// model: entry runs once; conditional branches split flow by
/// `branch_prob` / (1 - branch_prob); a block with a trip annotation
/// multiplies its flow by the evaluated trip count. Back edges are
/// ignored (trip annotations carry the loop weight instead).
std::vector<double> estimate_block_frequencies(const cir::Function& fn, const Cfg& cfg,
                                               double branch_prob,
                                               const std::map<std::string, double>& params);

}  // namespace clara::passes
