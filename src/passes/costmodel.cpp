#include "passes/costmodel.hpp"

#include <algorithm>
#include <cmath>

namespace clara::passes {

using cir::MemSpace;
using cir::Opcode;
using cir::StateObject;
using cir::VCall;
using lnic::ParameterStore;
using lnic::UnitKind;
namespace keys = lnic::keys;

void InstrMix::add(const InstrMix& other) {
  alu += other.alu;
  mul += other.mul;
  div += other.div;
  cmp += other.cmp;
  branch += other.branch;
  select += other.select;
  fp += other.fp;
  packet_loads += other.packet_loads;
  packet_stores += other.packet_stores;
  scratch_ops += other.scratch_ops;
  header_ops += other.header_ops;
  phi += other.phi;
  for (const auto& [s, c] : other.state_reads) state_reads[s] += c;
  for (const auto& [s, c] : other.state_writes) state_writes[s] += c;
}

InstrMix instr_mix(const cir::BasicBlock& block, std::size_t begin, std::size_t end) {
  InstrMix mix;
  end = std::min(end, block.instrs.size());
  for (std::size_t i = begin; i < end; ++i) {
    const cir::Instr& instr = block.instrs[i];
    switch (instr.op) {
      case Opcode::kAdd: case Opcode::kSub: case Opcode::kAnd: case Opcode::kOr:
      case Opcode::kXor: case Opcode::kShl: case Opcode::kShr:
        ++mix.alu;
        break;
      case Opcode::kMul: ++mix.mul; break;
      case Opcode::kDiv: case Opcode::kRem: ++mix.div; break;
      case Opcode::kEq: case Opcode::kNe: case Opcode::kLt:
      case Opcode::kLe: case Opcode::kGt: case Opcode::kGe:
        ++mix.cmp;
        break;
      case Opcode::kSelect: ++mix.select; break;
      case Opcode::kFAdd: case Opcode::kFMul: ++mix.fp; break;
      case Opcode::kBr: case Opcode::kCondBr: ++mix.branch; break;
      case Opcode::kPhi: ++mix.phi; break;
      case Opcode::kRet: break;
      case Opcode::kCall: break;  // priced via vcall_compute_cycles
      case Opcode::kLoad:
        switch (instr.space) {
          case MemSpace::kPacket: ++mix.packet_loads; break;
          case MemSpace::kScratch: ++mix.scratch_ops; break;
          case MemSpace::kHeader: ++mix.header_ops; break;
          case MemSpace::kState: ++mix.state_reads[instr.state]; break;
        }
        break;
      case Opcode::kStore:
        switch (instr.space) {
          case MemSpace::kPacket: ++mix.packet_stores; break;
          case MemSpace::kScratch: ++mix.scratch_ops; break;
          case MemSpace::kHeader: ++mix.header_ops; break;
          case MemSpace::kState: ++mix.state_writes[instr.state]; break;
        }
        break;
    }
  }
  return mix;
}

bool unit_supports_vcall(UnitKind kind, bool match_action, VCall v) {
  switch (kind) {
    case UnitKind::kNpuCore:
      return true;  // software fallback for everything
    case UnitKind::kHeaderEngine:
      if (!match_action) return v == VCall::kParse;  // fixed-function parser
      switch (v) {
        case VCall::kParse: case VCall::kGetHdr: case VCall::kSetHdr:
        case VCall::kTableLookup: case VCall::kTableUpdate:
        case VCall::kStatsUpdate: case VCall::kMeter:
        case VCall::kEmit: case VCall::kDrop:
          return true;
        default:
          return false;
      }
    case UnitKind::kChecksumAccel:
      return v == VCall::kCsum;
    case UnitKind::kCryptoAccel:
      return v == VCall::kCrypto;
    case UnitKind::kLpmEngine:
      return v == VCall::kLpmLookup;
  }
  return false;
}

bool unit_supports_general_compute(UnitKind kind, bool match_action, const InstrMix& mix) {
  const std::uint64_t total_general = mix.alu + mix.mul + mix.div + mix.cmp + mix.select + mix.fp +
                                      mix.packet_loads + mix.packet_stores + mix.scratch_ops + mix.header_ops;
  switch (kind) {
    case UnitKind::kNpuCore:
      return true;
    case UnitKind::kHeaderEngine:
      // A fixed-function parser hosts no program code at all — not even
      // bare control flow.
      if (!match_action) return total_general + mix.branch + mix.phi == 0;
      // Match-action stages handle header arithmetic but not multiplies,
      // divides, floating point, payload access, or scratch-heavy code.
      return mix.mul == 0 && mix.div == 0 && mix.fp == 0 && mix.packet_loads == 0 && mix.packet_stores == 0 &&
             mix.scratch_ops <= 4;
    default:
      // Fixed-function accelerators execute no general instructions;
      // an empty mix is trivially fine.
      return mix.alu + mix.mul + mix.div + mix.cmp + mix.select + mix.fp + mix.packet_loads + mix.packet_stores +
                 mix.scratch_ops + mix.header_ops ==
             0;
  }
}

double mix_compute_cycles(const InstrMix& mix, UnitKind kind, const ParameterStore& params) {
  const double alu = params.scalar(keys::kInstrAlu);
  const double mul = params.scalar(keys::kInstrMul);
  const double divc = params.scalar(keys::kInstrDiv);
  const double branch = params.scalar(keys::kInstrBranch);
  const double move = params.scalar(keys::kInstrMove);
  const double fp = params.scalar(keys::kInstrFpEmulation);
  const double local = params.scalar(keys::kMemReadLocal);

  // Header engines run header arithmetic at ~1 cycle/op regardless of
  // the NPU tables; they never execute the heavyweight classes (the
  // support predicate guarantees the mix is clean).
  if (kind == UnitKind::kHeaderEngine) {
    return static_cast<double>(mix.alu + mix.cmp + mix.select + mix.branch + mix.header_ops + mix.scratch_ops + mix.phi);
  }

  double cycles = 0.0;
  cycles += static_cast<double>(mix.alu + mix.cmp) * alu;
  cycles += static_cast<double>(mix.mul) * mul;
  cycles += static_cast<double>(mix.div) * divc;
  cycles += static_cast<double>(mix.branch) * branch;
  cycles += static_cast<double>(mix.select) * alu * 2.0;
  cycles += static_cast<double>(mix.fp) * fp;
  cycles += static_cast<double>(mix.header_ops) * move;
  cycles += static_cast<double>(mix.scratch_ops) * local;
  cycles += static_cast<double>(mix.phi) * move;
  return cycles;
}

double vcall_compute_cycles(VCall v, UnitKind kind, double arg, const StateObject* state,
                            const ParameterStore& params, const CostHints& hints, bool use_flow_cache) {
  const double move = params.scalar(keys::kInstrMove);
  const double alu = params.scalar(keys::kInstrAlu);
  switch (v) {
    case VCall::kParse:
      if (kind == UnitKind::kHeaderEngine) {
        // The parser engine works at line rate; only its base fee shows.
        return params.scalar(keys::kParseBase) * 0.2;
      }
      // NPU software parse: base (CTM->local header copy) + per byte.
      return params.scalar(keys::kParseBase) + params.scalar(keys::kParsePerByte) * 40.0;
    case VCall::kGetHdr:
    case VCall::kSetHdr:
      return move;  // metadata modification: 2-5 cycles (paper §3.2)
    case VCall::kCsum: {
      const double accel = params.eval(keys::kCsumAccel, arg);
      if (kind == UnitKind::kChecksumAccel) return accel;
      return accel + params.scalar(keys::kCsumSwExtra);  // NPU emulation
    }
    case VCall::kCrypto: {
      const double accel = params.eval(keys::kCryptoAccel, arg);
      if (kind == UnitKind::kCryptoAccel) return accel;
      return accel * std::max(1.0, params.scalar(keys::kCryptoSwFactor));
    }
    case VCall::kLpmLookup: {
      const double entries = state != nullptr ? static_cast<double>(state->entries) : 1024.0;
      const double dram = params.eval(keys::kLpmDram, entries);
      if (kind == UnitKind::kLpmEngine) {
        const double hit = params.scalar(keys::kFlowCacheHit);
        const double capacity = params.scalar(keys::kFlowCacheCapacity);
        if (capacity <= 0.0 || !use_flow_cache) return hit + dram;  // every lookup walks DRAM
        const double hr = hints.flow_cache_hit_rate;
        return hit + (1.0 - hr) * dram;  // SRAM probe always; DRAM on miss
      }
      // Software fallback on cores: the same match-action processing in
      // DRAM the paper describes for non-engine implementations (its
      // cost curve is the LPM-vs-entries curve), with no flow cache.
      return dram;
    }
    case VCall::kTableLookup:
      // Hash + key compare; bucket/entry memory accesses priced via Γ.
      return 12.0 * alu + 2.0 * move;
    case VCall::kTableUpdate:
      return 14.0 * alu + 2.0 * move;
    case VCall::kPayloadScan: {
      // Byte-at-a-time automaton on an NPU; packet-residency costs are
      // added by the caller (they depend on the packet size).
      return arg * (3.0 * alu + params.scalar(keys::kInstrBranch));
    }
    case VCall::kMeter:
      return 10.0 * alu;  // token-bucket arithmetic; state accesses via Γ
    case VCall::kStatsUpdate:
      return 4.0 * alu;
    case VCall::kEmit:
      return params.scalar(keys::kEgressBase);
    case VCall::kDrop:
      return params.scalar(keys::kEgressBase) * 0.25;
  }
  return 0.0;
}

double vcall_state_accesses(VCall v, UnitKind kind, const StateObject* state) {
  switch (v) {
    case VCall::kTableLookup:
      return kind == UnitKind::kHeaderEngine ? 1.0 : 2.0;  // bucket + entry on cores
    case VCall::kTableUpdate:
      return kind == UnitKind::kHeaderEngine ? 1.0 : 3.0;  // probe + write-back
    case VCall::kLpmLookup:
      return 0.0;  // table-walk memory cost lives in the kLpmDram curve
    case VCall::kMeter:
      return 2.0;  // read + write token state
    case VCall::kStatsUpdate:
      return 2.0;  // read-modify-write counter
    default:
      return 0.0;
  }
}

double state_access_cycles(const lnic::Graph& graph, NodeId unit, NodeId region, const ParameterStore& params,
                           bool write) {
  const auto weight = graph.access_weight(unit, region);
  if (!weight) return 1e12;  // unreachable; hard-constrained away in the ILP
  const auto* mem = graph.node(region).memory();
  if (mem == nullptr) return 1e12;
  const char* key = nullptr;
  switch (mem->kind) {
    case lnic::MemKind::kLocal: key = write ? keys::kMemWriteLocal : keys::kMemReadLocal; break;
    case lnic::MemKind::kCtm: key = write ? keys::kMemWriteCtm : keys::kMemReadCtm; break;
    case lnic::MemKind::kImem: key = write ? keys::kMemWriteImem : keys::kMemReadImem; break;
    case lnic::MemKind::kEmem: key = write ? keys::kMemWriteEmem : keys::kMemReadEmem; break;
  }
  return params.scalar(key) * *weight;
}

double packet_access_cycles(double pkt_len, double offset_hint, const ParameterStore& params) {
  const double residency = params.scalar(keys::kCtmPacketResidency);
  const double ctm = params.scalar(keys::kMemReadCtm);
  const double emem = params.scalar(keys::kMemReadEmem);
  if (residency <= 0.0) {
    // Packets live in DRAM behind a cache (SoC profile): price at the
    // cache-hit latency, the common case for streaming payload access.
    return params.scalar(keys::kEmemCacheHit);
  }
  if (offset_hint >= 0.0) return offset_hint < residency ? ctm : emem;
  if (pkt_len <= residency) return ctm;
  // Average over head (CTM) and spilled tail (EMEM).
  const double head = residency / pkt_len;
  return head * ctm + (1.0 - head) * emem;
}

}  // namespace clara::passes
