// Classic cleanup passes over CIR: constant folding, branch
// simplification, dead-code elimination and unreachable-block removal.
//
// Clara's cost analysis prices every instruction it sees, so IR produced
// by a mechanical front-end (or by hand) with foldable arithmetic or
// dead values would be over-charged. Running these passes first makes
// the analyzed IR match what any real compiler would have fed the
// backend — the paper's "mimic a compiler" roadmap includes the parts of
// compilation that happen before lowering.
//
// All passes preserve verification: for any verified function, the
// result verifies and is observationally equivalent under the
// interpreter (same vcall sequence, same exit).
#pragma once

#include <cstddef>

#include "cir/function.hpp"

namespace clara::passes {

struct OptimizeReport {
  std::size_t folded = 0;             // instructions replaced by constants
  std::size_t dead_removed = 0;       // value-producing instrs with no uses
  std::size_t branches_simplified = 0;// condbr with constant condition -> br
  std::size_t blocks_removed = 0;     // unreachable blocks dropped

  [[nodiscard]] std::size_t total() const {
    return folded + dead_removed + branches_simplified + blocks_removed;
  }
};

/// Folds constant arithmetic/comparisons/selects, rewrites
/// constant-condition condbr to br, removes instructions whose results
/// are never used (calls are never removed — they may have effects), and
/// drops unreachable blocks. Runs to a fixed point.
OptimizeReport optimize(cir::Function& fn);

}  // namespace clara::passes
