#include "passes/patterns.hpp"

#include <optional>
#include <set>
#include <vector>

#include "cir/builder.hpp"
#include "cir/vcalls.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "passes/cfg.hpp"

namespace clara::passes {

using cir::BasicBlock;
using cir::Instr;
using cir::kNoReg;
using cir::MemSpace;
using cir::Opcode;
using cir::Type;
using cir::Value;
using cir::VCall;

namespace {

bool is_arith_or_cmp(Opcode op) {
  switch (op) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul: case Opcode::kDiv: case Opcode::kRem:
    case Opcode::kAnd: case Opcode::kOr: case Opcode::kXor: case Opcode::kShl: case Opcode::kShr:
    case Opcode::kEq: case Opcode::kNe: case Opcode::kLt: case Opcode::kLe: case Opcode::kGt:
    case Opcode::kGe: case Opcode::kSelect:
      return true;
    default:
      return false;
  }
}

struct LoopShape {
  std::uint32_t block = 0;
  std::uint32_t exit = 0;
  Value bound = Value::none();
  bool accumulates = false;  // csum idiom vs scan idiom
};

/// Matches a self-loop block against the packet-byte-loop shape.
std::optional<LoopShape> match_block(const cir::Function& fn, std::uint32_t b) {
  const BasicBlock& block = fn.blocks[b];
  if (block.instrs.empty()) return std::nullopt;
  const Instr& term = block.instrs.back();
  if (term.op != Opcode::kCondBr) return std::nullopt;
  std::uint32_t exit;
  if (term.target0 == b && term.target1 != b) {
    exit = term.target1;
  } else if (term.target1 == b && term.target0 != b) {
    exit = term.target0;
  } else {
    return std::nullopt;
  }

  std::set<std::uint32_t> defined_in_block;
  bool has_packet_load = false;
  bool accumulates = false;
  std::set<std::uint32_t> phi_regs;
  std::set<std::uint32_t> packet_load_regs;

  for (std::size_t i = 0; i + 1 < block.instrs.size(); ++i) {
    const Instr& instr = block.instrs[i];
    if (instr.dst != kNoReg) defined_in_block.insert(instr.dst);
    switch (instr.op) {
      case Opcode::kPhi:
        phi_regs.insert(instr.dst);
        break;
      case Opcode::kLoad:
        if (instr.space != MemSpace::kPacket) return std::nullopt;
        has_packet_load = true;
        packet_load_regs.insert(instr.dst);
        break;
      default:
        if (!is_arith_or_cmp(instr.op)) return std::nullopt;  // calls/stores/etc. break the idiom
        break;
    }
  }
  if (!has_packet_load) return std::nullopt;

  // Accumulation: an add whose operands touch both a packet load and a
  // phi (directly) marks the checksum idiom.
  for (std::size_t i = 0; i + 1 < block.instrs.size(); ++i) {
    const Instr& instr = block.instrs[i];
    if (instr.op != Opcode::kAdd) continue;
    bool touches_load = false;
    bool touches_phi = false;
    for (const Value& a : instr.args) {
      if (!a.is_reg()) continue;
      if (packet_load_regs.count(a.reg)) touches_load = true;
      if (phi_regs.count(a.reg)) touches_phi = true;
    }
    if (touches_load && touches_phi) {
      accumulates = true;
      break;
    }
  }

  // Loop bound: the condbr condition must come from a comparison in this
  // block between a loop-varying value (the induction variable or its
  // increment) and a loop-invariant bound (an immediate or a register
  // defined outside the block). Exactly one side must be invariant.
  if (!term.args[0].is_reg()) return std::nullopt;
  const std::uint32_t cond_reg = term.args[0].reg;
  Value bound = Value::none();
  for (std::size_t i = 0; i + 1 < block.instrs.size(); ++i) {
    const Instr& instr = block.instrs[i];
    if (instr.dst != cond_reg) continue;
    switch (instr.op) {
      case Opcode::kEq: case Opcode::kNe: case Opcode::kLt:
      case Opcode::kLe: case Opcode::kGt: case Opcode::kGe:
        break;
      default:
        return std::nullopt;
    }
    const auto invariant = [&](const Value& v) {
      return v.is_imm() || (v.is_reg() && defined_in_block.count(v.reg) == 0);
    };
    const bool inv0 = invariant(instr.args[0]);
    const bool inv1 = invariant(instr.args[1]);
    if (inv0 == inv1) return std::nullopt;
    bound = inv0 ? instr.args[0] : instr.args[1];
    break;
  }
  if (bound.is_none()) return std::nullopt;

  LoopShape shape;
  shape.block = b;
  shape.exit = exit;
  shape.bound = bound;
  shape.accumulates = accumulates;
  return shape;
}

/// Registers defined in `block` that are used anywhere else in the
/// function (including as phi inputs in other blocks).
std::set<std::uint32_t> escaping_defs(const cir::Function& fn, std::uint32_t block) {
  std::set<std::uint32_t> defs;
  for (const Instr& instr : fn.blocks[block].instrs) {
    if (instr.dst != kNoReg) defs.insert(instr.dst);
  }
  std::set<std::uint32_t> escaping;
  for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
    if (b == block) continue;
    for (const Instr& instr : fn.blocks[b].instrs) {
      for (const Value& a : instr.args) {
        if (a.is_reg() && defs.count(a.reg)) escaping.insert(a.reg);
      }
    }
  }
  return escaping;
}

}  // namespace

PatternReport collapse_packet_loops(cir::Function& fn) {
  CLARA_TRACE_SCOPE("passes/patterns");
  PatternReport report;
  const Cfg cfg(fn);
  const auto loops = find_loops(fn, cfg);

  for (const Loop& loop : loops) {
    if (loop.body.size() != 1 || loop.header != loop.latch) continue;
    const auto shape = match_block(fn, loop.header);
    if (!shape) continue;

    const auto escaping = escaping_defs(fn, shape->block);
    if (escaping.size() > 1) continue;  // cannot represent multiple live-outs with one vcall result

    BasicBlock& block = fn.blocks[shape->block];

    Instr call;
    call.op = Opcode::kCall;
    call.type = Type::kI64;
    call.callee = cir::vcall_name(shape->accumulates ? VCall::kCsum : VCall::kPayloadScan);
    call.args = {shape->bound};
    call.dst = escaping.empty() ? fn.num_regs++ : *escaping.begin();

    Instr br;
    br.op = Opcode::kBr;
    br.type = Type::kVoid;
    br.target0 = shape->exit;

    block.instrs.clear();
    block.instrs.push_back(std::move(call));
    block.instrs.push_back(std::move(br));
    block.has_trip = false;
    block.trip = cir::SymExpr::constant(1.0);

    // The block no longer loops; phis in the exit block that named this
    // block as predecessor remain valid (the edge still exists). Phis in
    // this block are gone along with the back edge.
    if (shape->accumulates) {
      ++report.csum_loops;
    } else {
      ++report.scan_loops;
    }
  }
  obs::metrics().counter("passes/loops_collapsed").inc(report.total());
  return report;
}

}  // namespace clara::passes
