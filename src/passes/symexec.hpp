// Symbolic path enumeration — paper §3.5: "Alternatively, Clara could
// leverage symbolic execution to comprehensively enumerate all NF
// behaviors, and identify the packet types that would exercise each
// behavior. This would enable Clara to generate a set of performance
// predictions per packet type."
//
// This is a lightweight symbolic executor specialized for NF shapes:
// header fields read via vcall_get_hdr become symbolic values; masks and
// comparisons over them become path conditions ("proto == 6",
// "tcp_flags & 0x1 != 0"); stateful vcall results (table lookups, meter
// verdicts) are opaque booleans that fork the path with a descriptive
// condition ("vcall_table_lookup(conn_table) hit"). Loops are bounded:
// a back edge is followed at most once per path, after which only exit
// edges are taken (the block's trip annotation carries the repetition
// cost — path enumeration is about control-flow shape, not iteration
// counts).
#pragma once

#include <string>
#include <vector>

#include "cir/function.hpp"

namespace clara::passes {

/// One conjunct of a path condition, printable for reports.
struct PathCondition {
  std::string text;

  friend bool operator==(const PathCondition&, const PathCondition&) = default;
};

struct NfPath {
  /// Blocks traversed, in order (loop bodies appear at most twice).
  std::vector<std::uint32_t> blocks;
  std::vector<PathCondition> conditions;
  /// Terminal action on this path (emit, drop, or plain return).
  enum class Exit { kEmit, kDrop, kReturn } exit = Exit::kReturn;

  [[nodiscard]] std::string describe(const cir::Function& fn) const;
};

struct PathSet {
  std::vector<NfPath> paths;
  /// False when enumeration stopped at the path budget (paths is then a
  /// prefix of the full behaviour set).
  bool complete = true;
};

/// Enumerates control-flow paths of a (substituted) function.
PathSet enumerate_paths(const cir::Function& fn, std::size_t max_paths = 64);

}  // namespace clara::passes
