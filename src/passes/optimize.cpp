#include "passes/optimize.hpp"

#include <algorithm>
#include <map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include <optional>
#include <vector>

#include "cir/builder.hpp"

namespace clara::passes {

using cir::Instr;
using cir::kNoReg;
using cir::Opcode;
using cir::Type;
using cir::Value;

namespace {

std::uint64_t type_mask(Type t) {
  switch (t) {
    case Type::kI8: return 0xffULL;
    case Type::kI16: return 0xffffULL;
    case Type::kI32: return 0xffffffffULL;
    default: return ~0ULL;
  }
}

/// Folds an instruction whose operands are all immediates. nullopt when
/// the op is not foldable (or would trap).
std::optional<std::uint64_t> fold(const Instr& instr) {
  auto imm = [&](std::size_t i) { return static_cast<std::uint64_t>(instr.args[i].imm); };
  for (const auto& a : instr.args) {
    if (!a.is_imm()) return std::nullopt;
  }
  const std::uint64_t mask = type_mask(instr.type);
  switch (instr.op) {
    case Opcode::kAdd: return (imm(0) + imm(1)) & mask;
    case Opcode::kSub: return (imm(0) - imm(1)) & mask;
    case Opcode::kMul: return (imm(0) * imm(1)) & mask;
    case Opcode::kDiv: return imm(1) == 0 ? std::nullopt : std::optional((imm(0) / imm(1)) & mask);
    case Opcode::kRem: return imm(1) == 0 ? std::nullopt : std::optional((imm(0) % imm(1)) & mask);
    case Opcode::kAnd: return (imm(0) & imm(1)) & mask;
    case Opcode::kOr: return (imm(0) | imm(1)) & mask;
    case Opcode::kXor: return (imm(0) ^ imm(1)) & mask;
    case Opcode::kShl: return (imm(0) << (imm(1) & 63)) & mask;
    case Opcode::kShr: return (imm(0) >> (imm(1) & 63)) & mask;
    case Opcode::kEq: return imm(0) == imm(1) ? 1 : 0;
    case Opcode::kNe: return imm(0) != imm(1) ? 1 : 0;
    case Opcode::kLt: return imm(0) < imm(1) ? 1 : 0;
    case Opcode::kLe: return imm(0) <= imm(1) ? 1 : 0;
    case Opcode::kGt: return imm(0) > imm(1) ? 1 : 0;
    case Opcode::kGe: return imm(0) >= imm(1) ? 1 : 0;
    case Opcode::kSelect: return (imm(0) != 0 ? imm(1) : imm(2)) & mask;
    // FP markers are not folded: their runtime semantics on the target
    // (emulation) is what we are costing.
    default: return std::nullopt;
  }
}

/// Replaces every use of `reg` with the immediate `value`.
std::size_t substitute(cir::Function& fn, std::uint32_t reg, std::uint64_t value) {
  std::size_t replaced = 0;
  for (auto& block : fn.blocks) {
    for (auto& instr : block.instrs) {
      for (auto& arg : instr.args) {
        if (arg.is_reg() && arg.reg == reg) {
          arg = Value::of_imm(static_cast<std::int64_t>(value));
          ++replaced;
        }
      }
    }
  }
  return replaced;
}

/// Removes the phi entries in `block` coming from predecessor `pred`.
void prune_phi_edges(cir::BasicBlock& block, std::uint32_t pred) {
  for (auto& instr : block.instrs) {
    if (instr.op != Opcode::kPhi) continue;
    for (std::size_t i = 0; i < instr.phi_preds.size();) {
      if (instr.phi_preds[i] == pred) {
        instr.phi_preds.erase(instr.phi_preds.begin() + static_cast<std::ptrdiff_t>(i));
        instr.args.erase(instr.args.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
}

bool fold_pass(cir::Function& fn, OptimizeReport& report) {
  bool changed = false;
  for (auto& block : fn.blocks) {
    for (auto& instr : block.instrs) {
      if (instr.dst == kNoReg) continue;
      // Single-entry phis fold to their sole incoming value.
      if (instr.op == Opcode::kPhi && instr.args.size() == 1 && instr.args[0].is_imm()) {
        if (substitute(fn, instr.dst, static_cast<std::uint64_t>(instr.args[0].imm)) > 0) {
          ++report.folded;
          changed = true;
        }
        continue;
      }
      const auto value = fold(instr);
      if (!value) continue;
      if (substitute(fn, instr.dst, *value) > 0) {
        ++report.folded;
        changed = true;
      }
    }
  }
  return changed;
}

bool simplify_branches(cir::Function& fn, OptimizeReport& report) {
  bool changed = false;
  for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
    auto& block = fn.blocks[b];
    if (block.instrs.empty()) continue;
    Instr& term = block.instrs.back();
    if (term.op != Opcode::kCondBr || !term.args[0].is_imm()) continue;
    const std::uint32_t taken = term.args[0].imm != 0 ? term.target0 : term.target1;
    const std::uint32_t dead = term.args[0].imm != 0 ? term.target1 : term.target0;
    term.op = Opcode::kBr;
    term.args.clear();
    term.target0 = taken;
    term.target1 = ~0u;
    if (dead != taken) prune_phi_edges(fn.blocks[dead], b);
    ++report.branches_simplified;
    changed = true;
  }
  return changed;
}

bool dce_pass(cir::Function& fn, OptimizeReport& report) {
  std::vector<std::size_t> uses(fn.num_regs, 0);
  for (const auto& block : fn.blocks) {
    for (const auto& instr : block.instrs) {
      for (const auto& arg : instr.args) {
        if (arg.is_reg()) ++uses[arg.reg];
      }
    }
  }
  bool changed = false;
  for (auto& block : fn.blocks) {
    for (std::size_t i = 0; i < block.instrs.size();) {
      const Instr& instr = block.instrs[i];
      const bool removable = instr.dst != kNoReg && uses[instr.dst] == 0 &&
                             instr.op != Opcode::kCall && instr.op != Opcode::kStore &&
                             !cir::is_terminator(instr.op);
      if (removable) {
        block.instrs.erase(block.instrs.begin() + static_cast<std::ptrdiff_t>(i));
        ++report.dead_removed;
        changed = true;
      } else {
        ++i;
      }
    }
  }
  return changed;
}

bool remove_unreachable(cir::Function& fn, OptimizeReport& report) {
  const std::size_t n = fn.blocks.size();
  std::vector<bool> reachable(n, false);
  std::vector<std::uint32_t> work{0};
  reachable[0] = true;
  while (!work.empty()) {
    const std::uint32_t b = work.back();
    work.pop_back();
    const auto& instrs = fn.blocks[b].instrs;
    if (instrs.empty()) continue;
    const Instr& term = instrs.back();
    auto visit = [&](std::uint32_t t) {
      if (t < n && !reachable[t]) {
        reachable[t] = true;
        work.push_back(t);
      }
    };
    if (term.op == Opcode::kBr) visit(term.target0);
    if (term.op == Opcode::kCondBr) {
      visit(term.target0);
      visit(term.target1);
    }
  }
  if (std::all_of(reachable.begin(), reachable.end(), [](bool r) { return r; })) return false;

  // Remap block indices.
  std::vector<std::uint32_t> remap(n, ~0u);
  std::vector<cir::BasicBlock> kept;
  for (std::uint32_t b = 0; b < n; ++b) {
    if (!reachable[b]) {
      ++report.blocks_removed;
      continue;
    }
    remap[b] = static_cast<std::uint32_t>(kept.size());
    kept.push_back(std::move(fn.blocks[b]));
  }
  for (auto& block : kept) {
    // Drop phi entries from removed predecessors, then remap the rest.
    for (auto& instr : block.instrs) {
      if (instr.op == Opcode::kPhi) {
        for (std::size_t i = 0; i < instr.phi_preds.size();) {
          if (remap[instr.phi_preds[i]] == ~0u) {
            instr.phi_preds.erase(instr.phi_preds.begin() + static_cast<std::ptrdiff_t>(i));
            instr.args.erase(instr.args.begin() + static_cast<std::ptrdiff_t>(i));
          } else {
            instr.phi_preds[i] = remap[instr.phi_preds[i]];
            ++i;
          }
        }
      }
      if (instr.op == Opcode::kBr) instr.target0 = remap[instr.target0];
      if (instr.op == Opcode::kCondBr) {
        instr.target0 = remap[instr.target0];
        instr.target1 = remap[instr.target1];
      }
    }
  }
  fn.blocks = std::move(kept);
  return true;
}

}  // namespace

OptimizeReport optimize(cir::Function& fn) {
  CLARA_TRACE_SCOPE("passes/optimize");
  OptimizeReport report;
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 32) {
    changed = false;
    changed |= fold_pass(fn, report);
    changed |= simplify_branches(fn, report);
    changed |= remove_unreachable(fn, report);
    changed |= dce_pass(fn, report);
  }
  obs::metrics().counter("passes/instrs_optimized").inc(report.total());
  return report;
}

}  // namespace clara::passes
