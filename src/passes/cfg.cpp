#include "passes/cfg.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace clara::passes {

using cir::Instr;
using cir::Opcode;

Cfg::Cfg(const cir::Function& fn) {
  const std::size_t n = fn.blocks.size();
  preds_.resize(n);
  succs_.resize(n);
  for (std::uint32_t b = 0; b < n; ++b) {
    if (fn.blocks[b].instrs.empty()) continue;
    const Instr& term = fn.blocks[b].instrs.back();
    auto link = [&](std::uint32_t to) {
      succs_[b].push_back(to);
      preds_[to].push_back(b);
    };
    if (term.op == Opcode::kBr) {
      link(term.target0);
    } else if (term.op == Opcode::kCondBr) {
      link(term.target0);
      if (term.target1 != term.target0) link(term.target1);
    }
  }

  // Post-order DFS from entry, then reverse.
  rpo_index_.assign(n, ~0u);
  std::vector<std::uint8_t> state(n, 0);  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  std::vector<std::uint32_t> post;
  if (n > 0) {
    stack.emplace_back(0, 0);
    state[0] = 1;
    while (!stack.empty()) {
      auto& [b, idx] = stack.back();
      if (idx < succs_[b].size()) {
        const std::uint32_t next = succs_[b][idx++];
        if (state[next] == 0) {
          state[next] = 1;
          stack.emplace_back(next, 0);
        }
      } else {
        post.push_back(b);
        state[b] = 2;
        stack.pop_back();
      }
    }
  }
  rpo_.assign(post.rbegin(), post.rend());
  for (std::uint32_t i = 0; i < rpo_.size(); ++i) rpo_index_[rpo_[i]] = i;

  // Dominators (Cooper-Harvey-Kennedy over RPO).
  idom_.assign(n, ~0u);
  if (!rpo_.empty()) {
    idom_[rpo_[0]] = rpo_[0];
    auto intersect = [&](std::uint32_t a, std::uint32_t b) {
      while (a != b) {
        while (rpo_index_[a] > rpo_index_[b]) a = idom_[a];
        while (rpo_index_[b] > rpo_index_[a]) b = idom_[b];
      }
      return a;
    };
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 1; i < rpo_.size(); ++i) {
        const std::uint32_t b = rpo_[i];
        std::uint32_t new_idom = ~0u;
        for (const std::uint32_t p : preds_[b]) {
          if (idom_[p] == ~0u) continue;  // not yet processed / unreachable
          new_idom = new_idom == ~0u ? p : intersect(new_idom, p);
        }
        if (new_idom != ~0u && idom_[b] != new_idom) {
          idom_[b] = new_idom;
          changed = true;
        }
      }
    }
  }
}

bool Cfg::dominates(std::uint32_t a, std::uint32_t b) const {
  if (!reachable(a) || !reachable(b)) return false;
  std::uint32_t cur = b;
  while (true) {
    if (cur == a) return true;
    const std::uint32_t next = idom_[cur];
    if (next == cur || next == ~0u) return false;
    cur = next;
  }
}

std::vector<Loop> find_loops(const cir::Function& fn, const Cfg& cfg) {
  std::vector<Loop> loops;
  for (std::uint32_t latch = 0; latch < fn.blocks.size(); ++latch) {
    if (!cfg.reachable(latch)) continue;
    for (const std::uint32_t header : cfg.succs(latch)) {
      if (!cfg.dominates(header, latch)) continue;
      Loop loop;
      loop.header = header;
      loop.latch = latch;
      // Body = header + all blocks that reach the latch without passing
      // through the header (standard natural-loop construction).
      std::vector<bool> in_body(fn.blocks.size(), false);
      in_body[header] = true;
      std::vector<std::uint32_t> work;
      if (!in_body[latch]) {
        in_body[latch] = true;
        work.push_back(latch);
      }
      while (!work.empty()) {
        const std::uint32_t b = work.back();
        work.pop_back();
        for (const std::uint32_t p : cfg.preds(b)) {
          if (!in_body[p]) {
            in_body[p] = true;
            work.push_back(p);
          }
        }
      }
      for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
        if (in_body[b]) loop.body.push_back(b);
      }
      loops.push_back(std::move(loop));
    }
  }
  return loops;
}

std::vector<double> estimate_block_frequencies(const cir::Function& fn, const Cfg& cfg, double branch_prob,
                                               const std::map<std::string, double>& params) {
  std::vector<double> freq(fn.blocks.size(), 0.0);
  if (fn.blocks.empty()) return freq;

  auto eval_trip = [&](const cir::BasicBlock& block) -> double {
    if (!block.has_trip) return 1.0;
    if (block.trip.is_constant()) return std::max(1.0, block.trip.eval(0.0));
    const auto it = params.find(block.trip.param);
    const double pv = it != params.end() ? it->second : 0.0;
    return std::max(1.0, block.trip.eval(pv));
  };

  freq[0] = 1.0;
  for (const std::uint32_t b : cfg.rpo()) {
    // Incoming flow was accumulated by predecessors; apply the trip
    // multiplier for loop bodies, then distribute onward ignoring back
    // edges (succ earlier in RPO than this block).
    const double flow = freq[b] * eval_trip(fn.blocks[b]);
    freq[b] = flow;
    const auto& succs = cfg.succs(b);
    std::vector<std::uint32_t> forward;
    for (const std::uint32_t s : succs) {
      if (cfg.rpo_index(s) > cfg.rpo_index(b)) forward.push_back(s);
    }
    if (forward.empty()) continue;
    if (forward.size() == 1) {
      freq[forward[0]] += flow;
    } else {
      // condbr: target0 gets branch_prob, target1 the remainder.
      const cir::Instr& term = fn.blocks[b].instrs.back();
      for (const std::uint32_t s : forward) {
        const double p = (s == term.target0) ? branch_prob : (1.0 - branch_prob);
        freq[s] += flow * p;
      }
    }
  }
  return freq;
}

}  // namespace clara::passes
