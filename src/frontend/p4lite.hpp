// P4-lite front end.
//
// The paper's NF-diversity argument (§3.3) is that Clara analyzes a
// lower-level representation so the source language stops mattering:
// "most network functions are written in general-purpose C, recent work
// has also considered alternatives such as eBPF and P4". The builder
// front end covers the C/DPDK shape; this module is the P4-shaped one —
// a small match-action language compiled to CIR.
//
// Language (line/brace structured, `#` comments):
//
//   p4nf my_firewall
//   state conn entries=16384 entry_bytes=64 pattern=hash
//
//   control {
//     parse
//     set seen = lookup conn hdr.flow_hash
//     if seen {
//       emit
//     } else {
//       if hdr.tcp_flags & 1 {
//         update conn hdr.flow_hash
//         emit
//       } else {
//         drop
//       }
//     }
//   }
//
// Statements:
//   parse
//   set VAR = EXPR
//   set VAR = lookup STATE EXPR          (exact match; 1 = hit)
//   set VAR = meter STATE EXPR           (1 = conforming)
//   update STATE EXPR                    (install/refresh entry)
//   count STATE EXPR                     (statistics counter)
//   lpm STATE EXPR [nocache]             (longest-prefix match)
//   csum EXPR | crypto EXPR | scan EXPR  (payload-length argument)
//   sethdr FIELD EXPR
//   emit | drop                          (terminal; control falls off the
//                                         end -> implicit emit)
//   if EXPR { ... } [else { ... }]
//
// Expressions: integer literals, `hdr.FIELD` (proto, src_ip, dst_ip,
// src_port, dst_port, tcp_flags, payload_len, pkt_len, flow_hash),
// variables, and left-associative binary operators
// `+ - * & | ^ == != < <= > >=` with explicit parentheses for grouping.
//
// Variables compile to per-core scratch slots (P4 metadata containers),
// so assignments in both arms of an `if` need no SSA merging.
#pragma once

#include <string>

#include "cir/function.hpp"
#include "common/result.hpp"

namespace clara::frontend {

/// Compiles a P4-lite program into a verified CIR function. Errors carry
/// a line number.
Result<cir::Function> compile_p4lite(const std::string& source);

}  // namespace clara::frontend
