#include "frontend/p4lite.hpp"

#include <map>
#include <optional>
#include <vector>

#include "cir/builder.hpp"
#include "cir/verify.hpp"
#include "common/strings.hpp"

namespace clara::frontend {

using cir::FunctionBuilder;
using cir::Value;
using cir::VCall;

namespace {

// --- Tokenizer ----------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kSymbol, kEnd } kind = Kind::kEnd;
  std::string text;
  std::int64_t number = 0;
  std::size_t line = 0;
};

Result<std::vector<Token>> tokenize(const std::string& source) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t i = 0;
  const auto n = source.size();
  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(source[j])) || source[j] == '_')) ++j;
      tokens.push_back({Token::Kind::kIdent, source.substr(i, j - i), 0, line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(source[j])))) ++j;  // 0x.. too
      const std::string text = source.substr(i, j - i);
      char* end = nullptr;
      const long long value = std::strtoll(text.c_str(), &end, 0);
      if (end != text.c_str() + text.size()) {
        return make_error(strf("line %zu: bad number '%s'", line, text.c_str()));
      }
      tokens.push_back({Token::Kind::kNumber, text, value, line});
      i = j;
      continue;
    }
    // Two-char operators first.
    static const char* kTwo[] = {"==", "!=", "<=", ">="};
    bool matched = false;
    for (const char* op : kTwo) {
      if (source.compare(i, 2, op) == 0) {
        tokens.push_back({Token::Kind::kSymbol, op, 0, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kOne = "{}()=<>+-*&|^.";
    if (kOne.find(c) != std::string::npos) {
      tokens.push_back({Token::Kind::kSymbol, std::string(1, c), 0, line});
      ++i;
      continue;
    }
    return make_error(strf("line %zu: unexpected character '%c'", line, c));
  }
  tokens.push_back({Token::Kind::kEnd, "", 0, line});
  return tokens;
}

// --- Compiler -------------------------------------------------------------------

class Compiler {
 public:
  explicit Compiler(std::vector<Token> tokens) : tokens_(std::move(tokens)), builder_("p4nf") {}

  Result<cir::Function> compile() {
    if (!expect_ident("p4nf")) return err("program must start with 'p4nf NAME'");
    const Token name = next();
    if (name.kind != Token::Kind::kIdent) return err("p4nf needs a name");
    builder_ = FunctionBuilder(name.text);

    while (peek().kind == Token::Kind::kIdent && peek().text == "state") {
      if (auto s = parse_state(); !s) return s.error();
    }

    if (!expect_ident("control")) return err("expected 'control { ... }'");
    if (!expect_symbol("{")) return err("expected '{' after control");

    entry_ = builder_.create_block("entry");
    builder_.set_insert_point(entry_);
    open_ = true;
    if (auto s = parse_statements(); !s) return s.error();
    if (!expect_symbol("}")) return err("expected '}' closing control");
    if (peek().kind != Token::Kind::kEnd) return err("trailing input after control block");

    if (open_) {
      builder_.vcall(VCall::kEmit, {Value::of_imm(1)}, false);
      builder_.ret();
    }

    auto fn = builder_.take();
    if (auto status = cir::verify(fn); !status) {
      return make_error("p4lite: generated IR failed verification: " + status.error().message);
    }
    return fn;
  }

 private:
  // -- token helpers -------------------------------------------------------
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  Token next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool expect_ident(const std::string& word) {
    if (peek().kind == Token::Kind::kIdent && peek().text == word) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool expect_symbol(const std::string& sym) {
    if (peek().kind == Token::Kind::kSymbol && peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }
  Error err(const std::string& msg) const { return make_error(strf("line %zu: %s", peek().line, msg.c_str())); }

  // -- sections --------------------------------------------------------------
  Status parse_state() {
    next();  // 'state'
    const Token name = next();
    if (name.kind != Token::Kind::kIdent) return err("state needs a name");
    cir::StateObject state;
    state.name = name.text;
    bool have_entries = false, have_bytes = false;
    while (peek().kind == Token::Kind::kIdent &&
           (peek().text == "entries" || peek().text == "entry_bytes" || peek().text == "pattern")) {
      const Token key = next();
      if (!expect_symbol("=")) return err("state attribute needs '='");
      const Token value = next();
      if (key.text == "entries") {
        if (value.kind != Token::Kind::kNumber) return err("entries needs a number");
        state.entries = static_cast<std::uint64_t>(value.number);
        have_entries = true;
      } else if (key.text == "entry_bytes") {
        if (value.kind != Token::Kind::kNumber) return err("entry_bytes needs a number");
        state.entry_bytes = static_cast<Bytes>(value.number);
        have_bytes = true;
      } else {
        if (value.text == "hash") {
          state.pattern = cir::StatePattern::kHashTable;
        } else if (value.text == "array") {
          state.pattern = cir::StatePattern::kArray;
        } else if (value.text == "direct") {
          state.pattern = cir::StatePattern::kDirect;
        } else {
          return err("pattern must be hash|array|direct");
        }
      }
    }
    if (!have_entries || !have_bytes) return err("state needs entries= and entry_bytes=");
    states_[state.name] = builder_.add_state(state);
    return {};
  }

  Result<std::uint32_t> state_ref() {
    const Token name = next();
    if (name.kind != Token::Kind::kIdent) return Error{strf("line %zu: expected state name", name.line)};
    const auto it = states_.find(name.text);
    if (it == states_.end()) return Error{strf("line %zu: unknown state '%s'", name.line, name.text.c_str())};
    return it->second;
  }

  // -- expressions (precedence climbing) -------------------------------------
  static int precedence(const std::string& op) {
    if (op == "==" || op == "!=" || op == "<" || op == "<=" || op == ">" || op == ">=") return 1;
    if (op == "|" || op == "^") return 2;
    if (op == "&") return 3;
    if (op == "+" || op == "-") return 4;
    if (op == "*") return 5;
    return 0;
  }

  Result<Value> parse_primary() {
    const Token token = next();
    if (token.kind == Token::Kind::kNumber) return Value::of_imm(token.number);
    if (token.kind == Token::Kind::kSymbol && token.text == "(") {
      auto inner = parse_expr(1);
      if (!inner) return inner;
      if (!expect_symbol(")")) return Error{strf("line %zu: expected ')'", peek().line)};
      return inner;
    }
    if (token.kind == Token::Kind::kIdent) {
      if (token.text == "hdr") {
        if (!expect_symbol(".")) return Error{strf("line %zu: expected '.' after hdr", token.line)};
        const Token field = next();
        const auto f = cir::parse_hdr_field(field.text);
        if (!f) return Error{strf("line %zu: unknown header field '%s'", field.line, field.text.c_str())};
        return builder_.get_hdr(*f);
      }
      const auto it = vars_.find(token.text);
      if (it == vars_.end()) {
        return Error{strf("line %zu: use of unset variable '%s'", token.line, token.text.c_str())};
      }
      return builder_.load_scratch(Value::of_imm(static_cast<std::int64_t>(it->second)));
    }
    return Error{strf("line %zu: expected expression", token.line)};
  }

  Result<Value> parse_expr(int min_prec) {
    auto lhs = parse_primary();
    if (!lhs) return lhs;
    Value left = lhs.value();
    while (peek().kind == Token::Kind::kSymbol && precedence(peek().text) >= min_prec &&
           precedence(peek().text) > 0) {
      const std::string op = next().text;
      auto rhs = parse_expr(precedence(op) + 1);
      if (!rhs) return rhs;
      const Value right = rhs.value();
      if (op == "+") left = builder_.add(left, right);
      else if (op == "-") left = builder_.sub(left, right);
      else if (op == "*") left = builder_.mul(left, right);
      else if (op == "&") left = builder_.band(left, right);
      else if (op == "|") left = builder_.bor(left, right);
      else if (op == "^") left = builder_.bxor(left, right);
      else if (op == "==") left = builder_.cmp_eq(left, right);
      else if (op == "!=") left = builder_.cmp_ne(left, right);
      else if (op == "<") left = builder_.cmp_lt(left, right);
      else if (op == "<=") left = builder_.cmp_le(left, right);
      else if (op == ">") left = builder_.cmp_gt(left, right);
      else left = builder_.cmp_ge(left, right);
    }
    return left;
  }

  // -- statements --------------------------------------------------------------
  Status parse_statements() {
    while (true) {
      const Token& token = peek();
      if (token.kind == Token::Kind::kSymbol && token.text == "}") return {};
      if (token.kind == Token::Kind::kEnd) return err("unexpected end of input (missing '}')");
      if (!open_) return err("unreachable statement after emit/drop");
      if (auto s = parse_statement(); !s) return s;
    }
  }

  std::uint32_t var_slot(const std::string& name) {
    const auto it = vars_.find(name);
    if (it != vars_.end()) return it->second;
    const auto slot = static_cast<std::uint32_t>(vars_.size()) * 8;
    vars_[name] = slot;
    return slot;
  }

  Status parse_statement() {
    const Token token = next();
    if (token.kind != Token::Kind::kIdent) return err("expected a statement");
    const std::string& word = token.text;

    if (word == "parse") {
      builder_.vcall(VCall::kParse, {}, false);
      return {};
    }
    if (word == "emit") {
      builder_.vcall(VCall::kEmit, {Value::of_imm(1)}, false);
      builder_.ret();
      open_ = false;
      return {};
    }
    if (word == "drop") {
      builder_.vcall(VCall::kDrop, {}, false);
      builder_.ret();
      open_ = false;
      return {};
    }
    if (word == "set") {
      const Token name = next();
      if (name.kind != Token::Kind::kIdent) return err("set needs a variable name");
      if (!expect_symbol("=")) return err("set needs '='");
      Value value = Value::none();
      if (peek().kind == Token::Kind::kIdent && peek().text == "lookup") {
        next();
        auto state = state_ref();
        if (!state) return state.error();
        auto key = parse_expr(1);
        if (!key) return key.error();
        value = builder_.vcall(VCall::kTableLookup,
                               {Value::of_imm(static_cast<std::int64_t>(state.value())), key.value()});
      } else if (peek().kind == Token::Kind::kIdent && peek().text == "meter") {
        next();
        auto state = state_ref();
        if (!state) return state.error();
        auto key = parse_expr(1);
        if (!key) return key.error();
        value = builder_.vcall(VCall::kMeter,
                               {Value::of_imm(static_cast<std::int64_t>(state.value())), key.value()});
      } else {
        auto expr = parse_expr(1);
        if (!expr) return expr.error();
        value = expr.value();
      }
      builder_.store_scratch(Value::of_imm(static_cast<std::int64_t>(var_slot(name.text))), value);
      return {};
    }
    if (word == "update" || word == "count") {
      auto state = state_ref();
      if (!state) return state.error();
      auto key = parse_expr(1);
      if (!key) return key.error();
      if (word == "update") {
        builder_.vcall(VCall::kTableUpdate,
                       {Value::of_imm(static_cast<std::int64_t>(state.value())), key.value(), Value::of_imm(1)},
                       false);
      } else {
        builder_.vcall(VCall::kStatsUpdate,
                       {Value::of_imm(static_cast<std::int64_t>(state.value())), key.value()}, false);
      }
      return {};
    }
    if (word == "lpm") {
      auto state = state_ref();
      if (!state) return state.error();
      auto key = parse_expr(1);
      if (!key) return key.error();
      bool use_cache = true;
      if (peek().kind == Token::Kind::kIdent && peek().text == "nocache") {
        next();
        use_cache = false;
      }
      builder_.vcall(VCall::kLpmLookup, {Value::of_imm(static_cast<std::int64_t>(state.value())), key.value(),
                                         Value::of_imm(use_cache ? 1 : 0)});
      return {};
    }
    if (word == "csum" || word == "crypto" || word == "scan") {
      auto len = parse_expr(1);
      if (!len) return len.error();
      if (word == "csum") {
        builder_.vcall(VCall::kCsum, {len.value()});
      } else if (word == "crypto") {
        builder_.vcall(VCall::kCrypto, {len.value()}, false);
      } else {
        builder_.vcall(VCall::kPayloadScan, {len.value()});
      }
      return {};
    }
    if (word == "sethdr") {
      const Token field = next();
      const auto f = cir::parse_hdr_field(field.text);
      if (!f) return err(strf("unknown header field '%s'", field.text.c_str()));
      auto value = parse_expr(1);
      if (!value) return value.error();
      builder_.set_hdr(*f, value.value());
      return {};
    }
    if (word == "if") {
      return parse_if();
    }
    return make_error(strf("line %zu: unknown statement '%s'", token.line, word.c_str()));
  }

  Status parse_if() {
    auto cond = parse_expr(1);
    if (!cond) return cond.error();
    if (!expect_symbol("{")) return err("if needs '{'");

    const auto then_block = builder_.create_block(strf("then%u", label_counter_));
    const auto else_block = builder_.create_block(strf("else%u", label_counter_));
    ++label_counter_;
    builder_.cond_br(cond.value(), then_block, else_block);

    builder_.set_insert_point(then_block);
    open_ = true;
    if (auto s = parse_statements(); !s) return s;
    if (!expect_symbol("}")) return err("if needs '}'");
    const bool then_open = open_;
    const auto then_end = builder_.insert_point();

    bool else_open = true;
    std::uint32_t else_end = else_block;
    builder_.set_insert_point(else_block);
    open_ = true;
    if (peek().kind == Token::Kind::kIdent && peek().text == "else") {
      next();
      if (!expect_symbol("{")) return err("else needs '{'");
      if (auto s = parse_statements(); !s) return s;
      if (!expect_symbol("}")) return err("else needs '}'");
      else_open = open_;
      else_end = builder_.insert_point();
    }

    if (!then_open && !else_open) {
      // Both arms terminated; nothing follows.
      open_ = false;
      return {};
    }
    const auto join = builder_.create_block(strf("join%u", label_counter_++));
    if (then_open) {
      builder_.set_insert_point(then_end);
      builder_.br(join);
    }
    if (else_open) {
      builder_.set_insert_point(else_end);
      builder_.br(join);
    }
    builder_.set_insert_point(join);
    open_ = true;
    return {};
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  FunctionBuilder builder_;
  std::map<std::string, std::uint32_t> states_;
  std::map<std::string, std::uint32_t> vars_;  // name -> scratch slot
  std::uint32_t entry_ = 0;
  bool open_ = false;
  std::uint32_t label_counter_ = 0;
};

}  // namespace

Result<cir::Function> compile_p4lite(const std::string& source) {
  auto tokens = tokenize(source);
  if (!tokens) return tokens.error();
  Compiler compiler(std::move(tokens).value());
  return compiler.compile();
}

}  // namespace clara::frontend
