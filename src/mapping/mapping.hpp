// Mapping dataflow graphs to the LNIC — paper §3.4.
//
// The mapper "mimics the role of a compiler": it lowers the CIR dataflow
// graph onto the parameterized LNIC by choosing, for every dataflow node,
// a compute-unit pool (Π constraints), and for every state object, a
// memory region (Γ constraints), subject to pipeline ordering, memory
// capacity, vcall/compute compatibility, and per-pool service capacity at
// the offered load (Θ). The objective minimizes expected per-packet
// cycles. Solved exactly with the in-tree branch-and-bound MILP; a
// greedy baseline exists for ablation.
//
// Identical compute units are aggregated into pools (all NPU cores form
// one pool with the summed thread parallelism): mapping is about *what
// kind of engine runs a node*, not which of eight interchangeable cores
// — and the aggregation removes ILP symmetry.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "ilp/model.hpp"
#include "ilp/simplex.hpp"
#include "ilp/solver.hpp"
#include "lnic/profiles.hpp"
#include "passes/dataflow.hpp"

namespace clara::mapping {

struct UnitPool {
  std::string name;
  lnic::UnitKind kind = lnic::UnitKind::kNpuCore;
  int pipeline_stage = 0;
  bool match_action = false;
  /// Aggregate parallelism (hardware threads across members).
  double parallelism = 1.0;
  std::vector<NodeId> members;
  /// Member used for NUMA-weight lookups against memory regions.
  NodeId representative = kInvalidNode;
};

/// Groups the graph's compute units into pools by (kind, stage).
/// Offline units (fault state) never join a pool; derated units
/// contribute only their scaled parallelism.
std::vector<UnitPool> build_pools(const lnic::Graph& graph);

/// Pool identity recorded on a Mapping so a later repair() — against a
/// faulted profile whose pool list may have shrunk or shifted — can
/// re-associate pool indices by meaning rather than by position.
struct PoolSignature {
  lnic::UnitKind kind = lnic::UnitKind::kNpuCore;
  int pipeline_stage = 0;
  bool match_action = false;
  double parallelism = 0.0;
};

struct Mapping {
  /// Pool index per dataflow node.
  std::vector<std::uint32_t> node_pool;
  /// LNIC memory-region node id per state object.
  std::vector<NodeId> state_region;
  /// Estimated per-packet service cycles of the mapped NF (compute +
  /// state access terms; datapath constants excluded).
  double objective = 0.0;
  ilp::SolveStatus status = ilp::SolveStatus::kInfeasible;
  std::size_t ilp_nodes_explored = 0;
  /// Simplex pivots across all LP relaxations of the solve.
  std::size_t ilp_pivots = 0;
  /// Incumbent trajectory of the branch-and-bound search (how the best
  /// integer objective improved over explored nodes).
  std::vector<ilp::IncumbentStep> ilp_incumbents;
  bool greedy = false;
  /// True when the time budget expired before the solver proved
  /// optimality: the mapping is the best incumbent found (or the greedy
  /// baseline's when no incumbent existed). Propagates into Analysis and
  /// the report text.
  bool degraded = false;
  /// The solution's simplex basis, usable to warm-start a re-solve of
  /// the same model (ilp::SolveOptions::warm_basis). Empty for greedy.
  std::vector<std::size_t> ilp_basis;
  /// Signatures of the mapper's pools at solve time (indexed like
  /// node_pool values); consumed by Mapper::repair().
  std::vector<PoolSignature> pool_sig;
  /// True when this mapping came out of Mapper::repair(): surviving
  /// assignments were pinned and only displaced nodes were re-solved.
  /// Propagates into Analysis and the report text like `degraded`.
  bool repaired = false;
  /// Dataflow nodes the repair had to re-solve (0 when not repaired, or
  /// when the fault missed every assignment).
  std::size_t repair_displaced = 0;
};

/// Options shared by the ILP and greedy mappers.
struct MapOptions {
  /// Offered load used by the Θ service-capacity constraints.
  double pps = 60'000.0;
  /// Fraction of each CTM usable for state (the rest buffers packets).
  double ctm_state_fraction = 0.75;
  std::size_t max_ilp_nodes = 50'000;
  /// Wall-clock budget for the ILP solve in milliseconds (0 = none). On
  /// expiry map() returns the best incumbent — or the greedy baseline's
  /// result when none exists — flagged Mapping::degraded instead of
  /// failing.
  double time_budget_ms = 0.0;
  /// Basis from a previous solve of the *same* model (Mapping::ilp_basis)
  /// to warm-start the root relaxation with.
  std::vector<std::size_t> warm_basis;
  /// Simplex engine for the placement ILP (kRevised unless a test pins
  /// the dense reference engine; both yield bit-identical mappings).
  ilp::LpAlgorithm ilp_algorithm = ilp::LpAlgorithm::kRevised;

  /// The one translation of these knobs into solver options: node budget,
  /// warm basis, and engine copy over, and a positive time_budget_ms
  /// becomes an absolute steady_clock deadline anchored at the call.
  /// Every solve site (map, repair) goes through here so the plumbing
  /// cannot drift.
  [[nodiscard]] ilp::SolveOptions to_solve_options() const;
};

class Mapper {
 public:
  explicit Mapper(const lnic::NicProfile& profile);

  /// Optimal mapping via ILP. Fails when the NF cannot be placed at all
  /// (e.g. general-purpose compute on a NIC without cores) or when the
  /// Θ constraints are unsatisfiable at the offered load.
  Result<Mapping> map(const passes::DataflowGraph& graph, const passes::CostHints& hints,
                      const MapOptions& options = {}) const;

  /// First-fit greedy baseline: cheapest feasible pool per node,
  /// cheapest region with remaining capacity per state object. Ignores
  /// pipeline-order and service-capacity constraints (the ablation
  /// quantifies what that costs).
  Result<Mapping> map_greedy(const passes::DataflowGraph& graph, const passes::CostHints& hints,
                             const MapOptions& options = {}) const;

  /// Incremental repair after LNIC resource loss (DESIGN.md §13). This
  /// mapper is built on the *faulted* profile; `previous` is a mapping
  /// produced on the healthy twin. Assignments whose pool/region
  /// survived the fault are pinned — folded into the MILP as constants
  /// (objective offsets, Θ/Γ right-hand-side reductions) — and only
  /// displaced nodes and states get variables, so the re-solve is much
  /// cheaper than a cold map(). Falls back to a full re-solve when
  /// pinning makes the model infeasible. The result is always flagged
  /// Mapping::repaired and counted in the `ilp/repairs` metric.
  Result<Mapping> repair(const passes::DataflowGraph& graph, const passes::CostHints& hints,
                         const Mapping& previous, const MapOptions& options = {}) const;

  [[nodiscard]] const std::vector<UnitPool>& pools() const { return pools_; }
  [[nodiscard]] const lnic::NicProfile& profile() const { return *profile_; }

  // -- Cost helpers shared with the predictor ------------------------------

  /// Compute-side cycles of one execution of the node on a pool
  /// (instruction mix, vcall services, packet-byte accesses; state
  /// accesses excluded).
  [[nodiscard]] double node_cost_on_pool(const passes::DfNode& node, const UnitPool& pool,
                                         const cir::Function& fn, const passes::CostHints& hints) const;

  /// The share of node_cost_on_pool that actually *occupies* the pool
  /// (used by the Θ service-capacity constraints and queue models): LPM
  /// DRAM walks are memory-latency-bound and overlap across requests, so
  /// on the LPM engine only the SRAM front-end counts.
  [[nodiscard]] double node_queueable_cost_on_pool(const passes::DfNode& node, const UnitPool& pool,
                                                   const cir::Function& fn,
                                                   const passes::CostHints& hints) const;

  /// Placement-dependent state accesses of one node execution against
  /// state object `state` when running on `kind` (explicit loads/stores
  /// plus vcall-implied probes).
  [[nodiscard]] static double node_state_accesses(const passes::DfNode& node, lnic::UnitKind kind,
                                                  std::uint32_t state, const cir::Function& fn);

  /// Cycles per access from the pool's representative to the region.
  [[nodiscard]] double access_cycles(const UnitPool& pool, NodeId region) const;

  /// True when the node's vcalls and instruction mix can run on `pool`.
  [[nodiscard]] bool pool_feasible(const passes::DfNode& node, const UnitPool& pool) const;

  /// Memory regions eligible for state placement (CTM and above).
  [[nodiscard]] std::vector<NodeId> state_regions() const;

 private:
  const lnic::NicProfile* profile_;
  std::vector<UnitPool> pools_;
};

/// Human-readable porting report: per-node unit bindings, state
/// placements, and hand-tuning hints (the "offloading hints" of paper
/// §6). This is what a developer would read before porting.
std::string describe_mapping(const Mapping& mapping, const passes::DataflowGraph& graph,
                             const Mapper& mapper, const cir::Function& fn);

}  // namespace clara::mapping
