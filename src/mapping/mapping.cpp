#include "mapping/mapping.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <tuple>

#include "common/strings.hpp"
#include "ilp/solver.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "passes/costmodel.hpp"

namespace clara::mapping {

using passes::CostHints;
using passes::DataflowGraph;
using passes::DfNode;

ilp::SolveOptions MapOptions::to_solve_options() const {
  ilp::SolveOptions solve;
  solve.max_nodes = max_ilp_nodes;
  solve.warm_basis = warm_basis;
  solve.algorithm = ilp_algorithm;
  if (time_budget_ms > 0.0) {
    solve.deadline = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                         std::chrono::duration<double, std::milli>(time_budget_ms));
  }
  return solve;
}

std::vector<UnitPool> build_pools(const lnic::Graph& graph) {
  std::map<std::tuple<int, int, bool>, UnitPool> grouped;  // (kind, stage, match-action) -> pool
  for (const NodeId id : graph.compute_units()) {
    const auto* cu = graph.node(id).compute();
    if (cu->offline) continue;  // faulted units never join a pool
    const auto key = std::make_tuple(static_cast<int>(cu->kind), cu->pipeline_stage, cu->match_action);
    auto& pool = grouped[key];
    if (pool.members.empty()) {
      pool.kind = cu->kind;
      pool.pipeline_stage = cu->pipeline_stage;
      pool.match_action = cu->match_action;
      pool.representative = id;
      pool.parallelism = 0.0;
      pool.name = lnic::to_string(cu->kind);
      if (cu->pipeline_stage != 0) pool.name += strf("@%d", cu->pipeline_stage);
    }
    pool.members.push_back(id);
    pool.parallelism += static_cast<double>(std::max(1, cu->threads)) * cu->derate;
  }
  std::vector<UnitPool> pools;
  pools.reserve(grouped.size());
  for (auto& [key, pool] : grouped) pools.push_back(std::move(pool));
  return pools;
}

Mapper::Mapper(const lnic::NicProfile& profile) : profile_(&profile), pools_(build_pools(profile.graph)) {}

bool Mapper::pool_feasible(const DfNode& node, const UnitPool& pool) const {
  for (const auto& site : node.vcalls) {
    if (!passes::unit_supports_vcall(pool.kind, pool.match_action, site.v)) return false;
  }
  return passes::unit_supports_general_compute(pool.kind, pool.match_action, node.mix);
}

double Mapper::access_cycles(const UnitPool& pool, NodeId region) const {
  // Average NUMA weight over pool members that can reach the region; a
  // pool where no member reaches it gets an effectively-infinite cost
  // (the ILP forbids the pairing with a hard constraint as well).
  double total = 0.0;
  int reachable = 0;
  for (const NodeId member : pool.members) {
    if (const auto w = profile_->graph.access_weight(member, region)) {
      total += *w;
      ++reachable;
    }
  }
  if (reachable == 0) return 1e12;
  const double avg_weight = total / reachable;
  const auto* mem = profile_->graph.node(region).memory();
  const char* key = nullptr;
  switch (mem->kind) {
    case lnic::MemKind::kLocal: key = lnic::keys::kMemReadLocal; break;
    case lnic::MemKind::kCtm: key = lnic::keys::kMemReadCtm; break;
    case lnic::MemKind::kImem: key = lnic::keys::kMemReadImem; break;
    case lnic::MemKind::kEmem: key = lnic::keys::kMemReadEmem; break;
  }
  return profile_->params.scalar(key) * avg_weight;
}

double Mapper::node_cost_on_pool(const DfNode& node, const UnitPool& pool, const cir::Function& fn,
                                 const CostHints& hints) const {
  const auto& params = profile_->params;
  double cycles = passes::mix_compute_cycles(node.mix, pool.kind, params);

  // Packet-byte accesses from explicit loads/stores in the mix.
  const double pkt_len = hints.avg_payload + 54.0;
  cycles += static_cast<double>(node.mix.packet_loads + node.mix.packet_stores) *
            passes::packet_access_cycles(pkt_len, -1.0, params);

  for (const auto& site : node.vcalls) {
    const double arg = site.arg_hint > 0.0 ? site.arg_hint : hints.avg_payload;
    const cir::StateObject* state = site.state != ~0u ? &fn.state_objects[site.state] : nullptr;
    cycles += passes::vcall_compute_cycles(site.v, pool.kind, arg, state, params, hints, site.use_flow_cache);
    // Payload scans stream packet bytes in cache-line chunks.
    if (site.v == cir::VCall::kPayloadScan) {
      cycles += std::ceil(arg / 64.0) * passes::packet_access_cycles(arg + 54.0, -1.0, params);
    }
  }
  return cycles;
}

double Mapper::node_queueable_cost_on_pool(const DfNode& node, const UnitPool& pool, const cir::Function& fn,
                                           const CostHints& hints) const {
  double cycles = node_cost_on_pool(node, pool, fn, hints);
  if (pool.kind == lnic::UnitKind::kLpmEngine) {
    const double front_end = profile_->params.scalar(lnic::keys::kFlowCacheHit);
    for (const auto& site : node.vcalls) {
      if (site.v != cir::VCall::kLpmLookup) continue;
      const cir::StateObject* state = site.state != ~0u ? &fn.state_objects[site.state] : nullptr;
      cycles -= passes::vcall_compute_cycles(site.v, pool.kind, 0.0, state, profile_->params, hints,
                                             site.use_flow_cache);
      cycles += front_end;
    }
  }
  return std::max(0.0, cycles);
}

double Mapper::node_state_accesses(const DfNode& node, lnic::UnitKind kind, std::uint32_t state,
                                   const cir::Function& fn) {
  double accesses = 0.0;
  const auto rit = node.mix.state_reads.find(state);
  if (rit != node.mix.state_reads.end()) accesses += static_cast<double>(rit->second);
  const auto wit = node.mix.state_writes.find(state);
  if (wit != node.mix.state_writes.end()) accesses += static_cast<double>(wit->second);
  for (const auto& site : node.vcalls) {
    if (site.state != state) continue;
    const cir::StateObject* obj = &fn.state_objects[state];
    accesses += passes::vcall_state_accesses(site.v, kind, obj);
  }
  return accesses;
}

std::vector<NodeId> Mapper::state_regions() const {
  std::vector<NodeId> out;
  for (const NodeId id : profile_->graph.memory_regions()) {
    const auto* mem = profile_->graph.node(id).memory();
    if (mem->kind == lnic::MemKind::kLocal) continue;  // per-core, not shareable state
    if (mem->offline) continue;                        // fault state: no new placements
    out.push_back(id);
  }
  return out;
}

namespace {

std::vector<PoolSignature> pool_signatures(const std::vector<UnitPool>& pools) {
  std::vector<PoolSignature> sigs;
  sigs.reserve(pools.size());
  for (const auto& p : pools)
    sigs.push_back(PoolSignature{p.kind, p.pipeline_stage, p.match_action, p.parallelism});
  return sigs;
}

}  // namespace

Result<Mapping> Mapper::map(const DataflowGraph& graph, const CostHints& hints, const MapOptions& options) const {
  CLARA_TRACE_SCOPE("mapping/map");
  const cir::Function& fn = *graph.function();
  const auto& nodes = graph.nodes();
  const auto regions = state_regions();
  const std::size_t n_states = fn.state_objects.size();

  ilp::Model model;

  // x[i][p]: node i on pool p (only feasible pairs get variables).
  std::vector<std::vector<int>> x(nodes.size(), std::vector<int>(pools_.size(), -1));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    ilp::LinExpr assign;
    bool any = false;
    for (std::size_t p = 0; p < pools_.size(); ++p) {
      if (!pool_feasible(nodes[i], pools_[p])) continue;
      x[i][p] = model.add_binary(strf("x_%zu_%zu", i, p));
      assign.add(x[i][p], 1.0);
      any = true;
    }
    if (!any) {
      return make_error(strf("node '%s' cannot be placed on any compute unit of %s", nodes[i].label.c_str(),
                             profile_->name.c_str()));
    }
    model.add_constraint(std::move(assign), ilp::Sense::kEq, 1.0, strf("assign_node_%zu", i));
  }

  // y[s][r]: state s in region r.
  std::vector<std::vector<int>> y(n_states, std::vector<int>(regions.size(), -1));
  for (std::size_t s = 0; s < n_states; ++s) {
    ilp::LinExpr assign;
    bool any = false;
    for (std::size_t r = 0; r < regions.size(); ++r) {
      const auto* mem = profile_->graph.node(regions[r]).memory();
      double usable = static_cast<double>(mem->capacity);
      if (mem->kind == lnic::MemKind::kCtm) usable *= options.ctm_state_fraction;
      if (static_cast<double>(fn.state_objects[s].total_bytes()) > usable) continue;  // never fits alone
      y[s][r] = model.add_binary(strf("y_%zu_%zu", s, r));
      assign.add(y[s][r], 1.0);
      any = true;
    }
    if (!any) {
      return make_error(strf("state object '%s' (%s) fits no memory region of %s",
                             fn.state_objects[s].name.c_str(),
                             format_bytes(fn.state_objects[s].total_bytes()).c_str(), profile_->name.c_str()));
    }
    model.add_constraint(std::move(assign), ilp::Sense::kEq, 1.0, strf("assign_state_%zu", s));
  }

  // Γ capacity: states sharing a region must fit together.
  for (std::size_t r = 0; r < regions.size(); ++r) {
    const auto* mem = profile_->graph.node(regions[r]).memory();
    double usable = static_cast<double>(mem->capacity);
    if (mem->kind == lnic::MemKind::kCtm) usable *= options.ctm_state_fraction;
    ilp::LinExpr used;
    bool any = false;
    for (std::size_t s = 0; s < n_states; ++s) {
      if (y[s][r] < 0) continue;
      used.add(y[s][r], static_cast<double>(fn.state_objects[s].total_bytes()));
      any = true;
    }
    if (any) model.add_constraint(std::move(used), ilp::Sense::kLe, usable, strf("capacity_%zu", r));
  }

  // Π pipeline order: stage(node k) >= stage(node t) along dataflow edges.
  for (const auto& edge : graph.edges()) {
    ilp::LinExpr diff;
    bool nontrivial = false;
    for (std::size_t p = 0; p < pools_.size(); ++p) {
      const double stage = pools_[p].pipeline_stage;
      if (x[edge.from][p] >= 0) diff.add(x[edge.from][p], stage);
      if (x[edge.to][p] >= 0) diff.add(x[edge.to][p], -stage);
      if (stage != 0.0) nontrivial = true;
    }
    if (nontrivial) {
      model.add_constraint(std::move(diff), ilp::Sense::kLe, 0.0, strf("order_%u_%u", edge.from, edge.to));
    }
  }

  // Objective: compute costs + linearized state-access costs.
  ilp::LinExpr objective;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t p = 0; p < pools_.size(); ++p) {
      if (x[i][p] < 0) continue;
      objective.add(x[i][p], nodes[i].weight * node_cost_on_pool(nodes[i], pools_[p], fn, hints));
    }
  }

  // State-access terms: w >= x_sum_by_kind + y - 1 with w continuous; the
  // positive objective coefficient pins w to the product at optimum.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t s = 0; s < n_states; ++s) {
      // Group feasible pools by kind: the access count depends on the
      // unit kind, not the specific pool.
      std::map<lnic::UnitKind, std::vector<std::size_t>> by_kind;
      for (std::size_t p = 0; p < pools_.size(); ++p) {
        if (x[i][p] >= 0) by_kind[pools_[p].kind].push_back(p);
      }
      for (const auto& [kind, pool_idxs] : by_kind) {
        const double accesses = node_state_accesses(nodes[i], kind, static_cast<std::uint32_t>(s), fn);
        if (accesses <= 0.0) continue;
        for (std::size_t r = 0; r < regions.size(); ++r) {
          if (y[s][r] < 0) continue;
          // Representative pool of this kind for latency purposes.
          const double lat = access_cycles(pools_[pool_idxs.front()], regions[r]);
          if (lat >= 1e11) {
            // Unreachable pairing: forbid x (any pool of this kind) with y.
            for (const std::size_t p : pool_idxs) {
              ilp::LinExpr forbid;
              forbid.add(x[i][p], 1.0).add(y[s][r], 1.0);
              model.add_constraint(std::move(forbid), ilp::Sense::kLe, 1.0);
            }
            continue;
          }
          const int w = model.add_continuous(strf("w_%zu_%zu_%d_%zu", i, s, static_cast<int>(kind), r), 0.0, 1.0);
          ilp::LinExpr link;  // w >= Σ x + y - 1  ⇔  Σ x + y - w <= 1
          for (const std::size_t p : pool_idxs) link.add(x[i][p], 1.0);
          link.add(y[s][r], 1.0).add(w, -1.0);
          model.add_constraint(std::move(link), ilp::Sense::kLe, 1.0);
          objective.add(w, nodes[i].weight * accesses * lat);
        }
      }
    }
  }

  // Θ service capacity: per-packet demand on a pool must not exceed its
  // parallelism budget at the offered rate.
  const double clock = profile_->params.scalar(lnic::keys::kClockHz);
  const double budget_per_unit = clock / options.pps;
  for (std::size_t p = 0; p < pools_.size(); ++p) {
    ilp::LinExpr demand;
    bool any = false;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (x[i][p] < 0) continue;
      demand.add(x[i][p], nodes[i].weight * node_queueable_cost_on_pool(nodes[i], pools_[p], fn, hints));
      any = true;
    }
    if (any) {
      model.add_constraint(std::move(demand), ilp::Sense::kLe, budget_per_unit * pools_[p].parallelism,
                           strf("theta_%zu", p));
    }
  }

  model.set_objective(std::move(objective));

  const ilp::SolveOptions solve_options = options.to_solve_options();
  obs::metrics().gauge("mapping/ilp_variables").set(static_cast<double>(model.num_vars()));
  obs::metrics().gauge("mapping/ilp_constraints").set(static_cast<double>(model.constraints().size()));
  const auto solution = ilp::solve_milp(model, solve_options);
  if (solution.status == ilp::SolveStatus::kInfeasible) {
    return make_error(ErrorCode::kInfeasible,
                      strf("mapping infeasible on %s at %.0f pps (capacity or ordering constraints)",
                           profile_->name.c_str(), options.pps));
  }
  if (solution.status == ilp::SolveStatus::kLimit) {
    if (solution.degraded) {
      // Deadline expired before any integer solution existed: degrade to
      // the deterministic greedy baseline instead of failing — graceful
      // degradation is the contract of time_budget_ms.
      auto fallback = map_greedy(graph, hints, options);
      if (!fallback) return fallback.error();
      fallback.value().degraded = true;
      return fallback;
    }
    return make_error(ErrorCode::kDeadline, "ILP node budget exhausted without an integer solution");
  }
  if (solution.status == ilp::SolveStatus::kUnbounded) {
    return make_error(ErrorCode::kInternal, "mapping ILP unbounded (model bug)");
  }

  Mapping mapping;
  mapping.status = solution.status;
  mapping.ilp_nodes_explored = solution.nodes_explored;
  mapping.ilp_pivots = solution.pivots;
  mapping.ilp_incumbents = solution.incumbents;
  mapping.degraded = solution.degraded;
  mapping.ilp_basis = solution.basis;
  mapping.objective = solution.objective;
  obs::metrics().gauge("mapping/objective_cycles").set(solution.objective);
  mapping.node_pool.assign(nodes.size(), 0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t p = 0; p < pools_.size(); ++p) {
      if (x[i][p] >= 0 && solution.value(x[i][p]) > 0.5) mapping.node_pool[i] = static_cast<std::uint32_t>(p);
    }
  }
  mapping.state_region.assign(n_states, kInvalidNode);
  for (std::size_t s = 0; s < n_states; ++s) {
    for (std::size_t r = 0; r < regions.size(); ++r) {
      if (y[s][r] >= 0 && solution.value(y[s][r]) > 0.5) mapping.state_region[s] = regions[r];
    }
  }
  mapping.pool_sig = pool_signatures(pools_);
  return mapping;
}

Result<Mapping> Mapper::map_greedy(const DataflowGraph& graph, const CostHints& hints,
                                   const MapOptions& options) const {
  CLARA_TRACE_SCOPE("mapping/greedy");
  const cir::Function& fn = *graph.function();
  const auto& nodes = graph.nodes();
  const auto regions = state_regions();

  Mapping mapping;
  mapping.greedy = true;
  mapping.status = ilp::SolveStatus::kOptimal;
  mapping.pool_sig = pool_signatures(pools_);
  mapping.node_pool.assign(nodes.size(), 0);
  mapping.state_region.assign(fn.state_objects.size(), kInvalidNode);

  // Nodes: cheapest feasible pool, compute cost only (the greedy mapper
  // does not anticipate state placement — that is its weakness).
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    double best = 1e300;
    int best_pool = -1;
    for (std::size_t p = 0; p < pools_.size(); ++p) {
      if (!pool_feasible(nodes[i], pools_[p])) continue;
      const double cost = node_cost_on_pool(nodes[i], pools_[p], fn, hints);
      if (cost < best) {
        best = cost;
        best_pool = static_cast<int>(p);
      }
    }
    if (best_pool < 0) {
      return make_error(ErrorCode::kInfeasible, strf("greedy: node '%s' cannot be placed on %s",
                                                     nodes[i].label.c_str(), profile_->name.c_str()));
    }
    mapping.node_pool[i] = static_cast<std::uint32_t>(best_pool);
    mapping.objective += nodes[i].weight * best;
  }

  // States: process in declaration order; first region (sorted by access
  // latency from the NPU pool) with space left.
  std::vector<double> remaining(regions.size());
  std::vector<std::size_t> region_order(regions.size());
  const UnitPool* npu_pool = nullptr;
  for (const auto& pool : pools_) {
    if (pool.kind == lnic::UnitKind::kNpuCore) npu_pool = &pool;
  }
  for (std::size_t r = 0; r < regions.size(); ++r) {
    const auto* mem = profile_->graph.node(regions[r]).memory();
    remaining[r] = static_cast<double>(mem->capacity);
    if (mem->kind == lnic::MemKind::kCtm) remaining[r] *= options.ctm_state_fraction;
    region_order[r] = r;
  }
  std::sort(region_order.begin(), region_order.end(), [&](std::size_t a, std::size_t b) {
    const double la = npu_pool != nullptr ? access_cycles(*npu_pool, regions[a]) : 0.0;
    const double lb = npu_pool != nullptr ? access_cycles(*npu_pool, regions[b]) : 0.0;
    return la < lb;
  });

  for (std::size_t s = 0; s < fn.state_objects.size(); ++s) {
    const double need = static_cast<double>(fn.state_objects[s].total_bytes());
    bool placed = false;
    for (const std::size_t r : region_order) {
      if (remaining[r] < need) continue;
      remaining[r] -= need;
      mapping.state_region[s] = regions[r];
      placed = true;
      break;
    }
    if (!placed) {
      return make_error(ErrorCode::kInfeasible,
                        strf("greedy: state '%s' fits no region", fn.state_objects[s].name.c_str()));
    }
    // Account access cost against the chosen region.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto& pool = pools_[mapping.node_pool[i]];
      const double accesses = node_state_accesses(nodes[i], pool.kind, static_cast<std::uint32_t>(s), fn);
      if (accesses > 0.0) {
        mapping.objective += nodes[i].weight * accesses * access_cycles(pool, mapping.state_region[s]);
      }
    }
  }
  return mapping;
}

Result<Mapping> Mapper::repair(const DataflowGraph& graph, const CostHints& hints, const Mapping& previous,
                               const MapOptions& options) const {
  CLARA_TRACE_SCOPE("mapping/repair");
  const cir::Function& fn = *graph.function();
  const auto& nodes = graph.nodes();
  const auto regions = state_regions();
  const std::size_t n_states = fn.state_objects.size();

  if (previous.pool_sig.empty() || previous.node_pool.size() != nodes.size() ||
      previous.state_region.size() != n_states) {
    return make_error(ErrorCode::kInternal, "repair: previous mapping does not match this dataflow graph");
  }
  obs::metrics().counter("ilp/repairs").inc();

  // Re-associate the previous mapping's pool indices with this (faulted)
  // profile's pools by signature; a pool whose every member went offline
  // has no match and displaces its nodes.
  std::vector<int> old_to_new(previous.pool_sig.size(), -1);
  for (std::size_t op = 0; op < previous.pool_sig.size(); ++op) {
    const auto& sig = previous.pool_sig[op];
    for (std::size_t p = 0; p < pools_.size(); ++p) {
      if (pools_[p].kind == sig.kind && pools_[p].pipeline_stage == sig.pipeline_stage &&
          pools_[p].match_action == sig.match_action) {
        old_to_new[op] = static_cast<int>(p);
        break;
      }
    }
  }

  // Displacement, phase 1: a node survives when its pool still exists
  // and remains feasible for it. pinned_pool[i] >= 0 ⇔ pinned.
  std::vector<int> pinned_pool(nodes.size(), -1);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::uint32_t op = previous.node_pool[i];
    if (op >= old_to_new.size()) {
      return make_error(ErrorCode::kInternal, "repair: previous mapping references an unknown pool");
    }
    const int np = old_to_new[op];
    if (np >= 0 && pool_feasible(nodes[i], pools_[np])) pinned_pool[i] = np;
  }

  // Displacement, phase 2: a derated pool may no longer carry its pinned
  // demand under Θ — free every node of an over-committed pool and let
  // the solve spread them.
  const double clock = profile_->params.scalar(lnic::keys::kClockHz);
  const double budget_per_unit = clock / options.pps;
  for (std::size_t p = 0; p < pools_.size(); ++p) {
    double demand = 0.0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (pinned_pool[i] != static_cast<int>(p)) continue;
      demand += nodes[i].weight * node_queueable_cost_on_pool(nodes[i], pools_[p], fn, hints);
    }
    if (demand > budget_per_unit * pools_[p].parallelism + 1e-9) {
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (pinned_pool[i] == static_cast<int>(p)) pinned_pool[i] = -1;
      }
    }
  }

  // States survive when their region is still online (region ids are
  // stable across faults, so membership in state_regions() decides).
  std::vector<int> pinned_region(n_states, -1);  // index into `regions`
  for (std::size_t s = 0; s < n_states; ++s) {
    for (std::size_t r = 0; r < regions.size(); ++r) {
      if (regions[r] == previous.state_region[s]) {
        pinned_region[s] = static_cast<int>(r);
        break;
      }
    }
  }

  std::vector<std::size_t> free_nodes, free_states;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (pinned_pool[i] < 0) free_nodes.push_back(i);
  for (std::size_t s = 0; s < n_states; ++s)
    if (pinned_region[s] < 0) free_states.push_back(s);
  const std::size_t displaced = free_nodes.size();
  obs::metrics().gauge("mapping/repair_displaced_nodes").set(static_cast<double>(displaced));

  // Final objective is evaluated directly from the assembled assignment
  // (identical to what the full model's objective expresses); the
  // reduced model only needs the *variable* terms, so pinned-constant
  // bookkeeping never leaks into the result.
  auto finalize = [&](Mapping m) {
    double objective = 0.0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto& pool = pools_[m.node_pool[i]];
      objective += nodes[i].weight * node_cost_on_pool(nodes[i], pool, fn, hints);
      for (std::size_t s = 0; s < n_states; ++s) {
        if (m.state_region[s] == kInvalidNode) continue;
        const double accesses = node_state_accesses(nodes[i], pool.kind, static_cast<std::uint32_t>(s), fn);
        if (accesses > 0.0) objective += nodes[i].weight * accesses * access_cycles(pool, m.state_region[s]);
      }
    }
    m.objective = objective;
    m.pool_sig = pool_signatures(pools_);
    m.repaired = true;
    m.repair_displaced = displaced;
    obs::metrics().gauge("mapping/objective_cycles").set(m.objective);
    return m;
  };

  // Pinning can over-constrain (e.g. the only region a displaced state
  // fits is crowded by pinned states): fall back to a cold full solve,
  // still flagged repaired so callers know the fault path ran.
  auto full_resolve = [&]() -> Result<Mapping> {
    auto full = map(graph, hints, options);
    if (!full.ok()) return full.error();
    return finalize(std::move(full.value()));
  };

  if (free_nodes.empty() && free_states.empty()) {
    // The fault missed every assignment: re-index onto the faulted
    // profile's pools and refresh the objective (pool composition may
    // have changed NUMA averages).
    Mapping m = previous;
    for (std::size_t i = 0; i < nodes.size(); ++i) m.node_pool[i] = static_cast<std::uint32_t>(pinned_pool[i]);
    return finalize(std::move(m));
  }

  // Reduced model: variables only for displaced nodes/states; pinned
  // assignments enter as objective coefficients and RHS reductions.
  ilp::Model model;

  std::vector<std::vector<int>> x(nodes.size(), std::vector<int>(pools_.size(), -1));
  for (const std::size_t i : free_nodes) {
    ilp::LinExpr assign;
    bool any = false;
    for (std::size_t p = 0; p < pools_.size(); ++p) {
      if (!pool_feasible(nodes[i], pools_[p])) continue;
      // A pool that cannot reach a pinned state this node accesses is a
      // hard exclusion (the full model forbids the pairing too).
      bool reachable = true;
      for (std::size_t s = 0; s < n_states && reachable; ++s) {
        if (pinned_region[s] < 0) continue;
        const double accesses = node_state_accesses(nodes[i], pools_[p].kind, static_cast<std::uint32_t>(s), fn);
        if (accesses > 0.0 && access_cycles(pools_[p], regions[pinned_region[s]]) >= 1e11) reachable = false;
      }
      if (!reachable) continue;
      x[i][p] = model.add_binary(strf("rx_%zu_%zu", i, p));
      assign.add(x[i][p], 1.0);
      any = true;
    }
    if (!any) return full_resolve();
    model.add_constraint(std::move(assign), ilp::Sense::kEq, 1.0, strf("rassign_node_%zu", i));
  }

  std::vector<std::vector<int>> y(n_states, std::vector<int>(regions.size(), -1));
  for (const std::size_t s : free_states) {
    ilp::LinExpr assign;
    bool any = false;
    for (std::size_t r = 0; r < regions.size(); ++r) {
      const auto* mem = profile_->graph.node(regions[r]).memory();
      double usable = static_cast<double>(mem->capacity);
      if (mem->kind == lnic::MemKind::kCtm) usable *= options.ctm_state_fraction;
      if (static_cast<double>(fn.state_objects[s].total_bytes()) > usable) continue;
      // A region some pinned accessor cannot reach is excluded outright.
      bool reachable = true;
      for (std::size_t i = 0; i < nodes.size() && reachable; ++i) {
        if (pinned_pool[i] < 0) continue;
        const auto& pool = pools_[pinned_pool[i]];
        const double accesses = node_state_accesses(nodes[i], pool.kind, static_cast<std::uint32_t>(s), fn);
        if (accesses > 0.0 && access_cycles(pool, regions[r]) >= 1e11) reachable = false;
      }
      if (!reachable) continue;
      y[s][r] = model.add_binary(strf("ry_%zu_%zu", s, r));
      assign.add(y[s][r], 1.0);
      any = true;
    }
    if (!any) return full_resolve();
    model.add_constraint(std::move(assign), ilp::Sense::kEq, 1.0, strf("rassign_state_%zu", s));
  }

  // Γ capacity with pinned bytes folded into the RHS.
  for (std::size_t r = 0; r < regions.size(); ++r) {
    const auto* mem = profile_->graph.node(regions[r]).memory();
    double usable = static_cast<double>(mem->capacity);
    if (mem->kind == lnic::MemKind::kCtm) usable *= options.ctm_state_fraction;
    for (std::size_t s = 0; s < n_states; ++s) {
      if (pinned_region[s] == static_cast<int>(r))
        usable -= static_cast<double>(fn.state_objects[s].total_bytes());
    }
    ilp::LinExpr used;
    bool any = false;
    for (const std::size_t s : free_states) {
      if (y[s][r] < 0) continue;
      used.add(y[s][r], static_cast<double>(fn.state_objects[s].total_bytes()));
      any = true;
    }
    if (any) model.add_constraint(std::move(used), ilp::Sense::kLe, usable, strf("rcapacity_%zu", r));
  }

  // Π pipeline order; edges with a pinned endpoint become stage bounds.
  for (const auto& edge : graph.edges()) {
    const bool from_free = pinned_pool[edge.from] < 0;
    const bool to_free = pinned_pool[edge.to] < 0;
    if (!from_free && !to_free) continue;  // held before the fault, both unchanged
    ilp::LinExpr diff;
    double rhs = 0.0;
    bool nontrivial = false;
    for (std::size_t p = 0; p < pools_.size(); ++p) {
      const double stage = pools_[p].pipeline_stage;
      if (from_free && x[edge.from][p] >= 0) diff.add(x[edge.from][p], stage);
      if (to_free && x[edge.to][p] >= 0) diff.add(x[edge.to][p], -stage);
      if (stage != 0.0) nontrivial = true;
    }
    if (!from_free) rhs += static_cast<double>(pools_[pinned_pool[edge.from]].pipeline_stage) * -1.0;
    if (!to_free) rhs += static_cast<double>(pools_[pinned_pool[edge.to]].pipeline_stage);
    if (nontrivial) {
      model.add_constraint(std::move(diff), ilp::Sense::kLe, rhs, strf("rorder_%u_%u", edge.from, edge.to));
    }
  }

  // Objective over free variables. Displaced-node compute costs plus
  // their access terms against *pinned* states ride on x directly.
  ilp::LinExpr objective;
  for (const std::size_t i : free_nodes) {
    for (std::size_t p = 0; p < pools_.size(); ++p) {
      if (x[i][p] < 0) continue;
      double coeff = nodes[i].weight * node_cost_on_pool(nodes[i], pools_[p], fn, hints);
      for (std::size_t s = 0; s < n_states; ++s) {
        if (pinned_region[s] < 0) continue;
        const double accesses = node_state_accesses(nodes[i], pools_[p].kind, static_cast<std::uint32_t>(s), fn);
        if (accesses > 0.0) {
          coeff += nodes[i].weight * accesses * access_cycles(pools_[p], regions[pinned_region[s]]);
        }
      }
      objective.add(x[i][p], coeff);
    }
  }

  // Pinned-node access terms against displaced states ride on y.
  for (const std::size_t s : free_states) {
    for (std::size_t r = 0; r < regions.size(); ++r) {
      if (y[s][r] < 0) continue;
      double coeff = 0.0;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (pinned_pool[i] < 0) continue;
        const auto& pool = pools_[pinned_pool[i]];
        const double accesses = node_state_accesses(nodes[i], pool.kind, static_cast<std::uint32_t>(s), fn);
        if (accesses > 0.0) coeff += nodes[i].weight * accesses * access_cycles(pool, regions[r]);
      }
      if (coeff != 0.0) objective.add(y[s][r], coeff);
    }
  }

  // Displaced × displaced: the full w-linearization, restricted.
  for (const std::size_t i : free_nodes) {
    for (const std::size_t s : free_states) {
      std::map<lnic::UnitKind, std::vector<std::size_t>> by_kind;
      for (std::size_t p = 0; p < pools_.size(); ++p) {
        if (x[i][p] >= 0) by_kind[pools_[p].kind].push_back(p);
      }
      for (const auto& [kind, pool_idxs] : by_kind) {
        const double accesses = node_state_accesses(nodes[i], kind, static_cast<std::uint32_t>(s), fn);
        if (accesses <= 0.0) continue;
        for (std::size_t r = 0; r < regions.size(); ++r) {
          if (y[s][r] < 0) continue;
          const double lat = access_cycles(pools_[pool_idxs.front()], regions[r]);
          if (lat >= 1e11) {
            for (const std::size_t p : pool_idxs) {
              ilp::LinExpr forbid;
              forbid.add(x[i][p], 1.0).add(y[s][r], 1.0);
              model.add_constraint(std::move(forbid), ilp::Sense::kLe, 1.0);
            }
            continue;
          }
          const int w =
              model.add_continuous(strf("rw_%zu_%zu_%d_%zu", i, s, static_cast<int>(kind), r), 0.0, 1.0);
          ilp::LinExpr link;
          for (const std::size_t p : pool_idxs) link.add(x[i][p], 1.0);
          link.add(y[s][r], 1.0).add(w, -1.0);
          model.add_constraint(std::move(link), ilp::Sense::kLe, 1.0);
          objective.add(w, nodes[i].weight * accesses * lat);
        }
      }
    }
  }

  // Θ with the pinned demand folded into the RHS.
  for (std::size_t p = 0; p < pools_.size(); ++p) {
    double pinned_demand = 0.0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (pinned_pool[i] != static_cast<int>(p)) continue;
      pinned_demand += nodes[i].weight * node_queueable_cost_on_pool(nodes[i], pools_[p], fn, hints);
    }
    ilp::LinExpr demand;
    bool any = false;
    for (const std::size_t i : free_nodes) {
      if (x[i][p] < 0) continue;
      demand.add(x[i][p], nodes[i].weight * node_queueable_cost_on_pool(nodes[i], pools_[p], fn, hints));
      any = true;
    }
    if (any) {
      model.add_constraint(std::move(demand), ilp::Sense::kLe,
                           budget_per_unit * pools_[p].parallelism - pinned_demand, strf("rtheta_%zu", p));
    }
  }

  model.set_objective(std::move(objective));

  const ilp::SolveOptions solve_options = options.to_solve_options();
  obs::metrics().gauge("mapping/repair_variables").set(static_cast<double>(model.num_vars()));
  const auto solution = ilp::solve_milp(model, solve_options);
  if (solution.status == ilp::SolveStatus::kInfeasible) return full_resolve();
  if (solution.status == ilp::SolveStatus::kLimit) {
    if (solution.degraded) {
      auto fallback = map_greedy(graph, hints, options);
      if (!fallback.ok()) return fallback.error();
      fallback.value().degraded = true;
      return finalize(std::move(fallback.value()));
    }
    return make_error(ErrorCode::kDeadline, "repair: ILP node budget exhausted without an integer solution");
  }
  if (solution.status == ilp::SolveStatus::kUnbounded) {
    return make_error(ErrorCode::kInternal, "repair ILP unbounded (model bug)");
  }

  Mapping mapping;
  mapping.status = solution.status;
  mapping.ilp_nodes_explored = solution.nodes_explored;
  mapping.ilp_pivots = solution.pivots;
  mapping.ilp_incumbents = solution.incumbents;
  mapping.degraded = solution.degraded;
  mapping.ilp_basis = solution.basis;
  mapping.node_pool.assign(nodes.size(), 0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (pinned_pool[i] >= 0) {
      mapping.node_pool[i] = static_cast<std::uint32_t>(pinned_pool[i]);
      continue;
    }
    for (std::size_t p = 0; p < pools_.size(); ++p) {
      if (x[i][p] >= 0 && solution.value(x[i][p]) > 0.5) mapping.node_pool[i] = static_cast<std::uint32_t>(p);
    }
  }
  mapping.state_region.assign(n_states, kInvalidNode);
  for (std::size_t s = 0; s < n_states; ++s) {
    if (pinned_region[s] >= 0) {
      mapping.state_region[s] = regions[pinned_region[s]];
      continue;
    }
    for (std::size_t r = 0; r < regions.size(); ++r) {
      if (y[s][r] >= 0 && solution.value(y[s][r]) > 0.5) mapping.state_region[s] = regions[r];
    }
  }
  return finalize(std::move(mapping));
}

std::string describe_mapping(const Mapping& mapping, const DataflowGraph& graph, const Mapper& mapper,
                             const cir::Function& fn) {
  std::string out;
  out += strf("Porting plan for '%s' on %s (%s mapper, est. %.0f cycles/pkt service)\n", fn.name.c_str(),
              mapper.profile().name.c_str(), mapping.greedy ? "greedy" : "ILP", mapping.objective);
  if (mapping.degraded) {
    out += "  NOTE: solver time budget expired — this plan is the best found, not a certified optimum\n";
  }
  if (mapping.repaired) {
    out += strf(
        "  NOTE: mapping repaired incrementally after resource loss — %zu node%s re-solved, "
        "unaffected assignments pinned\n",
        mapping.repair_displaced, mapping.repair_displaced == 1 ? "" : "s");
  }
  out += "  compute bindings:\n";
  for (std::size_t i = 0; i < graph.nodes().size(); ++i) {
    const auto& node = graph.nodes()[i];
    const auto& pool = mapper.pools()[mapping.node_pool[i]];
    out += strf("    %-28s -> %-16s (weight %.3f)\n", node.label.c_str(), pool.name.c_str(), node.weight);
  }
  if (!fn.state_objects.empty()) {
    out += "  state placement:\n";
    for (std::size_t s = 0; s < fn.state_objects.size(); ++s) {
      const auto& obj = fn.state_objects[s];
      const auto& region = mapper.profile().graph.node(mapping.state_region[s]);
      out += strf("    %-28s -> %-16s (%s)\n", obj.name.c_str(), region.name.c_str(),
                  format_bytes(obj.total_bytes()).c_str());
    }
  }
  // Hand-tuning hints mirroring the paper's examples.
  for (std::size_t i = 0; i < graph.nodes().size(); ++i) {
    const auto& node = graph.nodes()[i];
    const auto& pool = mapper.pools()[mapping.node_pool[i]];
    for (const auto& site : node.vcalls) {
      if (site.v == cir::VCall::kLpmLookup && pool.kind == lnic::UnitKind::kLpmEngine) {
        out += "  hint: route LPM through the match-action engine and enable the flow cache\n";
      }
      if (site.v == cir::VCall::kCsum && pool.kind == lnic::UnitKind::kChecksumAccel) {
        out += "  hint: use the ingress checksum unit instead of NPU software checksum\n";
      }
      if (site.v == cir::VCall::kCsum && pool.kind == lnic::UnitKind::kNpuCore) {
        out += "  hint: checksum runs in NPU software here; consider restructuring to reach the accelerator\n";
      }
    }
  }
  return out;
}

}  // namespace clara::mapping
