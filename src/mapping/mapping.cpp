#include "mapping/mapping.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <tuple>

#include "common/strings.hpp"
#include "ilp/solver.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "passes/costmodel.hpp"

namespace clara::mapping {

using passes::CostHints;
using passes::DataflowGraph;
using passes::DfNode;

std::vector<UnitPool> build_pools(const lnic::Graph& graph) {
  std::map<std::tuple<int, int, bool>, UnitPool> grouped;  // (kind, stage, match-action) -> pool
  for (const NodeId id : graph.compute_units()) {
    const auto* cu = graph.node(id).compute();
    const auto key = std::make_tuple(static_cast<int>(cu->kind), cu->pipeline_stage, cu->match_action);
    auto& pool = grouped[key];
    if (pool.members.empty()) {
      pool.kind = cu->kind;
      pool.pipeline_stage = cu->pipeline_stage;
      pool.match_action = cu->match_action;
      pool.representative = id;
      pool.parallelism = 0.0;
      pool.name = lnic::to_string(cu->kind);
      if (cu->pipeline_stage != 0) pool.name += strf("@%d", cu->pipeline_stage);
    }
    pool.members.push_back(id);
    pool.parallelism += std::max(1, cu->threads);
  }
  std::vector<UnitPool> pools;
  pools.reserve(grouped.size());
  for (auto& [key, pool] : grouped) pools.push_back(std::move(pool));
  return pools;
}

Mapper::Mapper(const lnic::NicProfile& profile) : profile_(&profile), pools_(build_pools(profile.graph)) {}

bool Mapper::pool_feasible(const DfNode& node, const UnitPool& pool) const {
  for (const auto& site : node.vcalls) {
    if (!passes::unit_supports_vcall(pool.kind, pool.match_action, site.v)) return false;
  }
  return passes::unit_supports_general_compute(pool.kind, pool.match_action, node.mix);
}

double Mapper::access_cycles(const UnitPool& pool, NodeId region) const {
  // Average NUMA weight over pool members that can reach the region; a
  // pool where no member reaches it gets an effectively-infinite cost
  // (the ILP forbids the pairing with a hard constraint as well).
  double total = 0.0;
  int reachable = 0;
  for (const NodeId member : pool.members) {
    if (const auto w = profile_->graph.access_weight(member, region)) {
      total += *w;
      ++reachable;
    }
  }
  if (reachable == 0) return 1e12;
  const double avg_weight = total / reachable;
  const auto* mem = profile_->graph.node(region).memory();
  const char* key = nullptr;
  switch (mem->kind) {
    case lnic::MemKind::kLocal: key = lnic::keys::kMemReadLocal; break;
    case lnic::MemKind::kCtm: key = lnic::keys::kMemReadCtm; break;
    case lnic::MemKind::kImem: key = lnic::keys::kMemReadImem; break;
    case lnic::MemKind::kEmem: key = lnic::keys::kMemReadEmem; break;
  }
  return profile_->params.scalar(key) * avg_weight;
}

double Mapper::node_cost_on_pool(const DfNode& node, const UnitPool& pool, const cir::Function& fn,
                                 const CostHints& hints) const {
  const auto& params = profile_->params;
  double cycles = passes::mix_compute_cycles(node.mix, pool.kind, params);

  // Packet-byte accesses from explicit loads/stores in the mix.
  const double pkt_len = hints.avg_payload + 54.0;
  cycles += static_cast<double>(node.mix.packet_loads + node.mix.packet_stores) *
            passes::packet_access_cycles(pkt_len, -1.0, params);

  for (const auto& site : node.vcalls) {
    const double arg = site.arg_hint > 0.0 ? site.arg_hint : hints.avg_payload;
    const cir::StateObject* state = site.state != ~0u ? &fn.state_objects[site.state] : nullptr;
    cycles += passes::vcall_compute_cycles(site.v, pool.kind, arg, state, params, hints, site.use_flow_cache);
    // Payload scans stream packet bytes in cache-line chunks.
    if (site.v == cir::VCall::kPayloadScan) {
      cycles += std::ceil(arg / 64.0) * passes::packet_access_cycles(arg + 54.0, -1.0, params);
    }
  }
  return cycles;
}

double Mapper::node_queueable_cost_on_pool(const DfNode& node, const UnitPool& pool, const cir::Function& fn,
                                           const CostHints& hints) const {
  double cycles = node_cost_on_pool(node, pool, fn, hints);
  if (pool.kind == lnic::UnitKind::kLpmEngine) {
    const double front_end = profile_->params.scalar(lnic::keys::kFlowCacheHit);
    for (const auto& site : node.vcalls) {
      if (site.v != cir::VCall::kLpmLookup) continue;
      const cir::StateObject* state = site.state != ~0u ? &fn.state_objects[site.state] : nullptr;
      cycles -= passes::vcall_compute_cycles(site.v, pool.kind, 0.0, state, profile_->params, hints,
                                             site.use_flow_cache);
      cycles += front_end;
    }
  }
  return std::max(0.0, cycles);
}

double Mapper::node_state_accesses(const DfNode& node, lnic::UnitKind kind, std::uint32_t state,
                                   const cir::Function& fn) {
  double accesses = 0.0;
  const auto rit = node.mix.state_reads.find(state);
  if (rit != node.mix.state_reads.end()) accesses += static_cast<double>(rit->second);
  const auto wit = node.mix.state_writes.find(state);
  if (wit != node.mix.state_writes.end()) accesses += static_cast<double>(wit->second);
  for (const auto& site : node.vcalls) {
    if (site.state != state) continue;
    const cir::StateObject* obj = &fn.state_objects[state];
    accesses += passes::vcall_state_accesses(site.v, kind, obj);
  }
  return accesses;
}

std::vector<NodeId> Mapper::state_regions() const {
  std::vector<NodeId> out;
  for (const NodeId id : profile_->graph.memory_regions()) {
    const auto* mem = profile_->graph.node(id).memory();
    if (mem->kind == lnic::MemKind::kLocal) continue;  // per-core, not shareable state
    out.push_back(id);
  }
  return out;
}

Result<Mapping> Mapper::map(const DataflowGraph& graph, const CostHints& hints, const MapOptions& options) const {
  CLARA_TRACE_SCOPE("mapping/map");
  const cir::Function& fn = *graph.function();
  const auto& nodes = graph.nodes();
  const auto regions = state_regions();
  const std::size_t n_states = fn.state_objects.size();

  ilp::Model model;

  // x[i][p]: node i on pool p (only feasible pairs get variables).
  std::vector<std::vector<int>> x(nodes.size(), std::vector<int>(pools_.size(), -1));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    ilp::LinExpr assign;
    bool any = false;
    for (std::size_t p = 0; p < pools_.size(); ++p) {
      if (!pool_feasible(nodes[i], pools_[p])) continue;
      x[i][p] = model.add_binary(strf("x_%zu_%zu", i, p));
      assign.add(x[i][p], 1.0);
      any = true;
    }
    if (!any) {
      return make_error(strf("node '%s' cannot be placed on any compute unit of %s", nodes[i].label.c_str(),
                             profile_->name.c_str()));
    }
    model.add_constraint(std::move(assign), ilp::Sense::kEq, 1.0, strf("assign_node_%zu", i));
  }

  // y[s][r]: state s in region r.
  std::vector<std::vector<int>> y(n_states, std::vector<int>(regions.size(), -1));
  for (std::size_t s = 0; s < n_states; ++s) {
    ilp::LinExpr assign;
    bool any = false;
    for (std::size_t r = 0; r < regions.size(); ++r) {
      const auto* mem = profile_->graph.node(regions[r]).memory();
      double usable = static_cast<double>(mem->capacity);
      if (mem->kind == lnic::MemKind::kCtm) usable *= options.ctm_state_fraction;
      if (static_cast<double>(fn.state_objects[s].total_bytes()) > usable) continue;  // never fits alone
      y[s][r] = model.add_binary(strf("y_%zu_%zu", s, r));
      assign.add(y[s][r], 1.0);
      any = true;
    }
    if (!any) {
      return make_error(strf("state object '%s' (%s) fits no memory region of %s",
                             fn.state_objects[s].name.c_str(),
                             format_bytes(fn.state_objects[s].total_bytes()).c_str(), profile_->name.c_str()));
    }
    model.add_constraint(std::move(assign), ilp::Sense::kEq, 1.0, strf("assign_state_%zu", s));
  }

  // Γ capacity: states sharing a region must fit together.
  for (std::size_t r = 0; r < regions.size(); ++r) {
    const auto* mem = profile_->graph.node(regions[r]).memory();
    double usable = static_cast<double>(mem->capacity);
    if (mem->kind == lnic::MemKind::kCtm) usable *= options.ctm_state_fraction;
    ilp::LinExpr used;
    bool any = false;
    for (std::size_t s = 0; s < n_states; ++s) {
      if (y[s][r] < 0) continue;
      used.add(y[s][r], static_cast<double>(fn.state_objects[s].total_bytes()));
      any = true;
    }
    if (any) model.add_constraint(std::move(used), ilp::Sense::kLe, usable, strf("capacity_%zu", r));
  }

  // Π pipeline order: stage(node k) >= stage(node t) along dataflow edges.
  for (const auto& edge : graph.edges()) {
    ilp::LinExpr diff;
    bool nontrivial = false;
    for (std::size_t p = 0; p < pools_.size(); ++p) {
      const double stage = pools_[p].pipeline_stage;
      if (x[edge.from][p] >= 0) diff.add(x[edge.from][p], stage);
      if (x[edge.to][p] >= 0) diff.add(x[edge.to][p], -stage);
      if (stage != 0.0) nontrivial = true;
    }
    if (nontrivial) {
      model.add_constraint(std::move(diff), ilp::Sense::kLe, 0.0, strf("order_%u_%u", edge.from, edge.to));
    }
  }

  // Objective: compute costs + linearized state-access costs.
  ilp::LinExpr objective;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t p = 0; p < pools_.size(); ++p) {
      if (x[i][p] < 0) continue;
      objective.add(x[i][p], nodes[i].weight * node_cost_on_pool(nodes[i], pools_[p], fn, hints));
    }
  }

  // State-access terms: w >= x_sum_by_kind + y - 1 with w continuous; the
  // positive objective coefficient pins w to the product at optimum.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t s = 0; s < n_states; ++s) {
      // Group feasible pools by kind: the access count depends on the
      // unit kind, not the specific pool.
      std::map<lnic::UnitKind, std::vector<std::size_t>> by_kind;
      for (std::size_t p = 0; p < pools_.size(); ++p) {
        if (x[i][p] >= 0) by_kind[pools_[p].kind].push_back(p);
      }
      for (const auto& [kind, pool_idxs] : by_kind) {
        const double accesses = node_state_accesses(nodes[i], kind, static_cast<std::uint32_t>(s), fn);
        if (accesses <= 0.0) continue;
        for (std::size_t r = 0; r < regions.size(); ++r) {
          if (y[s][r] < 0) continue;
          // Representative pool of this kind for latency purposes.
          const double lat = access_cycles(pools_[pool_idxs.front()], regions[r]);
          if (lat >= 1e11) {
            // Unreachable pairing: forbid x (any pool of this kind) with y.
            for (const std::size_t p : pool_idxs) {
              ilp::LinExpr forbid;
              forbid.add(x[i][p], 1.0).add(y[s][r], 1.0);
              model.add_constraint(std::move(forbid), ilp::Sense::kLe, 1.0);
            }
            continue;
          }
          const int w = model.add_continuous(strf("w_%zu_%zu_%d_%zu", i, s, static_cast<int>(kind), r), 0.0, 1.0);
          ilp::LinExpr link;  // w >= Σ x + y - 1  ⇔  Σ x + y - w <= 1
          for (const std::size_t p : pool_idxs) link.add(x[i][p], 1.0);
          link.add(y[s][r], 1.0).add(w, -1.0);
          model.add_constraint(std::move(link), ilp::Sense::kLe, 1.0);
          objective.add(w, nodes[i].weight * accesses * lat);
        }
      }
    }
  }

  // Θ service capacity: per-packet demand on a pool must not exceed its
  // parallelism budget at the offered rate.
  const double clock = profile_->params.scalar(lnic::keys::kClockHz);
  const double budget_per_unit = clock / options.pps;
  for (std::size_t p = 0; p < pools_.size(); ++p) {
    ilp::LinExpr demand;
    bool any = false;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (x[i][p] < 0) continue;
      demand.add(x[i][p], nodes[i].weight * node_queueable_cost_on_pool(nodes[i], pools_[p], fn, hints));
      any = true;
    }
    if (any) {
      model.add_constraint(std::move(demand), ilp::Sense::kLe, budget_per_unit * pools_[p].parallelism,
                           strf("theta_%zu", p));
    }
  }

  model.set_objective(std::move(objective));

  ilp::SolveOptions solve_options;
  solve_options.max_nodes = options.max_ilp_nodes;
  solve_options.warm_basis = options.warm_basis;
  if (options.time_budget_ms > 0.0) {
    solve_options.deadline = std::chrono::steady_clock::now() +
                             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double, std::milli>(options.time_budget_ms));
  }
  obs::metrics().gauge("mapping/ilp_variables").set(static_cast<double>(model.num_vars()));
  obs::metrics().gauge("mapping/ilp_constraints").set(static_cast<double>(model.constraints().size()));
  const auto solution = ilp::solve_milp(model, solve_options);
  if (solution.status == ilp::SolveStatus::kInfeasible) {
    return make_error(ErrorCode::kInfeasible,
                      strf("mapping infeasible on %s at %.0f pps (capacity or ordering constraints)",
                           profile_->name.c_str(), options.pps));
  }
  if (solution.status == ilp::SolveStatus::kLimit) {
    if (solution.degraded) {
      // Deadline expired before any integer solution existed: degrade to
      // the deterministic greedy baseline instead of failing — graceful
      // degradation is the contract of time_budget_ms.
      auto fallback = map_greedy(graph, hints, options);
      if (!fallback) return fallback.error();
      fallback.value().degraded = true;
      return fallback;
    }
    return make_error(ErrorCode::kDeadline, "ILP node budget exhausted without an integer solution");
  }
  if (solution.status == ilp::SolveStatus::kUnbounded) {
    return make_error(ErrorCode::kInternal, "mapping ILP unbounded (model bug)");
  }

  Mapping mapping;
  mapping.status = solution.status;
  mapping.ilp_nodes_explored = solution.nodes_explored;
  mapping.ilp_pivots = solution.pivots;
  mapping.ilp_incumbents = solution.incumbents;
  mapping.degraded = solution.degraded;
  mapping.ilp_basis = solution.basis;
  mapping.objective = solution.objective;
  obs::metrics().gauge("mapping/objective_cycles").set(solution.objective);
  mapping.node_pool.assign(nodes.size(), 0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t p = 0; p < pools_.size(); ++p) {
      if (x[i][p] >= 0 && solution.value(x[i][p]) > 0.5) mapping.node_pool[i] = static_cast<std::uint32_t>(p);
    }
  }
  mapping.state_region.assign(n_states, kInvalidNode);
  for (std::size_t s = 0; s < n_states; ++s) {
    for (std::size_t r = 0; r < regions.size(); ++r) {
      if (y[s][r] >= 0 && solution.value(y[s][r]) > 0.5) mapping.state_region[s] = regions[r];
    }
  }
  return mapping;
}

Result<Mapping> Mapper::map_greedy(const DataflowGraph& graph, const CostHints& hints,
                                   const MapOptions& options) const {
  CLARA_TRACE_SCOPE("mapping/greedy");
  const cir::Function& fn = *graph.function();
  const auto& nodes = graph.nodes();
  const auto regions = state_regions();

  Mapping mapping;
  mapping.greedy = true;
  mapping.status = ilp::SolveStatus::kOptimal;
  mapping.node_pool.assign(nodes.size(), 0);
  mapping.state_region.assign(fn.state_objects.size(), kInvalidNode);

  // Nodes: cheapest feasible pool, compute cost only (the greedy mapper
  // does not anticipate state placement — that is its weakness).
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    double best = 1e300;
    int best_pool = -1;
    for (std::size_t p = 0; p < pools_.size(); ++p) {
      if (!pool_feasible(nodes[i], pools_[p])) continue;
      const double cost = node_cost_on_pool(nodes[i], pools_[p], fn, hints);
      if (cost < best) {
        best = cost;
        best_pool = static_cast<int>(p);
      }
    }
    if (best_pool < 0) {
      return make_error(ErrorCode::kInfeasible, strf("greedy: node '%s' cannot be placed on %s",
                                                     nodes[i].label.c_str(), profile_->name.c_str()));
    }
    mapping.node_pool[i] = static_cast<std::uint32_t>(best_pool);
    mapping.objective += nodes[i].weight * best;
  }

  // States: process in declaration order; first region (sorted by access
  // latency from the NPU pool) with space left.
  std::vector<double> remaining(regions.size());
  std::vector<std::size_t> region_order(regions.size());
  const UnitPool* npu_pool = nullptr;
  for (const auto& pool : pools_) {
    if (pool.kind == lnic::UnitKind::kNpuCore) npu_pool = &pool;
  }
  for (std::size_t r = 0; r < regions.size(); ++r) {
    const auto* mem = profile_->graph.node(regions[r]).memory();
    remaining[r] = static_cast<double>(mem->capacity);
    if (mem->kind == lnic::MemKind::kCtm) remaining[r] *= options.ctm_state_fraction;
    region_order[r] = r;
  }
  std::sort(region_order.begin(), region_order.end(), [&](std::size_t a, std::size_t b) {
    const double la = npu_pool != nullptr ? access_cycles(*npu_pool, regions[a]) : 0.0;
    const double lb = npu_pool != nullptr ? access_cycles(*npu_pool, regions[b]) : 0.0;
    return la < lb;
  });

  for (std::size_t s = 0; s < fn.state_objects.size(); ++s) {
    const double need = static_cast<double>(fn.state_objects[s].total_bytes());
    bool placed = false;
    for (const std::size_t r : region_order) {
      if (remaining[r] < need) continue;
      remaining[r] -= need;
      mapping.state_region[s] = regions[r];
      placed = true;
      break;
    }
    if (!placed) {
      return make_error(ErrorCode::kInfeasible,
                        strf("greedy: state '%s' fits no region", fn.state_objects[s].name.c_str()));
    }
    // Account access cost against the chosen region.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto& pool = pools_[mapping.node_pool[i]];
      const double accesses = node_state_accesses(nodes[i], pool.kind, static_cast<std::uint32_t>(s), fn);
      if (accesses > 0.0) {
        mapping.objective += nodes[i].weight * accesses * access_cycles(pool, mapping.state_region[s]);
      }
    }
  }
  return mapping;
}

std::string describe_mapping(const Mapping& mapping, const DataflowGraph& graph, const Mapper& mapper,
                             const cir::Function& fn) {
  std::string out;
  out += strf("Porting plan for '%s' on %s (%s mapper, est. %.0f cycles/pkt service)\n", fn.name.c_str(),
              mapper.profile().name.c_str(), mapping.greedy ? "greedy" : "ILP", mapping.objective);
  if (mapping.degraded) {
    out += "  NOTE: solver time budget expired — this plan is the best found, not a certified optimum\n";
  }
  out += "  compute bindings:\n";
  for (std::size_t i = 0; i < graph.nodes().size(); ++i) {
    const auto& node = graph.nodes()[i];
    const auto& pool = mapper.pools()[mapping.node_pool[i]];
    out += strf("    %-28s -> %-16s (weight %.3f)\n", node.label.c_str(), pool.name.c_str(), node.weight);
  }
  if (!fn.state_objects.empty()) {
    out += "  state placement:\n";
    for (std::size_t s = 0; s < fn.state_objects.size(); ++s) {
      const auto& obj = fn.state_objects[s];
      const auto& region = mapper.profile().graph.node(mapping.state_region[s]);
      out += strf("    %-28s -> %-16s (%s)\n", obj.name.c_str(), region.name.c_str(),
                  format_bytes(obj.total_bytes()).c_str());
    }
  }
  // Hand-tuning hints mirroring the paper's examples.
  for (std::size_t i = 0; i < graph.nodes().size(); ++i) {
    const auto& node = graph.nodes()[i];
    const auto& pool = mapper.pools()[mapping.node_pool[i]];
    for (const auto& site : node.vcalls) {
      if (site.v == cir::VCall::kLpmLookup && pool.kind == lnic::UnitKind::kLpmEngine) {
        out += "  hint: route LPM through the match-action engine and enable the flow cache\n";
      }
      if (site.v == cir::VCall::kCsum && pool.kind == lnic::UnitKind::kChecksumAccel) {
        out += "  hint: use the ingress checksum unit instead of NPU software checksum\n";
      }
      if (site.v == cir::VCall::kCsum && pool.kind == lnic::UnitKind::kNpuCore) {
        out += "  hint: checksum runs in NPU software here; consider restructuring to reach the accelerator\n";
      }
    }
  }
  return out;
}

}  // namespace clara::mapping
