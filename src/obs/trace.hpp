// Span-based wall-clock tracer for the Clara pipeline.
//
// Usage: wrap a phase in an RAII scope —
//
//   void Mapper::map(...) {
//     CLARA_TRACE_SCOPE("mapping/solve");
//     ...
//   }
//
// Scopes nest naturally (per-thread parent stack) and record wall-clock
// spans into the process-wide Tracer. Tracing is off by default: a
// disabled scope is one relaxed atomic load. When enabled, the recorded
// spans export as
//
//   * Chrome trace-event JSON (to_chrome_json) — load the file at
//     chrome://tracing or https://ui.perfetto.dev;
//   * an ASCII flame summary (flame_summary) — per span path: call
//     count, total/self wall time.
//
// Span names follow the "<module>/<phase>" convention used by the
// metrics registry (docs/observability.md).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace clara::obs {

struct TraceSpan {
  static constexpr std::uint32_t kNoParent = ~std::uint32_t{0};

  std::string name;
  std::uint32_t tid = 0;     // dense per-thread id (chrome "tid")
  std::uint32_t parent = kNoParent;  // index into the tracer's span list
  std::uint32_t depth = 0;
  std::int64_t start_ns = 0;  // since the tracer's epoch
  std::int64_t dur_ns = -1;   // -1 while the span is still open
};

class Tracer {
 public:
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Opens a span on the calling thread; returns its index. Pair with
  /// end_span on the same thread (TraceScope does this).
  std::size_t begin_span(std::string name);
  void end_span(std::size_t index);

  [[nodiscard]] std::vector<TraceSpan> snapshot() const;
  [[nodiscard]] std::size_t span_count() const;

  /// Chrome trace-event JSON ("X" complete events, ts/dur in us).
  [[nodiscard]] std::string to_chrome_json() const;
  /// ASCII flame summary: one row per distinct span path, sorted by
  /// total time, at most `max_rows` rows.
  [[nodiscard]] std::string flame_summary(std::size_t max_rows = 24) const;

  /// Drops all recorded spans (open scopes on other threads must not be
  /// live — call between pipeline runs, as the tests do).
  void clear();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
};

/// Process-wide tracer used by the CLARA_TRACE_SCOPE instrumentation.
Tracer& tracer();

class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (tracer().enabled()) {
      index_ = tracer().begin_span(name);
      armed_ = true;
    }
  }
  ~TraceScope() {
    if (armed_) tracer().end_span(index_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  std::size_t index_ = 0;
  bool armed_ = false;
};

/// Escapes a string for embedding in a JSON string literal (shared by
/// the trace and metrics exporters).
std::string json_escape(const std::string& s);

/// One Chrome trace-event record. Shared by the span tracer and the
/// flight recorder so both layers export through the exact same
/// serializer (and the same schema guarantees: ts/dur in non-negative
/// microseconds, pid fixed at 1, dense tids).
struct ChromeEvent {
  std::string name;
  char ph = 'X';             // 'X' complete, 'i' instant
  std::uint32_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;       // 'X' only
  std::string args_json;     // raw body of the args object ("\"k\":1"), may be empty
};

/// Serializes events into the Chrome trace-event JSON envelope
/// ({"traceEvents": [...], "displayTimeUnit": "ms"}). `extra_json`, when
/// non-empty, is spliced into the top-level object verbatim (used by the
/// flight recorder to stamp the dump reason).
std::string chrome_trace_json(const std::vector<ChromeEvent>& events,
                              const std::string& extra_json = {});

#define CLARA_OBS_CONCAT_IMPL(a, b) a##b
#define CLARA_OBS_CONCAT(a, b) CLARA_OBS_CONCAT_IMPL(a, b)
#define CLARA_TRACE_SCOPE(name) \
  ::clara::obs::TraceScope CLARA_OBS_CONCAT(clara_trace_scope_, __LINE__)(name)

}  // namespace clara::obs
