// Flight recorder — always-on, lock-free, per-thread event rings.
//
// Metrics say *how much*, traces say *where time went when tracing was
// switched on*; the flight recorder answers "what just happened" after
// the fact. Every thread that records gets a fixed-size ring buffer of
// timestamped events (task start/stop, steals, queue overflows, solver
// wave barriers, analysis-cache hits/misses, fault fires). Recording is
// a handful of relaxed atomic stores into the calling thread's own ring
// — no locks, no allocation after the first event — so it stays enabled
// in production. The rings keep the most recent kRingCapacity events per
// thread; older ones are overwritten.
//
// The recorder dumps automatically (once per process, to
// $CLARA_FLIGHT_DIR or the working directory) when something goes
// wrong: an analysis fails, a solver deadline expires, or a fault/
// injection site fires. Dumps are Chrome trace-event JSON produced by
// the same exporter as the span tracer (obs/trace), so
// chrome://tracing and ui.perfetto.dev open them directly.
//
// Event schema: docs/observability.md.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace clara::obs {

enum class FlightEventKind : std::uint8_t {
  kTaskStart = 0,      // pool task body begins; a = lane
  kTaskStop = 1,       // pool task body ends; a = lane, b = duration ns
  kSteal = 2,          // successful deque steal; a = thief lane, b = victim
  kQueueOverflow = 3,  // worker deque full, task spilled to injector; a = lane
  kWaveEnter = 4,      // B&B wave relaxations start; a = wave index, b = width
  kWaveExit = 5,       // B&B wave relaxations done; a = wave index, b = wall ns
  kCacheHit = 6,       // analysis-cache hit; a = stage ordinal, b = key digest
  kCacheMiss = 7,      // analysis-cache miss; a = stage ordinal, b = key digest
  kFaultFire = 8,      // fault/ injection site fired; a = site hash, b = key
  kMark = 9,           // free-form caller marker
};

const char* to_string(FlightEventKind kind);

/// One recorded event, as read back by snapshot(). `tid` is the dense
/// recorder-thread id (assigned in ring-registration order), matching
/// the Chrome export's tid field.
struct FlightEvent {
  std::int64_t ts_ns = 0;  // since the recorder's epoch
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint32_t tid = 0;
  FlightEventKind kind = FlightEventKind::kMark;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kRingCapacity = 1 << 12;  // events kept per thread

  FlightRecorder();
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Recording toggle. Enabled by default; a disabled record() is one
  /// relaxed atomic load.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends an event to the calling thread's ring (registering the ring
  /// on first use). Lock-free after registration; overwrites the oldest
  /// event once the ring is full.
  void record(FlightEventKind kind, std::uint64_t a = 0, std::uint64_t b = 0);

  /// Best-effort copy of every ring's surviving events, oldest first.
  /// Events being overwritten concurrently are skipped, never torn.
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

  /// Total events ever recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t total_recorded() const;

  /// Logically drops all recorded events (snapshot/export see only
  /// events recorded afterwards). Rings and thread registrations stay.
  void clear();

  /// Chrome trace-event JSON via the shared obs/trace exporter:
  /// task start/stop pairs become complete ("X") spans named
  /// "flight/task", everything else thread-scoped instant events named
  /// "flight/<kind>".
  [[nodiscard]] std::string to_chrome_json(const std::string& reason = {}) const;

  /// Plain-text dump, one "ts_ns kind tid a b" line per event.
  [[nodiscard]] std::string dump_text() const;

  /// Writes to_chrome_json(reason) to `path`. False on I/O failure.
  bool dump_to_file(const std::string& path, const std::string& reason) const;

  /// Directory for automatic dumps; empty = $CLARA_FLIGHT_DIR, else ".".
  void set_dump_dir(std::string dir);

  /// The failure hook: dumps the rings to
  /// "<dir>/clara_flight_<reason>.json" the *first* time it is called
  /// (later calls are no-ops until reset_auto_dump(), so one failing run
  /// produces one dump, not thousands). Returns the path written, or
  /// empty when throttled/disabled/unwritable.
  std::string auto_dump(const std::string& reason);

  /// Re-arms auto_dump and forgets the last dump path (tests).
  void reset_auto_dump();
  [[nodiscard]] std::string last_dump_path() const;

 private:
  struct Ring;
  Ring* ring_for_this_thread();

  std::atomic<bool> enabled_{true};
  std::atomic<bool> auto_dumped_{false};
  std::atomic<std::int64_t> epoch_ns_{0};  // clear() raises this watermark
  const std::uint64_t instance_id_;

  mutable std::mutex mu_;  // guards rings_/dump bookkeeping, not recording
  std::vector<std::unique_ptr<Ring>> rings_;
  std::string dump_dir_;
  std::string last_dump_path_;
};

/// Process-wide recorder used by the built-in instrumentation. First use
/// also installs the pool event hook (common/parallel) so scheduler
/// events flow in.
FlightRecorder& recorder();

/// Convenience: recorder().record(...) on the process-wide instance.
void record(FlightEventKind kind, std::uint64_t a = 0, std::uint64_t b = 0);

}  // namespace clara::obs
