#include "obs/pool.hpp"

#include "obs/metrics.hpp"

namespace clara::obs {

void publish_pool_stats(const std::string& module, const parallel::PoolStats& before,
                        const parallel::PoolStats& after) {
  auto& registry = metrics();
  const std::string labels = "module=" + module;
  registry.counter("parallel/tasks_run", labels).inc(after.tasks_run - before.tasks_run);
  registry.counter("parallel/tasks_inline", labels).inc(after.tasks_inline - before.tasks_inline);
  registry.counter("parallel/steals", labels).inc(after.steals - before.steals);
  registry.counter("parallel/injected", labels).inc(after.injected - before.injected);
  registry.counter("parallel/worker_busy_ns", labels).inc(after.worker_busy_ns - before.worker_busy_ns);
  registry.gauge("parallel/queue_depth", labels).set(static_cast<double>(after.queue_depth));
  for (std::size_t w = 0; w < after.per_worker_busy_ns.size(); ++w) {
    registry.gauge("parallel/worker_busy_ns", labels + ",worker=" + std::to_string(w))
        .set(static_cast<double>(after.per_worker_busy_ns[w]));
  }
}

}  // namespace clara::obs
