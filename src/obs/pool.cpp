#include "obs/pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace clara::obs {

void publish_pool_stats(const std::string& module, const parallel::PoolStats& before,
                        const parallel::PoolStats& after) {
  auto& registry = metrics();
  const std::string labels = "module=" + module;
  registry.counter("parallel/tasks_run", labels).inc(after.tasks_run - before.tasks_run);
  registry.counter("parallel/tasks_inline", labels).inc(after.tasks_inline - before.tasks_inline);
  registry.counter("parallel/steals", labels).inc(after.steals - before.steals);
  registry.counter("parallel/injected", labels).inc(after.injected - before.injected);
  registry.counter("parallel/worker_busy_ns", labels).inc(after.worker_busy_ns - before.worker_busy_ns);
  registry.gauge("parallel/queue_depth", labels).set(static_cast<double>(after.queue_depth));
  for (std::size_t w = 0; w < after.per_worker_busy_ns.size(); ++w) {
    registry.gauge("parallel/worker_busy_ns", labels + ",worker=" + std::to_string(w))
        .set(static_cast<double>(after.per_worker_busy_ns[w]));
  }
  // Per-lane attribution deltas (run = task body, sched = acquire/enqueue,
  // idle = naps while out of work); lane "inline" is the calling thread.
  const auto publish_lane = [&](const std::string& lane, const parallel::LaneStats& delta) {
    const std::string lane_labels = labels + ",lane=" + lane;
    registry.counter("parallel/lane_run_ns", lane_labels).inc(delta.run_ns);
    registry.counter("parallel/lane_sched_ns", lane_labels).inc(delta.sched_ns);
    registry.counter("parallel/lane_idle_ns", lane_labels).inc(delta.idle_ns);
  };
  const std::size_t lanes = std::min(before.worker_lanes.size(), after.worker_lanes.size());
  for (std::size_t w = 0; w < after.worker_lanes.size(); ++w) {
    const parallel::LaneStats zero{};
    const parallel::LaneStats& prior = w < lanes ? before.worker_lanes[w] : zero;
    parallel::LaneStats delta = after.worker_lanes[w];
    delta.run_ns -= prior.run_ns;
    delta.sched_ns -= prior.sched_ns;
    delta.idle_ns -= prior.idle_ns;
    publish_lane("worker" + std::to_string(w), delta);
  }
  parallel::LaneStats inline_delta = after.inline_lane;
  inline_delta.run_ns -= before.inline_lane.run_ns;
  inline_delta.sched_ns -= before.inline_lane.sched_ns;
  inline_delta.idle_ns -= before.inline_lane.idle_ns;
  publish_lane("inline", inline_delta);
}

}  // namespace clara::obs
