// Metrics registry — named, labeled instruments for the Clara pipeline.
//
// Three instrument kinds:
//   * Counter — monotonically increasing uint64 (atomic, relaxed);
//   * Gauge   — last-written double (atomic);
//   * LatencyHistogram — power-of-two bucketed distribution plus exact
//     moments via common/stats Accumulator (mutex-protected; observe()
//     is a short critical section).
//
// The registry itself is find-or-create under a mutex; returned
// references stay valid for the registry's lifetime, so hot paths look
// an instrument up once and then touch only the lock-free atomics:
//
//   static auto& pkts = obs::metrics().counter("nicsim/packets");
//   pkts.inc();
//
// Naming convention: "<module>/<noun>[_<unit>]", labels as a single
// "key=value,key=value" string (see docs/observability.md).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace clara::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed histogram: bucket i counts samples in [2^(i-1), 2^i)
/// (bucket 0 holds x < 1). No a-priori bounds needed, which suits
/// cycle-latency series whose range varies per NF by orders of
/// magnitude. Exact mean/min/max come from the embedded Accumulator.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(double x);
  /// Merge another histogram into this one (parallel reduction).
  void merge(const LatencyHistogram& other);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] Accumulator moments() const;
  /// Approximate quantile from the log buckets (geometric bucket
  /// midpoint); q is clamped to [0,1].
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] std::array<std::uint64_t, kBuckets> buckets() const;
  void reset();

 private:
  mutable std::mutex mu_;
  Accumulator acc_;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& labels = {});
  Gauge& gauge(const std::string& name, const std::string& labels = {});
  LatencyHistogram& histogram(const std::string& name, const std::string& labels = {});

  /// "name{labels} value" lines, sorted by name, one instrument per
  /// line; histograms render count/mean/p50/p99/max.
  [[nodiscard]] std::string render_text() const;
  /// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  [[nodiscard]] std::string to_json() const;
  /// Prometheus text exposition format (--metrics-format=prom): names
  /// prefixed "clara_" and sanitized ("ilp/solves" -> clara_ilp_solves),
  /// counters suffixed _total, histograms as cumulative le-buckets at
  /// the log2 bucket bounds plus _sum/_count.
  [[nodiscard]] std::string to_prometheus() const;

  /// Zeroes every instrument's value. References handed out earlier stay
  /// valid (instruments are never destroyed while the registry lives).
  void reset();

 private:
  using Key = std::pair<std::string, std::string>;  // (name, labels)
  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<LatencyHistogram>> histograms_;
};

/// Process-wide registry used by the built-in instrumentation.
MetricsRegistry& metrics();

}  // namespace clara::obs
