#include "obs/benchdiff.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "common/strings.hpp"
#include "common/table.hpp"

namespace clara::obs {

namespace {

constexpr const char* kSchema = "clara-bench-perf/1";
constexpr const char* kAccuracySchema = "clara-bench-accuracy/1";

const char* to_string(BenchDiffRow::Status status) {
  switch (status) {
    case BenchDiffRow::Status::kOk: return "ok";
    case BenchDiffRow::Status::kRegressed: return "REGRESSED";
    case BenchDiffRow::Status::kImproved: return "improved";
    case BenchDiffRow::Status::kSkipped: return "skipped";
  }
  return "?";
}

/// Classifies one metric pair under the gating rules. `gated` false
/// forces kSkipped regardless of the change (noise floor,
/// oversubscription).
BenchDiffRow make_row(std::string scenario, std::string metric, double old_value, double new_value,
                      bool higher_is_better, bool gated, std::string note,
                      const BenchDiffOptions& options) {
  BenchDiffRow row;
  row.scenario = std::move(scenario);
  row.metric = std::move(metric);
  row.old_value = old_value;
  row.new_value = new_value;
  row.higher_is_better = higher_is_better;
  row.note = std::move(note);
  row.change = old_value != 0.0 ? (new_value - old_value) / old_value : 0.0;
  if (!gated) {
    row.status = BenchDiffRow::Status::kSkipped;
    return row;
  }
  const double worse = higher_is_better ? -row.change : row.change;
  if (worse > options.threshold) {
    row.status = BenchDiffRow::Status::kRegressed;
  } else if (worse < -options.threshold) {
    row.status = BenchDiffRow::Status::kImproved;
  } else {
    row.status = BenchDiffRow::Status::kOk;
  }
  return row;
}

/// Classifies an accuracy metric pair under an absolute tolerance band
/// (lower is better; change carries the drift in error points).
BenchDiffRow make_band_row(std::string scenario, std::string metric, double old_value,
                           double new_value, bool gated, double band, std::string note) {
  BenchDiffRow row;
  row.scenario = std::move(scenario);
  row.metric = std::move(metric);
  row.old_value = old_value;
  row.new_value = new_value;
  row.higher_is_better = false;
  row.note = std::move(note);
  row.change = new_value - old_value;
  if (!gated) {
    row.status = BenchDiffRow::Status::kSkipped;
  } else if (row.change > band) {
    row.status = BenchDiffRow::Status::kRegressed;
  } else if (row.change < -band) {
    row.status = BenchDiffRow::Status::kImproved;
  } else {
    row.status = BenchDiffRow::Status::kOk;
  }
  return row;
}

/// Indexes an array of {"name": ...} objects by name.
std::map<std::string, const Json*> index_by_name(const Json* array) {
  std::map<std::string, const Json*> out;
  if (!array || !array->is_array()) return out;
  for (const auto& entry : array->as_array()) {
    const std::string name = entry.string_at("name");
    if (!name.empty()) out[name] = &entry;
  }
  return out;
}

void add_only_in(BenchDiffReport& report, const std::string& scenario, const char* which) {
  BenchDiffRow row;
  row.scenario = scenario;
  row.metric = "-";
  row.status = BenchDiffRow::Status::kSkipped;
  row.note = strf("only in %s run", which);
  report.rows.push_back(std::move(row));
}

void diff_named_section(BenchDiffReport& report, const char* section, const Json& old_run,
                        const Json& new_run, const std::vector<std::string>& lower_is_better,
                        const std::vector<std::string>& higher_is_better,
                        const BenchDiffOptions& options) {
  const auto old_entries = index_by_name(old_run.get(section));
  const auto new_entries = index_by_name(new_run.get(section));
  for (const auto& [name, old_entry] : old_entries) {
    const std::string scenario = std::string(section) + "/" + name;
    const auto it = new_entries.find(name);
    if (it == new_entries.end()) {
      add_only_in(report, scenario, "old");
      continue;
    }
    const Json& new_entry = *it->second;
    const bool oversubscribed =
        old_entry->bool_at("oversubscribed") || new_entry.bool_at("oversubscribed");
    for (const auto& metric : lower_is_better) {
      if (!old_entry->get(metric) && !new_entry.get(metric)) continue;
      const double old_value = old_entry->number_at(metric);
      const double new_value = new_entry.number_at(metric);
      bool gated = true;
      std::string note;
      BenchDiffOptions row_options = options;
      if (metric == "ns_per_iter" && old_value < options.min_micro_ns) {
        gated = false;
        note = strf("below %.0f ns noise floor", options.min_micro_ns);
      } else if (metric == "ns_per_iter" && name == "solver_pivot_ns") {
        // Per-pivot cost averages thousands of deterministic pivots per
        // iteration — low-noise, so it gets the tighter engine gate.
        row_options.threshold = options.pivot_threshold;
        note = strf("pivot micro; gated at %.0f%%", options.pivot_threshold * 100.0);
      }
      report.rows.push_back(
          make_row(scenario, metric, old_value, new_value, false, gated, note, row_options));
    }
    for (const auto& metric : higher_is_better) {
      if (!old_entry->get(metric) && !new_entry.get(metric)) continue;
      const double old_value = old_entry->number_at(metric);
      const double new_value = new_entry.number_at(metric);
      std::string note;
      if (metric == "speedup" && oversubscribed) {
        // Time-sliced threads can't honor the >1.0 contract, but a drop
        // against the recorded baseline on the same (oversubscribed)
        // runner still means the substrate got slower — gate that.
        note = "oversubscribed; >1.0 contract waived, still gated vs baseline";
      }
      auto row =
          make_row(scenario, metric, old_value, new_value, true, true, std::move(note), options);
      if (metric == "speedup" && !oversubscribed && new_value < 1.0 &&
          row.status != BenchDiffRow::Status::kRegressed) {
        // The substrate's contract: parallel must beat serial when real
        // cores are available, whatever the baseline said.
        row.status = BenchDiffRow::Status::kRegressed;
        row.note = "speedup below the 1.0 contract";
      }
      report.rows.push_back(std::move(row));
    }
  }
  for (const auto& [name, entry] : new_entries) {
    (void)entry;
    if (!old_entries.count(name)) add_only_in(report, std::string(section) + "/" + name, "new");
  }
}

}  // namespace

bool BenchDiffReport::has_regression() const { return regressions() > 0; }

std::size_t BenchDiffReport::regressions() const {
  std::size_t n = 0;
  for (const auto& row : rows) {
    if (row.status == BenchDiffRow::Status::kRegressed) ++n;
  }
  return n;
}

std::string BenchDiffReport::render(double threshold) const {
  TextTable table({"scenario", "metric", "old", "new", "change", "status"});
  for (const auto& row : rows) {
    std::string status = to_string(row.status);
    if (!row.note.empty()) status += " (" + row.note + ")";
    table.add_row({row.scenario, row.metric,
                   row.metric == "-" ? "" : strf("%.3f", row.old_value),
                   row.metric == "-" ? "" : strf("%.3f", row.new_value),
                   row.metric == "-" ? "" : strf("%+.1f%%", row.change * 100.0), status});
  }
  std::string out = table.render();
  const std::size_t n = regressions();
  if (n > 0) {
    out += strf("FAIL: %zu metric(s) regressed beyond %.0f%%\n", n, threshold * 100.0);
  } else {
    out += strf("PASS: no regression beyond %.0f%%\n", threshold * 100.0);
  }
  return out;
}

Result<BenchDiffReport, Error> diff_bench_json(const Json& old_run, const Json& new_run,
                                               const BenchDiffOptions& options) {
  for (const auto* run : {&old_run, &new_run}) {
    const std::string schema = run->string_at("schema");
    if (schema != kSchema) {
      return make_error(ErrorCode::kParse,
                        strf("expected schema \"%s\", got \"%s\"", kSchema, schema.c_str()));
    }
  }

  BenchDiffReport report;
  // items_per_sec is derived from ns_per_iter (1e9 / ns), so gating
  // ns_per_iter alone covers micros without double-counting.
  diff_named_section(report, "micro", old_run, new_run, {"ns_per_iter"}, {}, options);
  diff_named_section(report, "parallel", old_run, new_run, {"serial_ms", "parallel_ms"},
                     {"speedup"}, options);

  // "cache" and "repair" are single objects; compare them directly.
  struct ObjectSection {
    const char* section;
    std::vector<std::string> lower;
    std::vector<std::string> higher;
  };
  const std::vector<ObjectSection> sections = {
      {"cache", {"cold_ms", "warm_ms"}, {"cache_warm_speedup"}},
      {"repair", {"cold_remap_ms", "repair_ms"}, {"repair_remap_speedup"}},
      {"serve",
       {"serve_p50_us", "serve_p99_us", "serve_p999_us"},
       {"serve_warm_hit_rate"}},
  };
  for (const auto& spec : sections) {
    const Json* old_entry = old_run.get(spec.section);
    const Json* new_entry = new_run.get(spec.section);
    if (!old_entry || !old_entry->is_object()) {
      if (new_entry && new_entry->is_object()) add_only_in(report, spec.section, "new");
      continue;
    }
    if (!new_entry || !new_entry->is_object()) {
      add_only_in(report, spec.section, "old");
      continue;
    }
    for (const auto& metric : spec.lower) {
      if (!old_entry->get(metric) && !new_entry->get(metric)) continue;
      report.rows.push_back(make_row(spec.section, metric, old_entry->number_at(metric),
                                     new_entry->number_at(metric), false, true, {}, options));
    }
    for (const auto& metric : spec.higher) {
      if (!old_entry->get(metric) && !new_entry->get(metric)) continue;
      report.rows.push_back(make_row(spec.section, metric, old_entry->number_at(metric),
                                     new_entry->number_at(metric), true, true, {}, options));
    }
    if (std::string(spec.section) == "serve") {
      // Absolute-count gates (the relative make_row can't flag a jump
      // off a zero baseline): retries must not grow, and dropped —
      // requests with neither a response nor a typed client error —
      // must stay zero, period.
      if (old_entry->get("serve_retries") || new_entry->get("serve_retries")) {
        report.rows.push_back(make_band_row("serve", "serve_retries",
                                            old_entry->number_at("serve_retries"),
                                            new_entry->number_at("serve_retries"), true, 0.0,
                                            "absolute count; any increase regresses"));
      }
      if (old_entry->get("serve_dropped") || new_entry->get("serve_dropped")) {
        auto row = make_band_row("serve", "serve_dropped",
                                 old_entry->number_at("serve_dropped"),
                                 new_entry->number_at("serve_dropped"), true, 0.0,
                                 "silent drops must stay 0");
        if (new_entry->number_at("serve_dropped") > 0.0) {
          row.status = BenchDiffRow::Status::kRegressed;
        }
        report.rows.push_back(std::move(row));
      }
    }
  }
  return report;
}

Result<BenchDiffReport, Error> diff_accuracy_json(const Json& old_run, const Json& new_run,
                                                  const AccuracyDiffOptions& options) {
  for (const auto* run : {&old_run, &new_run}) {
    const std::string schema = run->string_at("schema");
    if (schema != kAccuracySchema) {
      return make_error(ErrorCode::kParse, strf("expected schema \"%s\", got \"%s\"",
                                                kAccuracySchema, schema.c_str()));
    }
  }

  BenchDiffReport report;
  const auto old_nfs = index_by_name(old_run.get("nfs"));
  const auto new_nfs = index_by_name(new_run.get("nfs"));
  for (const auto& [name, old_entry] : old_nfs) {
    const std::string scenario = "accuracy/" + name;
    const auto it = new_nfs.find(name);
    if (it == new_nfs.end()) {
      add_only_in(report, scenario, "old");
      continue;
    }
    const Json& new_entry = *it->second;
    report.rows.push_back(make_band_row(
        scenario, "mean_rel_err", old_entry->number_at("mean_rel_err"),
        new_entry.number_at("mean_rel_err"), true, options.mean_band,
        strf("band %.1f points", options.mean_band * 100.0)));
    report.rows.push_back(make_band_row(
        scenario, "p95_rel_err", old_entry->number_at("p95_rel_err"),
        new_entry.number_at("p95_rel_err"), true, options.p95_band,
        strf("band %.1f points", options.p95_band * 100.0)));
    // A single worst point is too noisy to gate; visibility only.
    report.rows.push_back(make_band_row(scenario, "max_rel_err",
                                        old_entry->number_at("max_rel_err"),
                                        new_entry.number_at("max_rel_err"), false, 0.0,
                                        "worst point; reported only"));
  }
  for (const auto& [name, entry] : new_nfs) {
    (void)entry;
    if (!old_nfs.count(name)) add_only_in(report, "accuracy/" + name, "new");
  }
  // A validation scenario starting to fail is itself a regression even
  // if the surviving aggregates look fine.
  report.rows.push_back(make_band_row("accuracy", "failures", old_run.number_at("failures"),
                                      new_run.number_at("failures"), true, 0.0,
                                      "failed scenarios"));
  return report;
}

Result<BenchDiffReport, Error> diff_bench_files(const std::string& old_path,
                                                const std::string& new_path,
                                                const BenchDiffOptions& options,
                                                const AccuracyDiffOptions& accuracy_options) {
  const auto load = [](const std::string& path) -> Result<Json, Error> {
    std::ifstream in(path, std::ios::binary);
    if (!in) return make_error(strf("cannot open %s", path.c_str()));
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto parsed = Json::parse(buffer.str());
    if (!parsed) {
      return make_error(ErrorCode::kParse,
                        strf("%s: %s", path.c_str(), parsed.error().message.c_str()));
    }
    return parsed;
  };
  auto old_run = load(old_path);
  if (!old_run) return old_run.error();
  auto new_run = load(new_path);
  if (!new_run) return new_run.error();
  const std::string old_schema = old_run.value().string_at("schema");
  const std::string new_schema = new_run.value().string_at("schema");
  if (old_schema != new_schema) {
    return make_error(ErrorCode::kParse, strf("schema mismatch: %s is \"%s\", %s is \"%s\"",
                                              old_path.c_str(), old_schema.c_str(),
                                              new_path.c_str(), new_schema.c_str()));
  }
  if (old_schema == kAccuracySchema) {
    return diff_accuracy_json(old_run.value(), new_run.value(), accuracy_options);
  }
  return diff_bench_json(old_run.value(), new_run.value(), options);
}

}  // namespace clara::obs
