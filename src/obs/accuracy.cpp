#include "obs/accuracy.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/sweep.hpp"
#include "nf/nf_cir.hpp"
#include "nf/nf_ported.hpp"
#include "nicsim/sim.hpp"
#include "obs/metrics.hpp"

namespace clara::obs {

namespace {

/// Maps a mapped state region to the simulator's memory hierarchy; falls
/// back to EMEM when the mapping has fewer regions than the ported
/// program declares (degraded mappings after faults).
nicsim::MemLevel placement_level(const core::Analyzer& analyzer, const mapping::Mapping& mapping,
                                 std::size_t state_index) {
  if (state_index >= mapping.state_region.size()) return nicsim::MemLevel::kEmem;
  switch (analyzer.profile().graph.node(mapping.state_region[state_index]).memory()->kind) {
    case lnic::MemKind::kLocal: return nicsim::MemLevel::kLocal;
    case lnic::MemKind::kCtm: return nicsim::MemLevel::kCtm;
    case lnic::MemKind::kImem: return nicsim::MemLevel::kImem;
    case lnic::MemKind::kEmem: return nicsim::MemLevel::kEmem;
  }
  return nicsim::MemLevel::kEmem;
}

/// Builds the unported CIR for a scenario. Must stay in sync with
/// make_program below — the pair is the predictor/simulator
/// correspondence the ledger validates.
Result<cir::Function, Error> make_function(const ValidationScenario& s) {
  if (s.nf == "lpm") {
    return nf::build_lpm_nf({.rules = s.lpm_rules, .use_flow_cache = s.lpm_flow_cache});
  }
  if (s.nf == "nat") return nf::build_nat_nf();
  if (s.nf == "firewall") return nf::build_fw_nf();
  if (s.nf == "dpi") return nf::build_dpi_nf();
  if (s.nf == "heavy-hitter") return nf::build_hh_nf();
  if (s.nf == "meter") return nf::build_meter_nf();
  if (s.nf == "flow-stats") return nf::build_flowstats_nf();
  if (s.nf == "rewrite") return nf::build_rewrite_nf();
  if (s.nf == "vnf-chain") return nf::build_vnf_chain();
  if (s.nf == "crypto-gw") return nf::build_crypto_gw_nf();
  return make_error(strf("no validation recipe for NF '%s'", s.nf.c_str()));
}

/// Instantiates the hand-ported program with table placements aligned to
/// the analysis mapping (state-object order matches the CIR builders).
Result<std::unique_ptr<nicsim::NicProgram>, Error> make_program(
    const core::Analyzer& analyzer, const ValidationScenario& s, const core::Analysis& analysis,
    nicsim::NicSim& sim) {
  const auto level = [&](std::size_t i) { return placement_level(analyzer, analysis.mapping, i); };
  std::unique_ptr<nicsim::NicProgram> program;
  if (s.nf == "lpm") {
    // The ported baseline runs lookups on the match-action engine; the
    // predictor only books cycles there when the ILP chose that binding.
    // If the mapping kept the walk in software the pair is incomparable
    // (there is no software-walk port), so fail loudly instead of
    // silently attributing the mismatch as model error.
    if (analysis.prediction.breakdown.cycles[static_cast<std::size_t>(Component::kLpmEngine)] <=
        0.0) {
      return make_error(
          strf("mapping for '%s' keeps the LPM walk off the engine; no software port to "
               "validate against",
               s.name().c_str()));
    }
    auto& lpm = sim.create_lpm("routes", s.lpm_rules, s.lpm_flow_cache ? 4096 : 0);
    program = std::make_unique<nf::LpmProgram>(lpm, s.lpm_flow_cache);
  } else if (s.nf == "nat") {
    auto& table = sim.create_table("flow_table", 131072, 64, level(0));
    program = std::make_unique<nf::NatProgram>(table, true);
  } else if (s.nf == "firewall") {
    auto& conn = sim.create_table("conn_table", 16384, 64, level(0));
    auto& rules = sim.create_table("rules", 1024, 32, level(1));
    program = std::make_unique<nf::FwProgram>(conn, rules);
  } else if (s.nf == "dpi") {
    program = std::make_unique<nf::DpiProgram>();
  } else if (s.nf == "heavy-hitter") {
    auto& counters = sim.create_table("counters", 16384, 32, level(0));
    program = std::make_unique<nf::HhProgram>(counters);
  } else if (s.nf == "meter") {
    auto& buckets = sim.create_table("buckets", 4096, 32, level(0));
    program = std::make_unique<nf::MeterProgram>(buckets);
  } else if (s.nf == "flow-stats") {
    auto& stats = sim.create_table("flow_stats", 16384, 32, level(0));
    program = std::make_unique<nf::FlowStatsProgram>(stats);
  } else if (s.nf == "rewrite") {
    program = std::make_unique<nf::RewriteProgram>();
  } else if (s.nf == "vnf-chain") {
    auto& meters = sim.create_table("meters", 4096, 32, level(0));
    auto& stats = sim.create_table("flow_stats", 16384, 32, level(1));
    program = std::make_unique<nf::VnfProgram>(meters, stats);
  } else if (s.nf == "crypto-gw") {
    auto& sa = sim.create_table("sa_table", 4096, 64, level(0));
    program = std::make_unique<nf::CryptoGwProgram>(sa, true);
  } else {
    return make_error(strf("no ported implementation for NF '%s'", s.nf.c_str()));
  }
  return program;
}

/// Exact p95 over a small sample set (closest-rank; the per-NF scenario
/// counts are single digits, so interpolation would overstate precision).
double percentile95(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(0.95 * static_cast<double>(values.size())));
  return values[std::min(values.size(), std::max<std::size_t>(rank, 1)) - 1];
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  return strf("%.6f", v);
}

}  // namespace

Result<ScenarioResult, Error> validate_prediction(const core::Analyzer& analyzer,
                                                  const ValidationScenario& scenario,
                                                  const core::Analysis& analysis,
                                                  const workload::Trace& trace) {
  nicsim::NicSim sim;
  auto program = make_program(analyzer, scenario, analysis, sim);
  if (!program) return program.error();
  const auto stats = sim.run(*program.value(), trace);
  if (stats.packets == 0 || stats.mean_latency() <= 0.0) {
    return make_error(strf("simulator delivered no packets for '%s'", scenario.nf.c_str()));
  }

  ScenarioResult result;
  result.scenario = scenario;
  result.seed = trace.profile.seed;
  result.ok = true;
  result.predicted_cycles = analysis.prediction.mean_latency_cycles;
  result.simulated_cycles = stats.mean_latency();
  result.rel_err =
      std::abs(result.predicted_cycles - result.simulated_cycles) / result.simulated_cycles;
  result.predicted = analysis.prediction.breakdown;
  result.simulated = stats.breakdown.means();
  for (std::size_t i = 0; i < kComponentCount; ++i) {
    auto& c = result.components[i];
    c.predicted_cycles = result.predicted.cycles[i];
    c.simulated_cycles = result.simulated.cycles[i];
    c.error_share = std::abs(c.predicted_cycles - c.simulated_cycles) / result.simulated_cycles;
  }
  return result;
}

std::string render_validation(const ScenarioResult& result) {
  TextTable table({"component", "predicted cyc", "simulated cyc", "gap", "share of error"});
  for (std::size_t i = 0; i < kComponentCount; ++i) {
    const auto& c = result.components[i];
    if (c.predicted_cycles <= 0.0 && c.simulated_cycles <= 0.0) continue;
    table.add_row({component_name(static_cast<Component>(i)), strf("%.1f", c.predicted_cycles),
                   strf("%.1f", c.simulated_cycles),
                   strf("%+.1f", c.predicted_cycles - c.simulated_cycles),
                   strf("%.2f%%", c.error_share * 100.0)});
  }
  table.add_row({"total", strf("%.1f", result.predicted_cycles),
                 strf("%.1f", result.simulated_cycles),
                 strf("%+.1f", result.predicted_cycles - result.simulated_cycles),
                 strf("%.2f%%", result.rel_err * 100.0)});
  return table.render();
}

AccuracyLedger::AccuracyLedger(AccuracyOptions options) : options_(options) {}

std::vector<ValidationScenario> AccuracyLedger::default_matrix() {
  std::vector<ValidationScenario> matrix;
  // §4 headline NFs over their figure sweep variables. LPM always ports
  // through the match-action engine with the flow cache (the plan the
  // mapper selects — see make_program's engine guard); the sweep varies
  // rule-table size plus one skewed-flow point that stresses the cache.
  for (const std::uint64_t rules : {5'000ull, 15'000ull, 30'000ull}) {
    matrix.push_back({"lpm", strf("rules=%llu", (unsigned long long)rules),
                      "tcp=0.8 flows=5000 payload=300 pps=60000 packets=20000", rules, true});
  }
  matrix.push_back({"lpm", "zipf",
                    "tcp=0.8 flows=20000 zipf=0.8 payload=300 pps=60000 packets=20000", 10'000,
                    true});
  for (const int payload : {200, 800, 1400}) {
    matrix.push_back({"nat", strf("payload=%d", payload),
                      strf("tcp=0.8 flows=10000 payload=%d pps=60000 packets=15000", payload)});
  }
  for (const int payload : {200, 800, 1400}) {
    matrix.push_back({"vnf-chain", strf("payload=%d", payload),
                      strf("tcp=0.8 flows=4000 payload=%d pps=60000 packets=15000", payload)});
  }
  // The rest of the ported corpus at a standard workload.
  matrix.push_back({"firewall", "standard",
                    "tcp=1.0 flows=5000 payload=400 pps=60000 packets=12000"});
  matrix.push_back({"heavy-hitter", "standard",
                    "tcp=0.8 flows=5000 payload=400 pps=60000 packets=12000"});
  matrix.push_back({"meter", "standard",
                    "tcp=0.8 flows=5000 payload=400 pps=60000 packets=12000"});
  matrix.push_back({"flow-stats", "standard",
                    "tcp=0.8 flows=5000 payload=400 pps=60000 packets=12000"});
  for (const int payload : {400, 1200}) {
    matrix.push_back({"dpi", strf("payload=%d", payload),
                      strf("tcp=0.8 flows=5000 payload=%d pps=60000 packets=8000", payload)});
  }
  matrix.push_back({"rewrite", "standard",
                    "tcp=0.8 flows=5000 payload=400 pps=60000 packets=8000"});
  matrix.push_back({"crypto-gw", "standard",
                    "tcp=0.8 flows=4000 payload=400 pps=60000 packets=8000"});
  return matrix;
}

AccuracyReport AccuracyLedger::run(const std::vector<ValidationScenario>& matrix,
                                   const lnic::NicProfile& profile) const {
  // One sweep point per scenario; the grid derives per-scenario seed
  // streams from the base seed, and run_sweep returns results in matrix
  // order regardless of scheduling — the determinism contract.
  std::vector<std::vector<double>> params;
  params.reserve(matrix.size());
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    params.push_back({static_cast<double>(i)});
  }
  const auto grid = core::make_grid({}, params, options_.seed);

  std::vector<ScenarioResult> slots(matrix.size());
  const auto eval = [&](const core::SweepPoint& point, core::SweepResult& out) {
    const auto& scenario = matrix[point.index];
    ScenarioResult& slot = slots[point.index];
    slot.scenario = scenario;
    slot.seed = point.seed;

    auto parsed = workload::parse_profile(scenario.workload);
    if (!parsed) {
      out.ok = false;
      out.error = slot.error = parsed.error().message;
      return;
    }
    auto wl = parsed.value();
    wl.seed = point.seed;
    if (options_.max_packets > 0) wl.packets = std::min(wl.packets, options_.max_packets);
    const auto trace = workload::generate_trace(wl);

    auto fn = make_function(scenario);
    if (!fn) {
      out.ok = false;
      out.error = slot.error = fn.error().message;
      return;
    }
    const core::Analyzer analyzer(profile);
    auto analysis = analyzer.analyze(fn.value(), trace);
    if (!analysis) {
      out.ok = false;
      out.error = slot.error = analysis.error().message;
      return;
    }
    auto result = validate_prediction(analyzer, scenario, analysis.value(), trace);
    if (!result) {
      out.ok = false;
      out.error = slot.error = result.error().message;
      return;
    }
    slot = std::move(result).value();
    slot.seed = point.seed;
    out.value = slot.rel_err;
    out.stats.add(slot.rel_err);
  };

  core::SweepOptions sweep_options;
  sweep_options.jobs = options_.jobs;
  core::SweepFailureSummary failures;
  (void)core::run_sweep(grid, eval, sweep_options, &failures);

  AccuracyReport report;
  report.seed = options_.seed;
  report.scenarios = std::move(slots);

  // Per-NF aggregation in first-appearance order.
  std::vector<std::string> order;
  std::map<std::string, std::vector<const ScenarioResult*>> by_nf;
  for (const auto& s : report.scenarios) {
    if (!s.ok) {
      ++report.failures;
      continue;
    }
    if (!by_nf.count(s.scenario.nf)) order.push_back(s.scenario.nf);
    by_nf[s.scenario.nf].push_back(&s);
  }
  for (const auto& nf_name : order) {
    const auto& results = by_nf[nf_name];
    NfAccuracy agg;
    agg.nf = nf_name;
    agg.scenarios = results.size();
    std::vector<double> errs;
    const double weight = 1.0 / static_cast<double>(results.size());
    for (const auto* r : results) {
      errs.push_back(r->rel_err);
      agg.predicted.add_scaled(r->predicted, weight);
      agg.simulated.add_scaled(r->simulated, weight);
      for (std::size_t i = 0; i < kComponentCount; ++i) {
        agg.error_share[i] += weight * r->components[i].error_share;
      }
    }
    double total = 0.0;
    for (const double e : errs) total += e;
    agg.mean_rel_err = total / static_cast<double>(errs.size());
    agg.p95_rel_err = percentile95(errs);
    agg.max_rel_err = *std::max_element(errs.begin(), errs.end());
    std::size_t worst = 0;
    for (std::size_t i = 1; i < kComponentCount; ++i) {
      if (agg.error_share[i] > agg.error_share[worst]) worst = i;
    }
    agg.worst_component = component_name(static_cast<Component>(worst));
    agg.worst_component_share = agg.error_share[worst];
    report.per_nf.push_back(std::move(agg));
  }
  return report;
}

AccuracyReport AccuracyLedger::run() const {
  return run(default_matrix(), lnic::netronome_agilio_cx());
}

std::string AccuracyReport::render() const {
  TextTable per_nf_table(
      {"NF", "scenarios", "mean err", "p95 err", "max err", "worst component (share)"});
  for (const auto& nf : per_nf) {
    per_nf_table.add_row({nf.nf, strf("%zu", nf.scenarios), strf("%.2f%%", nf.mean_rel_err * 100.0),
                          strf("%.2f%%", nf.p95_rel_err * 100.0),
                          strf("%.2f%%", nf.max_rel_err * 100.0),
                          strf("%s (%.2f%%)", nf.worst_component.c_str(),
                               nf.worst_component_share * 100.0)});
  }
  std::string out = per_nf_table.render();

  TextTable detail({"scenario", "predicted cyc", "simulated cyc", "rel err", "seed"});
  for (const auto& s : scenarios) {
    if (!s.ok) {
      detail.add_row({s.scenario.name(), "error: " + s.error, "", "", ""});
      continue;
    }
    detail.add_row({s.scenario.name(), strf("%.1f", s.predicted_cycles),
                    strf("%.1f", s.simulated_cycles), strf("%.2f%%", s.rel_err * 100.0),
                    strf("%llu", (unsigned long long)s.seed)});
  }
  out += "\n" + detail.render();
  if (failures > 0) out += strf("WARNING: %zu scenario(s) failed\n", failures);
  return out;
}

std::string AccuracyReport::to_json() const {
  std::string out;
  out += "{\n  \"schema\": \"clara-bench-accuracy/1\",\n";
  out += strf("  \"seed\": %llu,\n", (unsigned long long)seed);
  out += strf("  \"failures\": %zu,\n", failures);
  out += "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& s = scenarios[i];
    out += strf(
        "    {\"name\": \"%s\", \"nf\": \"%s\", \"workload\": \"%s\", \"seed\": %llu, "
        "\"ok\": %s, \"predicted_cycles\": %s, \"simulated_cycles\": %s, \"rel_err\": %s}%s\n",
        s.scenario.name().c_str(), s.scenario.nf.c_str(), s.scenario.workload.c_str(),
        (unsigned long long)s.seed, s.ok ? "true" : "false",
        json_number(s.predicted_cycles).c_str(), json_number(s.simulated_cycles).c_str(),
        json_number(s.rel_err).c_str(), i + 1 < scenarios.size() ? "," : "");
  }
  out += "  ],\n  \"nfs\": [\n";
  for (std::size_t i = 0; i < per_nf.size(); ++i) {
    const auto& nf = per_nf[i];
    out += strf(
        "    {\"name\": \"%s\", \"scenarios\": %zu, \"mean_rel_err\": %s, \"p95_rel_err\": %s, "
        "\"max_rel_err\": %s, \"worst_component\": \"%s\", \"worst_component_share\": %s,\n",
        nf.nf.c_str(), nf.scenarios, json_number(nf.mean_rel_err).c_str(),
        json_number(nf.p95_rel_err).c_str(), json_number(nf.max_rel_err).c_str(),
        nf.worst_component.c_str(), json_number(nf.worst_component_share).c_str());
    out += "     \"components\": [\n";
    bool first = true;
    for (std::size_t c = 0; c < kComponentCount; ++c) {
      // Keep the document focused: skip components neither side charges.
      if (nf.predicted.cycles[c] <= 0.0 && nf.simulated.cycles[c] <= 0.0) continue;
      out += strf(
          "       %s{\"name\": \"%s\", \"predicted_cycles\": %s, \"simulated_cycles\": %s, "
          "\"error_share\": %s}",
          first ? "" : ",", component_name(static_cast<Component>(c)),
          json_number(nf.predicted.cycles[c]).c_str(), json_number(nf.simulated.cycles[c]).c_str(),
          json_number(nf.error_share[c]).c_str());
      out += "\n";
      first = false;
    }
    out += strf("     ]}%s\n", i + 1 < per_nf.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

void AccuracyReport::publish_metrics() const {
  double overall = 0.0;
  std::size_t n = 0;
  for (const auto& nf : per_nf) {
    const std::string labels = "nf=" + nf.nf;
    metrics().gauge("accuracy/mean_rel_err", labels).set(nf.mean_rel_err);
    metrics().gauge("accuracy/p95_rel_err", labels).set(nf.p95_rel_err);
    metrics().gauge("accuracy/max_rel_err", labels).set(nf.max_rel_err);
    metrics().gauge("accuracy/worst_component_share", labels).set(nf.worst_component_share);
    overall += nf.mean_rel_err * static_cast<double>(nf.scenarios);
    n += nf.scenarios;
  }
  metrics().gauge("accuracy/overall_mean_rel_err")
      .set(n > 0 ? overall / static_cast<double>(n) : 0.0);
  metrics().gauge("accuracy/scenarios").set(static_cast<double>(n));
  metrics().gauge("accuracy/failed_scenarios").set(static_cast<double>(failures));
}

}  // namespace clara::obs
