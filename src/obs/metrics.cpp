#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/strings.hpp"

namespace clara::obs {

namespace {

std::size_t bucket_index(double x) {
  if (!(x >= 1.0)) return 0;  // x < 1 and NaN both land in bucket 0
  const auto idx = static_cast<std::size_t>(std::floor(std::log2(x))) + 1;
  return std::min(idx, LatencyHistogram::kBuckets - 1);
}

/// Geometric midpoint of bucket i's range (representative value used by
/// the quantile estimate).
double bucket_mid(std::size_t i) {
  if (i == 0) return 0.5;
  const double lo = std::exp2(static_cast<double>(i - 1));
  return lo * std::sqrt(2.0);
}

std::string instrument_label(const std::pair<std::string, std::string>& key) {
  return key.second.empty() ? key.first : key.first + "{" + key.second + "}";
}

/// "ilp/solves" -> "clara_ilp_solves": Prometheus metric names admit
/// only [a-zA-Z0-9_:].
std::string prom_name(const std::string& name, const char* suffix = "") {
  std::string out = "clara_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out + suffix;
}

/// Our "k=v,k2=v2" label string -> Prometheus {k="v",k2="v2"}. An extra
/// label ("le" for histogram buckets) is appended when provided.
std::string prom_labels(const std::string& labels, const std::string& extra = {}) {
  std::string body;
  for (const auto& item : split(labels, ',')) {
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    if (!body.empty()) body += ",";
    body += item.substr(0, eq) + "=\"" + item.substr(eq + 1) + "\"";
  }
  if (!extra.empty()) {
    if (!body.empty()) body += ",";
    body += extra;
  }
  return body.empty() ? std::string{} : "{" + body + "}";
}

}  // namespace

void LatencyHistogram::observe(double x) {
  std::lock_guard<std::mutex> lock(mu_);
  acc_.add(x);
  ++buckets_[bucket_index(x)];
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  // Lock ordering by address avoids deadlock when two threads merge the
  // same pair in opposite directions.
  if (this == &other) return;
  std::lock(mu_, other.mu_);
  std::lock_guard<std::mutex> a(mu_, std::adopt_lock);
  std::lock_guard<std::mutex> b(other.mu_, std::adopt_lock);
  acc_.merge(other.acc_);
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

std::uint64_t LatencyHistogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acc_.count();
}

Accumulator LatencyHistogram::moments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acc_;
}

double LatencyHistogram::percentile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t n = acc_.count();
  if (n == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > rank) return std::clamp(bucket_mid(i), acc_.min(), acc_.max());
  }
  return acc_.max();
}

std::array<std::uint64_t, LatencyHistogram::kBuckets> LatencyHistogram::buckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

void LatencyHistogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  acc_ = Accumulator{};
  buckets_.fill(0);
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[{name, labels}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[{name, labels}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name, const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[{name, labels}];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

std::string MetricsRegistry::render_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [key, c] : counters_) {
    os << instrument_label(key) << " " << c->value() << "\n";
  }
  for (const auto& [key, g] : gauges_) {
    os << instrument_label(key) << " " << strf("%g", g->value()) << "\n";
  }
  for (const auto& [key, h] : histograms_) {
    const Accumulator m = h->moments();
    os << instrument_label(key) << " count=" << m.count() << strf(" mean=%g", m.mean())
       << strf(" p50=%g", h->percentile(0.5)) << strf(" p99=%g", h->percentile(0.99))
       << strf(" max=%g", m.max()) << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [key, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << instrument_label(key) << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [key, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << instrument_label(key) << "\":" << strf("%.17g", g->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [key, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    const Accumulator m = h->moments();
    os << "\"" << instrument_label(key) << "\":{\"count\":" << m.count()
       << strf(",\"mean\":%.17g", m.mean()) << strf(",\"p50\":%.17g", h->percentile(0.5))
       << strf(",\"p99\":%.17g", h->percentile(0.99)) << strf(",\"max\":%.17g", m.max()) << "}";
  }
  os << "}}";
  return os.str();
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  // Instruments sharing a name differ only in labels; emit HELP/TYPE
  // once per name (the maps are key-sorted, so same-name runs are
  // contiguous).
  std::string last_name;
  for (const auto& [key, c] : counters_) {
    const std::string name = prom_name(key.first, "_total");
    if (name != last_name) {
      os << "# TYPE " << name << " counter\n";
      last_name = name;
    }
    os << name << prom_labels(key.second) << " " << c->value() << "\n";
  }
  last_name.clear();
  for (const auto& [key, g] : gauges_) {
    const std::string name = prom_name(key.first);
    if (name != last_name) {
      os << "# TYPE " << name << " gauge\n";
      last_name = name;
    }
    os << name << prom_labels(key.second) << " " << strf("%.17g", g->value()) << "\n";
  }
  last_name.clear();
  for (const auto& [key, h] : histograms_) {
    const std::string name = prom_name(key.first);
    if (name != last_name) {
      os << "# TYPE " << name << " histogram\n";
      last_name = name;
    }
    const auto buckets = h->buckets();
    const Accumulator m = h->moments();
    // Cumulative le-buckets at the log2 upper bounds, up to the last
    // populated bucket (the +Inf bucket always closes the series).
    std::size_t top = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] > 0) top = i;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= top; ++i) {
      cumulative += buckets[i];
      os << name << "_bucket"
         << prom_labels(key.second, strf("le=\"%.17g\"", std::exp2(static_cast<double>(i))))
         << " " << cumulative << "\n";
    }
    os << name << "_bucket" << prom_labels(key.second, "le=\"+Inf\"") << " " << m.count() << "\n";
    os << name << "_sum" << prom_labels(key.second) << " "
       << strf("%.17g", m.mean() * static_cast<double>(m.count())) << "\n";
    os << name << "_count" << prom_labels(key.second) << " " << m.count() << "\n";
  }
  return os.str();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, c] : counters_) c->reset();
  for (auto& [key, g] : gauges_) g->reset();
  for (auto& [key, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace clara::obs
