#include "obs/profile.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "common/table.hpp"

namespace clara::obs {

namespace {

parallel::LaneStats lane_delta(const parallel::LaneStats& before, const parallel::LaneStats& after) {
  parallel::LaneStats d;
  d.run_ns = after.run_ns - before.run_ns;
  d.sched_ns = after.sched_ns - before.sched_ns;
  d.idle_ns = after.idle_ns - before.idle_ns;
  d.tasks = after.tasks - before.tasks;
  d.steals = after.steals - before.steals;
  return d;
}

double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

double ProfileReport::coverage() const {
  if (wall_ns == 0 || lane_count == 0) return 1.0;
  // Worker lanes count only what the pool *measured* (run+sched+idle);
  // their other_ns is by-subtraction and would make coverage trivially
  // 100%. The caller lane's remainder is serial program execution — a
  // real category, derived from wall clock — so it does count. Each
  // lane is clamped to the region's wall so a lane busy with unrelated
  // overlapping work cannot inflate the figure.
  std::uint64_t attributed = 0;
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const bool caller = i + 1 == lanes.size();
    const std::uint64_t lane_ns =
        caller ? lanes[i].attributed_ns() + lanes[i].other_ns : lanes[i].attributed_ns();
    attributed += std::min<std::uint64_t>(lane_ns, wall_ns);
  }
  return static_cast<double>(attributed) /
         (static_cast<double>(wall_ns) * static_cast<double>(lane_count));
}

std::string ProfileReport::render() const {
  TextTable table({"lane", "run ms", "sched ms", "idle ms", "other ms", "tasks", "steals"});
  for (const auto& lane : lanes) {
    table.add_row({lane.name, strf("%.3f", ms(lane.run_ns)), strf("%.3f", ms(lane.sched_ns)),
                   strf("%.3f", ms(lane.idle_ns)), strf("%.3f", ms(lane.other_ns)),
                   strf("%llu", static_cast<unsigned long long>(lane.tasks)),
                   strf("%llu", static_cast<unsigned long long>(lane.steals))});
  }
  std::string out = table.render();
  out += strf(
      "wall %.3f ms, lanes %zu, attribution coverage %.1f%%\n"
      "tasks: %llu on workers, %llu inline; steals %llu, injected %llu\n",
      ms(wall_ns), lane_count, coverage() * 100.0,
      static_cast<unsigned long long>(tasks_run), static_cast<unsigned long long>(tasks_inline),
      static_cast<unsigned long long>(steals), static_cast<unsigned long long>(injected));

  std::uint64_t total_tasks = 0;
  for (const auto count : task_ns_hist) total_tasks += count;
  if (total_tasks > 0) {
    out += "task body duration (log2 ns buckets):\n";
    for (std::size_t i = 0; i < task_ns_hist.size(); ++i) {
      if (task_ns_hist[i] == 0) continue;
      const std::uint64_t lo = i == 0 ? 0 : std::uint64_t{1} << (i - 1);
      const std::uint64_t hi = std::uint64_t{1} << i;
      out += strf("  [%10llu, %10llu) ns : %llu\n", static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(task_ns_hist[i]));
    }
  }
  return out;
}

ProfileReport profile_delta(const parallel::PoolStats& before, const parallel::PoolStats& after,
                            std::uint64_t wall_ns) {
  ProfileReport report;
  report.wall_ns = wall_ns;
  report.tasks_run = after.tasks_run - before.tasks_run;
  report.tasks_inline = after.tasks_inline - before.tasks_inline;
  report.steals = after.steals - before.steals;
  report.injected = after.injected - before.injected;
  for (std::size_t i = 0; i < report.task_ns_hist.size(); ++i) {
    report.task_ns_hist[i] = after.task_ns_hist[i] - before.task_ns_hist[i];
  }

  const parallel::LaneStats empty;
  for (std::size_t w = 0; w < after.worker_lanes.size(); ++w) {
    const auto& prior = w < before.worker_lanes.size() ? before.worker_lanes[w] : empty;
    const auto d = lane_delta(prior, after.worker_lanes[w]);
    ProfileLane lane;
    lane.name = strf("worker%zu", w);
    lane.run_ns = d.run_ns;
    lane.sched_ns = d.sched_ns;
    lane.idle_ns = d.idle_ns;
    // Worker lanes are directly instrumented; any gap to the region's
    // wall clock is loop bookkeeping the pool does not time.
    const std::uint64_t measured = d.run_ns + d.sched_ns + d.idle_ns;
    lane.other_ns = wall_ns > measured ? wall_ns - measured : 0;
    lane.tasks = d.tasks;
    lane.steals = d.steals;
    report.lanes.push_back(std::move(lane));
  }

  const auto caller = lane_delta(before.inline_lane, after.inline_lane);
  ProfileLane caller_lane;
  caller_lane.name = "caller";
  caller_lane.run_ns = caller.run_ns;
  caller_lane.sched_ns = caller.sched_ns;
  caller_lane.idle_ns = caller.idle_ns;
  // The caller's remainder is serial (non-pool) execution — program
  // code between and around parallel regions.
  const std::uint64_t measured = caller.run_ns + caller.sched_ns + caller.idle_ns;
  caller_lane.other_ns = wall_ns > measured ? wall_ns - measured : 0;
  caller_lane.tasks = caller.tasks;
  caller_lane.steals = caller.steals;
  report.lanes.push_back(std::move(caller_lane));

  report.lane_count = after.worker_lanes.size() + 1;
  return report;
}

ProfileScope::ProfileScope()
    : before_(parallel::pool().stats()), t0_(std::chrono::steady_clock::now()) {}

ProfileReport ProfileScope::finish() const {
  const auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0_)
                        .count();
  return profile_delta(before_, parallel::pool().stats(),
                       static_cast<std::uint64_t>(std::max<std::int64_t>(0, wall)));
}

}  // namespace clara::obs
