#include "obs/recorder.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "obs/trace.hpp"

namespace clara::obs {

namespace {

/// Shared epoch so timestamps from every recorder instance (and the span
/// tracer's wall clock) are mutually comparable within a process.
std::int64_t now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                              epoch)
      .count();
}

std::atomic<std::uint64_t> g_next_instance_id{1};

std::string sanitize_reason(const std::string& reason) {
  std::string out;
  out.reserve(reason.size());
  for (const char c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_';
    out += ok ? c : '_';
  }
  return out.empty() ? std::string("dump") : out;
}

}  // namespace

const char* to_string(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kTaskStart: return "task_start";
    case FlightEventKind::kTaskStop: return "task_stop";
    case FlightEventKind::kSteal: return "steal";
    case FlightEventKind::kQueueOverflow: return "queue_overflow";
    case FlightEventKind::kWaveEnter: return "wave_enter";
    case FlightEventKind::kWaveExit: return "wave_exit";
    case FlightEventKind::kCacheHit: return "cache_hit";
    case FlightEventKind::kCacheMiss: return "cache_miss";
    case FlightEventKind::kFaultFire: return "fault_fire";
    case FlightEventKind::kMark: return "mark";
  }
  return "unknown";
}

/// One thread's ring. Every slot field is an atomic so concurrent
/// snapshot reads of a slot being overwritten are races on values, never
/// on memory: `seq` (index+1 when the slot is fully written, 0 while
/// in-flight) is checked on both sides of the field reads, so a torn
/// slot is skipped instead of surfaced.
struct FlightRecorder::Ring {
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::int64_t> ts_ns{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<std::uint8_t> kind{0};
  };

  explicit Ring(std::uint32_t id) : tid(id) {}

  const std::uint32_t tid;
  std::atomic<std::uint64_t> head{0};
  std::array<Slot, kRingCapacity> slots;
};

FlightRecorder::FlightRecorder()
    : instance_id_(g_next_instance_id.fetch_add(1, std::memory_order_relaxed)) {}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder::Ring* FlightRecorder::ring_for_this_thread() {
  // Instance ids are never reused, so a stale cache entry for a
  // destroyed recorder can never match a live one.
  struct CacheEntry {
    std::uint64_t instance_id;
    Ring* ring;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const auto& entry : cache) {
    if (entry.instance_id == instance_id_) return entry.ring;
  }
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<Ring>(static_cast<std::uint32_t>(rings_.size())));
  Ring* ring = rings_.back().get();
  cache.push_back({instance_id_, ring});
  return ring;
}

void FlightRecorder::record(FlightEventKind kind, std::uint64_t a, std::uint64_t b) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring* ring = ring_for_this_thread();
  const std::uint64_t i = ring->head.load(std::memory_order_relaxed);  // owner-only counter
  Ring::Slot& slot = ring->slots[i & (kRingCapacity - 1)];
  slot.seq.store(0, std::memory_order_release);  // invalidate for concurrent readers
  slot.ts_ns.store(now_ns(), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  slot.seq.store(i + 1, std::memory_order_release);
  ring->head.store(i + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t epoch = epoch_ns_.load(std::memory_order_acquire);
  std::vector<FlightEvent> out;
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t begin = head > kRingCapacity ? head - kRingCapacity : 0;
    for (std::uint64_t i = begin; i < head; ++i) {
      const Ring::Slot& slot = ring->slots[i & (kRingCapacity - 1)];
      if (slot.seq.load(std::memory_order_acquire) != i + 1) continue;
      FlightEvent event;
      event.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
      event.a = slot.a.load(std::memory_order_relaxed);
      event.b = slot.b.load(std::memory_order_relaxed);
      event.kind = static_cast<FlightEventKind>(slot.kind.load(std::memory_order_relaxed));
      event.tid = ring->tid;
      if (slot.seq.load(std::memory_order_acquire) != i + 1) continue;  // overwritten mid-read
      if (event.ts_ns < epoch) continue;                                // cleared
      out.push_back(event);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& x, const FlightEvent& y) { return x.ts_ns < y.ts_ns; });
  return out;
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->head.load(std::memory_order_relaxed);
  return total;
}

void FlightRecorder::clear() { epoch_ns_.store(now_ns(), std::memory_order_release); }

std::string FlightRecorder::to_chrome_json(const std::string& reason) const {
  const auto events = snapshot();
  std::vector<ChromeEvent> chrome;
  chrome.reserve(events.size());
  // Pair task_start/task_stop per recorder thread into complete spans;
  // everything else (and unpaired starts) exports as instant events.
  std::vector<std::vector<const FlightEvent*>> open_starts;
  for (const auto& event : events) {
    if (event.tid >= open_starts.size()) open_starts.resize(event.tid + 1);
    if (event.kind == FlightEventKind::kTaskStart) {
      open_starts[event.tid].push_back(&event);
      continue;
    }
    if (event.kind == FlightEventKind::kTaskStop && !open_starts[event.tid].empty()) {
      const FlightEvent* start = open_starts[event.tid].back();
      open_starts[event.tid].pop_back();
      ChromeEvent span;
      span.name = "flight/task";
      span.ph = 'X';
      span.tid = event.tid;
      span.ts_us = static_cast<double>(start->ts_ns) / 1e3;
      span.dur_us = static_cast<double>(std::max<std::int64_t>(0, event.ts_ns - start->ts_ns)) / 1e3;
      span.args_json = strf("\"lane\":%llu,\"body_ns\":%llu",
                            static_cast<unsigned long long>(event.a),
                            static_cast<unsigned long long>(event.b));
      chrome.push_back(std::move(span));
      continue;
    }
    ChromeEvent instant;
    instant.name = std::string("flight/") + to_string(event.kind);
    instant.ph = 'i';
    instant.tid = event.tid;
    instant.ts_us = static_cast<double>(event.ts_ns) / 1e3;
    instant.args_json = strf("\"a\":%llu,\"b\":%llu", static_cast<unsigned long long>(event.a),
                             static_cast<unsigned long long>(event.b));
    chrome.push_back(std::move(instant));
  }
  for (const auto& stack : open_starts) {
    for (const FlightEvent* start : stack) {
      ChromeEvent instant;
      instant.name = "flight/task_start";
      instant.ph = 'i';
      instant.tid = start->tid;
      instant.ts_us = static_cast<double>(start->ts_ns) / 1e3;
      chrome.push_back(std::move(instant));
    }
  }
  std::string extra;
  if (!reason.empty()) {
    extra = strf("\"clara_flight\":{\"reason\":\"%s\",\"events\":%zu}",
                 json_escape(reason).c_str(), events.size());
  }
  return chrome_trace_json(chrome, extra);
}

std::string FlightRecorder::dump_text() const {
  std::string out;
  for (const auto& event : snapshot()) {
    out += strf("%lld %-14s tid=%u a=%llu b=%llu\n", static_cast<long long>(event.ts_ns),
                to_string(event.kind), event.tid, static_cast<unsigned long long>(event.a),
                static_cast<unsigned long long>(event.b));
  }
  return out;
}

bool FlightRecorder::dump_to_file(const std::string& path, const std::string& reason) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << to_chrome_json(reason.empty() ? std::string("manual") : reason);
  return static_cast<bool>(out);
}

void FlightRecorder::set_dump_dir(std::string dir) {
  std::lock_guard<std::mutex> lock(mu_);
  dump_dir_ = std::move(dir);
}

std::string FlightRecorder::auto_dump(const std::string& reason) {
  if (!enabled()) return {};
  if (auto_dumped_.exchange(true, std::memory_order_acq_rel)) return {};  // once per process
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dir = dump_dir_;
  }
  if (dir.empty()) {
    if (const char* env = std::getenv("CLARA_FLIGHT_DIR")) dir = env;
  }
  if (dir.empty()) dir = ".";
  const std::string path = dir + "/clara_flight_" + sanitize_reason(reason) + ".json";
  if (!dump_to_file(path, reason)) return {};
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_dump_path_ = path;
  }
  std::fprintf(stderr, "flight recorder: dumped to %s (reason: %s)\n", path.c_str(),
               reason.c_str());
  return path;
}

void FlightRecorder::reset_auto_dump() {
  auto_dumped_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  last_dump_path_.clear();
}

std::string FlightRecorder::last_dump_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_dump_path_;
}

namespace {

void pool_event_hook(parallel::PoolEvent event, std::uint64_t lane, std::uint64_t arg) {
  switch (event) {
    case parallel::PoolEvent::kTaskStart: record(FlightEventKind::kTaskStart, lane, arg); break;
    case parallel::PoolEvent::kTaskStop: record(FlightEventKind::kTaskStop, lane, arg); break;
    case parallel::PoolEvent::kSteal: record(FlightEventKind::kSteal, lane, arg); break;
    case parallel::PoolEvent::kQueueOverflow:
      record(FlightEventKind::kQueueOverflow, lane, arg);
      break;
  }
}

}  // namespace

FlightRecorder& recorder() {
  // Leaked deliberately: worker threads may still record during static
  // destruction. The pool hook is installed exactly once, after the
  // instance is fully constructed.
  static FlightRecorder* instance = [] {
    auto* r = new FlightRecorder();
    parallel::set_pool_event_hook(&pool_event_hook);
    return r;
  }();
  return *instance;
}

void record(FlightEventKind kind, std::uint64_t a, std::uint64_t b) {
  recorder().record(kind, a, b);
}

}  // namespace clara::obs
