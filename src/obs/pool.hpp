// Thread-pool observability bridge.
//
// common/parallel deliberately has no obs dependency (obs links common),
// so pool activity reaches the metrics registry by snapshot-and-delta:
// callers grab parallel::pool().stats() before and after a parallel
// region and publish the difference here, attributed to their module.
#pragma once

#include <string>

#include "common/parallel.hpp"

namespace clara::obs {

/// Publishes the delta between two pool-stats snapshots under
/// "parallel/*" instruments labeled "module=<module>":
///   counters  parallel/tasks_run, parallel/tasks_inline,
///             parallel/steals, parallel/injected,
///             parallel/worker_busy_ns
///   gauge     parallel/queue_depth (absolute, from `after`)
///   gauges    parallel/worker_busy_ns{module=...,worker=i} (cumulative)
void publish_pool_stats(const std::string& module, const parallel::PoolStats& before,
                        const parallel::PoolStats& after);

}  // namespace clara::obs
