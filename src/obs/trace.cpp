#include "obs/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/strings.hpp"
#include "common/table.hpp"

namespace clara::obs {

namespace {

std::uint32_t this_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Per-thread stack of open span indices (parent tracking).
std::vector<std::size_t>& open_stack() {
  thread_local std::vector<std::size_t> stack;
  return stack;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::size_t Tracer::begin_span(std::string name) {
  const auto now = std::chrono::steady_clock::now();
  auto& stack = open_stack();
  TraceSpan span;
  span.name = std::move(name);
  span.tid = this_thread_id();
  span.depth = static_cast<std::uint32_t>(stack.size());
  std::lock_guard<std::mutex> lock(mu_);
  span.parent =
      stack.empty() ? TraceSpan::kNoParent : static_cast<std::uint32_t>(stack.back());
  span.start_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_).count();
  const std::size_t index = spans_.size();
  spans_.push_back(std::move(span));
  stack.push_back(index);
  return index;
}

void Tracer::end_span(std::size_t index) {
  const auto now = std::chrono::steady_clock::now();
  auto& stack = open_stack();
  // RAII scopes unwind in LIFO order; tolerate a mismatched index (e.g.
  // clear() raced an open scope) by searching.
  if (!stack.empty() && stack.back() == index) {
    stack.pop_back();
  } else {
    const auto it = std::find(stack.rbegin(), stack.rend(), index);
    if (it != stack.rend()) stack.erase(std::next(it).base());
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= spans_.size()) return;  // cleared while open
  const auto end_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_).count();
  spans_[index].dur_ns = std::max<std::int64_t>(0, end_ns - spans_[index].start_ns);
}

std::vector<TraceSpan> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

std::string chrome_trace_json(const std::vector<ChromeEvent>& events,
                              const std::string& extra_json) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& event : events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(event.name) << "\",\"ph\":\"" << event.ph
       << "\",\"cat\":\"clara\",\"pid\":1,\"tid\":" << event.tid
       << strf(",\"ts\":%.3f", std::max(0.0, event.ts_us));
    if (event.ph == 'X') os << strf(",\"dur\":%.3f", std::max(0.0, event.dur_us));
    if (event.ph == 'i') os << ",\"s\":\"t\"";  // thread-scoped instant
    if (!event.args_json.empty()) os << ",\"args\":{" << event.args_json << "}";
    os << "}";
  }
  os << "]";
  if (!extra_json.empty()) os << "," << extra_json;
  os << ",\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

std::string Tracer::to_chrome_json() const {
  const auto spans = snapshot();
  std::vector<ChromeEvent> events;
  events.reserve(spans.size());
  for (const auto& span : spans) {
    if (span.dur_ns < 0) continue;  // still open — not exportable
    ChromeEvent event;
    event.name = span.name;
    event.ph = 'X';
    event.tid = span.tid;
    event.ts_us = static_cast<double>(span.start_ns) / 1e3;
    event.dur_us = static_cast<double>(span.dur_ns) / 1e3;
    event.args_json = strf("\"depth\":%u", span.depth);
    events.push_back(std::move(event));
  }
  return chrome_trace_json(events);
}

std::string Tracer::flame_summary(std::size_t max_rows) const {
  const auto spans = snapshot();

  // Full path per span ("parent > child"), plus per-span child time for
  // the self-time column.
  std::vector<std::string> paths(spans.size());
  std::vector<std::int64_t> child_ns(spans.size(), 0);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    paths[i] = spans[i].parent == TraceSpan::kNoParent
                   ? spans[i].name
                   : paths[spans[i].parent] + " > " + spans[i].name;
    if (spans[i].parent != TraceSpan::kNoParent && spans[i].dur_ns > 0) {
      child_ns[spans[i].parent] += spans[i].dur_ns;
    }
  }

  struct Row {
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;
    std::int64_t self_ns = 0;
    std::uint32_t depth = 0;
  };
  std::map<std::string, Row> rows;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].dur_ns < 0) continue;
    Row& row = rows[paths[i]];
    ++row.count;
    row.total_ns += spans[i].dur_ns;
    row.self_ns += std::max<std::int64_t>(0, spans[i].dur_ns - child_ns[i]);
    row.depth = spans[i].depth;
  }

  std::vector<std::pair<std::string, Row>> sorted(rows.begin(), rows.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  if (sorted.size() > max_rows) sorted.resize(max_rows);

  TextTable table({"span", "count", "total ms", "self ms", "mean us"});
  for (const auto& [path, row] : sorted) {
    table.add_row({std::string(2 * row.depth, ' ') + path, strf("%llu", (unsigned long long)row.count),
                   strf("%.3f", static_cast<double>(row.total_ns) / 1e6),
                   strf("%.3f", static_cast<double>(row.self_ns) / 1e6),
                   strf("%.1f", static_cast<double>(row.total_ns) / 1e3 /
                                    static_cast<double>(row.count))});
  }
  return table.render();
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

}  // namespace clara::obs
