// Accuracy ledger — tracked predicted-vs-simulated error attribution.
//
// Clara's product *is* a prediction, so prediction accuracy is tracked
// the same way BENCH_perf.json tracks speed: the ledger runs the
// NF×variant×workload validation matrix through the sharded sweep
// driver (bit-identical at any jobs level), computes each scenario's
// relative error between Analysis.prediction and nicsim ground truth,
// and attributes that error per breakdown component — the output says
// not just "NAT is 7% off" but "5 of those 7 points come from the EMEM
// queue model". The report serializes to the tracked
// BENCH_accuracy.json (schema clara-bench-accuracy/1, refreshed by the
// clara_bench_accuracy target) and is gated by `clara bench diff`
// with per-metric tolerance bands (obs/benchdiff, docs/performance.md).
//
// Attribution leans on the shared breakdown invariant (obs/breakdown):
// both the simulator's measured charges and the predictor's analytic
// decomposition sum to their respective mean latencies, so the
// per-component gap |pred_c - sim_c| / sim_total is a well-defined
// share of the scenario's error budget.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/clara.hpp"
#include "obs/breakdown.hpp"

namespace clara::obs {

/// One cell of the validation matrix: a registry NF, the knob setting
/// being swept ("rules=5000", "payload=800"), and its workload spec.
struct ValidationScenario {
  std::string nf;        // ported-NF registry name ("lpm", "nat", ...)
  std::string variant;   // human label for the swept knob
  std::string workload;  // workload spec; the ledger overrides the seed
  /// LPM-only knobs (the Figure 3(a) sweep variable).
  std::uint64_t lpm_rules = 10'000;
  bool lpm_flow_cache = false;

  [[nodiscard]] std::string name() const { return nf + "/" + variant; }
};

/// Predicted-vs-simulated charge for one breakdown component.
struct ComponentError {
  double predicted_cycles = 0.0;
  double simulated_cycles = 0.0;
  /// |predicted - simulated| / simulated mean latency: this component's
  /// contribution to the scenario's relative-error budget. The shares
  /// upper-bound the headline rel_err (gaps of opposite sign cancel in
  /// the total but not in the attribution).
  double error_share = 0.0;
};

/// One scenario's outcome: headline error plus its attribution.
struct ScenarioResult {
  ValidationScenario scenario;
  std::uint64_t seed = 0;  // effective workload seed (sweep shard stream)
  bool ok = false;
  std::string error;
  double predicted_cycles = 0.0;
  double simulated_cycles = 0.0;
  /// |predicted - simulated| / simulated.
  double rel_err = 0.0;
  BreakdownMeans predicted;  // sums to predicted_cycles
  BreakdownMeans simulated;  // sums to simulated_cycles
  std::array<ComponentError, kComponentCount> components{};
};

/// Per-NF aggregate over its scenarios: the tracked error bands.
struct NfAccuracy {
  std::string nf;
  std::size_t scenarios = 0;
  double mean_rel_err = 0.0;
  double p95_rel_err = 0.0;
  double max_rel_err = 0.0;
  /// Mean per-component charges and error shares across the scenarios.
  BreakdownMeans predicted;
  BreakdownMeans simulated;
  std::array<double, kComponentCount> error_share{};
  /// Component with the largest mean error share ("where the model is
  /// wrong"), and that share.
  std::string worst_component;
  double worst_component_share = 0.0;
};

struct AccuracyOptions {
  /// Base seed; per-scenario seeds derive via the sweep driver's shard
  /// streams, so the ledger is reproducible from this one number.
  std::uint64_t seed = 42;
  /// Sweep concurrency (0 = global parallel::jobs(), 1 = serial). The
  /// report is bit-identical at every level.
  std::size_t jobs = 0;
  /// Caps every scenario's trace length (0 = as specified); tests use
  /// this to run the full matrix quickly.
  std::uint64_t max_packets = 0;
};

struct AccuracyReport {
  std::uint64_t seed = 0;
  std::vector<ScenarioResult> scenarios;  // matrix order
  std::vector<NfAccuracy> per_nf;         // first-appearance order
  /// Failed scenarios (ok == false) excluded from per_nf aggregates.
  std::size_t failures = 0;

  /// ASCII tables: per-NF error bands, then per-scenario detail.
  [[nodiscard]] std::string render() const;
  /// The BENCH_accuracy.json document (schema clara-bench-accuracy/1).
  /// Fixed-precision formatting, so identical results give identical
  /// bytes — the jobs=1/2/8 determinism contract is string equality.
  [[nodiscard]] std::string to_json() const;
  /// Publishes accuracy/* gauges (per-NF mean/p95/max rel err and the
  /// overall mean) through the process-wide metrics registry, visible in
  /// every exposition format including Prometheus.
  void publish_metrics() const;
};

/// Runs the validation matrix and aggregates the ledger.
class AccuracyLedger {
 public:
  explicit AccuracyLedger(AccuracyOptions options = {});

  /// The default NF×variant×workload matrix: the paper's §4 NFs swept
  /// over their figure variables (LPM table sizes, NAT/VNF payloads)
  /// plus every other NF with a faithful hand-port at a standard
  /// workload.
  [[nodiscard]] static std::vector<ValidationScenario> default_matrix();

  /// Runs every scenario through core::run_sweep on the given profile.
  /// Deterministic at any jobs level (results come back in matrix
  /// order; each scenario owns an independent seed stream).
  [[nodiscard]] AccuracyReport run(const std::vector<ValidationScenario>& matrix,
                                   const lnic::NicProfile& profile) const;
  /// default_matrix() on the Netronome profile.
  [[nodiscard]] AccuracyReport run() const;

  [[nodiscard]] const AccuracyOptions& options() const { return options_; }

 private:
  AccuracyOptions options_;
};

/// Ground truth for one already-analyzed registry NF: sets up the ported
/// simulator program with table placements aligned to the analysis
/// mapping, replays the trace, and returns the scenario result with
/// per-component attribution. Errors on NFs without a hand-port
/// (`clara analyze --validate` on --nf-file inputs).
Result<ScenarioResult, Error> validate_prediction(const core::Analyzer& analyzer,
                                                  const ValidationScenario& scenario,
                                                  const core::Analysis& analysis,
                                                  const workload::Trace& trace);

/// Per-component error table for a single scenario (the CLI --validate
/// view): component | predicted | simulated | gap | share of error.
std::string render_validation(const ScenarioResult& result);

}  // namespace clara::obs
