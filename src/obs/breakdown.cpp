#include "obs/breakdown.hpp"

#include "common/strings.hpp"
#include "common/table.hpp"

namespace clara::obs {

const char* component_name(Component c) {
  switch (c) {
    case Component::kIngress: return "ingress";
    case Component::kQueueWait: return "queue-wait";
    case Component::kCompute: return "compute";
    case Component::kCsumAccel: return "csum-accel";
    case Component::kCryptoAccel: return "crypto-accel";
    case Component::kLpmEngine: return "lpm-engine";
    case Component::kMemLocal: return "mem-local";
    case Component::kMemCtm: return "mem-ctm";
    case Component::kMemImem: return "mem-imem";
    case Component::kEmemCacheHit: return "emem-cache-hit";
    case Component::kEmemCacheMiss: return "emem-cache-miss";
    case Component::kEgress: return "egress";
  }
  return "?";
}

Cycles PacketBreakdown::total() const {
  Cycles sum = 0;
  for (const Cycles c : cycles) sum += c;
  return sum;
}

double BreakdownMeans::total() const {
  double sum = 0.0;
  for (const double c : cycles) sum += c;
  return sum;
}

void BreakdownMeans::add_scaled(const BreakdownMeans& other, double weight) {
  for (std::size_t i = 0; i < kComponentCount; ++i) cycles[i] += weight * other.cycles[i];
}

void BreakdownReport::add(const PacketBreakdown& pb) {
  ++packets_;
  for (std::size_t i = 0; i < kComponentCount; ++i) {
    acc_[i].add(static_cast<double>(pb.cycles[i]));
  }
}

BreakdownMeans BreakdownReport::means() const {
  BreakdownMeans m;
  for (std::size_t i = 0; i < kComponentCount; ++i) m.cycles[i] = acc_[i].mean();
  return m;
}

double BreakdownReport::mean_total_cycles() const { return means().total(); }

std::string BreakdownReport::render() const {
  const double total = mean_total_cycles();
  TextTable table({"component", "mean cyc", "share", "max cyc"});
  for (std::size_t i = 0; i < kComponentCount; ++i) {
    if (acc_[i].max() <= 0.0) continue;
    table.add_row({component_name(static_cast<Component>(i)), strf("%.1f", acc_[i].mean()),
                   strf("%.1f%%", total > 0.0 ? acc_[i].mean() / total * 100.0 : 0.0),
                   strf("%.0f", acc_[i].max())});
  }
  table.add_row({"total", strf("%.1f", total), "100.0%", ""});
  return table.render();
}

std::string render_breakdown(const BreakdownMeans& means) {
  const double total = means.total();
  TextTable table({"component", "mean cyc", "share"});
  for (std::size_t i = 0; i < kComponentCount; ++i) {
    if (means.cycles[i] <= 0.0) continue;
    table.add_row({component_name(static_cast<Component>(i)), strf("%.1f", means.cycles[i]),
                   strf("%.1f%%", total > 0.0 ? means.cycles[i] / total * 100.0 : 0.0)});
  }
  table.add_row({"total", strf("%.1f", total), "100.0%"});
  return table.render();
}

std::string render_breakdown_comparison(const BreakdownMeans& predicted,
                                        const BreakdownMeans& simulated) {
  TextTable table({"component", "predicted cyc", "simulated cyc", "delta"});
  for (std::size_t i = 0; i < kComponentCount; ++i) {
    if (predicted.cycles[i] <= 0.0 && simulated.cycles[i] <= 0.0) continue;
    table.add_row({component_name(static_cast<Component>(i)), strf("%.1f", predicted.cycles[i]),
                   strf("%.1f", simulated.cycles[i]),
                   strf("%+.1f", predicted.cycles[i] - simulated.cycles[i])});
  }
  table.add_row({"total", strf("%.1f", predicted.total()), strf("%.1f", simulated.total()),
                 strf("%+.1f", predicted.total() - simulated.total())});
  return table.render();
}

}  // namespace clara::obs
