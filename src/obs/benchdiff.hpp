// Benchmark regression gating: `clara bench diff <old.json> <new.json>`.
//
// Compares two BENCH_perf.json runs (schema clara-bench-perf/1, written
// by bench/perf_micro — see docs/performance.md) metric by metric and
// flags regressions beyond a configurable relative threshold. The CLI
// exits nonzero when any metric regressed, which is what makes the perf
// trajectory *gateable* instead of merely visible: CI runs
//
//   perf_micro --json=new.json && clara bench diff BENCH_perf.json new.json
//
// Gating rules:
//   * lower-is-better metrics (ns_per_iter, *_ms): regressed when
//     new > old * (1 + threshold);
//   * higher-is-better metrics (speedup): regressed when
//     new < old * (1 - threshold); parallel speedups are not gated when
//     either run was oversubscribed (jobs > hardware threads) — wall
//     times still are;
//   * micros faster than `min_micro_ns` are reported but not gated
//     (timer noise dominates);
//   * scenarios present in only one run are reported, never gated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"

namespace clara::obs {

struct BenchDiffOptions {
  /// Relative change that counts as a regression (0.10 = 10%).
  double threshold = 0.10;
  /// Micros with an old ns_per_iter below this are not gated.
  double min_micro_ns = 100.0;
};

struct BenchDiffRow {
  enum class Status : std::uint8_t { kOk, kRegressed, kImproved, kSkipped };

  std::string scenario;  // "micro/simplex_solve", "parallel/sweep_replay", ...
  std::string metric;    // "ns_per_iter", "parallel_ms", "speedup", ...
  double old_value = 0.0;
  double new_value = 0.0;
  /// Signed relative change, (new - old) / old; 0 when old == 0.
  double change = 0.0;
  bool higher_is_better = false;
  Status status = Status::kOk;
  std::string note;
};

struct BenchDiffReport {
  std::vector<BenchDiffRow> rows;

  [[nodiscard]] bool has_regression() const;
  [[nodiscard]] std::size_t regressions() const;
  /// The comparison table plus a PASS/FAIL summary line.
  [[nodiscard]] std::string render(double threshold) const;
};

/// Compares two parsed BENCH_perf.json documents.
Result<BenchDiffReport, Error> diff_bench_json(const Json& old_run, const Json& new_run,
                                               const BenchDiffOptions& options = {});

/// Loads and compares two BENCH_perf.json files.
Result<BenchDiffReport, Error> diff_bench_files(const std::string& old_path,
                                                const std::string& new_path,
                                                const BenchDiffOptions& options = {});

}  // namespace clara::obs
