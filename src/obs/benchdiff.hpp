// Benchmark regression gating: `clara bench diff <old.json> <new.json>`.
//
// Compares two tracked benchmark runs metric by metric and flags
// regressions, which is what makes the perf *and accuracy* trajectories
// gateable instead of merely visible. Two schemas are understood, and
// diff_bench_files dispatches on the files' "schema" field:
//
//   * clara-bench-perf/1 (bench/perf_micro, docs/performance.md):
//     relative thresholds. Lower-is-better metrics (ns_per_iter, *_ms)
//     regress when new > old * (1 + threshold); higher-is-better
//     metrics (speedup) when new < old * (1 - threshold); parallel
//     speedups are not gated when either run was oversubscribed (wall
//     times still are); micros faster than `min_micro_ns` are reported
//     but not gated (timer noise dominates); scenarios present in only
//     one run are reported, never gated.
//
//   * clara-bench-accuracy/1 (bench/accuracy_summary via the obs
//     accuracy ledger, docs/observability.md): absolute tolerance
//     bands. Per-NF mean/p95 relative error regress when new exceeds
//     old by more than the metric's band in error points (errors are
//     small fractions, so relative thresholds on them would gate
//     noise); max_rel_err (a single worst point) is reported, not
//     gated. CI runs
//
//   accuracy_summary --json=new.json &&
//     clara bench diff BENCH_accuracy.json new.json
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"

namespace clara::obs {

struct BenchDiffOptions {
  /// Relative change that counts as a regression (0.10 = 10%).
  double threshold = 0.10;
  /// Micros with an old ns_per_iter below this are not gated.
  double min_micro_ns = 100.0;
  /// Tighter gate for the solver_pivot_ns micro: a per-pivot cost is
  /// averaged over thousands of deterministic pivots per iteration, so
  /// it is far less noisy than a wall-clock micro and a small drift is
  /// already a real engine regression.
  double pivot_threshold = 0.05;
};

/// Tolerance bands for accuracy gating, in absolute error points
/// (0.02 = a per-NF error may drift up by 2 points before failing).
struct AccuracyDiffOptions {
  double mean_band = 0.02;
  double p95_band = 0.04;
};

struct BenchDiffRow {
  enum class Status : std::uint8_t { kOk, kRegressed, kImproved, kSkipped };

  std::string scenario;  // "micro/simplex_solve", "parallel/sweep_replay", ...
  std::string metric;    // "ns_per_iter", "parallel_ms", "speedup", ...
  double old_value = 0.0;
  double new_value = 0.0;
  /// Signed relative change, (new - old) / old; 0 when old == 0.
  double change = 0.0;
  bool higher_is_better = false;
  Status status = Status::kOk;
  std::string note;
};

struct BenchDiffReport {
  std::vector<BenchDiffRow> rows;

  [[nodiscard]] bool has_regression() const;
  [[nodiscard]] std::size_t regressions() const;
  /// The comparison table plus a PASS/FAIL summary line.
  [[nodiscard]] std::string render(double threshold) const;
};

/// Compares two parsed BENCH_perf.json documents.
Result<BenchDiffReport, Error> diff_bench_json(const Json& old_run, const Json& new_run,
                                               const BenchDiffOptions& options = {});

/// Compares two parsed BENCH_accuracy.json documents under the
/// tolerance bands. Rows carry change = new - old in error points (the
/// render's percentage column reads as points, not relative change).
Result<BenchDiffReport, Error> diff_accuracy_json(const Json& old_run, const Json& new_run,
                                                  const AccuracyDiffOptions& options = {});

/// Loads two tracked benchmark files and dispatches on their "schema"
/// field (both files must agree). Perf runs use `options`, accuracy
/// runs use `accuracy_options`.
Result<BenchDiffReport, Error> diff_bench_files(const std::string& old_path,
                                                const std::string& new_path,
                                                const BenchDiffOptions& options = {},
                                                const AccuracyDiffOptions& accuracy_options = {});

}  // namespace clara::obs
