// Per-packet latency attribution — where a packet's cycles went.
//
// The simulator charges every advance of a packet's timeline to exactly
// one Component, so a PacketBreakdown's components sum to the packet's
// end-to-end latency by construction. The predictor produces the same
// decomposition analytically (BreakdownMeans), enabling side-by-side
// predicted-vs-simulated attribution: the per-component gap shows *why*
// the model disagrees with the simulator (e.g. EMEM cache hit-rate
// estimate vs. exact cache contents), not just by how much.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace clara::obs {

enum class Component : std::uint8_t {
  kIngress = 0,     // ingress hub wait+service and DMA/spill into CTM
  kQueueWait,       // waiting for a free hardware thread
  kCompute,         // NPU instruction execution (incl. software vcalls)
  kCsumAccel,       // checksum unit wait + service
  kCryptoAccel,     // crypto engine wait + service
  kLpmEngine,       // LPM engine front-end + DRAM match-action walk
  kMemLocal,        // local-memory accesses
  kMemCtm,          // CTM accesses (incl. packet head bytes)
  kMemImem,         // IMEM accesses
  kEmemCacheHit,    // EMEM accesses served by the cache
  kEmemCacheMiss,   // EMEM accesses going to DRAM
  kEgress,          // egress hub + wire-out (or drop handling)
};
inline constexpr std::size_t kComponentCount = 12;

const char* component_name(Component c);

/// One packet's cycle attribution, filled by the simulator.
struct PacketBreakdown {
  std::array<Cycles, kComponentCount> cycles{};

  void add(Component c, Cycles d) { cycles[static_cast<std::size_t>(c)] += d; }
  [[nodiscard]] Cycles total() const;
};

/// Mean per-packet attribution in cycles (doubles; the predictor's
/// analytic decomposition, and the aggregate view of simulated runs).
struct BreakdownMeans {
  std::array<double, kComponentCount> cycles{};

  void add(Component c, double d) { cycles[static_cast<std::size_t>(c)] += d; }
  [[nodiscard]] double at(Component c) const { return cycles[static_cast<std::size_t>(c)]; }
  [[nodiscard]] double total() const;
  /// this += weight * other (per-class aggregation in the predictor).
  void add_scaled(const BreakdownMeans& other, double weight);
};

/// Aggregates per-packet breakdowns over a simulated run: mean and
/// spread per component.
class BreakdownReport {
 public:
  void add(const PacketBreakdown& pb);

  [[nodiscard]] std::uint64_t packets() const { return packets_; }
  [[nodiscard]] const Accumulator& component(Component c) const {
    return acc_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] BreakdownMeans means() const;
  /// Sum of the per-component means == mean end-to-end latency.
  [[nodiscard]] double mean_total_cycles() const;

  /// ASCII table: component | mean cycles | share | max cycles.
  [[nodiscard]] std::string render() const;

 private:
  std::array<Accumulator, kComponentCount> acc_;
  std::uint64_t packets_ = 0;
};

/// ASCII table of a single attribution (the predictor's view).
std::string render_breakdown(const BreakdownMeans& means);

/// Side-by-side predicted-vs-simulated attribution with per-component
/// deltas.
std::string render_breakdown_comparison(const BreakdownMeans& predicted,
                                        const BreakdownMeans& simulated);

}  // namespace clara::obs
