// Pool self-profiling: where did the wall clock of a parallel region go?
//
// The thread pool attributes every lane's time to three buckets — task
// bodies (run), scheduling overhead (sched: task acquisition + enqueue),
// and idle waiting (barrier/starvation) — as monotonic counters
// (parallel::PoolStats). This module diffs two snapshots around a
// region and renders the per-lane attribution table that `clara profile
// <command>` prints:
//
//   lane      run ms   sched ms   idle ms   other ms   tasks   steals
//   worker0     41.2        0.3      10.1        0.1     312       18
//   caller      38.9        0.4       9.8       12.4     301        2
//   ...
//   wall 51.6 ms, lanes 4, attribution coverage 99.2%
//
// Coverage is the fraction of lanes x wall-clock the profiler can
// account for; the acceptance bar is >= 95% (docs/observability.md).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.hpp"

namespace clara::obs {

/// One lane's attributed time over the profiled region. `other_ns` is
/// the unattributed remainder of the region's wall clock: loop
/// bookkeeping for workers, serial (non-pool) execution for the caller.
struct ProfileLane {
  std::string name;  // "worker<i>" or "caller"
  std::uint64_t run_ns = 0;
  std::uint64_t sched_ns = 0;
  std::uint64_t idle_ns = 0;
  std::uint64_t other_ns = 0;
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;

  [[nodiscard]] std::uint64_t attributed_ns() const { return run_ns + sched_ns + idle_ns; }
};

struct ProfileReport {
  std::uint64_t wall_ns = 0;
  /// Concurrency over the region: worker lanes + the caller lane.
  std::size_t lane_count = 1;
  std::vector<ProfileLane> lanes;  // workers first, caller last
  std::uint64_t tasks_run = 0;
  std::uint64_t tasks_inline = 0;
  std::uint64_t steals = 0;
  std::uint64_t injected = 0;
  /// Per-task body duration histogram delta (log2 ns buckets).
  std::array<std::uint64_t, parallel::PoolStats::kTaskHistBuckets> task_ns_hist{};

  /// Fraction of (lane_count x wall_ns) the lanes account for,
  /// including the caller's serial remainder; in [0, 1].
  [[nodiscard]] double coverage() const;
  /// The attribution table plus summary lines (see header comment).
  [[nodiscard]] std::string render() const;
};

/// Builds the report from pool-stats snapshots taken before and after a
/// region that took `wall_ns` of wall-clock time.
ProfileReport profile_delta(const parallel::PoolStats& before, const parallel::PoolStats& after,
                            std::uint64_t wall_ns);

/// RAII-ish helper: snapshots the pool at construction, again in
/// finish(), and times the interval.
class ProfileScope {
 public:
  ProfileScope();
  [[nodiscard]] ProfileReport finish() const;

 private:
  parallel::PoolStats before_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace clara::obs
