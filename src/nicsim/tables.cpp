#include "nicsim/tables.hpp"

#include <cassert>

namespace clara::nicsim {

const char* to_string(MemLevel level) {
  switch (level) {
    case MemLevel::kLocal: return "local";
    case MemLevel::kCtm: return "ctm";
    case MemLevel::kImem: return "imem";
    case MemLevel::kEmem: return "emem";
  }
  return "?";
}

namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ExactTable::ExactTable(std::string name, std::uint64_t entries, Bytes entry_bytes, MemLevel placement)
    : name_(std::move(name)), entries_(entries), entry_bytes_(entry_bytes), placement_(placement) {
  assert(entries > 0);
  slots_.assign(entries, 0);
}

std::uint64_t ExactTable::slot_of(std::uint64_t key) const { return mix(key) % entries_; }

ExactTable::AccessPlan ExactTable::lookup(std::uint64_t key) const {
  AccessPlan plan;
  const std::uint64_t slot = slot_of(key);
  // Two dependent reads, as in a real chained hash table: the bucket
  // directory (8 B per slot, at the base of the allocation) and the
  // entry body (a separate array after the directory). Keeping them in
  // separate arrays means they land on distinct cache lines.
  plan.addr0 = base_ + slot * 8;
  plan.addr1 = base_ + entries_ * 8 + slot * entry_bytes_;
  plan.hit = slots_[slot] == key;
  return plan;
}

ExactTable::AccessPlan ExactTable::update(std::uint64_t key) {
  AccessPlan plan;
  const std::uint64_t slot = slot_of(key);
  plan.addr0 = base_ + slot * 8;
  plan.addr1 = base_ + entries_ * 8 + slot * entry_bytes_;
  plan.hit = slots_[slot] == key;
  if (slots_[slot] == 0 && key != 0) ++occupied_;
  slots_[slot] = key;
  return plan;
}

LpmTable::LpmTable(std::string name, std::uint64_t rule_entries, std::uint32_t flow_cache_capacity)
    : name_(std::move(name)), rule_entries_(rule_entries), flow_cache_(flow_cache_capacity) {}

LpmTable::Outcome LpmTable::lookup(std::uint64_t flow_key, bool use_flow_cache) {
  Outcome out;
  if (use_flow_cache && flow_cache_.capacity() > 0) {
    out.flow_cache_hit = flow_cache_.lookup_or_insert(flow_key);
  }
  out.walk_factor = 0.9 + 0.2 * static_cast<double>(mix(flow_key) & 0xff) / 255.0;
  return out;
}

}  // namespace clara::nicsim
