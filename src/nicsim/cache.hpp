// Set-associative LRU cache model (the EMEM cache and flow cache).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace clara::nicsim {

/// Exact set-associative cache with true-LRU replacement. Tracks hits
/// and misses; the simulator charges latencies based on the outcome.
class SetAssocCache {
 public:
  SetAssocCache(Bytes capacity, std::uint32_t line_bytes, std::uint32_t ways);

  /// Touches the line containing `addr`; returns true on hit. A miss
  /// fills the line (evicting LRU).
  bool access(std::uint64_t addr);

  void flush();

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double hit_rate() const {
    const auto total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }
  [[nodiscard]] std::uint32_t num_sets() const { return sets_; }
  [[nodiscard]] std::uint32_t ways() const { return ways_; }

 private:
  struct Line {
    std::uint64_t tag = ~0ULL;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  std::uint32_t line_bytes_;
  std::uint32_t sets_;
  std::uint32_t ways_;
  std::vector<Line> lines_;  // sets_ * ways_, row-major by set
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Fixed-capacity exact-match LRU table keyed by 64-bit ids (the flow
/// cache in front of the LPM engine). Doubly-linked intrusive LRU over
/// a flat vector — O(1) lookup/insert via an index map.
class LruTable {
 public:
  explicit LruTable(std::uint32_t capacity);

  /// Returns true if `key` was present (and refreshes it); inserts it
  /// (evicting the LRU victim when full) otherwise.
  bool lookup_or_insert(std::uint64_t key);

  [[nodiscard]] bool contains(std::uint64_t key) const;
  [[nodiscard]] std::uint32_t size() const { return size_; }
  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }
  void clear();

 private:
  void touch(std::uint32_t slot);
  void detach(std::uint32_t slot);
  void attach_front(std::uint32_t slot);

  struct Node {
    std::uint64_t key = 0;
    std::uint32_t prev = ~0u;
    std::uint32_t next = ~0u;
    bool used = false;
  };

  std::uint32_t capacity_;
  std::uint32_t size_ = 0;
  std::vector<Node> nodes_;
  std::uint32_t head_ = ~0u;  // MRU
  std::uint32_t tail_ = ~0u;  // LRU
  // key -> slot. Rebuilding a std::unordered_map on eviction is fine at
  // these sizes.
  std::unordered_map<std::uint64_t, std::uint32_t> index_;
};

}  // namespace clara::nicsim
