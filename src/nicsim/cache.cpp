#include "nicsim/cache.hpp"

#include <cassert>

namespace clara::nicsim {

SetAssocCache::SetAssocCache(Bytes capacity, std::uint32_t line_bytes, std::uint32_t ways)
    : line_bytes_(line_bytes), ways_(ways) {
  assert(line_bytes > 0 && ways > 0);
  // Exact set count (not rounded to a power of two): rounding down would
  // silently shrink a 3 MiB cache to 2 MiB of effective capacity, and
  // the predictor's hit-rate model uses the nominal capacity.
  const auto total_lines = static_cast<std::uint32_t>(capacity / line_bytes);
  sets_ = total_lines / ways;
  if (sets_ == 0) sets_ = 1;
  lines_.assign(static_cast<std::size_t>(sets_) * ways_, Line{});
}

bool SetAssocCache::access(std::uint64_t addr) {
  ++clock_;
  const std::uint64_t line_addr = addr / line_bytes_;
  const auto set = static_cast<std::uint32_t>(line_addr % sets_);
  // The full line address serves as the tag (a strict superset of the
  // conventional tag bits, so distinct lines never alias).
  const std::uint64_t tag = line_addr;

  Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
  Line* victim = base;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.last_use = clock_;
      ++hits_;
      return true;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.last_use < victim->last_use) {
      victim = &line;
    }
  }
  ++misses_;
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = clock_;
  return false;
}

void SetAssocCache::flush() {
  for (auto& line : lines_) line = Line{};
  clock_ = hits_ = misses_ = 0;
}

LruTable::LruTable(std::uint32_t capacity) : capacity_(capacity) {
  nodes_.resize(capacity == 0 ? 1 : capacity);
}

bool LruTable::lookup_or_insert(std::uint64_t key) {
  if (capacity_ == 0) return false;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    touch(it->second);
    return true;
  }
  std::uint32_t slot;
  if (size_ < capacity_) {
    slot = size_++;
  } else {
    slot = tail_;  // evict LRU
    detach(slot);
    index_.erase(nodes_[slot].key);
  }
  nodes_[slot].key = key;
  nodes_[slot].used = true;
  attach_front(slot);
  index_[key] = slot;
  return false;
}

bool LruTable::contains(std::uint64_t key) const { return index_.count(key) > 0; }

void LruTable::clear() {
  index_.clear();
  size_ = 0;
  head_ = tail_ = ~0u;
  for (auto& n : nodes_) n = Node{};
}

void LruTable::touch(std::uint32_t slot) {
  if (head_ == slot) return;
  detach(slot);
  attach_front(slot);
}

void LruTable::detach(std::uint32_t slot) {
  Node& n = nodes_[slot];
  if (n.prev != ~0u) nodes_[n.prev].next = n.next;
  if (n.next != ~0u) nodes_[n.next].prev = n.prev;
  if (head_ == slot) head_ = n.next;
  if (tail_ == slot) tail_ = n.prev;
  n.prev = n.next = ~0u;
}

void LruTable::attach_front(std::uint32_t slot) {
  Node& n = nodes_[slot];
  n.prev = ~0u;
  n.next = head_;
  if (head_ != ~0u) nodes_[head_].prev = slot;
  head_ = slot;
  if (tail_ == ~0u) tail_ = slot;
}

}  // namespace clara::nicsim
