#include "nicsim/sim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <functional>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace clara::nicsim {

NicConfig netronome_config() { return NicConfig{}; }

// ---------------------------------------------------------------------------
// NicApi

NicApi::NicApi(NicSim& sim, const workload::PacketMeta& pkt, Cycles start, int thread_id, std::uint64_t pkt_seq)
    : sim_(sim), pkt_(&pkt), now_(start), npu_(thread_id / sim.config_.threads_per_npu), pkt_seq_(pkt_seq) {}

void NicApi::compute(Cycles cycles) {
  charge(obs::Component::kCompute, cycles);
  sim_.core_busy_[static_cast<std::size_t>(npu_)] += cycles;
}

void NicApi::mem_access(MemLevel level, std::uint64_t addr, bool write) {
  (void)write;  // symmetric latencies in the reference configuration
  const NicConfig& cfg = sim_.config_;
  switch (level) {
    case MemLevel::kLocal:
      ++sim_.local_accesses_;
      charge(obs::Component::kMemLocal, cfg.local_latency);
      break;
    case MemLevel::kCtm:
      ++sim_.ctm_accesses_;
      charge(obs::Component::kMemCtm, cfg.ctm_latency);
      break;
    case MemLevel::kImem:
      ++sim_.imem_accesses_;
      charge(obs::Component::kMemImem, cfg.imem_latency);
      break;
    case MemLevel::kEmem: {
      const std::uint64_t access_seq = sim_.emem_accesses_++;
      const bool hit = sim_.emem_cache_.access(addr);
      if (hit) {
        charge(obs::Component::kEmemCacheHit, cfg.emem_cache_hit_latency);
      } else {
        // DRAM: full latency for the requester. The controller tracks
        // bandwidth occupancy for utilization/energy reporting only —
        // requests reach it in packet-processing order rather than true
        // event order, so a next-free reservation here would falsely
        // serialize one packet's early accesses behind another's late
        // ones (the deep-banked controller overlaps them in reality).
        sim_.emem_controller_.request(now_, cfg.emem_occupancy);
        charge(obs::Component::kEmemCacheMiss, cfg.emem_latency);
      }
      if (fault::inject("nicsim/emem_spike", access_seq)) {
        // Injected contention spike: the access stalls behind a burst of
        // competing DRAM traffic for factor× the nominal latency.
        charge(obs::Component::kEmemCacheMiss,
               cycles_from_double(static_cast<double>(cfg.emem_latency) *
                                  fault::site_factor("nicsim/emem_spike", 4.0)));
      }
      break;
    }
  }
}

void NicApi::packet_access(std::uint32_t offset) {
  const NicConfig& cfg = sim_.config_;
  if (offset < cfg.ctm_pkt_residency) {
    mem_access(MemLevel::kCtm, 0, false);
  } else {
    // Spilled tail lives in a per-packet EMEM region; rotating regions
    // model buffer recycling and create realistic cache pressure.
    const std::uint64_t base = (1ULL << 33) + (pkt_seq_ % 1024) * 2048;
    mem_access(MemLevel::kEmem, base + offset, false);
  }
}

void NicApi::parse() {
  const NicConfig& cfg = sim_.config_;
  compute(cfg.parse_base + static_cast<Cycles>(cfg.parse_per_byte * 40.0));
}

std::uint64_t NicApi::get_hdr(cir::HdrField f) {
  compute(sim_.config_.move_cycles);
  using cir::HdrField;
  switch (f) {
    case HdrField::kProto: return pkt_->proto;
    case HdrField::kSrcIp: return pkt_->src_ip;
    case HdrField::kDstIp: return pkt_->dst_ip;
    case HdrField::kSrcPort: return pkt_->src_port;
    case HdrField::kDstPort: return pkt_->dst_port;
    case HdrField::kTcpFlags: return pkt_->tcp_flags;
    case HdrField::kPayloadLen: return pkt_->payload_len;
    case HdrField::kPktLen: return pkt_->frame_len();
    case HdrField::kFlowHash: return pkt_->flow_hash();
  }
  return 0;
}

void NicApi::set_hdr(cir::HdrField f, std::uint64_t v) {
  (void)f;
  (void)v;  // metadata rewrite: semantics not needed, only the cycles
  compute(sim_.config_.move_cycles);
}

std::uint64_t NicApi::csum(std::uint32_t len, bool use_accel) {
  const NicConfig& cfg = sim_.config_;
  Cycles service = cycles_from_double(cfg.csum_accel_base + cfg.csum_accel_per_byte * len);
  if (use_accel) {
    if (fault::inject("nicsim/unit_throttle", sim_.accel_requests_++)) {
      service = cycles_from_double(static_cast<double>(service) *
                                   fault::site_factor("nicsim/unit_throttle", 4.0));
    }
    // The reservation delta covers queueing behind other packets plus
    // the service itself — the accelerator stall the breakdown reports.
    charge(obs::Component::kCsumAccel, sim_.csum_unit_.request(now_, service) - now_);
  } else {
    compute(service + cfg.csum_sw_extra);
  }
  return 0xbeef;  // deterministic placeholder checksum
}

void NicApi::crypto(std::uint32_t len, bool use_accel) {
  const NicConfig& cfg = sim_.config_;
  Cycles service = cycles_from_double(cfg.crypto_base + cfg.crypto_per_byte * len);
  if (use_accel) {
    if (fault::inject("nicsim/unit_throttle", sim_.accel_requests_++)) {
      service = cycles_from_double(static_cast<double>(service) *
                                   fault::site_factor("nicsim/unit_throttle", 4.0));
    }
    charge(obs::Component::kCryptoAccel, sim_.crypto_unit_.request(now_, service) - now_);
  } else {
    compute(cycles_from_double(static_cast<double>(service) * cfg.crypto_sw_factor));
  }
}

bool NicApi::table_lookup(ExactTable& table, std::uint64_t key) {
  const auto plan = table.lookup(key);
  compute(12 * sim_.config_.alu_cycles);  // hash + compare
  mem_access(table.placement(), plan.addr0, false);
  mem_access(table.placement(), plan.addr1, false);
  return plan.hit;
}

void NicApi::table_update(ExactTable& table, std::uint64_t key) {
  const auto plan = table.update(key);
  compute(14 * sim_.config_.alu_cycles);
  mem_access(table.placement(), plan.addr0, false);
  mem_access(table.placement(), plan.addr1, true);
  mem_access(table.placement(), plan.addr1, true);  // write-back of the entry body
}

bool NicApi::lpm_lookup(LpmTable& table, std::uint64_t key, bool use_flow_cache) {
  const NicConfig& cfg = sim_.config_;
  const auto outcome = table.lookup(key, use_flow_cache);
  if (use_flow_cache) {
    ++sim_.flow_cache_lookups_;
    if (outcome.flow_cache_hit) ++sim_.flow_cache_hits_;
  }
  // The SRAM front-end (flow-cache probe + dispatch) is a shared,
  // serially-reusable stage; a miss then walks the DRAM match-action
  // tables, which is memory-latency-bound and overlaps across threads,
  // so it is charged as wait time rather than unit occupancy.
  Cycles front_end = cfg.flow_cache_hit;
  if (fault::inject("nicsim/unit_throttle", sim_.accel_requests_++)) {
    front_end = cycles_from_double(static_cast<double>(front_end) *
                                   fault::site_factor("nicsim/unit_throttle", 4.0));
  }
  charge(obs::Component::kLpmEngine, sim_.lpm_unit_.request(now_, front_end) - now_);
  if (!outcome.flow_cache_hit) {
    charge(obs::Component::kLpmEngine,
           cycles_from_double((cfg.lpm_dram_base +
                               cfg.lpm_dram_per_entry * static_cast<double>(table.rule_entries())) *
                              outcome.walk_factor));
  }
  return outcome.flow_cache_hit;
}

void NicApi::lpm_lookup_sw(ExactTable& trie, std::uint64_t key) {
  // Radix-tree walk: log2(entries) levels, each a dependent access at
  // the trie's placement plus a few shifts/compares.
  const double entries = std::max<double>(2.0, static_cast<double>(trie.entries()));
  const auto depth = static_cast<std::uint32_t>(std::ceil(std::log2(entries)));
  std::uint64_t addr = trie.base() + (key % trie.entries()) * trie.entry_bytes();
  for (std::uint32_t level = 0; level < depth; ++level) {
    compute(4 * sim_.config_.alu_cycles);
    mem_access(trie.placement(), addr, false);
    addr = addr * 1103515245ULL + 12345;  // next node (dependent address)
    addr = trie.base() + addr % (trie.entries() * trie.entry_bytes());
  }
}

void NicApi::payload_scan() {
  const NicConfig& cfg = sim_.config_;
  const std::uint32_t len = pkt_->payload_len;
  // 64-byte chunks staged into local memory, then a per-byte automaton.
  for (std::uint32_t off = 0; off < len; off += 64) {
    packet_access(off);
  }
  compute(static_cast<Cycles>(len) * (3 * cfg.alu_cycles + cfg.branch_cycles));
}

void NicApi::meter(ExactTable& table, std::uint64_t key) {
  const auto plan = table.lookup(key);
  compute(10 * sim_.config_.alu_cycles);
  mem_access(table.placement(), plan.addr0, false);
  mem_access(table.placement(), plan.addr0, true);
}

void NicApi::stats_update(ExactTable& table, std::uint64_t key) {
  const auto plan = table.lookup(key);
  compute(4 * sim_.config_.alu_cycles);
  mem_access(table.placement(), plan.addr0, false);
  mem_access(table.placement(), plan.addr0, true);
}

void NicApi::mem_read(MemLevel level, std::uint64_t addr) { mem_access(level, addr, false); }
void NicApi::mem_write(MemLevel level, std::uint64_t addr) { mem_access(level, addr, true); }

void NicApi::emit() {
  // Egress requests reach the hub in completion order, not the arrival
  // order we process packets in; reserving the unit here would falsely
  // serialize fast packets behind slow ones. Its utilization is far from
  // saturation at the modeled rates, so charge latency and track load.
  sim_.egress_hub_.request(now_, sim_.config_.hub_service);  // busy accounting only
  charge(obs::Component::kEgress, sim_.config_.hub_service + sim_.config_.egress_base);
  done_ = true;
}

void NicApi::drop() {
  charge(obs::Component::kEgress, sim_.config_.egress_base / 4);
  done_ = true;
}

// ---------------------------------------------------------------------------
// NicSim

NicSim::NicSim(NicConfig config)
    : config_(config),
      emem_cache_(config.emem_cache_bytes, config.emem_cache_line, config.emem_cache_ways),
      core_busy_(static_cast<std::size_t>(config.total_npus()), 0),
      thread_free_(static_cast<std::size_t>(config.total_threads()), 0) {}

ExactTable& NicSim::create_table(std::string name, std::uint64_t entries, Bytes entry_bytes, MemLevel placement) {
  auto table = std::make_unique<ExactTable>(std::move(name), entries, entry_bytes, placement);
  auto& base = next_base_per_level_[static_cast<int>(placement)];
  table->set_base(base);
  base += table->address_span() + 4096;  // guard gap
  tables_.push_back(std::move(table));
  return *tables_.back();
}

LpmTable& NicSim::create_lpm(std::string name, std::uint64_t rule_entries, std::uint32_t flow_cache_capacity) {
  lpm_tables_.push_back(std::make_unique<LpmTable>(std::move(name), rule_entries, flow_cache_capacity));
  return *lpm_tables_.back();
}

void NicSim::reset_timeline() {
  emem_cache_.flush();
  csum_unit_.reset();
  crypto_unit_.reset();
  lpm_unit_.reset();
  emem_controller_.reset();
  ingress_hub_.reset();
  egress_hub_.reset();
  std::fill(core_busy_.begin(), core_busy_.end(), Cycles{0});
  std::fill(thread_free_.begin(), thread_free_.end(), Cycles{0});
  flow_cache_lookups_ = flow_cache_hits_ = 0;
  ctm_accesses_ = imem_accesses_ = local_accesses_ = emem_accesses_ = dma_bytes_ = 0;
  arrivals_ = accel_requests_ = 0;
}

NicSim::RunSnapshot NicSim::snapshot_counters() const {
  RunSnapshot snap;
  snap.cache_hits = emem_cache_.hits();
  snap.cache_misses = emem_cache_.misses();
  snap.ctm = ctm_accesses_;
  snap.imem = imem_accesses_;
  snap.emem = emem_accesses_;
  snap.local = local_accesses_;
  snap.dma = dma_bytes_;
  for (const auto& c : core_busy_) snap.core_busy += c;
  snap.accel_busy = csum_unit_.busy_cycles() + crypto_unit_.busy_cycles() + lpm_unit_.busy_cycles();
  return snap;
}

void NicSim::finalize_stats(RunStats& stats, const RunSnapshot& before, Cycles first_arrival,
                            Cycles last_completion) {
  const std::uint64_t cache_accesses =
      (emem_cache_.hits() - before.cache_hits) + (emem_cache_.misses() - before.cache_misses);
  stats.emem_cache_hit_rate =
      cache_accesses == 0
          ? 0.0
          : static_cast<double>(emem_cache_.hits() - before.cache_hits) / static_cast<double>(cache_accesses);
  stats.flow_cache_hit_rate =
      flow_cache_lookups_ == 0 ? 0.0 : static_cast<double>(flow_cache_hits_) / static_cast<double>(flow_cache_lookups_);
  if (last_completion > first_arrival && stats.packets > 0) {
    stats.achieved_pps = static_cast<double>(stats.packets) /
                         (static_cast<double>(last_completion - first_arrival) / config_.clock_hz);
  }

  // Energy from the exact busy/access counters accumulated this run.
  if (stats.packets > 0) {
    Cycles core_busy_now = 0;
    for (const auto& c : core_busy_) core_busy_now += c;
    const double core_cycles = static_cast<double>(core_busy_now - before.core_busy);
    const double accel_cycles = static_cast<double>(
        csum_unit_.busy_cycles() + crypto_unit_.busy_cycles() + lpm_unit_.busy_cycles() - before.accel_busy);
    double total_nj = core_cycles * config_.energy_npu_nj_per_cycle;
    total_nj += accel_cycles * config_.energy_accel_nj_per_cycle;
    total_nj += static_cast<double>(ctm_accesses_ - before.ctm) * config_.energy_ctm_nj;
    total_nj += static_cast<double>(imem_accesses_ - before.imem) * config_.energy_imem_nj;
    total_nj += static_cast<double>(emem_accesses_ - before.emem) * config_.energy_emem_nj;
    total_nj += static_cast<double>(local_accesses_ - before.local) * 0.1;
    total_nj += static_cast<double>(dma_bytes_ - before.dma) * config_.energy_dma_nj_per_byte;
    stats.energy_nj_per_packet = total_nj / static_cast<double>(stats.packets);
    const double span_s = last_completion > first_arrival
                              ? static_cast<double>(last_completion - first_arrival) / config_.clock_hz
                              : 0.0;
    stats.energy_watts = config_.energy_idle_watts + (span_s > 0.0 ? total_nj * 1e-9 / span_s : 0.0);
  }

  auto& registry = obs::metrics();
  registry.counter("nicsim/packets").inc(stats.packets);
  registry.counter("nicsim/drops").inc(stats.drops);
  auto& hist = registry.histogram("nicsim/latency_cycles");
  for (const auto v : stats.latency.samples()) hist.observe(v);
}

namespace {
/// Packets staged per batch through run()'s three stages. Big enough to
/// amortize loop overhead, small enough that a block's arrays stay in
/// L1 alongside the caches the programs touch.
constexpr std::size_t kSimBatch = 64;
}  // namespace

RunStats NicSim::run(NicProgram& program, const workload::Trace& trace) {
  CLARA_TRACE_SCOPE("nicsim/run");
  RunStats stats;
  stats.clock_hz = config_.clock_hz;
  stats.offered_pps = trace.profile.pps;
  stats.latency.reserve(trace.size());

  const double cycles_per_ns = config_.clock_hz / 1e9;
  const RunSnapshot before = snapshot_counters();
  timeline_dirty_ = true;

  // Reused per-batch arrays (capacity persists on the sim instance).
  Batch& b = batch_;
  b.arrival.resize(kSimBatch);
  b.ready.resize(kSimBatch);
  b.onramp.resize(kSimBatch);
  b.finish.resize(kSimBatch);
  b.dropped.resize(kSimBatch);

  // Earliest-available-thread heap, (free_at, thread) min order with the
  // same lowest-index tie-break as the linear scan it replaces. Entries
  // go stale when a thread is rebound; stale tops are discarded lazily
  // by comparing against thread_free_ (the authoritative value).
  b.thread_heap.clear();
  for (std::uint32_t t = 0; t < thread_free_.size(); ++t) {
    b.thread_heap.emplace_back(thread_free_[t], t);
  }
  std::make_heap(b.thread_heap.begin(), b.thread_heap.end(), std::greater<>{});

  // In-flight dispatch-time ring (the scalar path's deque, preallocated).
  b.inflight.assign(config_.ingress_queue_capacity + 1, 0);
  b.inflight_head = 0;
  b.inflight_size = 0;
  const std::size_t ring = b.inflight.size();

  Cycles last_completion = 0;
  Cycles first_arrival = ~Cycles{0};

  for (std::size_t base = 0; base < trace.packets.size(); base += kSimBatch) {
    const std::size_t n = std::min(kSimBatch, trace.packets.size() - base);

    // Stage A — arrival: clock conversion, injected wire loss, ingress
    // hub and DMA reservations. Everything here depends only on arrival
    // order and per-unit state, so it runs as a tight loop over the
    // block. Wire-dropped packets vanish before DMA or queue
    // accounting, exactly as in the scalar path.
    for (std::size_t i = 0; i < n; ++i) {
      const auto& pkt = trace.packets[base + i];
      const Cycles arrival = cycles_from_double(static_cast<double>(pkt.arrival_ns) * cycles_per_ns);
      b.arrival[i] = arrival;
      first_arrival = std::min(first_arrival, arrival);
      const std::uint64_t arrival_seq = arrivals_++;
      if (fault::inject("nicsim/drop", arrival_seq)) {
        b.dropped[i] = 1;
        ++stats.drops;
        continue;
      }
      b.dropped[i] = 0;
      const Cycles hub_done = ingress_hub_.request(arrival, config_.hub_service);
      const std::uint32_t frame = pkt.frame_len();
      Cycles dma = saturating_add(config_.ingress_base, cycles_from_double(config_.ingress_per_byte * frame));
      if (frame > config_.ctm_pkt_residency) {
        dma = saturating_add(
            dma, cycles_from_double(config_.spill_per_byte * static_cast<double>(frame - config_.ctm_pkt_residency)));
      }
      b.ready[i] = saturating_add(hub_done, dma);
      b.onramp[i] = (hub_done - arrival) + dma;
      dma_bytes_ += 2ULL * frame;  // in and back out
    }

    // Stage B — processing: queue admission, thread binding, and the
    // ported program, per packet in arrival order (the program mutates
    // caches and tables, so this order is the simulated semantics).
    for (std::size_t i = 0; i < n; ++i) {
      if (b.dropped[i]) continue;
      const auto& pkt = trace.packets[base + i];
      const Cycles ready = b.ready[i];

      // Queue occupancy: drop packets not yet dispatched when this one
      // becomes ready. arrival_seq for the fault key was consumed in
      // stage A; recompute it from the block position.
      while (b.inflight_size > 0 && b.inflight[b.inflight_head] <= ready) {
        b.inflight_head = (b.inflight_head + 1) % ring;
        --b.inflight_size;
      }
      const std::uint64_t arrival_seq = arrivals_ - n + i;
      if (b.inflight_size >= config_.ingress_queue_capacity ||
          fault::inject("nicsim/queue_overflow", arrival_seq)) {
        b.dropped[i] = 2;
        ++stats.drops;
        continue;
      }

      // Bind to the earliest-available hardware thread (lowest index on
      // ties, like the linear scan).
      std::uint32_t thread = 0;
      while (true) {
        std::pop_heap(b.thread_heap.begin(), b.thread_heap.end(), std::greater<>{});
        const auto [free_at, t] = b.thread_heap.back();
        b.thread_heap.pop_back();
        if (free_at == thread_free_[t]) {
          thread = t;
          break;
        }
        // Stale: the thread was rebound since this entry was pushed.
      }
      const Cycles start = std::max(ready, thread_free_[thread]);
      b.inflight[(b.inflight_head + b.inflight_size) % ring] = start;
      ++b.inflight_size;
      stats.queue_wait.add(static_cast<double>(start - ready));

      NicApi api(*this, pkt, start, static_cast<int>(thread), pkt_counter_++);
      program.handle(api);
      if (!api.done_) api.emit();  // programs that fall off the end emit

      thread_free_[thread] = api.now_;
      b.thread_heap.emplace_back(api.now_, thread);
      std::push_heap(b.thread_heap.begin(), b.thread_heap.end(), std::greater<>{});
      last_completion = std::max(last_completion, api.now_);
      b.finish[i] = api.now_;

      // Attribution: on-ramp (hub + DMA) and scheduling wait are
      // charged here; everything after `start` was charged inside
      // NicApi. The three pieces telescope to finish - arrival exactly.
      api.bd_.add(obs::Component::kIngress, b.onramp[i]);
      api.bd_.add(obs::Component::kQueueWait, start - ready);
      stats.breakdown.add(api.bd_);
    }

    // Stage C — statistics fold over the block's delivered packets.
    for (std::size_t i = 0; i < n; ++i) {
      if (b.dropped[i]) continue;
      const auto& pkt = trace.packets[base + i];
      const auto latency = static_cast<double>(b.finish[i] - b.arrival[i]);
      stats.latency.add(latency);
      if (pkt.is_tcp()) {
        stats.tcp_latency.add(latency);
        if (pkt.is_syn()) stats.syn_latency.add(latency);
      } else {
        stats.udp_latency.add(latency);
      }
      ++stats.packets;
    }
  }

  finalize_stats(stats, before, first_arrival, last_completion);
  return stats;
}

RunStats NicSim::run_scalar(NicProgram& program, const workload::Trace& trace) {
  CLARA_TRACE_SCOPE("nicsim/run_scalar");
  RunStats stats;
  stats.clock_hz = config_.clock_hz;
  stats.offered_pps = trace.profile.pps;
  stats.latency.reserve(trace.size());

  const double cycles_per_ns = config_.clock_hz / 1e9;
  const RunSnapshot before = snapshot_counters();
  timeline_dirty_ = true;

  std::deque<Cycles> in_flight_starts;  // dispatch times of queued packets
  Cycles last_completion = 0;
  Cycles first_arrival = ~Cycles{0};

  for (const auto& pkt : trace.packets) {
    const Cycles arrival = cycles_from_double(static_cast<double>(pkt.arrival_ns) * cycles_per_ns);
    first_arrival = std::min(first_arrival, arrival);

    // Injected wire-level loss: the packet vanishes at ingress, before
    // DMA or queue accounting. Keyed by the arrival ordinal.
    const std::uint64_t arrival_seq = arrivals_++;
    if (fault::inject("nicsim/drop", arrival_seq)) {
      ++stats.drops;
      continue;
    }

    // Ingress hub + DMA into CTM (with EMEM spill for big packets).
    const Cycles hub_done = ingress_hub_.request(arrival, config_.hub_service);
    const std::uint32_t frame = pkt.frame_len();
    Cycles dma = saturating_add(config_.ingress_base, cycles_from_double(config_.ingress_per_byte * frame));
    if (frame > config_.ctm_pkt_residency) {
      dma = saturating_add(
          dma, cycles_from_double(config_.spill_per_byte * static_cast<double>(frame - config_.ctm_pkt_residency)));
    }
    const Cycles ready = saturating_add(hub_done, dma);
    dma_bytes_ += 2ULL * frame;  // in and back out

    // Queue occupancy check: packets not yet dispatched when this one
    // becomes ready.
    while (!in_flight_starts.empty() && in_flight_starts.front() <= ready) in_flight_starts.pop_front();
    if (in_flight_starts.size() >= config_.ingress_queue_capacity ||
        fault::inject("nicsim/queue_overflow", arrival_seq)) {
      ++stats.drops;
      continue;
    }

    // Bind to the earliest-available hardware thread.
    const auto thread = static_cast<std::size_t>(
        std::min_element(thread_free_.begin(), thread_free_.end()) - thread_free_.begin());
    const Cycles start = std::max(ready, thread_free_[thread]);
    in_flight_starts.push_back(start);
    stats.queue_wait.add(static_cast<double>(start - ready));

    NicApi api(*this, pkt, start, static_cast<int>(thread), pkt_counter_++);
    program.handle(api);
    if (!api.done_) api.emit();  // programs that fall off the end emit

    thread_free_[thread] = api.now_;
    last_completion = std::max(last_completion, api.now_);

    // Attribution: on-ramp (hub + DMA) and scheduling wait are charged
    // here; everything after `start` was charged inside NicApi. The
    // three pieces telescope to api.now_ - arrival exactly.
    api.bd_.add(obs::Component::kIngress, (hub_done - arrival) + dma);
    api.bd_.add(obs::Component::kQueueWait, start - ready);
    stats.breakdown.add(api.bd_);

    const auto latency = static_cast<double>(api.now_ - arrival);
    stats.latency.add(latency);
    if (pkt.is_tcp()) {
      stats.tcp_latency.add(latency);
      if (pkt.is_syn()) stats.syn_latency.add(latency);
    } else {
      stats.udp_latency.add(latency);
    }
    ++stats.packets;
  }

  finalize_stats(stats, before, first_arrival, last_completion);
  return stats;
}

Cycles NicSim::measure_one(NicProgram& program, const workload::PacketMeta& pkt) {
  // Quiesce accelerator/core availability from earlier runs, but keep
  // cache and table contents (the caller controls warmup explicitly).
  csum_unit_.reset();
  crypto_unit_.reset();
  lpm_unit_.reset();
  emem_controller_.reset();
  ingress_hub_.reset();
  egress_hub_.reset();
  // Thread availability and core-busy counters are only read by run()
  // (scheduling) and by busy snapshots (deltas), never by this path, so
  // the hundreds of per-thread zeroes are needed at most once after a
  // run() — not on every microbenchmark iteration.
  if (timeline_dirty_) {
    std::fill(core_busy_.begin(), core_busy_.end(), Cycles{0});
    std::fill(thread_free_.begin(), thread_free_.end(), Cycles{0});
    timeline_dirty_ = false;
  }
  NicSim& self = *this;
  NicApi api(self, pkt, 0, 0, pkt_counter_++);
  // Charge the datapath on-ramp exactly like run().
  const std::uint32_t frame = pkt.frame_len();
  Cycles dma = saturating_add(config_.ingress_base, cycles_from_double(config_.ingress_per_byte * frame));
  if (frame > config_.ctm_pkt_residency) {
    dma = saturating_add(
        dma, cycles_from_double(config_.spill_per_byte * static_cast<double>(frame - config_.ctm_pkt_residency)));
  }
  api.charge(obs::Component::kIngress, saturating_add(config_.hub_service, dma));
  program.handle(api);
  if (!api.done_) api.emit();
  return api.now_;
}

}  // namespace clara::nicsim
