// Simulator configuration.
//
// nicsim is this repository's stand-in for physical SmartNIC hardware
// (DESIGN.md §6): a cycle-accounting model of a Netronome-like device.
// The default configuration mirrors the numbers the paper reports for
// the Agilio CX in §3.2, and deliberately matches the databook defaults
// in lnic::netronome_agilio_cx() — the prediction-vs-measurement gap
// then comes from model abstraction (cache hit-rate estimates vs. exact
// cache contents, contention, queueing), exactly as on real silicon.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace clara::nicsim {

struct NicConfig {
  // Topology. (The physical Agilio CX carries dozens of microengines;
  // 4x7 keeps simulation fast while preserving island structure and
  // enough thread-level parallelism that offered loads up to ~100 kpps
  // do not saturate artificially.)
  int islands = 4;
  int npus_per_island = 7;
  int threads_per_npu = 8;

  // Memory hierarchy (sizes and access cycles).
  Bytes local_bytes = 4_KiB;
  Bytes ctm_bytes = 256_KiB;
  Bytes imem_bytes = 4_MiB;
  Bytes emem_bytes = 8_GiB;
  Cycles local_latency = 2;
  Cycles ctm_latency = 50;
  Cycles imem_latency = 250;
  Cycles emem_latency = 500;
  double remote_ctm_factor = 2.0;  // NUMA multiplier for cross-island CTM

  // EMEM cache (3 MB on the Agilio CX).
  Bytes emem_cache_bytes = 3_MiB;
  std::uint32_t emem_cache_line = 64;
  std::uint32_t emem_cache_ways = 8;
  Cycles emem_cache_hit_latency = 150;

  // NPU instruction classes.
  Cycles alu_cycles = 1;
  Cycles mul_cycles = 5;
  Cycles div_cycles = 20;
  Cycles branch_cycles = 2;
  Cycles move_cycles = 3;  // metadata modification

  // Header parsing (CTM -> local copy dominates; ~150 cycles total for a
  // 40-byte header).
  Cycles parse_base = 110;
  double parse_per_byte = 1.0;

  // Checksum: accelerator curve base + slope; NPU software pays extra.
  double csum_accel_base = 60.0;
  double csum_accel_per_byte = 0.24;
  Cycles csum_sw_extra = 1700;

  // Crypto engine.
  double crypto_base = 200.0;
  double crypto_per_byte = 1.0;
  double crypto_sw_factor = 25.0;

  // Match-action LPM engine: DRAM table walk grows with entries; the
  // flow cache is an SRAM exact-match front-end.
  double lpm_dram_base = 5000.0;
  double lpm_dram_per_entry = 40.0;
  Cycles flow_cache_hit = 200;
  std::uint32_t flow_cache_entries = 4096;

  // Packet datapath.
  Cycles ingress_base = 500;
  double ingress_per_byte = 3.5;
  Cycles egress_base = 400;
  Bytes ctm_pkt_residency = 1024;  // larger packets spill their tail to EMEM
  double spill_per_byte = 2.0;

  // Switch hub service per packet and queue capacity.
  Cycles hub_service = 40;
  std::uint32_t ingress_queue_capacity = 512;

  double clock_hz = 800e6;

  // Energy model (paper §6 extension): active nJ per busy cycle on
  // cores/accelerators, per memory access by level, per DMA'd byte, and
  // the device's static idle power. Defaults put the device at ~15 W
  // idle / ~25 W busy (Agilio CX class).
  double energy_npu_nj_per_cycle = 0.15;
  double energy_accel_nj_per_cycle = 0.30;
  double energy_ctm_nj = 0.8;
  double energy_imem_nj = 2.0;
  double energy_emem_nj = 12.0;
  double energy_dma_nj_per_byte = 0.05;
  double energy_idle_watts = 15.0;

  /// EMEM controller occupancy per access (bandwidth contention):
  /// concurrent DRAM accesses serialize at this granularity even though
  /// each requester experiences the full latency.
  Cycles emem_occupancy = 8;

  [[nodiscard]] int total_threads() const { return islands * npus_per_island * threads_per_npu; }
  [[nodiscard]] int total_npus() const { return islands * npus_per_island; }

  /// Cycles per second -> cycles per packet at a given rate.
  [[nodiscard]] double cycles_per_packet(double pps) const { return clock_hz / pps; }
};

/// The reference configuration (paper §3.2 numbers).
NicConfig netronome_config();

}  // namespace clara::nicsim
