// NF state tables living on the simulated NIC.
//
// A ported program declares its tables with an explicit memory placement
// (the "offloading strategy" knob the paper's Figure 1 varies for the
// firewall NF); the simulator models their content exactly so hit/miss
// behaviour — and therefore cache behaviour in EMEM — is real.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "nicsim/cache.hpp"

namespace clara::nicsim {

/// Memory levels a program can place state in (local memory is per-NPU
/// and too small for shared tables).
enum class MemLevel : std::uint8_t { kLocal, kCtm, kImem, kEmem };

const char* to_string(MemLevel level);

/// Exact-match table with open addressing semantics: a lookup touches
/// the hashed bucket, then the entry; the simulator turns those touches
/// into memory accesses at the table's placement level. Contents are
/// modeled precisely (bounded capacity, slot collisions evict).
class ExactTable {
 public:
  ExactTable(std::string name, std::uint64_t entries, Bytes entry_bytes, MemLevel placement);

  struct AccessPlan {
    std::uint64_t addr0 = 0;  // bucket
    std::uint64_t addr1 = 0;  // entry
    bool hit = false;
  };

  /// Models a lookup: computes the addresses a real implementation
  /// would touch and whether the key is present.
  AccessPlan lookup(std::uint64_t key) const;

  /// Insert/overwrite; returns the addresses written. When the slot is
  /// occupied by a different key, the old key is evicted (bounded
  /// table, as on the NIC).
  AccessPlan update(std::uint64_t key);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t entries() const { return entries_; }
  [[nodiscard]] Bytes entry_bytes() const { return entry_bytes_; }
  [[nodiscard]] MemLevel placement() const { return placement_; }
  [[nodiscard]] Bytes footprint() const { return entries_ * entry_bytes_; }
  /// Full address span including the bucket directory (8 B per slot)
  /// that precedes the entry storage.
  [[nodiscard]] Bytes address_span() const { return entries_ * 8 + footprint(); }
  [[nodiscard]] std::uint64_t occupied() const { return occupied_; }
  /// Base address within its level's address space (assigned by the sim).
  void set_base(std::uint64_t base) { base_ = base; }
  [[nodiscard]] std::uint64_t base() const { return base_; }

 private:
  [[nodiscard]] std::uint64_t slot_of(std::uint64_t key) const;

  std::string name_;
  std::uint64_t entries_;
  Bytes entry_bytes_;
  MemLevel placement_;
  std::uint64_t base_ = 0;
  std::vector<std::uint64_t> slots_;  // key per slot; 0 = empty
  std::uint64_t occupied_ = 0;
};

/// Longest-prefix-match table behind the match-action engine. The DRAM
/// walk cost grows with the rule count; the SRAM flow cache shortcuts
/// repeat flows.
class LpmTable {
 public:
  LpmTable(std::string name, std::uint64_t rule_entries, std::uint32_t flow_cache_capacity);

  struct Outcome {
    bool flow_cache_hit = false;
    /// Key-dependent DRAM walk-depth multiplier (~0.9-1.1): different
    /// keys terminate their match-action walk at different depths, so
    /// per-packet lookup cost varies around the mean curve.
    double walk_factor = 1.0;
  };

  /// Models one lookup keyed by the flow hash. When `use_flow_cache` is
  /// false the cache is bypassed entirely (the paper's slow LPM
  /// variant).
  Outcome lookup(std::uint64_t flow_key, bool use_flow_cache);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t rule_entries() const { return rule_entries_; }
  [[nodiscard]] const LruTable& flow_cache() const { return flow_cache_; }

 private:
  std::string name_;
  std::uint64_t rule_entries_;
  LruTable flow_cache_;
};

}  // namespace clara::nicsim
