// The SmartNIC simulator ("hardware" stand-in — DESIGN.md §6).
//
// Execution model: each packet is DMA'd in at its arrival time, queued
// at the ingress hub, bound to one NPU hardware thread for its whole
// lifetime (Netronome behaviour), processed by a ported NicProgram that
// charges cycles through NicApi, and emitted. Cycle accounting uses
// timeline reservation:
//
//   * compute advances the packet's own thread timeline — the cores are
//     barrel processors that interleave their threads at instruction
//     granularity, so per-packet compute does not block siblings (a
//     single next-free reservation would falsely serialize a packet's
//     trailing compute against the next packet's leading compute across
//     a long memory wait); aggregate per-core utilization is tracked for
//     reporting;
//   * shared accelerators (checksum, crypto, LPM engine) and the EMEM
//     controller are serially-reusable resources with next-free
//     timestamps, so contention and head-of-line blocking emerge
//     naturally;
//   * the EMEM cache and the LPM flow cache are simulated exactly
//     (set-associative LRU / LRU table), so working-set effects are
//     real, not estimated.
//
// Approximation note: shared resources are reserved in packet arrival
// order rather than true event order; at the simulated load levels the
// reordering window is a few packets and the error is far below the
// predictor-vs-hardware gap being studied.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cir/vcalls.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "nicsim/cache.hpp"
#include "nicsim/config.hpp"
#include "nicsim/tables.hpp"
#include "obs/breakdown.hpp"
#include "workload/tracegen.hpp"

namespace clara::nicsim {

/// Serially-reusable resource with a next-free timestamp.
class ServiceUnit {
 public:
  /// Reserves `service` cycles starting no earlier than `now`; returns
  /// the completion time. Saturates instead of wrapping: a replay long
  /// enough (or a service value extreme enough) to exhaust the 64-bit
  /// cycle space pins the unit at the end of time rather than silently
  /// reordering every later reservation.
  Cycles request(Cycles now, Cycles service) {
    const Cycles start = std::max(now, next_free_);
    next_free_ = saturating_add(start, service);
    busy_ = saturating_add(busy_, service);
    return next_free_;
  }
  [[nodiscard]] Cycles busy_cycles() const { return busy_; }
  void reset() { next_free_ = busy_ = 0; }

 private:
  Cycles next_free_ = 0;
  Cycles busy_ = 0;
};

struct RunStats {
  Series latency;  // cycles, per delivered packet
  Accumulator tcp_latency;
  Accumulator udp_latency;
  Accumulator syn_latency;
  Accumulator queue_wait;
  std::uint64_t packets = 0;
  std::uint64_t drops = 0;
  double emem_cache_hit_rate = 0.0;
  double flow_cache_hit_rate = 0.0;
  double offered_pps = 0.0;
  double achieved_pps = 0.0;
  double clock_hz = 0.0;
  /// Measured dynamic energy per delivered packet (nJ) and device power
  /// at the offered rate (idle + dynamic), from exact busy counters.
  double energy_nj_per_packet = 0.0;
  double energy_watts = 0.0;
  /// Measured per-packet latency attribution. Every advance of a
  /// packet's timeline is charged to exactly one component, so the
  /// component means sum to mean_latency() in exact integer cycles
  /// (before the per-packet division).
  obs::BreakdownReport breakdown;

  [[nodiscard]] double mean_latency() const { return latency.mean(); }
  [[nodiscard]] double p99_latency() const { return latency.percentile(0.99); }
};

class NicSim;

/// The programming surface for "manually ported" NFs. Every method both
/// models the semantics (table contents, cache state) and charges cycles
/// to the calling packet's timeline.
class NicApi {
 public:
  [[nodiscard]] const workload::PacketMeta& pkt() const { return *pkt_; }
  [[nodiscard]] Cycles now() const { return now_; }

  /// Parse L2-L4 headers (CTM -> local copy on the NPU).
  void parse();
  /// Read/modify header metadata (a few cycles each).
  std::uint64_t get_hdr(cir::HdrField f);
  void set_hdr(cir::HdrField f, std::uint64_t v);
  /// Raw compute on the owning NPU core.
  void compute(Cycles cycles);
  /// L4 checksum over `len` payload bytes; `use_accel` selects the
  /// ingress checksum unit vs. NPU software.
  std::uint64_t csum(std::uint32_t len, bool use_accel);
  /// AES over `len` bytes on the crypto engine (or software).
  void crypto(std::uint32_t len, bool use_accel = true);
  /// Exact-match table ops: hash compute + placement-level accesses.
  bool table_lookup(ExactTable& table, std::uint64_t key);
  void table_update(ExactTable& table, std::uint64_t key);
  /// LPM via the match-action engine; returns true on flow-cache hit.
  bool lpm_lookup(LpmTable& table, std::uint64_t key, bool use_flow_cache);
  /// Software LPM on the NPU: trie walk over a table placed in memory.
  void lpm_lookup_sw(ExactTable& trie, std::uint64_t key);
  /// DPI byte scan over the packet payload.
  void payload_scan();
  /// Token-bucket metering / statistics counters on placed state.
  void meter(ExactTable& table, std::uint64_t key);
  void stats_update(ExactTable& table, std::uint64_t key);
  /// Raw memory access at a level (microbenchmark surface).
  void mem_read(MemLevel level, std::uint64_t addr);
  void mem_write(MemLevel level, std::uint64_t addr);
  /// Terminal actions.
  void emit();
  void drop();

 private:
  friend class NicSim;
  NicApi(NicSim& sim, const workload::PacketMeta& pkt, Cycles start, int thread_id, std::uint64_t pkt_seq);

  /// One access to `level`; EMEM consults the cache and the controller.
  void mem_access(MemLevel level, std::uint64_t addr, bool write);
  /// Access to packet byte at `offset` (CTM head or spilled EMEM tail).
  void packet_access(std::uint32_t offset);

  /// Advances the packet's timeline and charges the delta to one
  /// breakdown component — the only way now_ moves inside the API, so
  /// the components provably sum to the processing time. Saturating for
  /// the same reason as ServiceUnit::request.
  void charge(obs::Component c, Cycles delta) {
    now_ = saturating_add(now_, delta);
    bd_.add(c, delta);
  }

  NicSim& sim_;
  const workload::PacketMeta* pkt_;
  Cycles now_;
  int npu_;
  std::uint64_t pkt_seq_;
  obs::PacketBreakdown bd_;
  bool done_ = false;
};

class NicProgram {
 public:
  virtual ~NicProgram() = default;
  virtual void handle(NicApi& api) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

class NicSim {
 public:
  explicit NicSim(NicConfig config = netronome_config());

  /// Declares a state table placed at a memory level. The simulator
  /// assigns disjoint address ranges per level so EMEM-placed tables
  /// contend in the cache realistically. Returned references stay valid
  /// for the simulator's lifetime.
  ExactTable& create_table(std::string name, std::uint64_t entries, Bytes entry_bytes, MemLevel placement);
  LpmTable& create_lpm(std::string name, std::uint64_t rule_entries, std::uint32_t flow_cache_capacity);

  /// Runs a trace through the program; packets arrive at their trace
  /// timestamps (converted to cycles at the device clock). Packets move
  /// through the datapath in batched structure-of-arrays form: the
  /// arrival stage (wire faults, ingress hub, DMA) fills per-block
  /// arrays, the processing stage binds and runs each admitted packet
  /// in arrival order, and the statistics stage folds the block —
  /// bit-identical to per-packet processing because every piece of
  /// mutable simulator state is still touched in arrival order
  /// (asserted against run_scalar by the SoA equivalence suite).
  RunStats run(NicProgram& program, const workload::Trace& trace);

  /// The original one-packet-at-a-time loop, kept as the reference
  /// implementation the equivalence suite checks run() against.
  RunStats run_scalar(NicProgram& program, const workload::Trace& trace);

  /// Latency of a single packet on an otherwise idle NIC (microbenchmark
  /// path; does not disturb steady-state statistics).
  Cycles measure_one(NicProgram& program, const workload::PacketMeta& pkt);

  /// Clears caches, accelerator timelines and thread availability (table
  /// *contents* persist — call create_table again for a cold table).
  void reset_timeline();

  [[nodiscard]] const NicConfig& config() const { return config_; }
  [[nodiscard]] const SetAssocCache& emem_cache() const { return emem_cache_; }

 private:
  friend class NicApi;

  /// Counter snapshot taken at run entry; cache/energy rates are
  /// reported as deltas against it (counters accumulate across runs on
  /// the same simulator instance).
  struct RunSnapshot {
    std::uint64_t cache_hits = 0, cache_misses = 0;
    std::uint64_t ctm = 0, imem = 0, emem = 0, local = 0, dma = 0;
    Cycles core_busy = 0, accel_busy = 0;
  };
  [[nodiscard]] RunSnapshot snapshot_counters() const;
  /// Rates, energy, and metrics shared by run() and run_scalar().
  void finalize_stats(RunStats& stats, const RunSnapshot& before, Cycles first_arrival,
                      Cycles last_completion);

  NicConfig config_;
  SetAssocCache emem_cache_;
  ServiceUnit csum_unit_;
  ServiceUnit crypto_unit_;
  ServiceUnit lpm_unit_;
  ServiceUnit emem_controller_;
  ServiceUnit ingress_hub_;
  ServiceUnit egress_hub_;
  std::vector<Cycles> core_busy_;
  std::vector<Cycles> thread_free_;
  /// Reused structure-of-arrays block for run(): one entry per packet
  /// of the current batch, refilled stage by stage. Lives on the sim
  /// (not the stack) so capacity survives across runs — the arena
  /// allocation the batched loop never repeats.
  struct Batch {
    std::vector<Cycles> arrival;
    std::vector<Cycles> ready;
    std::vector<Cycles> onramp;  // (hub_done - arrival) + dma, for attribution
    std::vector<Cycles> finish;
    std::vector<std::uint8_t> dropped;
    /// Min-heap of (free_at, thread) with lazy invalidation — replaces
    /// a linear scan over every hardware thread per packet.
    std::vector<std::pair<Cycles, std::uint32_t>> thread_heap;
    /// Ring buffer of dispatch times of queued packets (the deque the
    /// scalar loop uses, without its allocation).
    std::vector<Cycles> inflight;
    std::size_t inflight_head = 0;
    std::size_t inflight_size = 0;
  };
  Batch batch_;
  /// True when run() has dirtied thread availability; lets measure_one
  /// skip re-zeroing hundreds of per-thread timestamps on the (hot)
  /// microbenchmark path when there is nothing to clear.
  bool timeline_dirty_ = false;
  std::vector<std::unique_ptr<ExactTable>> tables_;
  std::vector<std::unique_ptr<LpmTable>> lpm_tables_;
  std::uint64_t next_base_per_level_[4] = {0, 0, 0, 0};
  std::uint64_t pkt_counter_ = 0;
  // Sim-local invocation counters used as deterministic fault-injection
  // keys (a NicSim instance is single-threaded, so these are exact
  // arrival/request ordinals independent of --jobs).
  std::uint64_t arrivals_ = 0;
  std::uint64_t accel_requests_ = 0;
  std::uint64_t flow_cache_lookups_ = 0;
  std::uint64_t flow_cache_hits_ = 0;
  // Energy accounting.
  std::uint64_t ctm_accesses_ = 0;
  std::uint64_t imem_accesses_ = 0;
  std::uint64_t local_accesses_ = 0;
  std::uint64_t emem_accesses_ = 0;
  std::uint64_t dma_bytes_ = 0;
};

}  // namespace clara::nicsim
