#include "common/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace clara {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four words via splitmix64 as recommended by the xoshiro
  // authors; guards against the all-zero state.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection: retry while in the biased zone.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  return lo + next_below(hi - lo + 1);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  // Inverse CDF; guard the log argument away from zero.
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha) : alpha_(alpha) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf_[i] = total;
  }
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // defend against accumulated rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  assert(rank < cdf_.size());
  const double hi = cdf_[rank];
  const double lo = rank == 0 ? 0.0 : cdf_[rank - 1];
  return hi - lo;
}

}  // namespace clara
