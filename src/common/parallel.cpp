#include "common/parallel.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

namespace clara::parallel {

namespace {

struct Task {
  std::function<void()> fn;
  TaskGroup* group = nullptr;
};

/// Bounded Chase-Lev deque (Lê/Pop/Cocchiarella/Zappa Nardelli's
/// fence-free formulation: top/bottom are seq_cst, slots are
/// acquire/release). The owner pushes and pops at the bottom; any other
/// thread steals from the top. A full deque rejects the push and the
/// caller runs the task inline — safe, just momentarily less parallel.
class WorkDeque {
 public:
  static constexpr std::size_t kCapacity = 1 << 13;

  bool push(Task* task) {  // owner only
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    const std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (b - t >= static_cast<std::int64_t>(kCapacity)) return false;
    slots_[static_cast<std::size_t>(b) & kMask].store(task, std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  Task* pop() {  // owner only
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty: undo
      bottom_.store(b + 1, std::memory_order_seq_cst);
      return nullptr;
    }
    Task* task = slots_[static_cast<std::size_t>(b) & kMask].load(std::memory_order_acquire);
    if (t == b) {  // last element: race the thieves for it
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst)) task = nullptr;
      bottom_.store(b + 1, std::memory_order_seq_cst);
    }
    return task;
  }

  Task* steal() {  // any thread
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Task* task = slots_[static_cast<std::size_t>(t) & kMask].load(std::memory_order_acquire);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst)) return nullptr;
    return task;
  }

  [[nodiscard]] bool empty() const {
    return bottom_.load(std::memory_order_relaxed) <= top_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kMask = kCapacity - 1;
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::array<std::atomic<Task*>, kCapacity> slots_{};
};

struct WorkerState {
  WorkDeque deque;
  std::atomic<std::uint64_t> busy_ns{0};
  std::atomic<std::uint64_t> sched_ns{0};
  std::atomic<std::uint64_t> idle_ns{0};
  std::atomic<std::uint64_t> tasks{0};
  std::atomic<std::uint64_t> steals{0};
};

std::atomic<std::size_t> g_jobs{0};  // 0 = uninitialized, use default

std::atomic<PoolEventHook> g_pool_hook{nullptr};

inline void fire_hook(PoolEvent event, std::uint64_t lane, std::uint64_t arg) {
  if (PoolEventHook hook = g_pool_hook.load(std::memory_order_relaxed)) hook(event, lane, arg);
}

inline std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0,
                                std::chrono::steady_clock::time_point t1) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

/// log2 bucket for the task-duration histogram: [2^(i-1), 2^i) ns.
inline std::size_t task_hist_bucket(std::uint64_t ns) {
  return std::min<std::size_t>(std::bit_width(ns), PoolStats::kTaskHistBuckets - 1);
}

}  // namespace

void set_pool_event_hook(PoolEventHook hook) {
  g_pool_hook.store(hook, std::memory_order_relaxed);
}

struct ThreadPool::Impl {
  std::vector<std::unique_ptr<WorkerState>> states;
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};

  std::mutex injector_mu;
  std::deque<Task*> injector;
  std::condition_variable wake;

  std::atomic<std::uint64_t> tasks_run{0};
  std::atomic<std::uint64_t> tasks_inline{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> injected{0};

  // The "caller lane": aggregate attribution across every external
  // thread that enqueues or helps execute tasks (TaskGroup::run/wait).
  std::atomic<std::uint64_t> inline_run_ns{0};
  std::atomic<std::uint64_t> inline_sched_ns{0};
  std::atomic<std::uint64_t> inline_idle_ns{0};
  std::atomic<std::uint64_t> inline_steals{0};
  std::array<std::atomic<std::uint64_t>, PoolStats::kTaskHistBuckets> task_hist{};

  ~Impl() { shutdown(); }

  void spawn(std::size_t n) {
    stop.store(false, std::memory_order_relaxed);
    states.clear();
    states.reserve(n);
    for (std::size_t i = 0; i < n; ++i) states.push_back(std::make_unique<WorkerState>());
    threads.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      threads.emplace_back([this, i] { worker_loop(i); });
    }
  }

  void shutdown() {
    stop.store(true, std::memory_order_seq_cst);
    wake.notify_all();
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
    threads.clear();
    // Drain any stranded injector tasks inline (none in normal use: a
    // resize only happens with no region in flight).
    for (;;) {
      Task* task = pop_injector();
      if (!task) break;
      execute(task, kInlineLane);
    }
    states.clear();
  }

  Task* pop_injector() {
    std::lock_guard<std::mutex> lock(injector_mu);
    if (injector.empty()) return nullptr;
    Task* task = injector.front();
    injector.pop_front();
    return task;
  }

  Task* try_steal(std::size_t self, std::uint64_t lane) {
    const std::size_t n = states.size();
    for (std::size_t k = 1; k <= n; ++k) {
      const std::size_t victim = (self + k) % n;
      if (victim == self) continue;
      if (Task* task = states[victim]->deque.steal()) {
        steals.fetch_add(1, std::memory_order_relaxed);
        if (lane < states.size()) {
          states[lane]->steals.fetch_add(1, std::memory_order_relaxed);
        } else {
          inline_steals.fetch_add(1, std::memory_order_relaxed);
        }
        fire_hook(PoolEvent::kSteal, lane, victim);
        return task;
      }
    }
    return nullptr;
  }

  /// Own deque (workers), then injector, then steal.
  Task* acquire(std::size_t worker_id) {
    if (worker_id < states.size()) {
      if (Task* task = states[worker_id]->deque.pop()) return task;
    }
    if (Task* task = pop_injector()) return task;
    if (!states.empty()) {
      const std::size_t start = worker_id < states.size() ? worker_id : 0;
      const std::uint64_t lane = worker_id < states.size() ? worker_id : kInlineLane;
      if (Task* task = try_steal(start, lane)) return task;
    }
    return nullptr;
  }

  /// Runs a task on `lane` (a worker index, or kInlineLane for external
  /// threads), timing the body and attributing it to the lane's counters
  /// and the shared task-duration histogram.
  void execute(Task* task, std::uint64_t lane) {
    fire_hook(PoolEvent::kTaskStart, lane, 0);
    const auto t0 = std::chrono::steady_clock::now();
    task->fn();
    const std::uint64_t dur = elapsed_ns(t0, std::chrono::steady_clock::now());
    TaskGroup* group = task->group;
    // Decrement before deleting the task: a detached group (submit())
    // lives inside the task's own captures, and its destructor waits for
    // pending_ to reach zero — deleting first would self-deadlock. The
    // group pointer is copied out and never touched after the decrement,
    // so an owner destroying the group the moment wait() returns is safe.
    if (group) group->pending_.fetch_sub(1, std::memory_order_release);
    delete task;
    if (lane < states.size()) {
      WorkerState& state = *states[lane];
      state.busy_ns.fetch_add(dur, std::memory_order_relaxed);
      state.tasks.fetch_add(1, std::memory_order_relaxed);
    } else {
      inline_run_ns.fetch_add(dur, std::memory_order_relaxed);
    }
    task_hist[task_hist_bucket(dur)].fetch_add(1, std::memory_order_relaxed);
    fire_hook(PoolEvent::kTaskStop, lane, dur);
  }

  void worker_loop(std::size_t id);
  void enqueue(Task* task, std::size_t worker_id);
};

namespace {
/// Which pool worker the current thread is (kNotWorker for externals).
constexpr std::size_t kNotWorker = ~std::size_t{0};
thread_local std::size_t t_worker_id = kNotWorker;
thread_local const void* t_worker_pool = nullptr;
}  // namespace

void ThreadPool::Impl::worker_loop(std::size_t id) {
  t_worker_id = id;
  t_worker_pool = this;
  WorkerState& self = *states[id];
  while (!stop.load(std::memory_order_seq_cst)) {
    const auto t0 = std::chrono::steady_clock::now();
    Task* task = acquire(id);
    if (task) {
      // Acquisition cost (deque pop, injector lock, steal scan) is the
      // lane's scheduling overhead; the body is timed inside execute().
      self.sched_ns.fetch_add(elapsed_ns(t0, std::chrono::steady_clock::now()),
                              std::memory_order_relaxed);
      tasks_run.fetch_add(1, std::memory_order_relaxed);
      execute(task, id);
      continue;
    }
    {
      std::unique_lock<std::mutex> lock(injector_mu);
      if (injector.empty() && !stop.load(std::memory_order_relaxed)) {
        // Bounded nap: submissions notify, the timeout covers the
        // lost-wakeup window between the lock-free deque check and the
        // sleep.
        wake.wait_for(lock, std::chrono::microseconds(500));
      }
    }
    // A fruitless scan plus any nap is idle time — what a profiler reads
    // as barrier wait / starvation.
    self.idle_ns.fetch_add(elapsed_ns(t0, std::chrono::steady_clock::now()),
                           std::memory_order_relaxed);
  }
  t_worker_id = kNotWorker;
  t_worker_pool = nullptr;
}

void ThreadPool::Impl::enqueue(Task* task, std::size_t worker_id) {
  const bool own_deque = worker_id != kNotWorker && t_worker_pool == this && worker_id < states.size();
  if (own_deque) {
    if (states[worker_id]->deque.push(task)) {
      wake.notify_one();  // siblings may steal it
      return;
    }
    // Deque full: fall back to the injector. Rare, but worth a flight
    // event — a run that overflows is momentarily less parallel.
    fire_hook(PoolEvent::kQueueOverflow, worker_id, WorkDeque::kCapacity);
  }
  {
    std::lock_guard<std::mutex> lock(injector_mu);
    injector.push_back(task);
  }
  injected.fetch_add(1, std::memory_order_relaxed);
  wake.notify_one();
}

ThreadPool::ThreadPool(std::size_t workers) : impl_(std::make_unique<Impl>()) { impl_->spawn(workers); }

ThreadPool::~ThreadPool() = default;

std::size_t ThreadPool::workers() const { return impl_->threads.size(); }

void ThreadPool::resize(std::size_t n) {
  if (n == impl_->threads.size()) return;
  impl_->shutdown();
  impl_->spawn(n);
}

PoolStats ThreadPool::stats() const {
  PoolStats out;
  out.tasks_run = impl_->tasks_run.load(std::memory_order_relaxed);
  out.tasks_inline = impl_->tasks_inline.load(std::memory_order_relaxed);
  out.steals = impl_->steals.load(std::memory_order_relaxed);
  out.injected = impl_->injected.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(impl_->injector_mu);
    out.queue_depth = impl_->injector.size();
  }
  for (const auto& state : impl_->states) {
    const auto ns = state->busy_ns.load(std::memory_order_relaxed);
    out.per_worker_busy_ns.push_back(ns);
    out.worker_busy_ns += ns;
    LaneStats lane;
    lane.run_ns = ns;
    lane.sched_ns = state->sched_ns.load(std::memory_order_relaxed);
    lane.idle_ns = state->idle_ns.load(std::memory_order_relaxed);
    lane.tasks = state->tasks.load(std::memory_order_relaxed);
    lane.steals = state->steals.load(std::memory_order_relaxed);
    out.worker_lanes.push_back(lane);
  }
  out.inline_lane.run_ns = impl_->inline_run_ns.load(std::memory_order_relaxed);
  out.inline_lane.sched_ns = impl_->inline_sched_ns.load(std::memory_order_relaxed);
  out.inline_lane.idle_ns = impl_->inline_idle_ns.load(std::memory_order_relaxed);
  out.inline_lane.tasks = out.tasks_inline;
  out.inline_lane.steals = impl_->inline_steals.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < PoolStats::kTaskHistBuckets; ++i) {
    out.task_ns_hist[i] = impl_->task_hist[i].load(std::memory_order_relaxed);
  }
  return out;
}

// ---------------------------------------------------------------------------
// TaskGroup

TaskGroup::TaskGroup() : pool_(&pool()) {}
TaskGroup::TaskGroup(ThreadPool& pool) : pool_(&pool) {}

TaskGroup::~TaskGroup() { wait(); }

void TaskGroup::run(std::function<void()> fn) {
  if (pool_->impl_->states.empty()) {
    fn();  // no workers: serial execution
    return;
  }
  auto* impl = pool_->impl_.get();
  pending_.fetch_add(1, std::memory_order_relaxed);
  auto* task = new Task{std::move(fn), this};
  const auto t0 = std::chrono::steady_clock::now();
  impl->enqueue(task, t_worker_id);
  const std::uint64_t dt = elapsed_ns(t0, std::chrono::steady_clock::now());
  if (t_worker_pool == impl && t_worker_id < impl->states.size()) {
    impl->states[t_worker_id]->sched_ns.fetch_add(dt, std::memory_order_relaxed);
  } else {
    impl->inline_sched_ns.fetch_add(dt, std::memory_order_relaxed);
  }
}

void TaskGroup::wait() {
  auto* impl = pool_->impl_.get();
  const bool is_worker = t_worker_pool == impl && t_worker_id < impl->states.size();
  while (pending_.load(std::memory_order_acquire) > 0) {
    const auto t0 = std::chrono::steady_clock::now();
    Task* task = impl->acquire(is_worker ? t_worker_id : kNotWorker);
    if (task) {
      const std::uint64_t dt = elapsed_ns(t0, std::chrono::steady_clock::now());
      if (is_worker) {
        impl->states[t_worker_id]->sched_ns.fetch_add(dt, std::memory_order_relaxed);
      } else {
        impl->inline_sched_ns.fetch_add(dt, std::memory_order_relaxed);
      }
      impl->tasks_inline.fetch_add(1, std::memory_order_relaxed);
      // A worker helping inside a nested wait still charges its own lane,
      // so per-lane run+sched+idle keeps covering its wall clock.
      impl->execute(task, is_worker ? t_worker_id : kInlineLane);
    } else {
      std::this_thread::yield();
      const std::uint64_t dt = elapsed_ns(t0, std::chrono::steady_clock::now());
      if (is_worker) {
        impl->states[t_worker_id]->idle_ns.fetch_add(dt, std::memory_order_relaxed);
      } else {
        impl->inline_idle_ns.fetch_add(dt, std::memory_order_relaxed);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Globals

std::size_t default_jobs() {
  if (const char* env = std::getenv("CLARA_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t jobs() {
  const std::size_t j = g_jobs.load(std::memory_order_relaxed);
  return j > 0 ? j : default_jobs();
}

ThreadPool& pool() {
  static ThreadPool instance(jobs() > 0 ? jobs() - 1 : 0);
  return instance;
}

void set_jobs(std::size_t n) {
  g_jobs.store(n, std::memory_order_relaxed);
  pool().resize(jobs() - 1);
}

// ---------------------------------------------------------------------------
// parallel_for

void parallel_for_jobs(std::size_t jobs_override, std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& body, std::size_t grain) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t j = jobs_override > 0 ? jobs_override : jobs();
  grain = std::max<std::size_t>(1, grain);
  if (j <= 1 || n <= grain || pool().workers() == 0) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  // ~4 chunks per lane keeps the fastest lane busy while the slowest
  // finishes, without per-index task overhead.
  const std::size_t chunks = std::min((n + grain - 1) / grain, 4 * j);
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  TaskGroup group;
  std::size_t start = begin;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < rem ? 1 : 0);
    if (len == 0) continue;
    const std::size_t s = start;
    const std::size_t e = start + len;
    start = e;
    group.run([&body, s, e] {
      for (std::size_t i = s; i < e; ++i) body(i);
    });
  }
  group.wait();
}

void parallel_for(std::size_t begin, std::size_t end, const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  parallel_for_jobs(0, begin, end, body, grain);
}

std::uint64_t shard_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace clara::parallel
