#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace clara {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<bool> g_timestamps{false};
std::atomic<bool> g_level_prefix{true};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void default_sink(LogLevel level, const std::string& msg) {
  char stamp[32] = "";
  if (g_timestamps.load(std::memory_order_relaxed)) {
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now.time_since_epoch())
                        .count() %
                    1000;
    std::tm tm{};
    localtime_r(&secs, &tm);
    std::snprintf(stamp, sizeof(stamp), "%02d:%02d:%02d.%03d ", tm.tm_hour, tm.tm_min,
                  tm.tm_sec, static_cast<int>(ms));
  }
  if (g_level_prefix.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "%s[clara %s] %s\n", stamp, level_name(level), msg.c_str());
  } else {
    std::fprintf(stderr, "%s%s\n", stamp, msg.c_str());
  }
}

/// Guards both the sink slot and its invocation so a sink swap cannot
/// race an in-flight call and concurrent lines do not interleave.
std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

LogSink& sink_slot() {
  static LogSink sink = default_sink;
  return sink;
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_timestamps(bool on) { g_timestamps.store(on, std::memory_order_relaxed); }
void set_log_level_prefix(bool on) { g_level_prefix.store(on, std::memory_order_relaxed); }

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  sink_slot() = sink ? std::move(sink) : LogSink(default_sink);
}

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(sink_mutex());
  sink_slot()(level, msg);
}

}  // namespace clara
