#include "common/log.hpp"

#include <cstdio>

namespace clara {

namespace {

LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void default_sink(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[clara %s] %s\n", level_name(level), msg.c_str());
}

LogSink& sink_slot() {
  static LogSink sink = default_sink;
  return sink;
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }
void set_log_sink(LogSink sink) { sink_slot() = std::move(sink); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  sink_slot()(level, msg);
}

}  // namespace clara
