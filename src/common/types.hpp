// Fundamental scalar types shared across the Clara code base.
#pragma once

#include <cstdint>

namespace clara {

/// Cycle counts on the NIC. All latency math in the project is done in
/// device cycles; conversion to wall-clock time happens only at reporting
/// boundaries (via a profile's clock frequency).
using Cycles = std::uint64_t;

/// Sizes and capacities in bytes.
using Bytes = std::uint64_t;

/// Densely-allocated identifiers used by graph containers.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};

/// Common byte-size literals.
inline constexpr Bytes operator""_KiB(unsigned long long v) { return Bytes{v} * 1024; }
inline constexpr Bytes operator""_MiB(unsigned long long v) { return Bytes{v} * 1024 * 1024; }
inline constexpr Bytes operator""_GiB(unsigned long long v) { return Bytes{v} * 1024 * 1024 * 1024; }

/// Saturating cycle addition: long replays at extreme service values
/// must clamp at the top of the range, not wrap (a wrapped timeline
/// silently reorders every later event).
inline constexpr Cycles saturating_add(Cycles a, Cycles b) {
  const Cycles sum = a + b;
  return sum < a ? ~Cycles{0} : sum;
}

/// Clamped double → Cycles conversion. Casting a double at or above
/// 2^64 (or negative, or NaN) is undefined behaviour; timeline math that
/// starts from floating-point rates goes through here.
inline constexpr Cycles cycles_from_double(double v) {
  if (!(v > 0.0)) return 0;  // also catches NaN
  if (v >= 18446744073709551615.0) return ~Cycles{0};
  return static_cast<Cycles>(v);
}

}  // namespace clara
