// Fundamental scalar types shared across the Clara code base.
#pragma once

#include <cstdint>

namespace clara {

/// Cycle counts on the NIC. All latency math in the project is done in
/// device cycles; conversion to wall-clock time happens only at reporting
/// boundaries (via a profile's clock frequency).
using Cycles = std::uint64_t;

/// Sizes and capacities in bytes.
using Bytes = std::uint64_t;

/// Densely-allocated identifiers used by graph containers.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};

/// Common byte-size literals.
inline constexpr Bytes operator""_KiB(unsigned long long v) { return Bytes{v} * 1024; }
inline constexpr Bytes operator""_MiB(unsigned long long v) { return Bytes{v} * 1024 * 1024; }
inline constexpr Bytes operator""_GiB(unsigned long long v) { return Bytes{v} * 1024 * 1024 * 1024; }

}  // namespace clara
