// Deterministic pseudo-random number generation for workload synthesis.
//
// We use xoshiro256** rather than std::mt19937 because traces with tens of
// millions of packets are generated in inner loops, and because the state
// is small enough to embed one generator per stream without care.
// Determinism across platforms is required so that benchmarks and tests
// reproduce bit-identically.
#pragma once

#include <cstdint>
#include <vector>

namespace clara {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation, re-expressed here).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Exponentially distributed value with the given mean (inter-arrival
  /// times for Poisson packet arrivals).
  double exponential(double mean);

 private:
  std::uint64_t s_[4];
};

/// Zipf-distributed sampler over ranks {0, 1, ..., n-1} with exponent
/// `alpha`. Rank 0 is the most popular. Implemented with a precomputed
/// cumulative table and binary search: O(log n) per sample, exact.
///
/// Flow popularity in datacenter traces is famously heavy-tailed; the
/// workload generator uses this to decide which flow each packet belongs
/// to, which in turn controls the working-set behaviour that the paper
/// calls out ("flow distributions ... cause different memory access
/// patterns and cache behaviors").
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  [[nodiscard]] double alpha() const { return alpha_; }

  /// Probability mass of the given rank.
  [[nodiscard]] double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;
  double alpha_;
};

}  // namespace clara
