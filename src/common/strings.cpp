#include "common/strings.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace clara {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const char* ws = " \t\r\n";
  const auto b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  const auto e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<double> parse_double(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string format_bytes(std::uint64_t bytes) {
  if (bytes >= (1ULL << 30) && bytes % (1ULL << 30) == 0) return strf("%llu GiB", (unsigned long long)(bytes >> 30));
  if (bytes >= (1ULL << 20) && bytes % (1ULL << 20) == 0) return strf("%llu MiB", (unsigned long long)(bytes >> 20));
  if (bytes >= (1ULL << 10) && bytes % (1ULL << 10) == 0) return strf("%llu KiB", (unsigned long long)(bytes >> 10));
  return strf("%llu B", (unsigned long long)bytes);
}

std::string format_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i == lead || (i > lead && (i - lead) % 3 == 0)) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  // Single-row dynamic program; O(|a|*|b|) time, O(|b|) space.
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({sub, row[j] + 1, row[j - 1] + 1});
    }
  }
  return row[b.size()];
}

std::string closest_match(std::string_view word, const std::vector<std::string>& candidates) {
  std::string best;
  std::size_t best_dist = std::numeric_limits<std::size_t>::max();
  bool tie = false;
  for (const auto& c : candidates) {
    const std::size_t d = edit_distance(word, c);
    if (d < best_dist) {
      best_dist = d;
      best = c;
      tie = false;
    } else if (d == best_dist) {
      tie = true;
    }
  }
  const std::size_t cutoff = std::max<std::size_t>(2, word.size() / 3);
  if (best_dist > cutoff || (tie && best_dist > 0)) return {};
  return best;
}

}  // namespace clara
