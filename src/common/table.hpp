// ASCII table rendering for benchmark harness output. The bench binaries
// print the same rows/series the paper's figures plot; this formats them
// consistently.
#pragma once

#include <string>
#include <vector>

namespace clara {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header separator.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace clara
