// Streaming statistics and histograms for latency series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace clara {

/// Streaming accumulator: count/mean/variance via Welford, min/max.
/// O(1) memory; used when percentiles are not needed.
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const Accumulator& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Reservoir of samples with exact percentiles. For the packet counts we
/// run (≤ a few million) exact storage is affordable and avoids the
/// accuracy caveats of sketches.
class Series {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  /// Linear interpolation between closest ranks. q is clamped to [0,1]
  /// (q=0 -> min, q=1 -> max); a single sample answers every quantile
  /// with itself; an empty series answers 0.0.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width linear histogram used for latency distribution displays.
/// A degenerate range (hi <= lo) or zero bucket count collapses to a
/// single unit-width bucket rather than dividing by zero.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  /// NaN samples count toward total() and underflow (they belong to no
  /// bucket but must not corrupt the index computation).
  void add(double x);
  /// Merges another histogram with the identical layout (same lo/hi and
  /// bucket count); returns false (and changes nothing) on a layout
  /// mismatch.
  bool merge(const Histogram& other);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// ASCII bar rendering, one line per non-empty bucket.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_, bucket_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Least-squares fit y = a + b*x. Returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit linear_fit(const std::vector<double>& xs, const std::vector<double>& ys);

/// Knee detection on a latency-vs-load curve using the half-latency rule
/// (N. Patel, "Half-latency rule for finding the knee of the latency
/// curve", PER 2014 — cited by the paper for parameter extraction): the
/// knee is the point where latency first exceeds twice the base latency.
/// Returns the index of the knee, or xs.size() if the curve never bends.
std::size_t find_knee(const std::vector<double>& latencies);

}  // namespace clara
