#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace clara {

void Accumulator::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Accumulator::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Series::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Series::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double v : samples_) s += v;
  return s / static_cast<double>(samples_.size());
}

double Series::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (std::isnan(q)) q = 0.0;
  q = std::clamp(q, 0.0, 1.0);
  ensure_sorted();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Series::min() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.front();
}

double Series::max() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.back();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets) : lo_(lo) {
  if (buckets == 0) buckets = 1;
  if (!(hi > lo)) hi = lo + 1.0;  // degenerate range -> one unit bucket
  hi_ = hi;
  bucket_width_ = (hi - lo) / static_cast<double>(buckets);
  counts_.assign(buckets, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (std::isnan(x)) {
    ++underflow_;
  } else if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / bucket_width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // rounding guard
    ++counts_[idx];
  }
}

bool Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ || counts_.size() != other.counts_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
  return true;
}

double Histogram::bucket_lo(std::size_t i) const { return lo_ + bucket_width_ * static_cast<double>(i); }

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = static_cast<std::size_t>(static_cast<double>(counts_[i]) / static_cast<double>(peak) *
                                              static_cast<double>(width));
    os << "[" << bucket_lo(i) << ", " << bucket_lo(i + 1) << ") " << std::string(std::max<std::size_t>(bar, 1), '#')
       << " " << counts_[i] << "\n";
  }
  return os.str();
}

LinearFit linear_fit(const std::vector<double>& xs, const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  LinearFit fit;
  const auto n = static_cast<double>(xs.size());
  if (xs.size() < 2) {
    fit.intercept = ys.empty() ? 0.0 : ys[0];
    return fit;
  }
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    fit.intercept = sy / n;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (fit.intercept + fit.slope * xs[i]);
    ss_res += e * e;
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

std::size_t find_knee(const std::vector<double>& latencies) {
  if (latencies.empty()) return 0;
  const double base = latencies.front();
  for (std::size_t i = 1; i < latencies.size(); ++i) {
    if (latencies[i] > 2.0 * base) return i;
  }
  return latencies.size();
}

}  // namespace clara
