// A minimal Result<T, E> (std::expected is C++23; we target C++20).
//
// Used at API boundaries where failure is an expected outcome (parsing,
// solving, validation) rather than a programming error. Programming errors
// stay assertions.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace clara {

/// Default error payload: a human-readable message.
struct Error {
  std::string message;
};

inline Error make_error(std::string msg) { return Error{std::move(msg)}; }

template <typename T, typename E = Error>
class Result {
 public:
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(E error) : data_(std::in_place_index<1>, std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return data_.index() == 0; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<0>(data_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<0>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<0>(std::move(data_));
  }

  [[nodiscard]] const E& error() const {
    assert(!ok());
    return std::get<1>(data_);
  }

  /// Returns the contained value or `fallback` when in the error state.
  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<0>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, E> data_;
};

/// Result specialization for operations with no value payload.
template <typename E>
class Result<void, E> {
 public:
  Result() = default;
  Result(E error) : error_(std::move(error)), ok_(false) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }

  [[nodiscard]] const E& error() const {
    assert(!ok_);
    return error_;
  }

 private:
  E error_{};
  bool ok_ = true;
};

using Status = Result<void, Error>;

}  // namespace clara
