// A minimal Result<T, E> (std::expected is C++23; we target C++20).
//
// Used at API boundaries where failure is an expected outcome (parsing,
// solving, validation) rather than a programming error. Programming errors
// stay assertions.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace clara {

/// Machine-readable failure classification carried alongside the
/// message. Callers that only print the message can ignore it; callers
/// that branch on failure kind (retry with a larger budget on
/// kDeadline, reject input on kParse) switch on the code instead of
/// grepping message text.
enum class ErrorCode : std::uint8_t {
  kUnspecified,  // legacy / untagged errors
  kParse,        // malformed input (CIR text, workload spec, profile)
  kVerify,       // IR verification failed
  kUnknownCall,  // call neither a vcall nor a known framework API
  kInfeasible,   // constraint system has no solution
  kDeadline,     // a time/node budget expired before an answer existed
  kInternal,     // invariant violation (model bug)
  kOverloaded,   // admission control rejected the request (serve daemon)
};

constexpr const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnspecified: return "unspecified";
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kVerify: return "verify";
    case ErrorCode::kUnknownCall: return "unknown-call";
    case ErrorCode::kInfeasible: return "infeasible";
    case ErrorCode::kDeadline: return "deadline";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kOverloaded: return "overloaded";
  }
  return "?";
}

/// Default error payload: a human-readable message plus a typed code.
struct Error {
  std::string message;
  ErrorCode code = ErrorCode::kUnspecified;
};

inline Error make_error(std::string msg) { return Error{std::move(msg), ErrorCode::kUnspecified}; }
inline Error make_error(ErrorCode code, std::string msg) { return Error{std::move(msg), code}; }

template <typename T, typename E = Error>
class Result {
 public:
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(E error) : data_(std::in_place_index<1>, std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return data_.index() == 0; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<0>(data_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<0>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<0>(std::move(data_));
  }

  [[nodiscard]] const E& error() const {
    assert(!ok());
    return std::get<1>(data_);
  }

  /// Returns the contained value or `fallback` when in the error state.
  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<0>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, E> data_;
};

/// Result specialization for operations with no value payload.
template <typename E>
class Result<void, E> {
 public:
  Result() = default;
  Result(E error) : error_(std::move(error)), ok_(false) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }

  [[nodiscard]] const E& error() const {
    assert(!ok_);
    return error_;
  }

 private:
  E error_{};
  bool ok_ = true;
};

using Status = Result<void, Error>;

}  // namespace clara
