// Version and build information, echoed by clara_cli at startup so a
// benchmark run is reproducible from its logs alone.
#pragma once

namespace clara {

inline constexpr const char* kVersionString = "0.2.0";

/// Compiler + build timestamp, e.g. "g++ 13.2.0, built Aug  5 2026".
inline const char* build_info() {
  static const char info[] =
#if defined(__clang__)
      "clang++ " __clang_version__
#elif defined(__GNUC__)
      "g++ " __VERSION__
#else
      "unknown compiler"
#endif
      ", built " __DATE__ " " __TIME__;
  return info;
}

}  // namespace clara
