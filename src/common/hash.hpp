// Deterministic content hashing for cache keys.
//
// FNV-1a (64-bit) over a typed mixing interface. The hash is stable
// across runs and platforms of equal endianness/width: it sees only the
// logical content (integers widened to u64, doubles by bit pattern,
// strings length-prefixed), never pointers or container addresses, so
// equal values always hash equally and a hash can key a process-wide
// content-addressed cache. Not cryptographic — collisions are possible
// in principle; cache consumers treat a hit as authoritative because the
// keyed domains (one NF corpus, a handful of profiles) are tiny relative
// to 64 bits.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace clara {

class Fnv1a {
 public:
  static constexpr std::uint64_t kOffset = 1469598103934665603ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;

  Fnv1a& mix_byte(std::uint8_t b) {
    state_ = (state_ ^ b) * kPrime;
    return *this;
  }

  Fnv1a& mix_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) mix_byte(p[i]);
    return *this;
  }

  Fnv1a& mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
    return *this;
  }
  Fnv1a& mix(std::int64_t v) { return mix(static_cast<std::uint64_t>(v)); }
  Fnv1a& mix(std::uint32_t v) { return mix(static_cast<std::uint64_t>(v)); }
  Fnv1a& mix(int v) { return mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  Fnv1a& mix(bool v) { return mix_byte(v ? 1 : 0); }

  /// Doubles hash by bit pattern: 0.0 and -0.0 differ, NaNs hash by
  /// payload. Exact-value keying is what a memoization cache wants.
  Fnv1a& mix(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return mix(bits);
  }

  /// Length-prefixed so ("ab","c") and ("a","bc") mix differently.
  Fnv1a& mix(std::string_view s) {
    mix(static_cast<std::uint64_t>(s.size()));
    return mix_bytes(s.data(), s.size());
  }

  [[nodiscard]] std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = kOffset;
};

/// Combines two digests (order-sensitive).
inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return Fnv1a().mix(a).mix(b).digest();
}

}  // namespace clara
