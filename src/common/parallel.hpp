// Shared parallelism substrate: a fixed-size work-stealing thread pool.
//
// Every parallel path in Clara (branch-and-bound LP solves, sharded
// workload sweeps) funnels through this one pool so the process never
// oversubscribes the machine. Design:
//
//   * one Chase-Lev deque per worker — the owning worker pushes/pops at
//     the bottom, idle workers steal from the top (lock-free, the
//     fence-free seq_cst formulation of Lê et al., which is also clean
//     under ThreadSanitizer);
//   * external threads (and parallel_for callers) enqueue into a
//     mutex-guarded injector queue; workers drain their own deque first,
//     then the injector, then steal round-robin;
//   * waiting threads are never passive: TaskGroup::wait() executes
//     pending tasks while it waits, so nested parallel_for (a sweep
//     shard whose MILP solve fans out again) cannot deadlock.
//
// Concurrency level: `jobs()` tasks run at once (pool workers plus the
// participating caller). The global default comes from --jobs / the
// CLARA_JOBS environment variable, else hardware_concurrency; jobs()==1
// executes everything inline — fully serial, deterministic, zero
// threads. All Clara parallel algorithms are written so their *results*
// are identical at every jobs level; the pool only changes wall time.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <vector>

namespace clara::parallel {

/// Global concurrency level (>= 1). Defaults to CLARA_JOBS if set, else
/// std::thread::hardware_concurrency().
std::size_t jobs();

/// Sets the global concurrency level; 0 restores the default. Must not
/// be called while parallel work is in flight (configure at startup or
/// between pipeline phases, as clara_cli and the tests do).
void set_jobs(std::size_t n);

/// The default jobs value: CLARA_JOBS when set to a positive integer,
/// else hardware_concurrency (min 1).
std::size_t default_jobs();

/// Per-lane execution-time attribution (a lane is one pool worker, or
/// the aggregate of every external thread that executes tasks inline
/// while waiting). All values are monotonic nanosecond/event counters;
/// profilers snapshot before/after a region and diff.
struct LaneStats {
  std::uint64_t run_ns = 0;    // wall time inside task bodies
  std::uint64_t sched_ns = 0;  // task acquisition + enqueue overhead
  std::uint64_t idle_ns = 0;   // waiting with no runnable work (barrier/starvation)
  std::uint64_t tasks = 0;     // tasks executed on this lane
  std::uint64_t steals = 0;    // successful deque steals by this lane
};

/// Monotonic pool counters for observability. Consumers snapshot before
/// and after a parallel region and publish the delta to obs::metrics()
/// (common/ stays free of an obs dependency).
struct PoolStats {
  /// Log2-bucketed per-task duration histogram: bucket i counts tasks
  /// whose body ran for [2^(i-1), 2^i) ns (bucket 0: sub-nanosecond).
  static constexpr std::size_t kTaskHistBuckets = 40;

  std::uint64_t tasks_run = 0;       // tasks executed by pool workers
  std::uint64_t tasks_inline = 0;    // tasks executed by waiting callers
  std::uint64_t steals = 0;          // successful deque steals
  std::uint64_t injected = 0;        // tasks routed through the injector
  std::uint64_t worker_busy_ns = 0;  // summed task wall time on workers
  std::size_t queue_depth = 0;       // injector backlog at snapshot time
  std::vector<std::uint64_t> per_worker_busy_ns;
  /// Full attribution per worker lane (run+sched+idle covers nearly the
  /// whole worker wall clock; the remainder is loop bookkeeping).
  std::vector<LaneStats> worker_lanes;
  /// Aggregate attribution for external threads helping via
  /// TaskGroup::wait()/run() — the "caller lane".
  LaneStats inline_lane;
  std::array<std::uint64_t, kTaskHistBuckets> task_ns_hist{};
};

/// Scheduling events surfaced to an optional process-wide hook (the
/// obs flight recorder installs one). `lane` is the worker index, or
/// kInlineLane for external threads; kTaskStop carries the task body
/// duration in ns as `arg`.
enum class PoolEvent : std::uint8_t { kTaskStart, kTaskStop, kSteal, kQueueOverflow };

inline constexpr std::uint64_t kInlineLane = ~std::uint64_t{0};

using PoolEventHook = void (*)(PoolEvent event, std::uint64_t lane, std::uint64_t arg);

/// Installs (or clears, with nullptr) the pool event hook. The hook must
/// be thread-safe and cheap; it fires on task start/stop, successful
/// steals, and deque-overflow fallbacks. One hook at a time.
void set_pool_event_hook(PoolEventHook hook);

class ThreadPool;

/// Latch-style completion tracker for a batch of tasks. run() enqueues,
/// wait() helps execute pending work until every task in the group has
/// finished. A group is single-owner: run/wait from the owning thread.
class TaskGroup {
 public:
  TaskGroup();
  explicit TaskGroup(ThreadPool& pool);
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues fn on the pool (runs inline immediately when jobs()==1 or
  /// the pool has no workers). fn must not throw.
  void run(std::function<void()> fn);
  /// Blocks until every task run() on this group has completed,
  /// executing pending pool tasks while waiting.
  void wait();

 private:
  ThreadPool* pool_;
  std::atomic<std::size_t> pending_{0};
  friend class ThreadPool;
};

/// The process-wide pool, sized to jobs()-1 background workers (the
/// caller is the remaining lane). Resized lazily by set_jobs().
ThreadPool& pool();

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Background worker count (concurrency is workers()+1 with the
  /// participating caller).
  [[nodiscard]] std::size_t workers() const;
  /// Joins and respawns workers so workers()==n. Callers must ensure no
  /// parallel region is active.
  void resize(std::size_t n);

  [[nodiscard]] PoolStats stats() const;

 private:
  friend class TaskGroup;
  friend std::size_t jobs();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Parallel loop over [begin, end): body(i) for every index, partitioned
/// into ~4x-jobs() contiguous chunks of at least `grain` indices. The
/// caller participates; nested calls are safe (inner loops run inline or
/// steal lanes as available). Iterations must be independent — the loop
/// guarantees nothing about execution order.
void parallel_for(std::size_t begin, std::size_t end, const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// parallel_for with an explicit concurrency override (0 = global
/// jobs()). Used by solver/sweep options that pin their own jobs value.
void parallel_for_jobs(std::size_t jobs_override, std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& body, std::size_t grain = 1);

/// Future-based one-off submission. With jobs()==1 the task runs inline
/// and the future is immediately ready.
template <class F>
auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
  using R = std::invoke_result_t<F>;
  auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
  auto future = task->get_future();
  if (jobs() <= 1) {
    (*task)();
    return future;
  }
  // Detached group: the future carries completion, no join needed.
  auto group = std::make_shared<TaskGroup>();
  group->run([task, group] { (*task)(); });
  return future;
}

/// Deterministic per-shard RNG stream seed: splitmix64 of (base, index).
/// Shards seeded this way are statistically independent regardless of
/// how close the base seeds are (the workload generator's seeds are
/// small integers).
std::uint64_t shard_seed(std::uint64_t base, std::uint64_t index);

}  // namespace clara::parallel
