// Tiny leveled logger. Clara is a library: logging defaults to warnings
// only and everything routes through one sink so hosting applications can
// capture it.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace clara {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Sets the minimum level that is emitted. Thread-compatible: set once at
/// startup before concurrent use.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Replace the default stderr sink (e.g., to capture logs in tests).
void set_log_sink(LogSink sink);

void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace clara

#define CLARA_LOG(level)                      \
  if (::clara::log_level() <= (level)) ::clara::detail::LogLine(level)

#define CLARA_DEBUG CLARA_LOG(::clara::LogLevel::kDebug)
#define CLARA_INFO CLARA_LOG(::clara::LogLevel::kInfo)
#define CLARA_WARN CLARA_LOG(::clara::LogLevel::kWarn)
#define CLARA_ERROR CLARA_LOG(::clara::LogLevel::kError)
