// Tiny leveled logger. Clara is a library: logging defaults to warnings
// only and everything routes through one sink so hosting applications can
// capture it.
//
// Thread-safe: the level is an atomic and sink invocation is serialized
// behind a mutex, so concurrent threads (e.g. a parallel simulator
// replay) may log and even swap the sink freely; lines never interleave.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace clara {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Sets the minimum level that is emitted. Safe to call at any time from
/// any thread.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Replace the default stderr sink (e.g., to capture logs in tests).
/// Passing a null sink restores the default.
void set_log_sink(LogSink sink);

/// Default stderr sink options: prepend a wall-clock timestamp
/// ("HH:MM:SS.mmm") and/or the level name. The level prefix is on by
/// default; timestamps are opt-in (benchmark logs stay diffable).
void set_log_timestamps(bool on);
void set_log_level_prefix(bool on);

void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace clara

#define CLARA_LOG(level)                      \
  if (::clara::log_level() <= (level)) ::clara::detail::LogLine(level)

#define CLARA_DEBUG CLARA_LOG(::clara::LogLevel::kDebug)
#define CLARA_INFO CLARA_LOG(::clara::LogLevel::kInfo)
#define CLARA_WARN CLARA_LOG(::clara::LogLevel::kWarn)
#define CLARA_ERROR CLARA_LOG(::clara::LogLevel::kError)
