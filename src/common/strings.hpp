// String utilities used by the CIR parser, profile parser and reports.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace clara {

/// Splits on the separator; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Strict integer / double parsing: the whole string must be consumed.
std::optional<std::int64_t> parse_int(std::string_view s);
std::optional<double> parse_double(std::string_view s);

/// printf-style formatting into a std::string.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable byte counts ("4 KiB", "3 MiB").
std::string format_bytes(std::uint64_t bytes);

/// Thousands separators: 1234567 -> "1,234,567".
std::string format_count(std::uint64_t value);

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
std::size_t edit_distance(std::string_view a, std::string_view b);

/// The candidate closest to `word` by edit distance, for "did you mean"
/// suggestions. Returns empty when no candidate is close enough
/// (distance > max(2, |word|/3)) or on ties that are not exact.
std::string closest_match(std::string_view word, const std::vector<std::string>& candidates);

}  // namespace clara
