#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/strings.hpp"

namespace clara {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  std::string text = strf("%.15g", value);
  if (std::strtod(text.c_str(), nullptr) == value) return text;
  text = strf("%.16g", value);
  if (std::strtod(text.c_str(), nullptr) == value) return text;
  return strf("%.17g", value);
}

const Json* Json::get(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double Json::number_at(const std::string& key, double fallback) const {
  const Json* member = get(key);
  return member ? member->as_double(fallback) : fallback;
}

std::string Json::string_at(const std::string& key, const std::string& fallback) const {
  const Json* member = get(key);
  return member && member->is_string() ? member->as_string() : fallback;
}

bool Json::bool_at(const std::string& key, bool fallback) const {
  const Json* member = get(key);
  return member ? member->as_bool(fallback) : fallback;
}

/// Recursive-descent parser over the input view. Depth-limited so a
/// pathological file cannot overflow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<Json, Error> run() {
    Json value;
    if (auto status = parse_value(value, 0); !status) return status.error();
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after JSON document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[nodiscard]] Error fail(const std::string& what) const {
    return make_error(ErrorCode::kParse, strf("json: %s at offset %zu", what.c_str(), pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status parse_value(Json& out, int depth) {  // NOLINT(misc-no-recursion)
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') {
      out.kind_ = Json::Kind::kString;
      return parse_string(out.string_);
    }
    if (consume_word("true")) {
      out.kind_ = Json::Kind::kBool;
      out.bool_ = true;
      return {};
    }
    if (consume_word("false")) {
      out.kind_ = Json::Kind::kBool;
      out.bool_ = false;
      return {};
    }
    if (consume_word("null")) {
      out.kind_ = Json::Kind::kNull;
      return {};
    }
    return parse_number(out);
  }

  Status parse_object(Json& out, int depth) {  // NOLINT(misc-no-recursion)
    consume('{');
    out.kind_ = Json::Kind::kObject;
    skip_ws();
    if (consume('}')) return {};
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      if (auto status = parse_string(key); !status) return status;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      Json value;
      if (auto status = parse_value(value, depth + 1); !status) return status;
      out.object_[std::move(key)] = std::move(value);
      skip_ws();
      if (consume('}')) return {};
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  Status parse_array(Json& out, int depth) {  // NOLINT(misc-no-recursion)
    consume('[');
    out.kind_ = Json::Kind::kArray;
    skip_ws();
    if (consume(']')) return {};
    while (true) {
      Json value;
      if (auto status = parse_value(value, depth + 1); !status) return status;
      out.array_.push_back(std::move(value));
      skip_ws();
      if (consume(']')) return {};
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  Status parse_string(std::string& out) {
    consume('"');
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return {};
      if (static_cast<unsigned char>(c) < 0x20) return fail("unescaped control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape digit");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are rare in
          // our own output; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  Status parse_number(Json& out) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (consume('.')) {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("malformed number");
    out.kind_ = Json::Kind::kNumber;
    out.number_ = value;
    return {};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Result<Json, Error> Json::parse(std::string_view text) { return JsonParser(text).run(); }

}  // namespace clara
