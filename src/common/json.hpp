// Minimal JSON reader (RFC 8259 subset, no external dependency).
//
// Clara writes JSON in several places (BENCH_perf.json, Chrome traces,
// metrics dumps); this is the matching reader, used by `clara bench
// diff` to compare benchmark runs and by the tests to validate every
// exporter's output actually parses. Numbers are stored as double —
// fine for benchmark figures and trace timestamps, which are doubles to
// begin with.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace clara {

/// Quotes and escapes a string for JSON output (", \, and control
/// characters; everything else passes through byte-for-byte).
std::string json_quote(std::string_view s);

/// Deterministic JSON number formatting: the shortest of %.15g/%.16g/%.17g
/// that strtod-round-trips to the same double, so serialize→parse→serialize
/// is byte-identical. Non-finite values (no JSON spelling) emit 0.
std::string json_number(double value);

/// One parsed JSON value. Object members keep source order-independent
/// access via a std::map; duplicate keys keep the last occurrence.
class Json {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool(bool fallback = false) const { return is_bool() ? bool_ : fallback; }
  [[nodiscard]] double as_double(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const Array& as_array() const { return array_; }
  [[nodiscard]] const Object& as_object() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* get(const std::string& key) const;
  /// get(key)->as_double(fallback), tolerating a missing member.
  [[nodiscard]] double number_at(const std::string& key, double fallback = 0.0) const;
  [[nodiscard]] std::string string_at(const std::string& key,
                                      const std::string& fallback = {}) const;
  [[nodiscard]] bool bool_at(const std::string& key, bool fallback = false) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  static Result<Json, Error> parse(std::string_view text);

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace clara
