#include "common/table.hpp"

#include <algorithm>
#include <sstream>

namespace clara {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };

  std::ostringstream os;
  emit_row(os, headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << std::string(widths[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

}  // namespace clara
