// Deterministic fault injection (DESIGN.md §13, docs/robustness.md).
//
// A FaultPlan names *injection sites* — fixed strings compiled into the
// code ("nicsim/drop", "ilp/wave_timeout", ...) — and arms each with a
// trigger: an exact invocation count (`at=`), a period (`every=`), or a
// Bernoulli probability (`p=`) drawn from a splitmix64 stream. Whether a
// given invocation fires is a pure function of
//
//     (plan seed, FNV-1a(site name), caller-supplied invocation key)
//
// with no shared mutable counters, so a plan reproduces bit-identically
// at --jobs=1/2/8 and across reruns: callers supply keys that are
// deterministic in their own domain (packet sequence numbers, wave
// indices, cache digests) rather than global arrival order.
//
// A plan may also name LNIC *unit faults* (fail/derate compute units or
// memory regions); those are applied to a NicProfile up front via
// apply_to_profile() and drive the Mapper::repair() incremental re-solve
// path rather than per-invocation injection.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "lnic/profiles.hpp"

namespace clara::fault {

/// Sentinel for "no exact trigger configured".
inline constexpr std::uint64_t kNoTrigger = ~std::uint64_t{0};

/// One armed injection site. Triggers combine with OR: the site fires
/// when the key matches `at`, when the key falls on the `every` period,
/// or when the per-key Bernoulli draw lands under `probability`.
struct SiteSpec {
  std::string site;                  // e.g. "nicsim/drop"
  double probability = 0.0;          // p= in [0,1]
  std::uint64_t every = 0;           // every=N: fire when key % N == N-1
  std::uint64_t at = kNoTrigger;     // at=K: fire exactly at key K
  double factor = 0.0;               // payload (latency multiplier, derate, ...)
};

/// A parsed fault plan: a seed, a set of armed sites, and a set of LNIC
/// unit faults. Value type; installed process-wide with set_plan().
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<SiteSpec> sites;
  std::vector<std::string> failed_units;                    // unit/region names or prefixes
  std::vector<std::pair<std::string, double>> derated_units;  // (name, pct of nominal in (0,100])

  [[nodiscard]] bool empty() const {
    return sites.empty() && failed_units.empty() && derated_units.empty();
  }

  /// The armed spec for `site`, or nullptr when the plan does not arm it.
  [[nodiscard]] const SiteSpec* find(std::string_view site) const;

  /// Pure trigger decision for (site, key) under this plan's seed.
  [[nodiscard]] bool should_fire(std::string_view site, std::uint64_t key) const;

  /// The site's payload factor, or `fallback` when unset/not armed.
  [[nodiscard]] double factor_or(std::string_view site, double fallback) const;

  void add_site(SiteSpec spec);

  /// Parses the textual plan format (docs/robustness.md):
  ///   seed 42
  ///   site nicsim/drop p=0.01
  ///   site ilp/wave_timeout at=2
  ///   site nicsim/emem_spike every=64 factor=8
  ///   fail-unit csum
  ///   derate-unit npu0 50
  /// '#' starts a comment; blank lines are ignored. Errors carry
  /// ErrorCode::kParse.
  static Result<FaultPlan> parse(const std::string& text);

  /// Round-trips through parse(): emits the plan in the textual format.
  [[nodiscard]] std::string serialize() const;
};

/// Installs `plan` as the process-wide plan consulted by inject().
/// Thread-safe; retired plans stay alive for the process lifetime so
/// in-flight readers never observe a dangling pointer. Installing an
/// empty plan (or clear_plan()) restores the zero-overhead fast path.
void set_plan(FaultPlan plan);
void clear_plan();

/// The currently installed plan (an empty static plan when none is set).
const FaultPlan& plan();

/// True when a non-empty plan is installed. Single relaxed atomic load —
/// the hot-path guard inlined into every injection site.
bool active();

/// The injection-site hook: true when the installed plan fires `site`
/// for invocation `key`. Bumps the `fault/injected` counter (labelled
/// site=...) on fire. Near-free when no plan is installed.
bool inject(std::string_view site, std::uint64_t key);

/// Payload factor for `site` from the installed plan (e.g. the latency
/// multiplier of a contention spike), or `fallback`.
double site_factor(std::string_view site, double fallback);

/// Applies the plan's unit faults to a profile: marks failed_units
/// offline and derates derated_units. Returns the number of units
/// touched; errors (kUnknownCall) when a name matches nothing.
Result<int> apply_to_profile(const FaultPlan& plan, lnic::NicProfile& profile);

/// RAII guard for tests: installs a plan, restores the previous plan on
/// scope exit.
class ScopedPlan {
 public:
  explicit ScopedPlan(FaultPlan plan);
  ~ScopedPlan();
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;

 private:
  FaultPlan previous_;
};

}  // namespace clara::fault
