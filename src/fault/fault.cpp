#include "fault/fault.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/hash.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace clara::fault {
namespace {

// The installed plan. Readers load the pointer with acquire semantics;
// set_plan publishes a fresh heap plan with release semantics and parks
// the previous one in a retire list (never freed while the process
// lives) so a reader mid-injection can never observe a dangling plan.
// g_active mirrors !plan->empty() so the no-fault hot path is a single
// relaxed load.
std::atomic<bool> g_active{false};
std::atomic<const FaultPlan*> g_plan{nullptr};
std::mutex g_install_mu;
std::vector<std::unique_ptr<const FaultPlan>>& retired_plans() {
  static auto* list = new std::vector<std::unique_ptr<const FaultPlan>>();
  return *list;
}

const FaultPlan& empty_plan() {
  static const FaultPlan* p = new FaultPlan();
  return *p;
}

/// Uniform double in [0, 1) from the high 53 bits of a mixed u64.
double to_unit_interval(std::uint64_t v) { return static_cast<double>(v >> 11) * 0x1.0p-53; }

}  // namespace

const SiteSpec* FaultPlan::find(std::string_view site) const {
  for (const auto& s : sites)
    if (s.site == site) return &s;
  return nullptr;
}

bool FaultPlan::should_fire(std::string_view site, std::uint64_t key) const {
  const SiteSpec* spec = find(site);
  if (spec == nullptr) return false;
  if (spec->at != kNoTrigger && key == spec->at) return true;
  if (spec->every > 0 && key % spec->every == spec->every - 1) return true;
  if (spec->probability > 0.0) {
    // Pure function of (seed, site, key): splitmix64 over the combined
    // digest — no shared counter, so jobs=1/2/8 agree bit-for-bit.
    const std::uint64_t site_hash = Fnv1a().mix(site).digest();
    const std::uint64_t draw = parallel::shard_seed(seed ^ site_hash, key);
    if (to_unit_interval(draw) < spec->probability) return true;
  }
  return false;
}

double FaultPlan::factor_or(std::string_view site, double fallback) const {
  const SiteSpec* spec = find(site);
  if (spec == nullptr || spec->factor <= 0.0) return fallback;
  return spec->factor;
}

void FaultPlan::add_site(SiteSpec spec) {
  for (auto& s : sites) {
    if (s.site == spec.site) {
      s = std::move(spec);
      return;
    }
  }
  sites.push_back(std::move(spec));
}

Result<FaultPlan> FaultPlan::parse(const std::string& text) {
  constexpr std::size_t kMaxPlanBytes = 1u << 20;
  if (text.size() > kMaxPlanBytes) {
    return make_error(ErrorCode::kParse,
                      strf("fault plan too large (%zu bytes, limit %zu)", text.size(),
                           static_cast<std::size_t>(kMaxPlanBytes)));
  }
  FaultPlan plan;
  const auto lines = split(text, '\n');
  for (std::size_t ln = 0; ln < lines.size(); ++ln) {
    std::string_view line = trim(lines[ln]);
    if (const auto hash = line.find('#'); hash != std::string_view::npos)
      line = trim(line.substr(0, hash));
    if (line.empty()) continue;

    std::vector<std::string> tokens;
    for (const auto& tok : split(line, ' '))
      if (!trim(tok).empty()) tokens.emplace_back(trim(tok));

    auto err = [&](const char* what) {
      return make_error(ErrorCode::kParse, strf("fault plan line %zu: %s", ln + 1, what));
    };

    if (tokens[0] == "seed") {
      if (tokens.size() != 2) return err("expected 'seed N'");
      const auto v = parse_int(tokens[1]);
      if (!v || *v < 0) return err("seed must be a non-negative integer");
      plan.seed = static_cast<std::uint64_t>(*v);
    } else if (tokens[0] == "site") {
      if (tokens.size() < 3) return err("expected 'site NAME trigger...'");
      SiteSpec spec;
      spec.site = tokens[1];
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const auto eq = tokens[i].find('=');
        if (eq == std::string::npos) return err("site trigger must be key=value");
        const std::string key = tokens[i].substr(0, eq);
        const std::string val = tokens[i].substr(eq + 1);
        if (key == "p") {
          const auto p = parse_double(val);
          if (!p || *p < 0.0 || *p > 1.0) return err("p= must be in [0,1]");
          spec.probability = *p;
        } else if (key == "every") {
          const auto n = parse_int(val);
          if (!n || *n <= 0) return err("every= must be a positive integer");
          spec.every = static_cast<std::uint64_t>(*n);
        } else if (key == "at") {
          const auto n = parse_int(val);
          if (!n || *n < 0) return err("at= must be a non-negative integer");
          spec.at = static_cast<std::uint64_t>(*n);
        } else if (key == "factor") {
          const auto f = parse_double(val);
          if (!f || *f <= 0.0) return err("factor= must be positive");
          spec.factor = *f;
        } else {
          return err("unknown site trigger (expected p=/every=/at=/factor=)");
        }
      }
      if (spec.probability == 0.0 && spec.every == 0 && spec.at == kNoTrigger)
        return err("site needs at least one of p=/every=/at=");
      plan.add_site(std::move(spec));
    } else if (tokens[0] == "fail-unit") {
      if (tokens.size() != 2) return err("expected 'fail-unit NAME'");
      plan.failed_units.push_back(tokens[1]);
    } else if (tokens[0] == "derate-unit") {
      if (tokens.size() != 3) return err("expected 'derate-unit NAME PCT'");
      const auto pct = parse_double(tokens[2]);
      if (!pct || *pct <= 0.0 || *pct > 100.0) return err("derate pct must be in (0,100]");
      plan.derated_units.emplace_back(tokens[1], *pct);
    } else {
      return err("unknown directive (expected seed/site/fail-unit/derate-unit)");
    }
  }
  return plan;
}

std::string FaultPlan::serialize() const {
  std::string out = strf("seed %llu\n", static_cast<unsigned long long>(seed));
  for (const auto& s : sites) {
    out += "site " + s.site;
    if (s.probability > 0.0) out += strf(" p=%.17g", s.probability);
    if (s.every > 0) out += strf(" every=%llu", static_cast<unsigned long long>(s.every));
    if (s.at != kNoTrigger) out += strf(" at=%llu", static_cast<unsigned long long>(s.at));
    if (s.factor > 0.0) out += strf(" factor=%.17g", s.factor);
    out += '\n';
  }
  for (const auto& u : failed_units) out += "fail-unit " + u + "\n";
  for (const auto& [u, pct] : derated_units) out += strf("derate-unit %s %.17g\n", u.c_str(), pct);
  return out;
}

void set_plan(FaultPlan plan) {
  const bool active = !plan.empty();
  auto owned = std::make_unique<const FaultPlan>(std::move(plan));
  const FaultPlan* raw = owned.get();
  std::lock_guard<std::mutex> lock(g_install_mu);
  retired_plans().push_back(std::move(owned));
  g_plan.store(raw, std::memory_order_release);
  g_active.store(active, std::memory_order_release);
}

void clear_plan() { set_plan(FaultPlan{}); }

const FaultPlan& plan() {
  const FaultPlan* p = g_plan.load(std::memory_order_acquire);
  return p != nullptr ? *p : empty_plan();
}

bool active() { return g_active.load(std::memory_order_relaxed); }

bool inject(std::string_view site, std::uint64_t key) {
  if (!active()) return false;
  if (!plan().should_fire(site, key)) return false;
  obs::metrics().counter("fault/injected", "site=" + std::string(site)).inc();
  // A firing site is exactly the "something just went wrong" moment the
  // flight recorder exists for: record the fire, then dump the rings
  // (auto_dump throttles itself to once per process).
  obs::record(obs::FlightEventKind::kFaultFire, Fnv1a().mix(site).digest(), key);
  obs::recorder().auto_dump("fault_" + std::string(site));
  return true;
}

double site_factor(std::string_view site, double fallback) {
  if (!active()) return fallback;
  return plan().factor_or(site, fallback);
}

Result<int> apply_to_profile(const FaultPlan& plan, lnic::NicProfile& profile) {
  int touched = 0;
  for (const auto& name : plan.failed_units) {
    auto r = profile.graph.mark_offline(name);
    if (!r.ok()) return r.error();
    touched += r.value();
  }
  for (const auto& [name, pct] : plan.derated_units) {
    auto r = profile.graph.derate_units(name, pct / 100.0);
    if (!r.ok()) return r.error();
    touched += r.value();
  }
  return touched;
}

ScopedPlan::ScopedPlan(FaultPlan p) : previous_(plan()) { set_plan(std::move(p)); }
ScopedPlan::~ScopedPlan() { set_plan(std::move(previous_)); }

}  // namespace clara::fault
