#include "lnic/lnic.hpp"

#include <algorithm>
#include <queue>

#include "common/strings.hpp"

namespace clara::lnic {

const char* to_string(UnitKind kind) {
  switch (kind) {
    case UnitKind::kNpuCore: return "npu";
    case UnitKind::kHeaderEngine: return "header-engine";
    case UnitKind::kChecksumAccel: return "checksum-accel";
    case UnitKind::kCryptoAccel: return "crypto-accel";
    case UnitKind::kLpmEngine: return "lpm-engine";
  }
  return "?";
}

const char* to_string(MemKind kind) {
  switch (kind) {
    case MemKind::kLocal: return "local";
    case MemKind::kCtm: return "ctm";
    case MemKind::kImem: return "imem";
    case MemKind::kEmem: return "emem";
  }
  return "?";
}

NodeId Graph::add_node(std::string name, std::variant<ComputeUnit, MemoryRegion, SwitchHub> info) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{id, std::move(name), std::move(info)});
  return id;
}

NodeId Graph::add_compute(std::string name, ComputeUnit unit) { return add_node(std::move(name), unit); }
NodeId Graph::add_memory(std::string name, MemoryRegion region) { return add_node(std::move(name), region); }
NodeId Graph::add_switch(std::string name, SwitchHub hub) { return add_node(std::move(name), hub); }

void Graph::add_edge(NodeId from, NodeId to, EdgeKind kind, double weight) {
  edges_.push_back(Edge{from, to, kind, weight});
}

std::vector<NodeId> Graph::compute_units() const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_)
    if (n.type() == NodeType::kCompute) out.push_back(n.id);
  return out;
}

std::vector<NodeId> Graph::memory_regions() const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_)
    if (n.type() == NodeType::kMemory) out.push_back(n.id);
  return out;
}

std::vector<NodeId> Graph::switch_hubs() const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_)
    if (n.type() == NodeType::kSwitch) out.push_back(n.id);
  return out;
}

std::vector<NodeId> Graph::units_of_kind(UnitKind kind) const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    const auto* cu = n.compute();
    if (cu != nullptr && cu->kind == kind) out.push_back(n.id);
  }
  return out;
}

std::optional<NodeId> Graph::find_by_name(std::string_view name) const {
  for (const auto& n : nodes_)
    if (n.name == name) return n.id;
  return std::nullopt;
}

std::optional<double> Graph::access_weight(NodeId unit, NodeId region) const {
  for (const auto& e : edges_) {
    if (e.kind != EdgeKind::kMemAccess) continue;
    if ((e.from == unit && e.to == region) || (e.from == region && e.to == unit)) return e.weight;
  }
  return std::nullopt;
}

Result<int> Graph::mark_offline(std::string_view name) {
  int marked = 0;
  for (auto& n : nodes_) {
    if (n.name != name && !starts_with(n.name, name)) continue;
    if (auto* cu = std::get_if<ComputeUnit>(&n.info)) {
      cu->offline = true;
      ++marked;
    } else if (auto* mr = std::get_if<MemoryRegion>(&n.info)) {
      mr->offline = true;
      ++marked;
    }
  }
  if (marked == 0) {
    return make_error(ErrorCode::kUnknownCall,
                      strf("no compute unit or memory region matches '%.*s'",
                           static_cast<int>(name.size()), name.data()));
  }
  return marked;
}

Result<int> Graph::derate_units(std::string_view name, double fraction) {
  if (!(fraction > 0.0) || fraction > 1.0) {
    return make_error(ErrorCode::kParse,
                      strf("derate fraction must be in (0, 1], got %g", fraction));
  }
  int marked = 0;
  for (auto& n : nodes_) {
    if (n.name != name && !starts_with(n.name, name)) continue;
    if (auto* cu = std::get_if<ComputeUnit>(&n.info)) {
      cu->derate = fraction;
      ++marked;
    }
  }
  if (marked == 0) {
    return make_error(ErrorCode::kUnknownCall,
                      strf("no compute unit matches '%.*s'", static_cast<int>(name.size()),
                           name.data()));
  }
  return marked;
}

bool Graph::pipeline_reachable(NodeId from, NodeId to) const {
  if (from == to) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::queue<NodeId> frontier;
  frontier.push(from);
  seen[from] = true;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop();
    for (const auto& e : edges_) {
      if (e.kind != EdgeKind::kPipeline && e.kind != EdgeKind::kSwitchLink) continue;
      if (e.from != cur) continue;
      if (e.to == to) return true;
      if (!seen[e.to]) {
        seen[e.to] = true;
        frontier.push(e.to);
      }
    }
  }
  return false;
}

Status Graph::validate() const {
  for (const auto& e : edges_) {
    if (e.from >= nodes_.size() || e.to >= nodes_.size()) {
      return make_error(strf("edge references invalid node id (%u -> %u)", e.from, e.to));
    }
    const Node& a = nodes_[e.from];
    const Node& b = nodes_[e.to];
    switch (e.kind) {
      case EdgeKind::kMemAccess:
        if (a.type() != NodeType::kCompute || b.type() != NodeType::kMemory) {
          return make_error(strf("mem-access edge must be compute->memory: %s -> %s", a.name.c_str(), b.name.c_str()));
        }
        if (e.weight < 1.0) {
          return make_error(strf("mem-access NUMA weight must be >= 1: %s -> %s", a.name.c_str(), b.name.c_str()));
        }
        break;
      case EdgeKind::kHierarchy:
        if (a.type() != NodeType::kMemory || b.type() != NodeType::kMemory) {
          return make_error(strf("hierarchy edge must be memory->memory: %s -> %s", a.name.c_str(), b.name.c_str()));
        }
        break;
      case EdgeKind::kPipeline: {
        if (a.type() != NodeType::kCompute || b.type() != NodeType::kCompute) {
          return make_error(strf("pipeline edge must be compute->compute: %s -> %s", a.name.c_str(), b.name.c_str()));
        }
        if (a.compute()->pipeline_stage > b.compute()->pipeline_stage) {
          return make_error(strf("pipeline edge goes backwards across stages: %s -> %s", a.name.c_str(), b.name.c_str()));
        }
        break;
      }
      case EdgeKind::kSwitchLink:
        if (a.type() != NodeType::kSwitch && b.type() != NodeType::kSwitch) {
          return make_error(strf("switch-link edge must touch a switch hub: %s -> %s", a.name.c_str(), b.name.c_str()));
        }
        break;
    }
  }

  for (const auto& n : nodes_) {
    if (n.type() != NodeType::kCompute) continue;
    const bool has_memory = std::any_of(edges_.begin(), edges_.end(), [&](const Edge& e) {
      return e.kind == EdgeKind::kMemAccess && e.from == n.id;
    });
    if (!has_memory) {
      return make_error(strf("compute unit '%s' cannot reach any memory region", n.name.c_str()));
    }
  }
  return {};
}

}  // namespace clara::lnic
