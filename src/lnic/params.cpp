#include "lnic/params.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/strings.hpp"

namespace clara::lnic {

PiecewiseLinear::PiecewiseLinear(std::vector<std::pair<double, double>> points) : points_(std::move(points)) {
  std::sort(points_.begin(), points_.end());
  assert(!points_.empty());
}

double PiecewiseLinear::eval(double x) const {
  assert(!points_.empty());
  if (x <= points_.front().first) return points_.front().second;
  if (x >= points_.back().first) return points_.back().second;
  // Find the segment containing x.
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (x <= points_[i].first) {
      const auto& [x0, y0] = points_[i - 1];
      const auto& [x1, y1] = points_[i];
      if (x1 == x0) return y1;
      const double t = (x - x0) / (x1 - x0);
      return y0 + t * (y1 - y0);
    }
  }
  return points_.back().second;
}

void ParameterStore::set_scalar(const std::string& key, double value) { scalars_[key] = value; }
void ParameterStore::set_curve(const std::string& key, PiecewiseLinear curve) { curves_[key] = std::move(curve); }

double ParameterStore::scalar(const std::string& key) const {
  const auto it = scalars_.find(key);
  assert(it != scalars_.end() && "missing scalar parameter");
  return it != scalars_.end() ? it->second : 0.0;
}

std::optional<double> ParameterStore::try_scalar(const std::string& key) const {
  const auto it = scalars_.find(key);
  if (it == scalars_.end()) return std::nullopt;
  return it->second;
}

const PiecewiseLinear* ParameterStore::try_curve(const std::string& key) const {
  const auto it = curves_.find(key);
  return it == curves_.end() ? nullptr : &it->second;
}

double ParameterStore::eval(const std::string& key, double x) const {
  if (const auto* curve = try_curve(key)) return curve->eval(x);
  return scalar(key);
}

bool ParameterStore::has(const std::string& key) const {
  return scalars_.count(key) > 0 || curves_.count(key) > 0;
}

std::vector<std::string> ParameterStore::keys() const {
  std::vector<std::string> out;
  out.reserve(scalars_.size() + curves_.size());
  for (const auto& [k, _] : scalars_) out.push_back(k);
  for (const auto& [k, _] : curves_) out.push_back(k);
  std::sort(out.begin(), out.end());
  return out;
}

std::string ParameterStore::serialize() const {
  std::ostringstream os;
  for (const auto& [k, v] : scalars_) os << k << " = " << strf("%.17g", v) << "\n";
  for (const auto& [k, curve] : curves_) {
    os << k << " = [";
    bool first = true;
    for (const auto& [x, y] : curve.points()) {
      if (!first) os << ", ";
      first = false;
      os << "(" << strf("%.17g", x) << ", " << strf("%.17g", y) << ")";
    }
    os << "]\n";
  }
  return os.str();
}

Result<ParameterStore> ParameterStore::parse(const std::string& text) {
  ParameterStore store;
  std::size_t line_no = 0;
  for (const auto& raw_line : split(text, '\n')) {
    ++line_no;
    const auto line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      return make_error(strf("params line %zu: expected 'key = value'", line_no));
    }
    const std::string key{trim(line.substr(0, eq))};
    const auto value = trim(line.substr(eq + 1));
    if (key.empty()) return make_error(strf("params line %zu: empty key", line_no));

    if (!value.empty() && value.front() == '[') {
      if (value.back() != ']') return make_error(strf("params line %zu: unterminated curve", line_no));
      std::vector<std::pair<double, double>> points;
      // Parse "(x, y)" pairs inside the brackets.
      std::string_view body = value.substr(1, value.size() - 2);
      while (true) {
        const auto open = body.find('(');
        if (open == std::string_view::npos) break;
        const auto close = body.find(')', open);
        if (close == std::string_view::npos) return make_error(strf("params line %zu: unterminated point", line_no));
        const auto pair_text = body.substr(open + 1, close - open - 1);
        const auto comma = pair_text.find(',');
        if (comma == std::string_view::npos) return make_error(strf("params line %zu: point needs 'x, y'", line_no));
        const auto x = parse_double(trim(pair_text.substr(0, comma)));
        const auto y = parse_double(trim(pair_text.substr(comma + 1)));
        if (!x || !y) return make_error(strf("params line %zu: bad number in point", line_no));
        points.emplace_back(*x, *y);
        body = body.substr(close + 1);
      }
      if (points.empty()) return make_error(strf("params line %zu: empty curve", line_no));
      store.set_curve(key, PiecewiseLinear(std::move(points)));
    } else {
      const auto v = parse_double(value);
      if (!v) return make_error(strf("params line %zu: bad scalar '%.*s'", line_no, (int)value.size(), value.data()));
      store.set_scalar(key, *v);
    }
  }
  return store;
}

const std::vector<std::string>& required_keys() {
  static const std::vector<std::string> kKeys = {
      keys::kMemReadLocal,   keys::kMemWriteLocal,   keys::kMemReadCtm,    keys::kMemWriteCtm,
      keys::kMemReadImem,    keys::kMemWriteImem,    keys::kMemReadEmem,   keys::kMemWriteEmem,
      keys::kEmemCacheHit,   keys::kInstrAlu,        keys::kInstrMul,      keys::kInstrDiv,
      keys::kInstrBranch,    keys::kInstrMove,       keys::kInstrFpEmulation,
      keys::kParseBase,      keys::kParsePerByte,    keys::kCsumAccel,     keys::kCsumSwExtra,
      keys::kCryptoAccel,    keys::kCryptoSwFactor,  keys::kLpmDram,       keys::kFlowCacheHit,
      keys::kFlowCacheCapacity, keys::kIngressDmaBase, keys::kIngressDmaPerByte, keys::kEgressBase,
      keys::kCtmPacketResidency, keys::kSpillPerByte, keys::kHubService,   keys::kClockHz,
  };
  return kKeys;
}

Status validate_params(const ParameterStore& params) {
  for (const auto& key : required_keys()) {
    if (!params.has(key)) return make_error("missing required parameter: " + key);
  }
  return {};
}

}  // namespace clara::lnic
