// The logical SmartNIC model (LNIC) — paper §3.1.
//
// An LNIC is a graph ⟨V,E⟩. Nodes are typed: compute units (general-purpose
// NPU cores, header engines, domain-specific accelerators), memory regions
// (with sizes and access latencies), and switching hubs (NIC switches and
// traffic managers, parameterized by queue capacity and discipline).
// Edges are memory buses (compute↔memory, weighted to capture NUMA),
// memory-hierarchy links (memory↔memory, eviction/fetch direction), and
// unidirectional compute→compute edges describing staged/pipelined
// execution.
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"

namespace clara::lnic {

/// What a compute unit is specialized for. The mapper uses this to decide
/// which dataflow nodes may be placed where, and the cost model selects
/// per-kind parameters.
enum class UnitKind {
  kNpuCore,        // general-purpose in-order network processor core
  kHeaderEngine,   // ingress parser / match-action header processing
  kChecksumAccel,  // L3/L4 checksum unit at the ingress datapath
  kCryptoAccel,    // AES / SHA engine
  kLpmEngine,      // match/action longest-prefix-match engine (flow cache front-end)
};

const char* to_string(UnitKind kind);

/// Memory region levels. Names follow the Netronome hierarchy since that
/// is the paper's reference backend; other profiles reuse the same levels
/// with their own sizes/latencies (e.g., an ARM SoC maps L2 -> kCtm,
/// DRAM -> kEmem).
enum class MemKind {
  kLocal,  // per-core local memory / register file
  kCtm,    // per-island Cluster Target Memory (SRAM)
  kImem,   // shared internal memory
  kEmem,   // external DRAM (optionally fronted by a cache)
};

const char* to_string(MemKind kind);

enum class QueueDiscipline { kFifo, kPriority };

struct ComputeUnit {
  UnitKind kind = UnitKind::kNpuCore;
  /// Island (cluster) this unit belongs to; -1 for island-less units such
  /// as shared accelerators.
  int island = -1;
  /// Hardware threads. A packet is bound to a single thread for its whole
  /// lifetime (Netronome behaviour, paper §3.2).
  int threads = 1;
  /// Position in the pipeline ordering; mapping must not send a packet
  /// "backwards" across stages (paper §3.4). Units that can be visited at
  /// any point (e.g., NPUs in run-to-completion mode) share a stage.
  int pipeline_stage = 0;
  /// For kHeaderEngine units: true when the engine is a full match-action
  /// stage (P4-style pipelines) that can host table lookups and header
  /// arithmetic; false for fixed-function parsers (Netronome's ingress
  /// parser), which only serve vcall_parse.
  bool match_action = false;
  /// Fault state (docs/robustness.md). An offline unit is excluded from
  /// mapping pools; derate scales its effective service capacity
  /// (0 < derate <= 1, 1.0 = nominal). Graph structure and NodeIds are
  /// unchanged so existing mappings stay addressable for repair.
  bool offline = false;
  double derate = 1.0;
};

struct MemoryRegion {
  MemKind kind = MemKind::kEmem;
  Bytes capacity = 0;
  /// Island scoping: a CTM belongs to one island; -1 means globally
  /// shared (IMEM/EMEM).
  int island = -1;
  /// Size of a cache fronting this region (0 = uncached). The Netronome
  /// EMEM has a 3 MB cache (paper §3.2).
  Bytes cache_capacity = 0;
  /// Fault state: an offline region is excluded from state placement.
  bool offline = false;
};

struct SwitchHub {
  std::size_t queue_capacity = 256;  // packets
  QueueDiscipline discipline = QueueDiscipline::kFifo;
};

enum class NodeType { kCompute, kMemory, kSwitch };

struct Node {
  NodeId id = kInvalidNode;
  std::string name;
  std::variant<ComputeUnit, MemoryRegion, SwitchHub> info;

  [[nodiscard]] NodeType type() const {
    switch (info.index()) {
      case 0: return NodeType::kCompute;
      case 1: return NodeType::kMemory;
      default: return NodeType::kSwitch;
    }
  }
  [[nodiscard]] const ComputeUnit* compute() const { return std::get_if<ComputeUnit>(&info); }
  [[nodiscard]] const MemoryRegion* memory() const { return std::get_if<MemoryRegion>(&info); }
  [[nodiscard]] const SwitchHub* hub() const { return std::get_if<SwitchHub>(&info); }
};

enum class EdgeKind {
  kMemAccess,  // compute <-> memory; weight multiplies base access latency (NUMA)
  kHierarchy,  // memory <-> memory; eviction/fetch direction
  kPipeline,   // compute -> compute; staged execution order
  kSwitchLink, // hub <-> anything; packet steering path
};

struct Edge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  EdgeKind kind = EdgeKind::kMemAccess;
  /// NUMA weight for kMemAccess (latency multiplier, >= 1); link weight
  /// otherwise.
  double weight = 1.0;
};

/// The LNIC graph. Construction is additive; `validate()` checks the
/// structural invariants once a profile is assembled.
class Graph {
 public:
  NodeId add_compute(std::string name, ComputeUnit unit);
  NodeId add_memory(std::string name, MemoryRegion region);
  NodeId add_switch(std::string name, SwitchHub hub);
  void add_edge(NodeId from, NodeId to, EdgeKind kind, double weight = 1.0);

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  [[nodiscard]] std::vector<NodeId> compute_units() const;
  [[nodiscard]] std::vector<NodeId> memory_regions() const;
  [[nodiscard]] std::vector<NodeId> switch_hubs() const;
  [[nodiscard]] std::vector<NodeId> units_of_kind(UnitKind kind) const;
  [[nodiscard]] std::optional<NodeId> find_by_name(std::string_view name) const;

  /// NUMA weight of the access edge unit->region, or nullopt when the
  /// unit cannot reach that region at all.
  [[nodiscard]] std::optional<double> access_weight(NodeId unit, NodeId region) const;

  /// Marks every compute unit / memory region whose name equals `name`
  /// or starts with it (prefix match, so "npu0_" takes out a whole
  /// island) offline. Returns the number of nodes marked; kUnknownCall
  /// when nothing matches.
  Result<int> mark_offline(std::string_view name);

  /// Scales the effective capacity of matching compute units to
  /// `fraction` of nominal (0 < fraction <= 1); same matching rules as
  /// mark_offline. Memory regions cannot be derated, only failed.
  Result<int> derate_units(std::string_view name, double fraction);

  /// True if there is a pipeline/switch path from `from` to `to`
  /// (transitively) using only kPipeline and kSwitchLink edges.
  [[nodiscard]] bool pipeline_reachable(NodeId from, NodeId to) const;

  /// Structural invariants:
  ///  - edge endpoints are valid node ids;
  ///  - kMemAccess edges connect compute to memory;
  ///  - kHierarchy edges connect memory to memory;
  ///  - kPipeline edges connect compute to compute and respect stage order;
  ///  - every compute unit can reach at least one memory region.
  [[nodiscard]] Status validate() const;

 private:
  NodeId add_node(std::string name, std::variant<ComputeUnit, MemoryRegion, SwitchHub> info);

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

}  // namespace clara::lnic
