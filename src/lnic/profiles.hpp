// Concrete LNIC profiles.
//
// A profile bundles the LNIC graph (architecture skeleton) with a
// parameter store (databook defaults, later refined by microbenchmarks).
// Three contrasting backends are provided, mirroring the paper's
// discussion of SmartNIC diversity (§2.1):
//
//  * netronome_agilio_cx — the paper's reference target: NPU islands with
//    CTM, shared IMEM/EMEM (+3 MB EMEM cache), checksum/crypto
//    accelerators and a match-action LPM engine with a flow cache.
//  * soc_arm_nic — an ARM-SoC NIC (LiquidIO/BlueField style): fewer,
//    faster general cores, a conventional L1/L2/LLC hierarchy, a crypto
//    engine, but no checksum accelerator, flow cache, or LPM engine.
//  * pipeline_asic_nic — an on-path pipeline ASIC: fast header engines
//    in fixed stages with small SRAM tables and only anemic
//    general-purpose microengines, so compute-heavy NFs map poorly.
#pragma once

#include <string>

#include "lnic/lnic.hpp"
#include "lnic/params.hpp"

namespace clara::lnic {

struct NicProfile {
  std::string name;
  Graph graph;
  ParameterStore params;
};

/// Netronome Agilio CX 40GbE-like profile. The island/core counts are
/// scaled down from the physical part (which has dozens of NPUs) to keep
/// simulation fast; the memory hierarchy sizes and latencies follow the
/// numbers the paper reports in §3.2:
///   local 4 kB @ 1-3 cyc, CTM 256 kB @ ~50 cyc, IMEM 4 MB @ ~250 cyc,
///   EMEM 8 GB @ ~500 cyc with a 3 MB cache; 8 threads per NPU; packets
///   <= 1 kB resident in CTM, larger tails spill to EMEM; header parse
///   ~150 cyc; metadata modification 2-5 cyc; checksum of a 1000 B packet
///   ~300 cyc at the ingress accelerator vs ~1700 extra on an NPU.
NicProfile netronome_agilio_cx();

/// ARM-SoC style NIC (see header comment).
NicProfile soc_arm_nic();

/// Pipeline-ASIC style NIC (see header comment).
NicProfile pipeline_asic_nic();

/// All built-in profiles, for iteration in tools/benches.
std::vector<NicProfile> all_profiles();

}  // namespace clara::lnic
