// Parameterizing the LNIC — paper §3.2.
//
// The LNIC graph is the "skeleton"; this store annotates it with
// architectural and performance parameters: memory access latencies,
// per-instruction-class cycle counts, accelerator cost curves, queue
// service rates. Parameters are obtained from databooks (profile defaults)
// or microbenchmarks (src/microbench overwrites the defaults with fitted
// values), as a one-time effort per NIC, and are reusable across NFs.
//
// Two value shapes are supported:
//   scalar  — a single number ("mem.read.ctm = 50")
//   curve   — a piecewise-linear function of one argument
//             ("accel.csum.cycles = [(0,60),(1000,300),(1500,430)]"),
//             used where cost is a function of data size or table size.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace clara::lnic {

/// Monotone-x piecewise-linear curve with linear interpolation between
/// points and clamped extrapolation at the ends (the conservative choice
/// for cost curves measured over a bounded sweep).
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;
  explicit PiecewiseLinear(std::vector<std::pair<double, double>> points);

  [[nodiscard]] double eval(double x) const;
  [[nodiscard]] const std::vector<std::pair<double, double>>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  /// A curve that is the constant `v` everywhere.
  static PiecewiseLinear constant(double v) { return PiecewiseLinear({{0.0, v}}); }

 private:
  std::vector<std::pair<double, double>> points_;  // sorted by x
};

class ParameterStore {
 public:
  void set_scalar(const std::string& key, double value);
  void set_curve(const std::string& key, PiecewiseLinear curve);

  /// Hard lookup; asserts in debug builds and returns 0 in release when
  /// absent — profiles are expected to be complete, tests enforce it.
  [[nodiscard]] double scalar(const std::string& key) const;
  [[nodiscard]] std::optional<double> try_scalar(const std::string& key) const;

  [[nodiscard]] const PiecewiseLinear* try_curve(const std::string& key) const;

  /// Evaluates `key` at `x`: a curve if one is registered, otherwise the
  /// scalar value (constant in x). Asserts when the key is entirely absent.
  [[nodiscard]] double eval(const std::string& key, double x) const;

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Text serialization (one `key = value` per line; curves as point
  /// lists). Round-trips exactly enough for persistence of fitted
  /// parameters.
  [[nodiscard]] std::string serialize() const;
  static Result<ParameterStore> parse(const std::string& text);

 private:
  std::map<std::string, double> scalars_;
  std::map<std::string, PiecewiseLinear> curves_;
};

/// Well-known parameter keys. Profiles must define all of these; the
/// microbenchmark extractor writes the same keys.
namespace keys {

// Memory access latency (cycles) per level, from an on-island NPU; NUMA
// edge weights in the graph scale these for remote access.
inline constexpr const char* kMemReadLocal = "mem.read.local";
inline constexpr const char* kMemWriteLocal = "mem.write.local";
inline constexpr const char* kMemReadCtm = "mem.read.ctm";
inline constexpr const char* kMemWriteCtm = "mem.write.ctm";
inline constexpr const char* kMemReadImem = "mem.read.imem";
inline constexpr const char* kMemWriteImem = "mem.write.imem";
inline constexpr const char* kMemReadEmem = "mem.read.emem";
inline constexpr const char* kMemWriteEmem = "mem.write.emem";
// Hit latency of the cache fronting EMEM.
inline constexpr const char* kEmemCacheHit = "mem.emem.cache_hit";

// NPU instruction classes (cycles per instruction).
inline constexpr const char* kInstrAlu = "npu.instr.alu";
inline constexpr const char* kInstrMul = "npu.instr.mul";
inline constexpr const char* kInstrDiv = "npu.instr.div";
inline constexpr const char* kInstrBranch = "npu.instr.branch";
inline constexpr const char* kInstrMove = "npu.instr.move";  // metadata modification, 2-5 cycles
// Software emulation penalty multiplier for instructions the datapath
// lacks (e.g., no FPU on NPU cores — paper §3.4).
inline constexpr const char* kInstrFpEmulation = "npu.instr.fp_emulation";

// Header parsing: base + per-byte (the ~150-cycle CTM->local copy path).
inline constexpr const char* kParseBase = "npu.parse.base";
inline constexpr const char* kParsePerByte = "npu.parse.per_byte";

// Accelerator cost curves.
inline constexpr const char* kCsumAccel = "accel.csum.cycles";        // f(bytes)
inline constexpr const char* kCsumSwExtra = "accel.csum.sw_extra";    // added when emulated on NPU
inline constexpr const char* kCryptoAccel = "accel.crypto.cycles";    // f(bytes)
inline constexpr const char* kCryptoSwFactor = "accel.crypto.sw_factor";
inline constexpr const char* kLpmDram = "accel.lpm.dram_cycles";      // f(table entries)
inline constexpr const char* kFlowCacheHit = "accel.flow_cache.hit";  // cycles
inline constexpr const char* kFlowCacheCapacity = "accel.flow_cache.entries";

// Packet datapath.
inline constexpr const char* kIngressDmaBase = "path.ingress.base";
inline constexpr const char* kIngressDmaPerByte = "path.ingress.per_byte";
inline constexpr const char* kEgressBase = "path.egress.base";
inline constexpr const char* kCtmPacketResidency = "path.ctm_packet_bytes";  // <=N bytes stay in CTM
inline constexpr const char* kSpillPerByte = "path.spill.per_byte";          // EMEM tail spill cost

// Switch hub service (cycles per packet through the hub).
inline constexpr const char* kHubService = "hub.service";

// Device clock, Hz (for converting rates to cycles).
inline constexpr const char* kClockHz = "clock.hz";

}  // namespace keys

/// The complete list of keys a usable profile must define (scalar or
/// curve). Exposed so tests can enforce completeness of all profiles.
const std::vector<std::string>& required_keys();

/// Validates that every required key is present.
Status validate_params(const ParameterStore& params);

}  // namespace clara::lnic
