#include "lnic/profiles.hpp"

#include "common/strings.hpp"

namespace clara::lnic {

namespace {

/// Wires island-structured NPUs to the memory hierarchy: every NPU gets
/// its own local memory, the island CTM at weight 1, remote CTMs at the
/// given NUMA weight, and the shared IMEM/EMEM.
struct IslandLayout {
  // Mirrors nicsim::NicConfig's topology so databook parallelism matches
  // the measurement substrate.
  int islands = 4;
  int npus_per_island = 7;
  int threads = 8;
  Bytes local_bytes = 4_KiB;
  Bytes ctm_bytes = 256_KiB;
  double remote_ctm_weight = 2.0;
};

void add_islands(Graph& g, const IslandLayout& layout, NodeId imem, NodeId emem,
                 std::vector<NodeId>* npus_out) {
  std::vector<NodeId> ctms;
  for (int isl = 0; isl < layout.islands; ++isl) {
    ctms.push_back(g.add_memory(strf("ctm%d", isl), MemoryRegion{MemKind::kCtm, layout.ctm_bytes, isl, 0}));
  }
  for (int isl = 0; isl < layout.islands; ++isl) {
    for (int c = 0; c < layout.npus_per_island; ++c) {
      const NodeId npu =
          g.add_compute(strf("npu%d_%d", isl, c), ComputeUnit{UnitKind::kNpuCore, isl, layout.threads, 1});
      npus_out->push_back(npu);
      const NodeId local =
          g.add_memory(strf("local%d_%d", isl, c), MemoryRegion{MemKind::kLocal, layout.local_bytes, isl, 0});
      g.add_edge(npu, local, EdgeKind::kMemAccess, 1.0);
      for (int other = 0; other < layout.islands; ++other) {
        g.add_edge(npu, ctms[other], EdgeKind::kMemAccess, other == isl ? 1.0 : layout.remote_ctm_weight);
      }
      if (imem != kInvalidNode) g.add_edge(npu, imem, EdgeKind::kMemAccess, 1.0);
      g.add_edge(npu, emem, EdgeKind::kMemAccess, 1.0);
    }
  }
  // Hierarchy: CTM spills to EMEM (packet tails), IMEM backs onto EMEM.
  for (const NodeId ctm : ctms) g.add_edge(ctm, emem, EdgeKind::kHierarchy);
  if (imem != kInvalidNode) g.add_edge(imem, emem, EdgeKind::kHierarchy);
}

}  // namespace

NicProfile netronome_agilio_cx() {
  NicProfile profile;
  profile.name = "netronome-agilio-cx";
  Graph& g = profile.graph;

  const NodeId ingress = g.add_switch("ingress", SwitchHub{512, QueueDiscipline::kFifo});
  const NodeId egress = g.add_switch("egress", SwitchHub{512, QueueDiscipline::kFifo});

  const NodeId imem = g.add_memory("imem", MemoryRegion{MemKind::kImem, 4_MiB, -1, 0});
  const NodeId emem = g.add_memory("emem", MemoryRegion{MemKind::kEmem, 8_GiB, -1, 3_MiB});

  // The parser is a fixed ingress stage (stage 0); the checksum, crypto
  // and LPM engines are services NPU code can invoke at any point in its
  // run-to-completion processing, so they share the NPUs' stage.
  const NodeId parser = g.add_compute("parser", ComputeUnit{UnitKind::kHeaderEngine, -1, 1, 0});
  const NodeId csum = g.add_compute("csum", ComputeUnit{UnitKind::kChecksumAccel, -1, 1, 1});
  const NodeId crypto = g.add_compute("crypto", ComputeUnit{UnitKind::kCryptoAccel, -1, 1, 1});
  const NodeId lpm = g.add_compute("lpm-engine", ComputeUnit{UnitKind::kLpmEngine, -1, 1, 1});

  std::vector<NodeId> npus;
  add_islands(g, IslandLayout{}, imem, emem, &npus);

  // Accelerators see the shared memories (tables for the LPM engine live
  // in IMEM/EMEM; the flow cache is its private SRAM, modeled as a
  // parameter rather than a region).
  for (const NodeId accel : {parser, csum, crypto, lpm}) {
    g.add_edge(accel, imem, EdgeKind::kMemAccess, 1.0);
    g.add_edge(accel, emem, EdgeKind::kMemAccess, 1.0);
  }

  // Steering: ingress feeds stage-0 units and NPUs; everything reaches
  // egress.
  for (const NodeId u : {parser, csum}) g.add_edge(ingress, u, EdgeKind::kSwitchLink);
  for (const NodeId u : npus) g.add_edge(ingress, u, EdgeKind::kSwitchLink);
  g.add_edge(ingress, crypto, EdgeKind::kSwitchLink);
  g.add_edge(ingress, lpm, EdgeKind::kSwitchLink);
  for (const NodeId u : {parser, csum, crypto, lpm}) g.add_edge(u, egress, EdgeKind::kSwitchLink);
  for (const NodeId u : npus) g.add_edge(u, egress, EdgeKind::kSwitchLink);
  // Stage order: parser/csum precede NPUs; NPUs may invoke crypto/lpm.
  for (const NodeId u : npus) {
    g.add_edge(parser, u, EdgeKind::kPipeline);
    g.add_edge(csum, u, EdgeKind::kPipeline);
  }

  ParameterStore& p = profile.params;
  using namespace keys;
  p.set_scalar(kClockHz, 800e6);  // NFP NPU clock

  // Memory (paper §3.2).
  p.set_scalar(kMemReadLocal, 2);
  p.set_scalar(kMemWriteLocal, 2);
  p.set_scalar(kMemReadCtm, 50);
  p.set_scalar(kMemWriteCtm, 50);
  p.set_scalar(kMemReadImem, 250);
  p.set_scalar(kMemWriteImem, 250);
  p.set_scalar(kMemReadEmem, 500);
  p.set_scalar(kMemWriteEmem, 500);
  p.set_scalar(kEmemCacheHit, 150);

  // NPU instruction classes. In-order cores with stable per-instruction
  // latencies (paper §4: "NPU cores do not perform out-of-order
  // execution, so they have stable performance parameters").
  p.set_scalar(kInstrAlu, 1);
  p.set_scalar(kInstrMul, 5);
  p.set_scalar(kInstrDiv, 20);
  p.set_scalar(kInstrBranch, 2);
  p.set_scalar(kInstrMove, 3);  // metadata modifications: 2-5 cycles
  p.set_scalar(kInstrFpEmulation, 30);

  // Header parsing ~150 cycles (CTM -> local copy dominates).
  p.set_scalar(kParseBase, 110);
  p.set_scalar(kParsePerByte, 1.0);  // ~40 header bytes -> ~150 total

  // Checksum accelerator: ~300 cycles for a 1000 B packet at the ingress
  // unit; NPU-software emulation pays ~1700 extra cycles for streaming
  // the payload through the core (paper §2.1).
  p.set_curve(kCsumAccel, PiecewiseLinear({{0.0, 60.0}, {1000.0, 300.0}, {1500.0, 420.0}}));
  p.set_scalar(kCsumSwExtra, 1700);

  // AES engine: setup + per-byte pipeline cost.
  p.set_curve(kCryptoAccel, PiecewiseLinear({{0.0, 200.0}, {1024.0, 1224.0}, {4096.0, 4296.0}}));
  p.set_scalar(kCryptoSwFactor, 25);  // software AES is ~25x the engine

  // Match-action LPM in DRAM: cost grows with the number of table
  // entries (paper §4: "the latency for longest prefix match grows with
  // the number of table entries"). The flow cache is an SRAM exact-match
  // front-end with a constant hit cost.
  p.set_curve(kLpmDram, PiecewiseLinear({{0.0, 5000.0}, {30000.0, 1205000.0}}));
  p.set_scalar(kFlowCacheHit, 200);
  p.set_scalar(kFlowCacheCapacity, 4096);  // entries

  // Packet datapath: ingress DMA into CTM; packets <= 1 kB stay in CTM,
  // larger tails spill to EMEM (paper §3.2).
  p.set_scalar(kIngressDmaBase, 500);
  p.set_scalar(kIngressDmaPerByte, 3.5);
  p.set_scalar(kEgressBase, 400);
  p.set_scalar(kCtmPacketResidency, 1024);
  p.set_scalar(kSpillPerByte, 2.0);

  p.set_scalar(kHubService, 40);
  return profile;
}

NicProfile soc_arm_nic() {
  NicProfile profile;
  profile.name = "soc-arm";
  Graph& g = profile.graph;

  const NodeId ingress = g.add_switch("ingress", SwitchHub{1024, QueueDiscipline::kFifo});
  const NodeId egress = g.add_switch("egress", SwitchHub{1024, QueueDiscipline::kFifo});

  // Conventional hierarchy: per-core L1 (kLocal), shared L2 (kCtm, one
  // "island"), DRAM (kEmem) fronted by a 2 MiB LLC. No IMEM level: the
  // SoC has nothing between L2 and DRAM, so the region is absent from
  // the graph (params still carry the key for completeness).
  const NodeId emem = g.add_memory("dram", MemoryRegion{MemKind::kEmem, 16_GiB, -1, 2_MiB});

  std::vector<NodeId> cores;
  IslandLayout layout;
  layout.islands = 1;
  layout.npus_per_island = 8;
  layout.threads = 2;
  layout.local_bytes = 32_KiB;
  layout.ctm_bytes = 1_MiB;
  add_islands(g, layout, kInvalidNode, emem, &cores);

  const NodeId crypto = g.add_compute("crypto", ComputeUnit{UnitKind::kCryptoAccel, -1, 1, 1});
  g.add_edge(crypto, emem, EdgeKind::kMemAccess, 1.0);

  for (const NodeId u : cores) {
    g.add_edge(ingress, u, EdgeKind::kSwitchLink);
    g.add_edge(u, egress, EdgeKind::kSwitchLink);
  }
  g.add_edge(ingress, crypto, EdgeKind::kSwitchLink);
  g.add_edge(crypto, egress, EdgeKind::kSwitchLink);

  ParameterStore& p = profile.params;
  using namespace keys;
  p.set_scalar(kClockHz, 2.0e9);  // ARM A72-class cores

  p.set_scalar(kMemReadLocal, 4);    // L1
  p.set_scalar(kMemWriteLocal, 4);
  p.set_scalar(kMemReadCtm, 20);     // L2
  p.set_scalar(kMemWriteCtm, 20);
  p.set_scalar(kMemReadImem, 20);    // unused level; mirrors L2
  p.set_scalar(kMemWriteImem, 20);
  p.set_scalar(kMemReadEmem, 200);   // DRAM
  p.set_scalar(kMemWriteEmem, 200);
  p.set_scalar(kEmemCacheHit, 45);   // LLC

  p.set_scalar(kInstrAlu, 1);
  p.set_scalar(kInstrMul, 3);
  p.set_scalar(kInstrDiv, 12);
  p.set_scalar(kInstrBranch, 1);
  p.set_scalar(kInstrMove, 1);
  p.set_scalar(kInstrFpEmulation, 1);  // real FPU: no emulation penalty

  p.set_scalar(kParseBase, 60);
  p.set_scalar(kParsePerByte, 0.5);

  // No checksum accelerator: the "accelerated" curve equals software
  // cost, and there is no extra penalty to emulate (it is already sw).
  p.set_curve(kCsumAccel, PiecewiseLinear({{0.0, 150.0}, {1000.0, 1400.0}, {1500.0, 2000.0}}));
  p.set_scalar(kCsumSwExtra, 0);

  p.set_curve(kCryptoAccel, PiecewiseLinear({{0.0, 300.0}, {1024.0, 1800.0}, {4096.0, 6500.0}}));
  p.set_scalar(kCryptoSwFactor, 12);

  // LPM runs in software (radix tree in DRAM): logarithmic-ish growth,
  // far flatter than the Netronome match-action table scan but with a
  // higher floor from cache misses. No flow-cache SRAM.
  p.set_curve(kLpmDram, PiecewiseLinear({{0.0, 900.0}, {5000.0, 2400.0}, {30000.0, 4200.0}}));
  p.set_scalar(kFlowCacheHit, 0);
  p.set_scalar(kFlowCacheCapacity, 0);

  p.set_scalar(kIngressDmaBase, 900);  // PCIe-ish on-ramp into DRAM rings
  p.set_scalar(kIngressDmaPerByte, 1.0);
  p.set_scalar(kEgressBase, 700);
  p.set_scalar(kCtmPacketResidency, 0);  // packets live in DRAM, cached
  p.set_scalar(kSpillPerByte, 0.5);

  p.set_scalar(kHubService, 60);
  return profile;
}

NicProfile pipeline_asic_nic() {
  NicProfile profile;
  profile.name = "pipeline-asic";
  Graph& g = profile.graph;

  const NodeId ingress = g.add_switch("ingress", SwitchHub{2048, QueueDiscipline::kFifo});
  const NodeId egress = g.add_switch("egress", SwitchHub{2048, QueueDiscipline::kFifo});

  const NodeId sram = g.add_memory("stage-sram", MemoryRegion{MemKind::kCtm, 12_MiB, -1, 0});
  const NodeId dram = g.add_memory("dram", MemoryRegion{MemKind::kEmem, 4_GiB, -1, 0});

  // Fixed-function match-action stages; blisteringly fast on header work.
  std::vector<NodeId> stages;
  for (int s = 0; s < 4; ++s) {
    const NodeId st = g.add_compute(strf("ma-stage%d", s), ComputeUnit{UnitKind::kHeaderEngine, -1, 1, s, /*match_action=*/true});
    stages.push_back(st);
    g.add_edge(st, sram, EdgeKind::kMemAccess, 1.0);
    if (s > 0) g.add_edge(stages[s - 1], st, EdgeKind::kPipeline);
  }
  const NodeId lpm = g.add_compute("lpm-engine", ComputeUnit{UnitKind::kLpmEngine, -1, 1, 1});
  g.add_edge(lpm, sram, EdgeKind::kMemAccess, 1.0);
  // A pair of anemic service microengines for anything the pipeline
  // cannot express; they only see DRAM plus a sliver of local memory.
  std::vector<NodeId> cores;
  for (int c = 0; c < 2; ++c) {
    const NodeId me = g.add_compute(strf("microengine%d", c), ComputeUnit{UnitKind::kNpuCore, -1, 4, 4});
    cores.push_back(me);
    const NodeId local = g.add_memory(strf("me-local%d", c), MemoryRegion{MemKind::kLocal, 8_KiB, -1, 0});
    g.add_edge(me, local, EdgeKind::kMemAccess, 1.0);
    g.add_edge(me, dram, EdgeKind::kMemAccess, 1.0);
    g.add_edge(me, sram, EdgeKind::kMemAccess, 1.5);
  }
  g.add_edge(sram, dram, EdgeKind::kHierarchy);

  g.add_edge(ingress, stages.front(), EdgeKind::kSwitchLink);
  g.add_edge(ingress, lpm, EdgeKind::kSwitchLink);
  for (const NodeId u : cores) {
    g.add_edge(ingress, u, EdgeKind::kSwitchLink);
    g.add_edge(u, egress, EdgeKind::kSwitchLink);
  }
  g.add_edge(stages.back(), egress, EdgeKind::kSwitchLink);
  g.add_edge(lpm, egress, EdgeKind::kSwitchLink);
  for (const NodeId st : stages) {
    for (const NodeId me : cores) g.add_edge(st, me, EdgeKind::kPipeline);
  }

  ParameterStore& p = profile.params;
  using namespace keys;
  p.set_scalar(kClockHz, 1.2e9);

  p.set_scalar(kMemReadLocal, 1);
  p.set_scalar(kMemWriteLocal, 1);
  p.set_scalar(kMemReadCtm, 4);      // stage SRAM: single-digit cycles
  p.set_scalar(kMemWriteCtm, 4);
  p.set_scalar(kMemReadImem, 4);     // unused level; mirrors SRAM
  p.set_scalar(kMemWriteImem, 4);
  p.set_scalar(kMemReadEmem, 350);
  p.set_scalar(kMemWriteEmem, 350);
  p.set_scalar(kEmemCacheHit, 350);  // no cache in front of DRAM

  // Microengines are slow at general compute.
  p.set_scalar(kInstrAlu, 2);
  p.set_scalar(kInstrMul, 12);
  p.set_scalar(kInstrDiv, 60);
  p.set_scalar(kInstrBranch, 4);
  p.set_scalar(kInstrMove, 2);
  p.set_scalar(kInstrFpEmulation, 80);

  // Header engines parse essentially for free.
  p.set_scalar(kParseBase, 12);
  p.set_scalar(kParsePerByte, 0.1);

  p.set_curve(kCsumAccel, PiecewiseLinear({{0.0, 20.0}, {1500.0, 45.0}}));
  p.set_scalar(kCsumSwExtra, 5000);  // emulating on a microengine is dire

  p.set_curve(kCryptoAccel, PiecewiseLinear({{0.0, 6000.0}, {4096.0, 120000.0}}));  // no engine: sw cost
  p.set_scalar(kCryptoSwFactor, 1);

  // TCAM-backed LPM: constant-time until the table exceeds stage SRAM.
  p.set_curve(kLpmDram, PiecewiseLinear({{0.0, 30.0}, {20000.0, 36.0}, {30000.0, 5000.0}}));
  p.set_scalar(kFlowCacheHit, 12);
  p.set_scalar(kFlowCacheCapacity, 65536);

  p.set_scalar(kIngressDmaBase, 100);
  p.set_scalar(kIngressDmaPerByte, 0.4);
  p.set_scalar(kEgressBase, 80);
  p.set_scalar(kCtmPacketResidency, 10240);
  p.set_scalar(kSpillPerByte, 1.0);

  p.set_scalar(kHubService, 10);
  return profile;
}

std::vector<NicProfile> all_profiles() {
  std::vector<NicProfile> out;
  out.push_back(netronome_agilio_cx());
  out.push_back(soc_arm_nic());
  out.push_back(pipeline_asic_nic());
  return out;
}

}  // namespace clara::lnic
