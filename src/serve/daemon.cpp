#include "serve/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <utility>

#include "common/hash.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"

namespace clara::serve {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since).count();
}

/// Writes the whole buffer, riding out EINTR and partial sends.
/// MSG_NOSIGNAL: a client that hung up must surface as an error here,
/// not as a process-wide SIGPIPE. With deadline_ms > 0 each stalled
/// send polls for writability and gives up once the budget is spent,
/// so a peer that stopped reading cannot pin the thread forever.
bool send_all(int fd, const std::string& data, double deadline_ms) {
  const auto start = Clock::now();
  std::size_t sent = 0;
  while (sent < data.size()) {
    const int flags = MSG_NOSIGNAL | (deadline_ms > 0.0 ? MSG_DONTWAIT : 0);
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, flags);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (deadline_ms > 0.0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        const double remaining = deadline_ms - elapsed_ms(start);
        if (remaining <= 0.0) return false;
        pollfd pfd{fd, POLLOUT, 0};
        const int pr = ::poll(&pfd, 1, static_cast<int>(std::ceil(remaining)));
        if (pr < 0 && errno != EINTR) return false;
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

core::Response hello_response() {
  core::Response hello;
  hello.id = "clarad";
  hello.kind = core::RequestKind::kHello;
  hello.ok = true;
  return hello;
}

/// Salvages the request id from the raw JSON when the document parses
/// as an object at all — and from a lightweight scan when it does not
/// (a truncated slow-loris line is not parseable, but its "id" field
/// usually is), so even a reject carries the client's correlation tag.
/// The scan is best-effort: ids containing escapes are skipped rather
/// than mis-unescaped.
std::string salvage_id(const std::string& line) {
  if (auto doc = Json::parse(line); doc && doc.value().is_object()) {
    return doc.value().string_at("id");
  }
  const auto key = line.find("\"id\"");
  if (key == std::string::npos) return {};
  auto pos = line.find_first_not_of(" \t", key + 4);
  if (pos == std::string::npos || line[pos] != ':') return {};
  pos = line.find_first_not_of(" \t", pos + 1);
  if (pos == std::string::npos || line[pos] != '"') return {};
  const auto open = pos + 1;
  const auto close = line.find('"', open);
  if (close == std::string::npos) return {};
  const std::string id = line.substr(open, close - open);
  return id.find('\\') == std::string::npos ? id : std::string{};
}

/// Parses one request line; a malformed line still gets a well-formed
/// kParse response.
core::Response respond_parse_error(const std::string& line, const Error& error) {
  core::Request salvage;
  salvage.id = salvage_id(line);
  return core::error_response(salvage, error.code, error.message);
}

/// Shared mutable state of one connection, owned jointly by the reader
/// and its in-flight pool tasks. `dead` flips when a response write
/// fails (or a fault kills the socket); every later pipelined task for
/// the connection aborts instead of writing into a broken pipe.
struct ConnShared {
  std::mutex write_mu;
  std::atomic<bool> dead{false};
  int fd = -1;
};

bool transient_accept_errno(int err) {
  return err == EMFILE || err == ENFILE || err == ECONNABORTED || err == ENOMEM ||
         err == EAGAIN || err == EWOULDBLOCK;
}

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      service_(ServiceOptions{options_.max_inflight, options_.retry_after_ms}) {}

Daemon::~Daemon() { stop(); }

Status Daemon::start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() || options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return make_error(ErrorCode::kParse,
                      strf("socket path must be 1..%zu bytes (got %zu)", sizeof(addr.sun_path) - 1,
                           options_.socket_path.size()));
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(), options_.socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return make_error(ErrorCode::kInternal, strf("socket: %s", std::strerror(errno)));
  }
  ::unlink(options_.socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return make_error(ErrorCode::kInternal,
                      strf("bind %s: %s", options_.socket_path.c_str(), std::strerror(err)));
  }
  if (::listen(fd, 128) != 0) {
    const int err = errno;
    ::close(fd);
    return make_error(ErrorCode::kInternal, strf("listen: %s", std::strerror(err)));
  }
  listen_fd_.store(fd, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return {};
}

void Daemon::begin_drain() {
  draining_.store(true, std::memory_order_release);
  if (const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel); fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

void Daemon::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  begin_drain();
  if (accept_thread_.joinable()) accept_thread_.join();

  // Politely stop the readers: half-close so buffered pipelined work
  // still drains and responses still flow out.
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& conn : conns_) {
      if (const int fd = conn->fd.load(std::memory_order_acquire); fd >= 0) {
        ::shutdown(fd, SHUT_RD);
      }
    }
  }
  // Bounded drain: a stalled client (blocked send, wedged reader) must
  // not hang shutdown, so after the deadline the remaining sockets are
  // force-closed in both directions and the joins below finish.
  const auto drain_start = Clock::now();
  while (true) {
    bool all_done = true;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      for (const auto& conn : conns_) {
        if (!conn->done.load(std::memory_order_acquire)) {
          all_done = false;
          break;
        }
      }
    }
    if (all_done) break;
    if (elapsed_ms(drain_start) >= options_.drain_deadline_ms) {
      const std::lock_guard<std::mutex> lock(mu_);
      for (const auto& conn : conns_) {
        if (conn->done.load(std::memory_order_acquire)) continue;
        if (const int fd = conn->fd.load(std::memory_order_acquire); fd >= 0) {
          ::shutdown(fd, SHUT_RDWR);
        }
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::vector<std::unique_ptr<Conn>> all;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    all.swap(conns_);
  }
  for (auto& conn : all) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  ::unlink(options_.socket_path.c_str());
}

std::size_t Daemon::tracked_connections() {
  const std::lock_guard<std::mutex> lock(mu_);
  return conns_.size();
}

void Daemon::reap_finished() {
  std::vector<std::unique_ptr<Conn>> finished;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void Daemon::accept_loop() {
  // Transient-failure backoff: EMFILE and friends mean "out of fds
  // right now", not "stop serving forever" — sleep, let connections
  // close, try again. Any accept success resets the backoff.
  int backoff_ms = 1;
  constexpr int kMaxBackoffMs = 100;
  std::uint64_t accept_ordinal = 0;  // deterministic serve/accept_fail key
  while (!stopping_.load(std::memory_order_acquire)) {
    reap_finished();
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;  // begin_drain()/stop() invalidated the listener
    int fd = -1;
    int err = 0;
    if (fault::active() && fault::inject("serve/accept_fail", accept_ordinal)) {
      err = EMFILE;  // injected transient fd-pressure failure
    } else {
      fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) err = errno;
    }
    ++accept_ordinal;
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (err == EINTR) continue;
      if (transient_accept_errno(err)) {
        accept_retries_.fetch_add(1, std::memory_order_relaxed);
        obs::metrics().counter("serve/accept_retries").inc();
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = std::min(backoff_ms * 2, kMaxBackoffMs);
        continue;
      }
      break;  // listener shut down or unrecoverable (EBADF, EINVAL, ...)
    }
    backoff_ms = 1;
    connections_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter("serve/connections").inc();
    if (options_.max_connections > 0 &&
        open_conns_.load(std::memory_order_acquire) >= options_.max_connections) {
      // Typed rejection instead of a silent close: one kOverloaded
      // hello line tells the client why and when to come back.
      core::Response reject = hello_response();
      reject.ok = false;
      reject.error_code = ErrorCode::kOverloaded;
      reject.error = strf("connection limit reached (%zu); retry", options_.max_connections);
      reject.retry_after_ms = options_.retry_after_ms;
      send_all(fd, reject.to_json() + "\n", 1000.0);
      ::close(fd);
      obs::metrics().counter("serve/conn_limit_rejects").inc();
      continue;
    }
    open_conns_.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(mu_);
    conns_.push_back(std::make_unique<Conn>());
    Conn* conn = conns_.back().get();
    conn->fd.store(fd, std::memory_order_release);
    conn->thread = std::thread([this, conn] { serve_connection(conn); });
  }
}

void Daemon::serve_connection(Conn* conn) {
  const int fd = conn->fd.load(std::memory_order_acquire);
  // Response writes share the read deadline as their stall budget; with
  // no deadline configured they block (and stop()'s force-close is the
  // backstop).
  const double write_deadline = options_.read_deadline_ms;
  auto shared = std::make_shared<ConnShared>();
  shared->fd = fd;
  {
    const std::lock_guard<std::mutex> lock(shared->write_mu);
    send_all(fd, hello_response().to_json() + "\n", write_deadline);
  }

  // Serializes a response onto the wire under the connection's write
  // mutex. serve/torn_write splits the line and delays the second half
  // (exercising client reassembly); a failed write marks the connection
  // dead so the remaining pipelined work aborts instead of piling onto
  // a broken pipe.
  auto write_response = [this, shared, write_deadline](const core::Response& response,
                                                       std::uint64_t key) {
    const std::string out = response.to_json() + "\n";
    const std::lock_guard<std::mutex> lock(shared->write_mu);
    if (shared->dead.load(std::memory_order_acquire)) return;
    bool sent = false;
    if (out.size() >= 2 && fault::active() && fault::inject("serve/torn_write", key)) {
      const std::size_t half = out.size() / 2;
      sent = send_all(shared->fd, out.substr(0, half), write_deadline);
      if (sent) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        sent = send_all(shared->fd, out.substr(half), write_deadline);
      }
    } else {
      sent = send_all(shared->fd, out, write_deadline);
    }
    if (!sent) {
      shared->dead.store(true, std::memory_order_release);
      obs::metrics().counter("serve/write_errors").inc();
      ::shutdown(shared->fd, SHUT_RD);  // wake the reader so it can wind down
    }
  };

  // Answers a protocol violation (oversized line, read timeout) with a
  // typed response before the close, so abusive peers still get one
  // well-formed line explaining the cut.
  auto close_with_error = [&write_response](const std::string& line, ErrorCode code,
                                            std::string message) {
    core::Request salvage;
    salvage.id = salvage_id(line);
    write_response(core::error_response(salvage, code, std::move(message)), 0);
  };

  // One group per connection: every request line becomes a pool task
  // (inline and serial at jobs=1); the reader drains the group before
  // closing so responses never race the close.
  parallel::TaskGroup group;
  std::string buffer;
  char chunk[4096];
  bool open = true;
  bool partial = false;              // buffer holds an incomplete line
  auto line_start = Clock::now();    // when that line's first byte arrived
  while (open && !shared->dead.load(std::memory_order_acquire)) {
    // Deadline measured from the first byte of the pending line, not
    // from the last byte received — a slow-loris drip cannot keep
    // resetting it.
    int timeout = -1;
    if (options_.read_deadline_ms > 0.0 && partial) {
      const double remaining = options_.read_deadline_ms - elapsed_ms(line_start);
      if (remaining <= 0.0) {
        obs::metrics().counter("serve/read_timeouts").inc();
        close_with_error(buffer, ErrorCode::kParse,
                         strf("read deadline expired mid-request (%.0f ms)",
                              options_.read_deadline_ms));
        break;
      }
      timeout = static_cast<int>(std::ceil(remaining));
    }
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeout);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) continue;  // re-check the deadline at the top
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    if (n <= 0) break;
    if (buffer.empty()) line_start = Clock::now();
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (trim(line).empty()) continue;
      if (options_.max_line_bytes > 0 && line.size() > options_.max_line_bytes) {
        obs::metrics().counter("serve/line_limit_closes").inc();
        close_with_error(line, ErrorCode::kParse,
                         strf("request line too large (%zu bytes, limit %zu)", line.size(),
                              options_.max_line_bytes));
        open = false;
        break;
      }
      if (draining_.load(std::memory_order_acquire)) {
        // Drain: acknowledge without dispatching, so clients fail over
        // instead of waiting on a server that is going away.
        obs::metrics().counter("serve/draining_rejects").inc();
        core::Request salvage;
        salvage.id = salvage_id(line);
        core::Response reject =
            core::error_response(salvage, ErrorCode::kOverloaded, "server draining; retry");
        reject.retry_after_ms = options_.retry_after_ms;
        write_response(reject, 0);
        continue;
      }
      group.run([this, shared, write_response, line = std::move(line)] {
        if (shared->dead.load(std::memory_order_acquire)) {
          obs::metrics().counter("serve/aborted_requests").inc();
          return;
        }
        auto request = core::Request::from_json(line);
        const std::string rid = request ? request.value().id : salvage_id(line);
        const std::uint64_t key = Fnv1a().mix(rid).digest();
        const core::Response response = request
                                            ? service_.handle(request.value())
                                            : respond_parse_error(line, request.error());
        if (fault::active() && fault::inject("serve/conn_reset", key)) {
          // Mid-pipeline reset: the response is dropped and the socket
          // killed; the client sees EOF and (with retries) re-asks.
          shared->dead.store(true, std::memory_order_release);
          obs::metrics().counter("serve/conn_resets").inc();
          ::shutdown(shared->fd, SHUT_RDWR);
          return;
        }
        write_response(response, key);
      });
    }
    buffer.erase(0, start);
    if (buffer.empty()) {
      partial = false;
    } else {
      if (!partial) {
        partial = true;
        line_start = Clock::now();
      }
      const std::size_t cap =
          options_.max_buffer_bytes > 0 ? options_.max_buffer_bytes : options_.max_line_bytes;
      if (cap > 0 && buffer.size() > cap) {
        // Newline-less flood: the partial line already exceeds what any
        // request could legitimately need.
        obs::metrics().counter("serve/line_limit_closes").inc();
        close_with_error("", ErrorCode::kParse,
                         strf("request exceeds %zu bytes without a newline", cap));
        break;
      }
    }
  }
  group.wait();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ::close(fd);
    conn->fd.store(-1, std::memory_order_release);
  }
  open_conns_.fetch_sub(1, std::memory_order_relaxed);
  conn->done.store(true, std::memory_order_release);
}

}  // namespace clara::serve
