#include "serve/daemon.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <utility>

#include "common/json.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "obs/metrics.hpp"

namespace clara::serve {

namespace {

/// Writes the whole buffer, riding out EINTR and partial sends.
/// MSG_NOSIGNAL: a client that hung up must surface as an error here,
/// not as a process-wide SIGPIPE.
bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

core::Response hello_response() {
  core::Response hello;
  hello.id = "clarad";
  hello.kind = core::RequestKind::kHello;
  hello.ok = true;
  return hello;
}

/// Parses one request line; a malformed line still gets a well-formed
/// kParse response, with the id salvaged from the raw JSON when the
/// document parses as an object at all.
core::Response respond_parse_error(const std::string& line, const Error& error) {
  core::Request salvage;
  if (auto doc = Json::parse(line); doc && doc.value().is_object()) {
    salvage.id = doc.value().string_at("id");
  }
  return core::error_response(salvage, error.code, error.message);
}

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)), service_(ServiceOptions{options_.max_inflight}) {}

Daemon::~Daemon() { stop(); }

Status Daemon::start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() || options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return make_error(ErrorCode::kParse,
                      strf("socket path must be 1..%zu bytes (got %zu)", sizeof(addr.sun_path) - 1,
                           options_.socket_path.size()));
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(), options_.socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return make_error(ErrorCode::kInternal, strf("socket: %s", std::strerror(errno)));
  }
  ::unlink(options_.socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return make_error(ErrorCode::kInternal,
                      strf("bind %s: %s", options_.socket_path.c_str(), std::strerror(err)));
  }
  if (::listen(fd, 128) != 0) {
    const int err = errno;
    ::close(fd);
    return make_error(ErrorCode::kInternal, strf("listen: %s", std::strerror(err)));
  }
  listen_fd_.store(fd, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return {};
}

void Daemon::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel); fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    threads.swap(conn_threads_);
  }
  for (auto& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  ::unlink(options_.socket_path.c_str());
}

void Daemon::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;  // stop() already invalidated the listener
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or unrecoverable) — stop accepting
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter("serve/connections").inc();
    const std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void Daemon::serve_connection(int fd) {
  auto write_mu = std::make_shared<std::mutex>();
  {
    const std::lock_guard<std::mutex> lock(*write_mu);
    send_all(fd, hello_response().to_json() + "\n");
  }

  // One group per connection: every request line becomes a pool task
  // (inline and serial at jobs=1); the reader drains the group before
  // closing so responses never race the close.
  parallel::TaskGroup group;
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (trim(line).empty()) continue;
      group.run([this, fd, write_mu, line = std::move(line)] {
        auto request = core::Request::from_json(line);
        const core::Response response =
            request ? service_.handle(request.value())
                    : respond_parse_error(line, request.error());
        const std::string out = response.to_json() + "\n";
        const std::lock_guard<std::mutex> lock(*write_mu);
        send_all(fd, out);
      });
    }
    buffer.erase(0, start);
  }
  group.wait();
  // Unregister before close so stop() never shutdown()s a recycled fd.
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto it = conn_fds_.begin(); it != conn_fds_.end(); ++it) {
      if (*it == fd) {
        conn_fds_.erase(it);
        break;
      }
    }
  }
  ::close(fd);
}

}  // namespace clara::serve
