#include "serve/service.hpp"

#include <chrono>
#include <utility>

#include "cir/printer.hpp"
#include "cir/verify.hpp"
#include "common/strings.hpp"
#include "core/energy.hpp"
#include "core/partial.hpp"
#include "core/sweep.hpp"
#include "fault/fault.hpp"
#include "obs/accuracy.hpp"
#include "obs/breakdown.hpp"
#include "obs/metrics.hpp"
#include "passes/symexec.hpp"
#include "serve/registry.hpp"
#include "workload/trace_io.hpp"

namespace clara::serve {

namespace {

using core::Request;
using core::RequestKind;
using core::Response;

/// Default workload spec, identical to the CLI's (seed included, so two
/// servers given the same request generate the same trace).
constexpr const char* kDefaultWorkload =
    "tcp=0.8 flows=10000 payload=300 pps=60000 packets=20000";

Result<cir::Function> resolve_nf(const Request& request) {
  if (!request.nf_cir.empty()) {
    auto mod = cir::parse_module(request.nf_cir);
    if (!mod) return mod.error();
    if (auto status = cir::verify(mod.value()); !status) return status.error();
    if (mod.value().functions.empty()) {
      return make_error(ErrorCode::kParse, "nf_cir module has no functions");
    }
    return std::move(mod.value().functions.front());
  }
  const NfEntry* entry = find_nf(request.nf);
  if (entry == nullptr) {
    std::string message = strf("unknown NF \"%s\"", request.nf.c_str());
    const std::string suggestion = closest_match(request.nf, nf_names());
    if (!suggestion.empty()) message += strf(" (did you mean \"%s\"?)", suggestion.c_str());
    return make_error(ErrorCode::kParse, std::move(message));
  }
  return entry->build();
}

Result<lnic::NicProfile> resolve_nic(const Request& request) {
  for (auto& profile : lnic::all_profiles()) {
    if (profile.name == request.nic) return std::move(profile);
  }
  return make_error(ErrorCode::kParse, strf("unknown NIC profile \"%s\"", request.nic.c_str()));
}

Result<workload::Trace> resolve_trace(const Request& request) {
  if (!request.trace_file.empty()) {
    return workload::read_trace(request.trace_file);
  }
  const std::string spec = request.workload.empty() ? kDefaultWorkload : request.workload;
  auto profile = workload::parse_profile(spec);
  if (!profile) return profile.error();
  return workload::generate_trace(profile.value());
}

/// Copies the deterministic analysis summary (and the requested extra
/// sections) into the response. Shared by every kind: a sweep/repair/
/// validate response carries its base analysis alongside the
/// kind-specific payload.
void fill_analysis(Response& response, const Request& request, const core::Analyzer& analyzer,
                   const cir::Function& fn, const workload::Trace& trace,
                   const core::Analysis& analysis) {
  response.nf_name = fn.name;
  response.nic = analyzer.profile().name;
  response.workload = trace.profile.serialize();
  response.substituted = analysis.substitution.substituted;
  response.patterns = analysis.patterns.total();
  response.greedy_mapper = analysis.mapping.greedy;
  response.degraded = analysis.degraded;
  response.repaired = analysis.repaired;
  response.repair_displaced = analysis.mapping.repair_displaced;
  if (analysis.repaired) {
    response.repair_pinned =
        analysis.mapping.node_pool.size() - analysis.mapping.repair_displaced;
  }
  response.mean_latency_cycles = analysis.prediction.mean_latency_cycles;
  response.mean_latency_us = analysis.prediction.mean_latency_us;
  response.worst_case_cycles = analysis.prediction.worst_case_cycles;
  response.throughput_pps = analysis.prediction.throughput_pps;
  response.bottleneck = analysis.prediction.bottleneck;
  response.emem_cache_hit_rate = analysis.prediction.emem_cache_hit_rate;
  response.flow_cache_hit_rate = analysis.prediction.flow_cache_hit_rate;
  response.classes.clear();
  for (const auto& cls : analysis.prediction.classes) {
    response.classes.push_back({cls.name, cls.fraction, cls.latency_cycles});
  }
  response.report = analysis.report;
  if (request.breakdown) {
    response.breakdown_text = obs::render_breakdown(analysis.prediction.breakdown);
  }
  if (request.energy || request.partial) {
    const auto hints = core::hints_from_trace(trace, analyzer.profile());
    const auto graph = passes::DataflowGraph::build(analysis.lowered, hints);
    const mapping::Mapper mapper(analyzer.profile());
    if (request.energy) {
      const auto energy =
          core::predict_energy(analysis.lowered, graph, analysis.mapping, mapper, trace);
      response.energy_nj_per_packet = energy.nj_per_packet;
      response.energy_watts = energy.watts_at_rate;
      response.energy_nj_per_packet_total = energy.nj_per_packet_total;
    }
    if (request.partial) {
      const auto partial =
          core::plan_partial_offload(analysis.lowered, graph, analysis.mapping, mapper, trace);
      if (partial) {
        response.partial_text =
            "partial-offload plans:\n" + core::describe_partial(partial.value(), graph);
      }
    }
  }
  if (request.paths) {
    const auto paths = passes::enumerate_paths(analysis.lowered);
    response.paths_text = strf("NF behaviours (%zu paths%s):\n", paths.paths.size(),
                               paths.complete ? "" : ", truncated");
    for (const auto& path : paths.paths) {
      response.paths_text += "  " + path.describe(analysis.lowered) + "\n";
    }
  }
}

Response handle_analyze(const Request& request, const core::Analyzer& analyzer,
                        const cir::Function& fn, const workload::Trace& trace) {
  auto analysis = analyzer.analyze(fn, trace, request.options);
  if (!analysis) {
    return core::error_response(request, analysis.error().code, analysis.error().message);
  }
  Response response;
  response.id = request.id;
  response.kind = request.kind;
  response.ok = true;
  fill_analysis(response, request, analyzer, fn, trace, analysis.value());
  return response;
}

Response handle_sweep(const Request& request, const core::Analyzer& analyzer,
                      const cir::Function& fn, const workload::Trace& trace) {
  if (request.sweep_pps.empty()) {
    return core::error_response(request, ErrorCode::kParse,
                                "sweep request needs a non-empty sweep_pps grid");
  }
  for (const double pps : request.sweep_pps) {
    if (pps <= 0.0) {
      return core::error_response(request, ErrorCode::kParse,
                                  "sweep_pps load points must be positive");
    }
  }
  auto analysis = analyzer.analyze(fn, trace, request.options);
  if (!analysis) {
    return core::error_response(request, analysis.error().code, analysis.error().message);
  }
  Response response;
  response.id = request.id;
  response.kind = request.kind;
  response.ok = true;
  fill_analysis(response, request, analyzer, fn, trace, analysis.value());
  const auto sweep = core::predict_load_sweep(analyzer, analysis.value(), trace.profile,
                                              request.sweep_pps, request.options);
  for (const auto& point : sweep) {
    core::SweepPointSummary summary;
    summary.pps = point.pps;
    summary.seed = point.seed;
    summary.ok = point.ok;
    summary.error = point.error;
    if (point.ok) {
      summary.mean_latency_us = point.prediction.mean_latency_us;
      summary.worst_case_cycles = point.prediction.worst_case_cycles;
      summary.bottleneck = point.prediction.bottleneck;
    }
    response.sweep.push_back(std::move(summary));
  }
  return response;
}

Response handle_repair(const Request& request, const core::Analyzer& analyzer,
                       const cir::Function& fn, const workload::Trace& trace) {
  auto plan = fault::FaultPlan::parse(request.fault_plan);
  if (!plan) return core::error_response(request, plan.error().code, plan.error().message);
  if (!plan.value().sites.empty()) {
    return core::error_response(
        request, ErrorCode::kParse,
        "repair requests accept unit faults only (armed injection sites are process-global; "
        "install those via the CLI's --fault-plan)");
  }
  if (plan.value().failed_units.empty() && plan.value().derated_units.empty()) {
    return core::error_response(request, ErrorCode::kParse,
                                "repair request's fault_plan names no unit faults");
  }

  auto healthy = analyzer.analyze(fn, trace, request.options);
  if (!healthy) {
    return core::error_response(request, healthy.error().code, healthy.error().message);
  }

  auto faulted_profile = resolve_nic(request);
  if (!faulted_profile) {
    return core::error_response(request, faulted_profile.error().code,
                                faulted_profile.error().message);
  }
  if (auto applied = fault::apply_to_profile(plan.value(), faulted_profile.value()); !applied) {
    return core::error_response(request, applied.error().code, applied.error().message);
  }
  const core::Analyzer degraded_analyzer(std::move(faulted_profile).value());
  auto repaired = degraded_analyzer.repair(fn, trace, healthy.value(), request.options);
  if (!repaired) {
    return core::error_response(request, repaired.error().code, repaired.error().message);
  }
  Response response;
  response.id = request.id;
  response.kind = request.kind;
  response.ok = true;
  fill_analysis(response, request, degraded_analyzer, fn, trace, repaired.value());
  return response;
}

Response handle_validate(const Request& request, const core::Analyzer& analyzer,
                         const cir::Function& fn, const workload::Trace& trace) {
  auto analysis = analyzer.analyze(fn, trace, request.options);
  if (!analysis) {
    return core::error_response(request, analysis.error().code, analysis.error().message);
  }
  obs::ValidationScenario scenario;
  scenario.nf = request.nf.empty() ? fn.name : request.nf;
  scenario.variant = "serve";
  scenario.workload = trace.profile.serialize();
  // The corpus lpm variants carry their knobs in the name; mirror them
  // so the ported simulator program matches what resolve_nf built.
  if (scenario.nf == "lpm") {
    scenario.lpm_rules = 10'000;
    scenario.lpm_flow_cache = true;
  } else if (scenario.nf == "lpm-nocache") {
    scenario.nf = "lpm";
    scenario.lpm_rules = 10'000;
    scenario.lpm_flow_cache = false;
  }
  auto validated = obs::validate_prediction(analyzer, scenario, analysis.value(), trace);
  if (!validated) {
    return core::error_response(request, validated.error().code, validated.error().message);
  }
  Response response;
  response.id = request.id;
  response.kind = request.kind;
  response.ok = true;
  fill_analysis(response, request, analyzer, fn, trace, analysis.value());
  response.predicted_cycles = validated.value().predicted_cycles;
  response.simulated_cycles = validated.value().simulated_cycles;
  response.rel_err = validated.value().rel_err;
  response.validation_text = obs::render_validation(validated.value());
  return response;
}

}  // namespace

Service::Service(ServiceOptions options) : options_(options), gate_(options.max_inflight) {}

Response Service::handle(const Request& request) {
  const std::string kind_label = std::string("kind=") + to_string(request.kind);
  if (!gate_.try_acquire()) {
    obs::metrics().counter("serve/rejected", kind_label).inc();
    Response rejected = core::error_response(
        request, ErrorCode::kOverloaded,
        strf("server at capacity (%zu requests in flight); retry", options_.max_inflight));
    rejected.retry_after_ms = options_.retry_after_ms;
    return rejected;
  }
  const auto t0 = std::chrono::steady_clock::now();
  Response response = dispatch(request);
  const double us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0).count();
  gate_.release();

  auto& registry = obs::metrics();
  registry.counter("serve/requests", kind_label).inc();
  registry.histogram("serve/latency_us", kind_label).observe(us);
  if (!response.ok) {
    registry.counter("serve/errors", std::string("code=") + to_string(response.error_code)).inc();
  }
  return response;
}

Response Service::dispatch(const Request& request) const {
  if (request.kind == RequestKind::kHello) {
    return core::error_response(request, ErrorCode::kParse,
                                "\"hello\" is a server greeting, not a request kind");
  }
  auto fn = resolve_nf(request);
  if (!fn) return core::error_response(request, fn.error().code, fn.error().message);
  auto nic = resolve_nic(request);
  if (!nic) return core::error_response(request, nic.error().code, nic.error().message);
  auto trace = resolve_trace(request);
  if (!trace) return core::error_response(request, trace.error().code, trace.error().message);

  const core::Analyzer analyzer(std::move(nic).value());
  switch (request.kind) {
    case RequestKind::kAnalyze:
      return handle_analyze(request, analyzer, fn.value(), trace.value());
    case RequestKind::kSweep:
      return handle_sweep(request, analyzer, fn.value(), trace.value());
    case RequestKind::kRepair:
      return handle_repair(request, analyzer, fn.value(), trace.value());
    case RequestKind::kValidate:
      return handle_validate(request, analyzer, fn.value(), trace.value());
    case RequestKind::kHello: break;  // handled above
  }
  return core::error_response(request, ErrorCode::kInternal, "unhandled request kind");
}

}  // namespace clara::serve
