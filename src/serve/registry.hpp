// The built-in NF corpus, by name — shared by the CLI (`clara analyze
// --nf <name>`, `clara list-nfs`) and the analysis daemon (Request::nf).
//
// This used to live inside clara_cli; serving moved it behind a library
// boundary so every front end resolves names identically.
#pragma once

#include <string_view>
#include <vector>

#include "cir/function.hpp"

namespace clara::serve {

struct NfEntry {
  const char* name;
  const char* description;
  cir::Function (*build)();
};

/// The corpus, in listing order.
const std::vector<NfEntry>& nf_registry();

/// Lookup by name; nullptr when unknown.
const NfEntry* find_nf(std::string_view name);

/// Registry names, for did-you-mean suggestions on unknown NFs.
const std::vector<std::string>& nf_names();

}  // namespace clara::serve
