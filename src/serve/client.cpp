#include "serve/client.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

#include "common/hash.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"

namespace clara::serve {

namespace {

timeval to_timeval(double ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>((ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;  // 0 would mean "no timeout"
  return tv;
}

bool is_timeout_errno(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

}  // namespace

double retry_backoff_ms(const RetryOptions& options, std::string_view id, std::size_t attempt,
                        double retry_after_hint_ms) {
  double base = retry_after_hint_ms;
  if (base <= 0.0) {
    const std::size_t shift = attempt > 0 ? std::min<std::size_t>(attempt - 1, 16) : 0;
    base = std::min(options.max_backoff_ms,
                    options.base_backoff_ms * static_cast<double>(std::uint64_t{1} << shift));
  }
  // Deterministic jitter: a splitmix64 draw from (seed, id, attempt)
  // mapped into [0.5, 1.0). No global RNG, no clock — a chaos run's
  // retry schedule is a pure function of its inputs.
  const std::uint64_t draw =
      parallel::shard_seed(options.seed ^ Fnv1a().mix(id).digest(), attempt);
  const double fraction = static_cast<double>(draw >> 11) * 0x1.0p-53;
  return base * (0.5 + 0.5 * fraction);
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)),
      path_(std::move(other.path_)),
      options_(other.options_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
    path_ = std::move(other.path_);
    options_ = other.options_;
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Result<Client> Client::connect(const std::string& socket_path, ClientOptions options) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return make_error(ErrorCode::kParse, strf("socket path too long: %s", socket_path.c_str()));
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  Client client;
  client.path_ = socket_path;
  client.options_ = options;
  client.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (client.fd_ < 0) {
    return make_error(ErrorCode::kInternal, strf("socket: %s", std::strerror(errno)));
  }
  if (options.connect_timeout_ms > 0.0) {
    // Non-blocking connect + poll, then back to blocking: the only
    // portable way to bound connect() itself.
    const int flags = ::fcntl(client.fd_, F_GETFL, 0);
    ::fcntl(client.fd_, F_SETFL, flags | O_NONBLOCK);
    const int rc = ::connect(client.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS && errno != EAGAIN) {
      return make_error(ErrorCode::kInternal,
                        strf("connect %s: %s", socket_path.c_str(), std::strerror(errno)));
    }
    if (rc != 0) {
      pollfd pfd{client.fd_, POLLOUT, 0};
      const int pr = ::poll(&pfd, 1, static_cast<int>(std::ceil(options.connect_timeout_ms)));
      if (pr <= 0) {
        return make_error(ErrorCode::kInternal,
                          strf("connect %s: timed out after %.0f ms", socket_path.c_str(),
                               options.connect_timeout_ms));
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(client.fd_, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        return make_error(ErrorCode::kInternal,
                          strf("connect %s: %s", socket_path.c_str(), std::strerror(err)));
      }
    }
    ::fcntl(client.fd_, F_SETFL, flags);
  } else if (::connect(client.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    return make_error(ErrorCode::kInternal,
                      strf("connect %s: %s", socket_path.c_str(), std::strerror(errno)));
  }
  if (options.recv_timeout_ms > 0.0) {
    const timeval tv = to_timeval(options.recv_timeout_ms);
    ::setsockopt(client.fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  if (options.send_timeout_ms > 0.0) {
    const timeval tv = to_timeval(options.send_timeout_ms);
    ::setsockopt(client.fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  auto hello = client.read_response();
  if (!hello) return hello.error();
  if (hello.value().kind != core::RequestKind::kHello) {
    return make_error(ErrorCode::kParse, "server did not send a hello line");
  }
  if (!hello.value().ok) {
    // Typed connection rejection (connection limit, draining).
    Error error = make_error(hello.value().error_code, hello.value().error);
    error.message += strf(" (retry_after_ms=%.0f)", hello.value().retry_after_ms);
    return error;
  }
  return client;
}

Status Client::send_bytes(std::string_view data) {
  if (fd_ < 0) return make_error(ErrorCode::kInternal, "client is not connected");
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (is_timeout_errno(errno)) {
        return make_error(ErrorCode::kInternal,
                          strf("send: timed out after %.0f ms", options_.send_timeout_ms));
      }
      return make_error(ErrorCode::kInternal, strf("send: %s", std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
  return {};
}

Status Client::send(const core::Request& request) {
  return send_bytes(request.to_json() + "\n");
}

Result<std::string> Client::read_line() {
  if (fd_ < 0) return make_error(ErrorCode::kInternal, "client is not connected");
  while (true) {
    if (const auto nl = buffer_.find('\n'); nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (is_timeout_errno(errno)) {
        return make_error(ErrorCode::kInternal,
                          strf("recv: timed out after %.0f ms", options_.recv_timeout_ms));
      }
      return make_error(ErrorCode::kInternal, strf("recv: %s", std::strerror(errno)));
    }
    if (n == 0) {
      return make_error(ErrorCode::kInternal, "server closed the connection");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<core::Response> Client::read_response() {
  auto line = read_line();
  if (!line) return line.error();
  return core::Response::from_json(line.value());
}

Result<core::Response> Client::call(const core::Request& request) {
  if (auto status = send(request); !status) return status.error();
  while (true) {
    auto response = read_response();
    if (!response) return response;
    if (response.value().id == request.id) return response;
  }
}

Result<core::Response> Client::call_with_retry(const core::Request& request,
                                               const RetryOptions& retry, RetryStats* stats) {
  const std::size_t max_attempts = std::max<std::size_t>(1, retry.max_attempts);
  Error last = make_error(ErrorCode::kInternal, "no attempts made");
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    core::Request wire = request;
    if (attempt > 0) {
      // Derived id per retry: seeded per-request fault sites key on the
      // wire id, so the retry must not replay the exact fault that
      // killed the previous attempt.
      wire.id = strf("%s~r%zu", request.id.c_str(), attempt);
      if (stats != nullptr) ++stats->retries;
      obs::metrics().counter("serve_client/retries").inc();
    }
    if (!connected()) {
      auto fresh = Client::connect(path_, options_);
      if (!fresh) {
        last = fresh.error();
        if (attempt + 1 < max_attempts) {
          std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
              retry_backoff_ms(retry, wire.id, attempt + 1, 0.0)));
        }
        continue;
      }
      *this = std::move(fresh).value();
      if (stats != nullptr) ++stats->reconnects;
      obs::metrics().counter("serve_client/reconnects").inc();
    }

    const std::string line = wire.to_json() + "\n";
    Status sent;
    if (fault::active() && fault::inject("serve/slow_read", Fnv1a().mix(wire.id).digest())) {
      // Chaos: stall mid-line past the server's read deadline (the stall
      // length rides in the site's factor=). The server cuts us off with
      // a typed response; the next attempt reconnects.
      const double stall_ms = fault::site_factor("serve/slow_read", 50.0);
      const std::size_t half = line.size() / 2;
      sent = send_bytes(std::string_view(line).substr(0, half));
      if (sent) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(stall_ms));
        sent = send_bytes(std::string_view(line).substr(half));
      }
    } else {
      sent = send_bytes(line);
    }
    if (!sent) {
      last = sent.error();
      close();
      continue;
    }

    Result<core::Response> response = make_error(ErrorCode::kInternal, "unread");
    while (true) {
      response = read_response();
      if (!response || response.value().id == wire.id) break;
    }
    if (!response) {
      last = response.error();
      close();
      continue;
    }
    if (!response.value().ok && response.value().error_code == ErrorCode::kOverloaded &&
        attempt + 1 < max_attempts) {
      if (stats != nullptr) ++stats->overloaded;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(retry_backoff_ms(
          retry, wire.id, attempt + 1, response.value().retry_after_ms)));
      continue;  // connection is healthy; only the server was busy
    }
    return response;
  }
  return last;
}

}  // namespace clara::serve
