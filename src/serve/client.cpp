#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/strings.hpp"

namespace clara::serve {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Result<Client> Client::connect(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return make_error(ErrorCode::kParse, strf("socket path too long: %s", socket_path.c_str()));
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  Client client;
  client.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (client.fd_ < 0) {
    return make_error(ErrorCode::kInternal, strf("socket: %s", std::strerror(errno)));
  }
  if (::connect(client.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    return make_error(ErrorCode::kInternal,
                      strf("connect %s: %s", socket_path.c_str(), std::strerror(errno)));
  }
  auto hello = client.read_response();
  if (!hello) return hello.error();
  if (hello.value().kind != core::RequestKind::kHello) {
    return make_error(ErrorCode::kParse, "server did not send a hello line");
  }
  return client;
}

Status Client::send(const core::Request& request) {
  if (fd_ < 0) return make_error(ErrorCode::kInternal, "client is not connected");
  const std::string line = request.to_json() + "\n";
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(fd_, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return make_error(ErrorCode::kInternal, strf("send: %s", std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
  return {};
}

Result<std::string> Client::read_line() {
  if (fd_ < 0) return make_error(ErrorCode::kInternal, "client is not connected");
  while (true) {
    if (const auto nl = buffer_.find('\n'); nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return make_error(ErrorCode::kInternal, strf("recv: %s", std::strerror(errno)));
    }
    if (n == 0) {
      return make_error(ErrorCode::kInternal, "server closed the connection");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<core::Response> Client::read_response() {
  auto line = read_line();
  if (!line) return line.error();
  return core::Response::from_json(line.value());
}

Result<core::Response> Client::call(const core::Request& request) {
  if (auto status = send(request); !status) return status.error();
  while (true) {
    auto response = read_response();
    if (!response) return response;
    if (response.value().id == request.id) return response;
  }
}

}  // namespace clara::serve
