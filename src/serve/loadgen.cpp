#include "serve/loadgen.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <optional>

#include "common/strings.hpp"
#include "core/cache.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"

namespace clara::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// The deterministic request mix: small workloads (2k packets), four
/// distinct analyses plus one sweep, one repair, and one validate, so
/// the daemon exercises every endpoint under load while staying fast
/// enough to hammer by the thousand once the cache is warm.
std::vector<core::Request> build_mix() {
  std::vector<core::Request> mix;
  const char* kWorkload = "tcp=0.8 flows=2000 payload=300 pps=60000 packets=2000 seed=42";
  for (const char* nf : {"lpm", "nat", "rewrite", "meter"}) {
    core::Request request;
    request.kind = core::RequestKind::kAnalyze;
    request.nf = nf;
    request.workload = kWorkload;
    mix.push_back(std::move(request));
  }
  {
    core::Request request;
    request.kind = core::RequestKind::kSweep;
    request.nf = "nat";
    request.workload = kWorkload;
    request.sweep_pps = {40'000.0, 80'000.0};
    mix.push_back(std::move(request));
  }
  {
    core::Request request;
    request.kind = core::RequestKind::kRepair;
    request.nf = "nat";
    request.workload = kWorkload;
    request.fault_plan = "fail-unit csum\n";
    mix.push_back(std::move(request));
  }
  {
    core::Request request;
    request.kind = core::RequestKind::kValidate;
    request.nf = "rewrite";
    request.workload = kWorkload;
    mix.push_back(std::move(request));
  }
  return mix;
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t index = static_cast<std::size_t>(std::ceil(rank));
  if (index > 0) --index;
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

double hit_rate(const core::CacheStats& before, const core::CacheStats& after) {
  const double hits = static_cast<double>(after.hits - before.hits);
  const double misses = static_cast<double>(after.misses - before.misses);
  const double total = hits + misses;
  return total > 0.0 ? hits / total : 0.0;
}

struct WorkerTally {
  std::vector<double> latencies_us;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t overloaded = 0;
  std::size_t client_errors = 0;
  std::size_t dropped_requests = 0;
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
  bool dropped = false;
};

/// The default chaos plan armed by --chaos when no --fault-plan is
/// installed: all four serve sites, seeded, with a slow-read stall
/// (factor=, ms) comfortably past the daemon's read deadline. every=N
/// keys on the FNV digest of the wire id (uniform), so roughly 1/N of
/// requests hit each site — deterministically, per id.
constexpr const char* kDefaultChaosPlan =
    "seed 42\n"
    "site serve/torn_write every=5\n"
    "site serve/conn_reset every=37\n"
    "site serve/accept_fail every=6\n"
    "site serve/slow_read every=53 factor=250\n";

/// Read deadline of the in-process chaos daemon; the slow_read stall
/// above must exceed it so the injected stall actually trips it.
constexpr double kChaosReadDeadlineMs = 100.0;

}  // namespace

std::string LoadGenReport::render() const {
  std::string out;
  out += strf("serve loadgen: %zu requests, %zu ok, %zu failed (%zu overloaded), "
              "%zu client error(s), %zu silently dropped request(s), "
              "%zu dropped connection(s)\n",
              requests, ok, failed, overloaded, client_errors, dropped_requests,
              dropped_connections);
  out += strf("client retry loop: %llu retries, %llu reconnects\n",
              (unsigned long long)retries, (unsigned long long)reconnects);
  out += strf("latency (client-observed): p50 %.0f us, p99 %.0f us, p99.9 %.0f us\n", p50_us,
              p99_us, p999_us);
  if (in_process) {
    out += strf("analysis cache: cold hit rate %.2f (%llu ILP solves), warm hit rate %.2f "
                "(%llu ILP solves)\n",
                cold_hit_rate, (unsigned long long)cold_ilp_solves, warm_hit_rate,
                (unsigned long long)warm_ilp_solves);
  }
  return out;
}

Result<LoadGenReport> run_loadgen(const LoadGenOptions& options) {
  LoadGenReport report;
  // Chaos: arm the serve fault sites process-wide for the duration of
  // the run (restored on exit), unless the caller already installed a
  // plan via --fault-plan.
  std::optional<fault::ScopedPlan> chaos_plan;
  if (options.chaos && !fault::active()) {
    auto plan = fault::FaultPlan::parse(kDefaultChaosPlan);
    if (!plan) return plan.error();
    chaos_plan.emplace(std::move(plan).value());
  }
  std::unique_ptr<Daemon> daemon;
  std::string endpoint = options.connect;
  if (endpoint.empty()) {
    report.in_process = true;
    DaemonOptions daemon_options;
    daemon_options.socket_path = options.socket_path.empty()
                                     ? strf("/tmp/clara-serve-%d.sock", (int)::getpid())
                                     : options.socket_path;
    daemon_options.max_inflight = options.max_inflight;
    if (options.chaos) daemon_options.read_deadline_ms = kChaosReadDeadlineMs;
    daemon = std::make_unique<Daemon>(daemon_options);
    if (auto status = daemon->start(); !status) return status.error();
    endpoint = daemon->socket_path();
  }
  // Hang-guards: under chaos every socket operation gets a timeout so an
  // injected fault can never wedge the gate; transport errors surface as
  // typed client errors through the retry loop instead.
  const ClientOptions client_options =
      options.chaos ? ClientOptions{5000.0, 5000.0, 10000.0} : ClientOptions{};
  const RetryOptions retry_options{};

  const std::vector<core::Request> mix = build_mix();
  auto& solves = obs::metrics().counter("ilp/solves");

  // Cold pass: one client touches every distinct request once, so the
  // warm phase below measures the steady state of a long-lived daemon.
  {
    const auto stats_before = core::analysis_cache().stats();
    const std::uint64_t solves_before = solves.value();
    auto client = Client::connect(endpoint, client_options);
    if (!client) return client.error();
    for (std::size_t i = 0; i < mix.size(); ++i) {
      core::Request request = mix[i];
      request.id = strf("cold-%zu", i);
      RetryStats stats;
      auto response = client.value().call_with_retry(request, retry_options, &stats);
      report.retries += stats.retries;
      report.reconnects += stats.reconnects;
      if (!response) {
        // Even the cold pass tolerates exhausted retries under chaos;
        // without a plan armed this is a hard setup failure as before.
        if (!options.chaos) return response.error();
        ++report.client_errors;
      }
    }
    if (report.in_process) {
      report.cold_hit_rate = hit_rate(stats_before, core::analysis_cache().stats());
      report.cold_ilp_solves = solves.value() - solves_before;
    }
  }

  // Warm phase: `connections` concurrent clients round-robin the mix.
  const auto warm_stats_before = core::analysis_cache().stats();
  const std::uint64_t warm_solves_before = solves.value();
  const std::size_t connections = std::max<std::size_t>(1, options.connections);
  std::vector<WorkerTally> tallies(connections);
  std::vector<std::thread> workers;
  workers.reserve(connections);
  for (std::size_t w = 0; w < connections; ++w) {
    const std::size_t begin = options.requests * w / connections;
    const std::size_t end = options.requests * (w + 1) / connections;
    workers.emplace_back([&, w, begin, end] {
      WorkerTally& tally = tallies[w];
      auto client = Client::connect(endpoint, client_options);
      if (!client) {
        tally.dropped = true;
        tally.dropped_requests = end - begin;
        return;
      }
      for (std::size_t i = begin; i < end; ++i) {
        core::Request request = mix[i % mix.size()];
        request.id = strf("warm-%zu", i);
        const auto t0 = Clock::now();
        RetryStats stats;
        auto response = client.value().call_with_retry(request, retry_options, &stats);
        tally.retries += stats.retries;
        tally.reconnects += stats.reconnects;
        if (!response) {
          // Retries exhausted: a typed client error, not a silent drop —
          // the connection is already re-established lazily on the next
          // request by the retry loop, so the worker keeps going.
          ++tally.client_errors;
          continue;
        }
        tally.latencies_us.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
        if (response.value().ok) {
          ++tally.ok;
        } else {
          ++tally.failed;
          if (response.value().error_code == ErrorCode::kOverloaded) ++tally.overloaded;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  std::vector<double> latencies;
  for (const auto& tally : tallies) {
    report.ok += tally.ok;
    report.failed += tally.failed;
    report.overloaded += tally.overloaded;
    report.client_errors += tally.client_errors;
    report.dropped_requests += tally.dropped_requests;
    report.retries += tally.retries;
    report.reconnects += tally.reconnects;
    if (tally.dropped) ++report.dropped_connections;
    latencies.insert(latencies.end(), tally.latencies_us.begin(), tally.latencies_us.end());
  }
  report.requests = options.requests;
  std::sort(latencies.begin(), latencies.end());
  report.p50_us = percentile(latencies, 0.50);
  report.p99_us = percentile(latencies, 0.99);
  report.p999_us = percentile(latencies, 0.999);
  if (report.in_process) {
    report.warm_hit_rate = hit_rate(warm_stats_before, core::analysis_cache().stats());
    report.warm_ilp_solves = solves.value() - warm_solves_before;
  }
  if (daemon) daemon->stop();
  return report;
}

}  // namespace clara::serve
