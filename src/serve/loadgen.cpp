#include "serve/loadgen.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/strings.hpp"
#include "core/cache.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"

namespace clara::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// The deterministic request mix: small workloads (2k packets), four
/// distinct analyses plus one sweep, one repair, and one validate, so
/// the daemon exercises every endpoint under load while staying fast
/// enough to hammer by the thousand once the cache is warm.
std::vector<core::Request> build_mix() {
  std::vector<core::Request> mix;
  const char* kWorkload = "tcp=0.8 flows=2000 payload=300 pps=60000 packets=2000 seed=42";
  for (const char* nf : {"lpm", "nat", "rewrite", "meter"}) {
    core::Request request;
    request.kind = core::RequestKind::kAnalyze;
    request.nf = nf;
    request.workload = kWorkload;
    mix.push_back(std::move(request));
  }
  {
    core::Request request;
    request.kind = core::RequestKind::kSweep;
    request.nf = "nat";
    request.workload = kWorkload;
    request.sweep_pps = {40'000.0, 80'000.0};
    mix.push_back(std::move(request));
  }
  {
    core::Request request;
    request.kind = core::RequestKind::kRepair;
    request.nf = "nat";
    request.workload = kWorkload;
    request.fault_plan = "fail-unit csum\n";
    mix.push_back(std::move(request));
  }
  {
    core::Request request;
    request.kind = core::RequestKind::kValidate;
    request.nf = "rewrite";
    request.workload = kWorkload;
    mix.push_back(std::move(request));
  }
  return mix;
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t index = static_cast<std::size_t>(std::ceil(rank));
  if (index > 0) --index;
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

double hit_rate(const core::CacheStats& before, const core::CacheStats& after) {
  const double hits = static_cast<double>(after.hits - before.hits);
  const double misses = static_cast<double>(after.misses - before.misses);
  const double total = hits + misses;
  return total > 0.0 ? hits / total : 0.0;
}

struct WorkerTally {
  std::vector<double> latencies_us;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t overloaded = 0;
  bool dropped = false;
};

}  // namespace

std::string LoadGenReport::render() const {
  std::string out;
  out += strf("serve loadgen: %zu requests, %zu ok, %zu failed (%zu overloaded), "
              "%zu dropped connection(s)\n",
              requests, ok, failed, overloaded, dropped_connections);
  out += strf("latency (client-observed): p50 %.0f us, p99 %.0f us, p99.9 %.0f us\n", p50_us,
              p99_us, p999_us);
  if (in_process) {
    out += strf("analysis cache: cold hit rate %.2f (%llu ILP solves), warm hit rate %.2f "
                "(%llu ILP solves)\n",
                cold_hit_rate, (unsigned long long)cold_ilp_solves, warm_hit_rate,
                (unsigned long long)warm_ilp_solves);
  }
  return out;
}

Result<LoadGenReport> run_loadgen(const LoadGenOptions& options) {
  LoadGenReport report;
  std::unique_ptr<Daemon> daemon;
  std::string endpoint = options.connect;
  if (endpoint.empty()) {
    report.in_process = true;
    DaemonOptions daemon_options;
    daemon_options.socket_path = options.socket_path.empty()
                                     ? strf("/tmp/clara-serve-%d.sock", (int)::getpid())
                                     : options.socket_path;
    daemon_options.max_inflight = options.max_inflight;
    daemon = std::make_unique<Daemon>(daemon_options);
    if (auto status = daemon->start(); !status) return status.error();
    endpoint = daemon->socket_path();
  }

  const std::vector<core::Request> mix = build_mix();
  auto& solves = obs::metrics().counter("ilp/solves");

  // Cold pass: one client touches every distinct request once, so the
  // warm phase below measures the steady state of a long-lived daemon.
  {
    const auto stats_before = core::analysis_cache().stats();
    const std::uint64_t solves_before = solves.value();
    auto client = Client::connect(endpoint);
    if (!client) return client.error();
    for (std::size_t i = 0; i < mix.size(); ++i) {
      core::Request request = mix[i];
      request.id = strf("cold-%zu", i);
      auto response = client.value().call(request);
      if (!response) return response.error();
    }
    if (report.in_process) {
      report.cold_hit_rate = hit_rate(stats_before, core::analysis_cache().stats());
      report.cold_ilp_solves = solves.value() - solves_before;
    }
  }

  // Warm phase: `connections` concurrent clients round-robin the mix.
  const auto warm_stats_before = core::analysis_cache().stats();
  const std::uint64_t warm_solves_before = solves.value();
  const std::size_t connections = std::max<std::size_t>(1, options.connections);
  std::vector<WorkerTally> tallies(connections);
  std::vector<std::thread> workers;
  workers.reserve(connections);
  for (std::size_t w = 0; w < connections; ++w) {
    const std::size_t begin = options.requests * w / connections;
    const std::size_t end = options.requests * (w + 1) / connections;
    workers.emplace_back([&, w, begin, end] {
      WorkerTally& tally = tallies[w];
      auto client = Client::connect(endpoint);
      if (!client) {
        tally.dropped = true;
        return;
      }
      for (std::size_t i = begin; i < end; ++i) {
        core::Request request = mix[i % mix.size()];
        request.id = strf("warm-%zu", i);
        const auto t0 = Clock::now();
        auto response = client.value().call(request);
        if (!response) {
          tally.dropped = true;
          return;
        }
        tally.latencies_us.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
        if (response.value().ok) {
          ++tally.ok;
        } else {
          ++tally.failed;
          if (response.value().error_code == ErrorCode::kOverloaded) ++tally.overloaded;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  std::vector<double> latencies;
  for (const auto& tally : tallies) {
    report.ok += tally.ok;
    report.failed += tally.failed;
    report.overloaded += tally.overloaded;
    if (tally.dropped) ++report.dropped_connections;
    latencies.insert(latencies.end(), tally.latencies_us.begin(), tally.latencies_us.end());
  }
  report.requests = options.requests;
  std::sort(latencies.begin(), latencies.end());
  report.p50_us = percentile(latencies, 0.50);
  report.p99_us = percentile(latencies, 0.99);
  report.p999_us = percentile(latencies, 0.999);
  if (report.in_process) {
    report.warm_hit_rate = hit_rate(warm_stats_before, core::analysis_cache().stats());
    report.warm_ilp_solves = solves.value() - warm_solves_before;
  }
  if (daemon) daemon->stop();
  return report;
}

}  // namespace clara::serve
