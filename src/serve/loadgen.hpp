// Serve load generator — `clara bench serve` and perf_micro's serve
// section.
//
// Hammers a clarad endpoint with a deterministic mix of analyze /
// sweep / repair / validate requests over many concurrent connections
// and reports client-observed latency percentiles. With no --connect
// target it spawns its own in-process daemon on a temporary socket,
// which additionally lets it measure what an external client cannot:
// the analysis cache hit rates and ILP solve counts of the cold
// (first-touch) pass versus the warm hammering phase — the numbers that
// prove a warm daemon answers repeated analyses without re-solving.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.hpp"

namespace clara::serve {

struct LoadGenOptions {
  /// Socket of an already-running daemon; empty = spawn one in-process.
  std::string connect;
  /// Socket path for the spawned daemon (empty = derive from pid).
  std::string socket_path;
  /// Total warm-phase requests across all connections.
  std::size_t requests = 1200;
  std::size_t connections = 16;
  /// Admission cap for the spawned daemon.
  std::size_t max_inflight = 256;
  /// Chaos mode: arm the serve fault sites (torn writes, connection
  /// resets, accept failures, slow reads) with a default seeded plan
  /// unless one is already installed, run the in-process daemon with a
  /// read deadline, and assert the client retry loop absorbs every
  /// injected fault — the contract is one well-formed response or one
  /// typed client error per request, zero silent drops.
  bool chaos = false;
};

struct LoadGenReport {
  std::size_t requests = 0;   // warm-phase requests attempted
  std::size_t ok = 0;         // ok=true responses
  std::size_t failed = 0;     // ok=false responses (overloaded included)
  std::size_t overloaded = 0; // subset of failed with kOverloaded
  /// Requests whose retries were exhausted by transport errors — they
  /// still ended in a typed client error, never a hang.
  std::size_t client_errors = 0;
  /// Requests with no outcome at all (no response, no typed error).
  /// Must stay zero — a nonzero value means a request was silently
  /// dropped, which the chaos gate treats as failure.
  std::size_t dropped_requests = 0;
  /// Extra attempts the client retry loop spent absorbing faults and
  /// overload rejections (serve_retries in BENCH_perf.json).
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
  /// Connections that could not be established or died mid-run. The
  /// `clara bench serve` acceptance bar is zero.
  std::size_t dropped_connections = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  /// In-process daemon only (zero when hammering an external server):
  /// analysis-cache hit rate and ILP solves during each phase.
  bool in_process = false;
  double cold_hit_rate = 0.0;
  double warm_hit_rate = 0.0;
  std::uint64_t cold_ilp_solves = 0;
  std::uint64_t warm_ilp_solves = 0;

  [[nodiscard]] std::string render() const;
};

/// Runs the generator. Errors only on setup failure (cannot spawn or
/// reach the daemon); per-request failures land in the report.
Result<LoadGenReport> run_loadgen(const LoadGenOptions& options);

}  // namespace clara::serve
