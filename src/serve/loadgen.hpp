// Serve load generator — `clara bench serve` and perf_micro's serve
// section.
//
// Hammers a clarad endpoint with a deterministic mix of analyze /
// sweep / repair / validate requests over many concurrent connections
// and reports client-observed latency percentiles. With no --connect
// target it spawns its own in-process daemon on a temporary socket,
// which additionally lets it measure what an external client cannot:
// the analysis cache hit rates and ILP solve counts of the cold
// (first-touch) pass versus the warm hammering phase — the numbers that
// prove a warm daemon answers repeated analyses without re-solving.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.hpp"

namespace clara::serve {

struct LoadGenOptions {
  /// Socket of an already-running daemon; empty = spawn one in-process.
  std::string connect;
  /// Socket path for the spawned daemon (empty = derive from pid).
  std::string socket_path;
  /// Total warm-phase requests across all connections.
  std::size_t requests = 1200;
  std::size_t connections = 16;
  /// Admission cap for the spawned daemon.
  std::size_t max_inflight = 256;
};

struct LoadGenReport {
  std::size_t requests = 0;   // warm-phase requests attempted
  std::size_t ok = 0;         // ok=true responses
  std::size_t failed = 0;     // ok=false responses (overloaded included)
  std::size_t overloaded = 0; // subset of failed with kOverloaded
  /// Connections that could not be established or died mid-run. The
  /// `clara bench serve` acceptance bar is zero.
  std::size_t dropped_connections = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  /// In-process daemon only (zero when hammering an external server):
  /// analysis-cache hit rate and ILP solves during each phase.
  bool in_process = false;
  double cold_hit_rate = 0.0;
  double warm_hit_rate = 0.0;
  std::uint64_t cold_ilp_solves = 0;
  std::uint64_t warm_ilp_solves = 0;

  [[nodiscard]] std::string render() const;
};

/// Runs the generator. Errors only on setup failure (cannot spawn or
/// reach the daemon); per-request failures land in the report.
Result<LoadGenReport> run_loadgen(const LoadGenOptions& options);

}  // namespace clara::serve
