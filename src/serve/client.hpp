// Client side of the clara-serve/1 protocol: connect to a clarad
// socket, send Request lines, read Response lines. Used by the CLI's
// --connect mode and the serve load generator.
//
// Resilience (docs/robustness.md "Serve resilience"): ClientOptions
// carries connect/send/recv timeouts so a wedged server surfaces as a
// typed kInternal error instead of a hang, and call_with_retry() wraps
// call() in a bounded retry loop — reconnecting on transport errors,
// honoring the server's retry_after_ms hint on kOverloaded, and
// backing off exponentially with deterministic seeded jitter (a pure
// function of the retry seed, request id, and attempt index, so a
// chaos run's retry schedule reproduces bit-identically). Each retry
// re-sends under a derived wire id ("<id>~r<attempt>") so seeded
// per-request fault sites key differently per attempt and a fault that
// killed attempt 0 does not deterministically kill every retry too.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.hpp"
#include "core/request.hpp"

namespace clara::serve {

struct ClientOptions {
  /// Socket-level timeouts, all in milliseconds; 0 = block forever.
  double connect_timeout_ms = 0.0;
  double send_timeout_ms = 0.0;
  double recv_timeout_ms = 0.0;
};

struct RetryOptions {
  /// Total attempts including the first (>= 1).
  std::size_t max_attempts = 4;
  double base_backoff_ms = 1.0;
  double max_backoff_ms = 200.0;
  /// Seed of the deterministic jitter stream.
  std::uint64_t seed = 42;
};

/// Per-call accounting filled by call_with_retry.
struct RetryStats {
  std::size_t retries = 0;     // attempts beyond the first
  std::size_t reconnects = 0;  // transport-level reconnections
  std::size_t overloaded = 0;  // kOverloaded responses retried
};

/// The backoff before retry `attempt` (1-based) of request `id`:
/// exponential from base_backoff_ms capped at max_backoff_ms — or the
/// server's retry_after_ms hint when given — times a deterministic
/// jitter factor in [0.5, 1.0) drawn from (seed, id, attempt). Pure
/// function; exposed for tests.
double retry_backoff_ms(const RetryOptions& options, std::string_view id, std::size_t attempt,
                        double retry_after_hint_ms);

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and consumes the server's hello line (validating the
  /// protocol version). Errors carry kInternal with errno text, or
  /// kParse when the server speaks a different protocol; a server
  /// rejecting the connection (connection limit, draining) surfaces as
  /// the typed error of its ok=false hello — typically kOverloaded.
  static Result<Client> connect(const std::string& socket_path, ClientOptions options = {});

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Writes one request line. Does not wait for the response — requests
  /// may be pipelined; responses carry the request id.
  Status send(const core::Request& request);

  /// Reads the next response line (whatever request it answers).
  Result<core::Response> read_response();

  /// send() + read until the response matching request.id arrives.
  /// Responses to other in-flight ids read along the way are discarded,
  /// so interleave call() with explicit pipelining carefully.
  Result<core::Response> call(const core::Request& request);

  /// call() hardened for a hostile transport: bounded retries with
  /// deterministic backoff, reconnection (to the socket path this
  /// client was connected to) on kInternal transport errors, and
  /// retry-on-kOverloaded honoring the server's retry_after_ms hint.
  /// Returns the final response (any typed server error other than
  /// kOverloaded is NOT retried — it would fail identically), or the
  /// last transport error once attempts are exhausted.
  Result<core::Response> call_with_retry(const core::Request& request,
                                         const RetryOptions& retry = {},
                                         RetryStats* stats = nullptr);

  void close();

 private:
  Result<std::string> read_line();
  Status send_bytes(std::string_view data);

  int fd_ = -1;
  std::string buffer_;
  std::string path_;       // reconnect target for call_with_retry
  ClientOptions options_;
};

}  // namespace clara::serve
