// Client side of the clara-serve/1 protocol: connect to a clarad
// socket, send Request lines, read Response lines. Used by the CLI's
// --connect mode and the serve load generator.
#pragma once

#include <string>

#include "common/result.hpp"
#include "core/request.hpp"

namespace clara::serve {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and consumes the server's hello line (validating the
  /// protocol version). Errors carry kInternal with errno text, or
  /// kParse when the server speaks a different protocol.
  static Result<Client> connect(const std::string& socket_path);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Writes one request line. Does not wait for the response — requests
  /// may be pipelined; responses carry the request id.
  Status send(const core::Request& request);

  /// Reads the next response line (whatever request it answers).
  Result<core::Response> read_response();

  /// send() + read until the response matching request.id arrives.
  /// Responses to other in-flight ids read along the way are discarded,
  /// so interleave call() with explicit pipelining carefully.
  Result<core::Response> call(const core::Request& request);

  void close();

 private:
  Result<std::string> read_line();

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace clara::serve
