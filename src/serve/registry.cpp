#include "serve/registry.hpp"

#include "nf/nf_cir.hpp"

namespace clara::serve {

const std::vector<NfEntry>& nf_registry() {
  static const std::vector<NfEntry> kRegistry = {
      {"lpm", "longest-prefix match, 10k rules, flow cache on", [] { return nf::build_lpm_nf(); }},
      {"lpm-nocache", "LPM without the flow cache",
       [] { return nf::build_lpm_nf({.rules = 10000, .use_flow_cache = false}); }},
      {"nat", "network address translation with per-flow table", [] { return nf::build_nat_nf(); }},
      {"firewall", "stateful firewall with rule table", [] { return nf::build_fw_nf(); }},
      {"dpi", "deep packet inspection (explicit byte-scan loop)", [] { return nf::build_dpi_nf(); }},
      {"heavy-hitter", "per-flow counters with threshold", [] { return nf::build_hh_nf(); }},
      {"meter", "token-bucket metering", [] { return nf::build_meter_nf(); }},
      {"flow-stats", "per-flow packet/byte statistics", [] { return nf::build_flowstats_nf(); }},
      {"rewrite", "header rewrite (minimal NF)", [] { return nf::build_rewrite_nf(); }},
      {"vnf-chain", "DPI -> meter -> header mods -> flow stats", [] { return nf::build_vnf_chain(); }},
      {"crypto-gw", "IPsec-style gateway (crypto engine)", [] { return nf::build_crypto_gw_nf(); }},
      {"csum-loop", "checksum as an accumulation loop (idiom demo)", [] { return nf::build_csum_loop_nf(); }},
      {"rate-estimator", "EWMA rate estimation (floating point)", [] { return nf::build_rate_estimator_nf(); }},
  };
  return kRegistry;
}

const NfEntry* find_nf(std::string_view name) {
  for (const auto& entry : nf_registry()) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

const std::vector<std::string>& nf_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const auto& entry : nf_registry()) names.emplace_back(entry.name);
    return names;
  }();
  return kNames;
}

}  // namespace clara::serve
