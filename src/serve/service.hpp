// The analysis service — one entry point behind every front end.
//
// Service::handle() turns a core::Request into a core::Response: it
// resolves the NF (corpus name or inline CIR), the LNIC profile, and
// the workload, runs the Analyzer, and fills the response with the
// deterministic analysis summary. The CLI calls handle() in-process;
// the daemon (serve/daemon) calls it from pool tasks, one per request
// line, so the Service must be safe to call concurrently — it keeps no
// per-request mutable state and never touches process-global knobs
// (fault plans apply per-request via fault::apply_to_profile).
//
// Admission control: a counting gate bounds concurrently-executing
// requests; beyond max_inflight, handle() immediately answers with
// ErrorCode::kOverloaded instead of queueing — the client retries, the
// server never builds an unbounded backlog.
//
// Observability: serve/requests and serve/errors counters (labelled by
// kind / error code), serve/rejected, and a serve/latency_us histogram
// per kind, all through obs::metrics() — visible in every exposition
// format including Prometheus.
#pragma once

#include <atomic>
#include <cstddef>

#include "core/request.hpp"

namespace clara::serve {

/// Counting admission gate: try_acquire() fails once `limit` holders
/// exist (limit 0 = unlimited). Shared by every connection of a daemon.
class InflightGate {
 public:
  explicit InflightGate(std::size_t limit) : limit_(limit) {}

  bool try_acquire() {
    if (limit_ == 0) return true;
    std::size_t current = inflight_.load(std::memory_order_relaxed);
    while (current < limit_) {
      if (inflight_.compare_exchange_weak(current, current + 1, std::memory_order_acquire)) {
        return true;
      }
    }
    return false;
  }

  void release() {
    if (limit_ != 0) inflight_.fetch_sub(1, std::memory_order_release);
  }

  [[nodiscard]] std::size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> inflight_{0};
  std::size_t limit_;
};

struct ServiceOptions {
  /// Concurrently-executing request cap (0 = unlimited). Requests
  /// beyond it are rejected with kOverloaded, never queued.
  std::size_t max_inflight = 64;
  /// Backoff hint stamped on every kOverloaded rejection
  /// (Response::retry_after_ms); 0 = no hint.
  double retry_after_ms = 5.0;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});

  /// Handles one request synchronously on the calling thread. Never
  /// throws; every failure (including overload rejection) is an
  /// ok=false Response with a typed error code. Identical requests
  /// yield byte-identical response payloads at every jobs level.
  core::Response handle(const core::Request& request);

  [[nodiscard]] const ServiceOptions& options() const { return options_; }

 private:
  core::Response dispatch(const core::Request& request) const;

  ServiceOptions options_;
  InflightGate gate_;
};

}  // namespace clara::serve
