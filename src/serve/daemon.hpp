// clarad's engine: a JSON-lines analysis server on a Unix-domain socket.
//
// Protocol (docs/api.md "Wire protocol", version clara-serve/1): the
// server accepts SOCK_STREAM connections on a filesystem socket; on
// connect it writes one hello line (a Response with kind "hello"), then
// reads one JSON request object per line and writes one JSON response
// object per line. Requests on a connection are independent and may be
// pipelined: each is dispatched onto the shared work-stealing pool
// (parallel::pool) as it arrives, and responses are written as they
// complete — possibly out of order, which is why every request carries
// a client-chosen id that the response echoes. At --jobs=1 dispatch is
// inline and serial, so the whole server is deterministic.
//
// Hostile-client hardening (docs/robustness.md "Serve resilience"):
// per-connection limits close abusive peers with a typed response
// first — an oversized or newline-less line is a kParse close, a
// connection beyond max_connections is a kOverloaded hello, a peer
// that stalls mid-line past read_deadline_ms is timed out. The accept
// loop classifies errno: transient fd-pressure failures (EMFILE,
// ENFILE, ECONNABORTED, ENOMEM) back off exponentially and retry
// (serve/accept_retries) instead of silently killing the listener.
// Four seeded fault sites (serve/torn_write, serve/conn_reset,
// serve/accept_fail, serve/slow_read) make all of this reproducible
// chaos-test input.
//
// Threading: one accept thread, one reader thread per connection, the
// pool for the actual analysis work. A per-connection write mutex keeps
// response lines intact. Finished connection threads are reaped by the
// accept loop as it iterates, so a long-lived daemon does not
// accumulate one std::thread per connection ever served. stop() drains
// with a bounded deadline: after drain_deadline_ms it force-closes the
// remaining sockets so a stalled client cannot hang shutdown; the
// destructor calls it. begin_drain() stops accepting and answers new
// requests with kOverloaded ("draining") while live connections finish.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "serve/service.hpp"

namespace clara::serve {

struct DaemonOptions {
  /// Filesystem path to bind (must fit sockaddr_un; an existing socket
  /// file at the path is replaced).
  std::string socket_path;
  /// Admission-control cap forwarded to the Service (0 = unlimited).
  std::size_t max_inflight = 64;
  /// Longest request line accepted; a longer line gets a typed kParse
  /// response and the connection is closed (0 = unlimited).
  std::size_t max_line_bytes = 1u << 20;  // 1 MiB
  /// Cap on the per-connection read buffer — a peer streaming bytes
  /// without a newline is cut off here with a typed kParse response
  /// (0 = unlimited). Effectively bounds per-connection memory.
  std::size_t max_buffer_bytes = 2u << 20;  // 2 MiB
  /// Concurrent-connection cap; beyond it a new peer receives one
  /// kOverloaded hello line and is closed (0 = unlimited).
  std::size_t max_connections = 0;
  /// Deadline for completing a request line once its first byte arrived:
  /// a peer that stalls mid-line longer than this is closed with a typed
  /// kParse response (slow-loris defense). Also bounds blocked response
  /// writes to a peer that stopped reading. 0 = no deadline.
  double read_deadline_ms = 0.0;
  /// Backoff hint stamped on kOverloaded rejections (admission gate,
  /// connection limit, draining).
  double retry_after_ms = 5.0;
  /// How long stop() waits for live connections to finish before
  /// force-closing their sockets (0 = force-close immediately).
  double drain_deadline_ms = 2000.0;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds, listens, and spawns the accept thread. Errors (path too
  /// long, bind failure) report kInternal with errno text.
  Status start();

  /// Stops accepting new connections and switches live connections to
  /// draining: every further request line is answered with kOverloaded
  /// ("draining") instead of being dispatched. Idempotent; stop()
  /// implies it.
  void begin_drain();

  /// Drains and shuts down: stops accepting, waits up to
  /// drain_deadline_ms for in-flight connections, force-closes the
  /// stragglers, joins all threads, removes the socket file. Idempotent.
  void stop();

  [[nodiscard]] const std::string& socket_path() const { return options_.socket_path; }
  [[nodiscard]] bool running() const { return running_.load(std::memory_order_acquire); }
  [[nodiscard]] bool draining() const { return draining_.load(std::memory_order_acquire); }
  /// Connections accepted over the daemon's lifetime.
  [[nodiscard]] std::uint64_t connections_accepted() const {
    return connections_.load(std::memory_order_relaxed);
  }
  /// Currently-open connections.
  [[nodiscard]] std::size_t open_connections() const {
    return open_conns_.load(std::memory_order_relaxed);
  }
  /// Connection slots (thread objects) still tracked — finished slots
  /// are reaped by the accept loop, so this stays near
  /// open_connections() rather than growing with connections_accepted().
  [[nodiscard]] std::size_t tracked_connections();
  /// Transient accept() failures survived (serve/accept_retries).
  [[nodiscard]] std::uint64_t accept_retries() const {
    return accept_retries_.load(std::memory_order_relaxed);
  }

 private:
  /// One live connection: its socket, reader thread, and a done flag the
  /// reaper keys on. fd transitions to -1 (under mu_) exactly once, when
  /// the owning thread closes it; done flips last, after which the
  /// thread never touches the slot again.
  struct Conn {
    std::atomic<int> fd{-1};
    std::atomic<bool> done{false};
    std::thread thread;
  };

  void accept_loop();
  void serve_connection(Conn* conn);
  /// Joins and discards connection slots whose threads have finished.
  void reap_finished();

  DaemonOptions options_;
  Service service_;
  // Atomic: stop() invalidates it concurrently with accept_loop()'s read.
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> accept_retries_{0};
  std::atomic<std::size_t> open_conns_{0};
  std::thread accept_thread_;
  std::mutex mu_;  // guards conns_ (slot list) and fd close transitions
  std::vector<std::unique_ptr<Conn>> conns_;
};

}  // namespace clara::serve
