// clarad's engine: a JSON-lines analysis server on a Unix-domain socket.
//
// Protocol (docs/api.md "Wire protocol", version clara-serve/1): the
// server accepts SOCK_STREAM connections on a filesystem socket; on
// connect it writes one hello line (a Response with kind "hello"), then
// reads one JSON request object per line and writes one JSON response
// object per line. Requests on a connection are independent and may be
// pipelined: each is dispatched onto the shared work-stealing pool
// (parallel::pool) as it arrives, and responses are written as they
// complete — possibly out of order, which is why every request carries
// a client-chosen id that the response echoes. At --jobs=1 dispatch is
// inline and serial, so the whole server is deterministic.
//
// Threading: one accept thread, one reader thread per connection, the
// pool for the actual analysis work. A per-connection write mutex keeps
// response lines intact. stop() shuts down every socket, drains
// in-flight work, and joins all threads; the destructor calls it.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "serve/service.hpp"

namespace clara::serve {

struct DaemonOptions {
  /// Filesystem path to bind (must fit sockaddr_un; an existing socket
  /// file at the path is replaced).
  std::string socket_path;
  /// Admission-control cap forwarded to the Service (0 = unlimited).
  std::size_t max_inflight = 64;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds, listens, and spawns the accept thread. Errors (path too
  /// long, bind failure) report kInternal with errno text.
  Status start();

  /// Stops accepting, shuts down every live connection, waits for
  /// in-flight requests, joins all threads, removes the socket file.
  /// Idempotent.
  void stop();

  [[nodiscard]] const std::string& socket_path() const { return options_.socket_path; }
  [[nodiscard]] bool running() const { return running_.load(std::memory_order_acquire); }
  /// Connections accepted over the daemon's lifetime.
  [[nodiscard]] std::uint64_t connections_accepted() const {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);

  DaemonOptions options_;
  Service service_;
  // Atomic: stop() invalidates it concurrently with accept_loop()'s read.
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::thread accept_thread_;
  std::mutex mu_;  // guards conn_threads_ / conn_fds_
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

}  // namespace clara::serve
