// clarad — the Clara analysis daemon.
//
//   clarad --socket=/run/clara.sock [--jobs=N] [--max-inflight=N]
//
// Serves the clara-serve/1 JSON-lines protocol over a Unix-domain
// socket: one Request object per line in, one Response object per line
// out, multiplexed onto the shared work-stealing pool with the
// content-addressed analysis cache shared across every client (see
// docs/api.md "Wire protocol"). `clara analyze --connect=<socket>`
// and serve::Client speak to it; SIGINT/SIGTERM shut it down cleanly.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "common/version.hpp"
#include "core/cache.hpp"
#include "serve/daemon.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

void usage() {
  std::printf(
      "clarad — Clara analysis daemon (clara-serve/1 over a Unix socket)\n\n"
      "  clarad [--socket=<path>] [--jobs=<N>] [--max-inflight=<N>]\n"
      "         [--cache-entries=<N>] [--max-connections=<N>]\n"
      "         [--read-deadline-ms=<N>] [--drain-ms=<N>]\n\n"
      "  --socket=<path>        listening socket (default /tmp/clarad.sock);\n"
      "                         an existing file at the path is replaced\n"
      "  --jobs=<N>             pool concurrency (default: CLARA_JOBS or\n"
      "                         hardware threads; 1 = fully serial)\n"
      "  --max-inflight=<N>     admission cap; requests beyond it get a typed\n"
      "                         \"overloaded\" response (0 = unlimited,\n"
      "                         default 64)\n"
      "  --cache-entries=<N>    analysis cache capacity per stage\n"
      "  --max-connections=<N>  concurrent-connection cap; extra peers get one\n"
      "                         typed \"overloaded\" hello (0 = unlimited)\n"
      "  --read-deadline-ms=<N> close a connection that stalls mid-request\n"
      "                         line longer than N ms, with a typed response\n"
      "                         first (slow-loris defense; 0 = none,\n"
      "                         default 30000)\n"
      "  --drain-ms=<N>         on SIGTERM/SIGINT: stop accepting, answer new\n"
      "                         requests with \"draining\", wait up to N ms for\n"
      "                         live connections, then force-close (default\n"
      "                         2000)\n\n"
      "Talk to it with `clara analyze --nf lpm --connect=<path>` or any\n"
      "client that writes one clara-serve/1 request object per line.\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace clara;
  serve::DaemonOptions options;
  options.socket_path = "/tmp/clarad.sock";
  // A standalone daemon defaults to the slow-loris deadline on; library
  // embedders (tests, the loadgen) opt in instead.
  options.read_deadline_ms = 30'000.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    const auto eq = arg.find('=');
    const std::string key = eq == std::string::npos ? arg : arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--socket" && !value.empty()) {
      options.socket_path = value;
    } else if (key == "--jobs") {
      const long n = std::atol(value.c_str());
      if (n < 1) {
        std::fprintf(stderr, "--jobs must be a positive integer\n");
        return 2;
      }
      parallel::set_jobs(static_cast<std::size_t>(n));
    } else if (key == "--max-inflight") {
      const long n = std::atol(value.c_str());
      if (n < 0) {
        std::fprintf(stderr, "--max-inflight must be >= 0 (0 = unlimited)\n");
        return 2;
      }
      options.max_inflight = static_cast<std::size_t>(n);
    } else if (key == "--max-connections") {
      const long n = std::atol(value.c_str());
      if (n < 0) {
        std::fprintf(stderr, "--max-connections must be >= 0 (0 = unlimited)\n");
        return 2;
      }
      options.max_connections = static_cast<std::size_t>(n);
    } else if (key == "--read-deadline-ms") {
      const long n = std::atol(value.c_str());
      if (n < 0) {
        std::fprintf(stderr, "--read-deadline-ms must be >= 0 (0 = no deadline)\n");
        return 2;
      }
      options.read_deadline_ms = static_cast<double>(n);
    } else if (key == "--drain-ms") {
      const long n = std::atol(value.c_str());
      if (n < 0) {
        std::fprintf(stderr, "--drain-ms must be >= 0\n");
        return 2;
      }
      options.drain_deadline_ms = static_cast<double>(n);
    } else if (key == "--cache-entries") {
      const long n = std::atol(value.c_str());
      if (n < 1) {
        std::fprintf(stderr, "--cache-entries must be a positive integer\n");
        return 2;
      }
      core::CacheConfig config;
      config.max_entries = static_cast<std::size_t>(n);
      core::analysis_cache().configure(config);
    } else {
      std::fprintf(stderr, "unknown option '%s' (try --help)\n", arg.c_str());
      return 2;
    }
  }

  serve::Daemon daemon(options);
  if (auto status = daemon.start(); !status) {
    std::fprintf(stderr, "clarad: %s\n", status.error().message.c_str());
    return 1;
  }
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);
  std::fprintf(stderr, "clarad %s listening on %s (jobs=%zu, max-inflight=%zu)\n", kVersionString,
               daemon.socket_path().c_str(), parallel::jobs(), options.max_inflight);
  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Graceful drain: stop accepting, answer requests still arriving on
  // live connections with kOverloaded ("draining"), give in-flight work
  // a bounded window, then stop() force-closes whatever remains.
  daemon.begin_drain();
  std::fprintf(stderr, "clarad: draining (%zu open connection(s), deadline %.0f ms)\n",
               daemon.open_connections(), options.drain_deadline_ms);
  const auto drain_start = std::chrono::steady_clock::now();
  while (daemon.open_connections() > 0 &&
         std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   drain_start)
                 .count() < options.drain_deadline_ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::fprintf(stderr, "clarad: shutting down (%zu connection(s) served)\n",
               daemon.connections_accepted());
  daemon.stop();
  return 0;
}
